#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "deps/cfd.h"

namespace fixrep {
namespace {

class CfdTest : public ::testing::Test {
 protected:
  CfdTest()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "Travel", std::vector<std::string>{"name", "country", "capital",
                                               "city", "conf"})),
        table_(schema_, pool_) {}

  Cfd Parse(const std::string& text) {
    return ParseCfd(*schema_, pool_.get(), text);
  }

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table table_;
};

TEST_F(CfdTest, ParseAndFormatRoundTrip) {
  const std::string text =
      "country -> capital :: (China | Beijing); (_ | _)";
  const Cfd cfd = Parse(text);
  EXPECT_EQ(cfd.embedded.lhs, std::vector<AttrId>{1});
  EXPECT_EQ(cfd.embedded.rhs, std::vector<AttrId>{2});
  ASSERT_EQ(cfd.tableau.size(), 2u);
  EXPECT_EQ(cfd.tableau[0].lhs[0], pool_->Find("China"));
  EXPECT_EQ(cfd.tableau[0].rhs, pool_->Find("Beijing"));
  EXPECT_EQ(cfd.tableau[1].lhs[0], kCfdWildcard);
  EXPECT_EQ(cfd.tableau[1].rhs, kCfdWildcard);
  EXPECT_EQ(FormatCfd(*schema_, *pool_, cfd), text);
}

TEST_F(CfdTest, ParseMultiAttributeLhs) {
  const Cfd cfd =
      Parse("capital, conf -> city :: (Beijing, ICDE | Shanghai)");
  EXPECT_EQ(cfd.embedded.lhs, (std::vector<AttrId>{2, 4}));
  ASSERT_EQ(cfd.tableau.size(), 1u);
  EXPECT_EQ(cfd.tableau[0].lhs.size(), 2u);
}

TEST_F(CfdTest, ParseRejectsMalformed) {
  EXPECT_DEATH(Parse("country -> capital"), "no '::'");
  EXPECT_DEATH(Parse("country -> capital :: China | Beijing"),
               "parenthesized");
  EXPECT_DEATH(Parse("country -> capital :: (China)"), "no '|'");
  EXPECT_DEATH(Parse("country -> capital, city :: (_ | _)"), "single-RHS");
  EXPECT_DEATH(Parse("country -> capital :: "), "at least one");
  EXPECT_DEATH(Parse("capital, conf -> city :: (Beijing | X)"),
               "arity mismatch");
}

TEST_F(CfdTest, ConstantRhsViolationIsPerTuple) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  table_.AppendRowStrings({"b", "China", "Shanghai", "y", "c"});  // violates
  table_.AppendRowStrings({"c", "Japan", "Osaka", "z", "c"});     // no match
  const Cfd cfd = Parse("country -> capital :: (China | Beijing)");
  const auto violations = DetectCfdViolations(table_, cfd);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(violations[0].constant_rhs);
  EXPECT_EQ(violations[0].rows, std::vector<size_t>{1});
  EXPECT_FALSE(Satisfies(table_, cfd));
}

TEST_F(CfdTest, WildcardRhsBehavesLikeScopedFd) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  table_.AppendRowStrings({"b", "China", "Shanghai", "y", "c"});
  table_.AppendRowStrings({"c", "Japan", "Tokyo", "z", "c"});
  table_.AppendRowStrings({"d", "Japan", "Osaka", "z", "c"});
  // Scoped to China only: the Japan disagreement is out of scope.
  const Cfd cfd = Parse("country -> capital :: (China | _)");
  const auto violations = DetectCfdViolations(table_, cfd);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_FALSE(violations[0].constant_rhs);
  EXPECT_EQ(violations[0].rows.size(), 2u);
}

TEST_F(CfdTest, AllWildcardRowEqualsPlainFd) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  table_.AppendRowStrings({"b", "China", "Shanghai", "y", "c"});
  const Cfd cfd = Parse("country -> capital :: (_ | _)");
  EXPECT_FALSE(Satisfies(table_, cfd));
  table_.WriteCell(1, 2, pool_->Intern("Beijing"));
  EXPECT_TRUE(Satisfies(table_, cfd));
}

TEST_F(CfdTest, MultipleTableauRowsAccumulateViolations) {
  table_.AppendRowStrings({"a", "China", "Shanghai", "x", "c"});
  table_.AppendRowStrings({"b", "Canada", "Toronto", "y", "c"});
  const Cfd cfd = Parse(
      "country -> capital :: (China | Beijing); (Canada | Ottawa)");
  const auto violations = DetectCfdViolations(table_, cfd);
  EXPECT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].tableau_row, 0u);
  EXPECT_EQ(violations[1].tableau_row, 1u);
}

TEST_F(CfdTest, SatisfiedCfd) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  table_.AppendRowStrings({"b", "Canada", "Ottawa", "y", "c"});
  const Cfd cfd = Parse(
      "country -> capital :: (China | Beijing); (Canada | Ottawa); (_ | _)");
  EXPECT_TRUE(Satisfies(table_, cfd));
}

}  // namespace
}  // namespace fixrep
