#include "common/status.h"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace fixrep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::MalformedInput("bad record");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kMalformedInput);
  EXPECT_EQ(status.message(), "bad record");
  EXPECT_EQ(status.ToString(), "MALFORMED_INPUT: bad record");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kMalformedInput),
               "MALFORMED_INPUT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kBudgetExhausted),
               "BUDGET_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, WithContextChainsOutermostFirst) {
  const Status status = Status::IoError("cannot open x.csv")
                            .WithContext("record 7")
                            .WithContext("repair --in");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "repair --in: record 7: cannot open x.csv");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  const Status status = Status::Ok().WithContext("ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream out;
  out << Status::BudgetExhausted("too many steps");
  EXPECT_EQ(out.str(), "BUDGET_EXHAUSTED: too many steps");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.status().message(), "boom");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  const StatusOr<int> result(Status::IoError("nope"));
  EXPECT_DEATH(result.value(), "IO_ERROR: nope");
}

TEST(StatusOrDeathTest, ErrorFromOkStatusAborts) {
  EXPECT_DEATH(StatusOr<int>(Status::Ok()), "without a value");
}

Status FailsThenReturns(bool fail, int* reached) {
  FIXREP_RETURN_IF_ERROR(
      fail ? Status::Internal("early") : Status::Ok());
  *reached = 1;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  int reached = 0;
  EXPECT_FALSE(FailsThenReturns(true, &reached).ok());
  EXPECT_EQ(reached, 0);
  EXPECT_TRUE(FailsThenReturns(false, &reached).ok());
  EXPECT_EQ(reached, 1);
}

}  // namespace
}  // namespace fixrep
