#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/consistency.h"
#include "rules/resolution.h"

namespace fixrep {
namespace {

class ResolutionTest : public ::testing::Test {
 protected:
  TravelExample example_;

  FixingRule Rule(const std::vector<std::pair<std::string, std::string>>& ev,
                  const std::string& target,
                  const std::vector<std::string>& negatives,
                  const std::string& fact) {
    return MakeRule(*example_.schema, example_.pool.get(), ev, target,
                    negatives, fact);
  }
};

TEST_F(ResolutionTest, ConsistentSetIsUntouched) {
  RuleSet rules = example_.rules;
  const auto report = ResolveByDropping(&rules);
  EXPECT_TRUE(report.dropped_rules.empty());
  EXPECT_EQ(rules.size(), 4u);
  RuleSet rules2 = example_.rules;
  const auto report2 = ResolveByPruning(&rules2);
  EXPECT_TRUE(report2.dropped_rules.empty());
  EXPECT_EQ(report2.patterns_removed, 0u);
}

TEST_F(ResolutionTest, DroppingRemovesBothConflictingRules) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(MakeTravelPhi1Prime(&example_));     // #0
  rules.Add(example_.rules.rule(1));             // #1, phi_2, innocent
  rules.Add(example_.rules.rule(2));             // #2, phi_3
  const auto report = ResolveByDropping(&rules);
  EXPECT_EQ(report.dropped_rules, (std::vector<size_t>{0, 2}));
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(1));
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST_F(ResolutionTest, PruningReproducesExample10ExpertFix) {
  // The expert fix of Example 10: remove Tokyo from phi_1''s negative
  // patterns, turning it back into phi_1, which is consistent with phi_3.
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(MakeTravelPhi1Prime(&example_));
  rules.Add(example_.rules.rule(2));  // phi_3
  const auto report = ResolveByPruning(&rules);
  EXPECT_TRUE(report.dropped_rules.empty());
  EXPECT_EQ(report.patterns_removed, 1u);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(0)) << "phi_1' became phi_1";
  EXPECT_EQ(rules.rule(1), example_.rules.rule(2));
  EXPECT_TRUE(IsConsistentChar(rules));
  EXPECT_TRUE(IsConsistentEnum(rules));
}

TEST_F(ResolutionTest, PruningSameTargetConflictShrinksLargerSet) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing"));
  rules.Add(Rule({{"conf", "ICDE"}}, "capital",
                 {"Shanghai", "Hongkong", "Macau"}, "Nanjing"));
  const auto report = ResolveByPruning(&rules);
  EXPECT_TRUE(report.dropped_rules.empty());
  EXPECT_EQ(report.patterns_removed, 1u);  // Shanghai leaves the larger set
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.rule(0).negative_patterns.size(), 1u);
  EXPECT_EQ(rules.rule(1).negative_patterns.size(), 2u);
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST_F(ResolutionTest, PruningDropsRuleWhoseNegativesEmpty) {
  // Single-negative rules with the same negative and different facts:
  // pruning empties one side, so that rule must be dropped.
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing"));
  rules.Add(Rule({{"conf", "ICDE"}}, "capital", {"Shanghai"}, "Nanjing"));
  const auto report = ResolveByPruning(&rules);
  EXPECT_EQ(report.dropped_rules.size(), 1u);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST_F(ResolutionTest, PruningHandlesManyConflicts) {
  // A clique of same-target conflicts plus a mutual-evidence conflict;
  // pruning must terminate and end consistent.
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital",
                 {"Shanghai", "Hongkong", "Tokyo"}, "Beijing"));
  rules.Add(Rule({{"conf", "ICDE"}}, "capital", {"Shanghai", "Seoul"},
                 "Nanjing"));
  rules.Add(Rule({{"city", "Tokyo"}}, "capital", {"Seoul", "Hongkong"},
                 "Tokyo"));
  rules.Add(Rule(
      {{"capital", "Tokyo"}, {"city", "Tokyo"}, {"conf", "ICDE"}}, "country",
      {"China"}, "Japan"));
  const auto report = ResolveByPruning(&rules);
  EXPECT_TRUE(IsConsistentChar(rules));
  EXPECT_TRUE(IsConsistentEnum(rules));
  EXPECT_GT(report.patterns_removed + report.dropped_rules.size(), 0u);
}

TEST_F(ResolutionTest, DroppingTerminatesOnCliqueOfConflicts) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing"));
  rules.Add(Rule({{"conf", "ICDE"}}, "capital", {"Shanghai"}, "Nanjing"));
  rules.Add(Rule({{"city", "Tokyo"}}, "capital", {"Shanghai"}, "Seoul"));
  const auto report = ResolveByDropping(&rules);
  EXPECT_EQ(rules.size(), 0u);
  EXPECT_EQ(report.dropped_rules.size(), 3u);
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST_F(ResolutionTest, ReportsOriginalIndicesAfterMultipleRounds) {
  // Rule #1 conflicts with #0; once #0's negatives are pruned the
  // surviving rules stay consistent. Indices in the report must refer to
  // the original positions.
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing"));
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Nanjing"));
  rules.Add(example_.rules.rule(1));  // phi_2, untouched
  const auto report = ResolveByPruning(&rules);
  ASSERT_EQ(report.dropped_rules.size(), 1u);
  EXPECT_TRUE(report.dropped_rules[0] == 0 || report.dropped_rules[0] == 1);
  EXPECT_EQ(rules.size(), 2u);
  // phi_2 must survive.
  const auto survives =
      std::any_of(rules.rules().begin(), rules.rules().end(),
                  [&](const FixingRule& r) {
                    return r == example_.rules.rule(1);
                  });
  EXPECT_TRUE(survives);
}

}  // namespace
}  // namespace fixrep
