// Property tests for the FD-repair baselines on the regime they are
// designed for: data that satisfied its FDs before noise was injected.
// (On adversarial dense-random tables the pass-bounded Heu may not
// converge — it then reports consistent=false, covered by a dedicated
// termination test.)

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/csm.h"
#include "baselines/heu.h"
#include "common/random.h"
#include "deps/violation.h"

namespace fixrep {
namespace {

// Entity-chain generator: a is a key, b = f(a), c = g(b), d = h(c), so
// the FD chain a->b, b->c, c->d holds by construction; then a fraction
// of cells is corrupted with in-domain values.
struct NoisyChainTable {
  std::shared_ptr<ValuePool> pool = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a", "b", "c", "d"});
  Table table{schema, pool};
  std::vector<FunctionalDependency> fds;

  NoisyChainTable(Rng* rng, size_t rows, size_t entities,
                  double noise_rate) {
    fds = {MakeFd(*schema, {"a"}, {"b"}), MakeFd(*schema, {"b"}, {"c"}),
           MakeFd(*schema, {"c"}, {"d"})};
    auto value = [this](char attr, uint64_t k) {
      return pool->Intern(std::string(1, attr) + std::to_string(k));
    };
    for (size_t r = 0; r < rows; ++r) {
      const uint64_t key = rng->Uniform(entities);
      Tuple t(4);
      t[0] = value('a', key);
      t[1] = value('b', key % (entities / 2 + 1));
      t[2] = value('c', (key % (entities / 2 + 1)) % (entities / 3 + 1));
      t[3] = value('d', ((key % (entities / 2 + 1)) %
                         (entities / 3 + 1)) % (entities / 4 + 1));
      table.AppendRow(std::move(t));
    }
    // In-domain corruption.
    const size_t corruptions =
        static_cast<size_t>(noise_rate * static_cast<double>(rows));
    for (size_t i = 0; i < corruptions; ++i) {
      const size_t row = rng->Uniform(rows);
      const AttrId attr = static_cast<AttrId>(rng->Uniform(4));
      const char prefix = static_cast<char>('a' + attr);
      table.WriteCell(row, attr,
                     value(prefix, rng->Uniform(entities)));
    }
  }
};

class BaselinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselinePropertyTest, HeuEndsConsistentOnNoisyChains) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    NoisyChainTable random(&rng, 80 + rng.Uniform(80), 12, 0.1);
    HeuOptions options;
    options.max_passes = 32;
    HeuRepairer heu(random.fds, options);
    const BaselineResult result = heu.Repair(&random.table);
    EXPECT_TRUE(result.consistent);
    for (const auto& fd : random.fds) {
      EXPECT_TRUE(Satisfies(random.table, fd))
          << FormatFd(*random.schema, fd) << " still violated";
    }
  }
}

TEST_P(BaselinePropertyTest, CsmEndsConsistentOnNoisyChains) {
  Rng rng(GetParam() ^ 0xc5);
  for (int trial = 0; trial < 6; ++trial) {
    NoisyChainTable random(&rng, 80 + rng.Uniform(80), 12, 0.1);
    CsmOptions options;
    options.seed = rng.Next();
    CsmRepairer csm(random.fds, options);
    const BaselineResult result = csm.Repair(&random.table);
    EXPECT_TRUE(result.consistent);
    for (const auto& fd : random.fds) {
      EXPECT_TRUE(Satisfies(random.table, fd))
          << FormatFd(*random.schema, fd) << " still violated";
    }
  }
}

TEST_P(BaselinePropertyTest, HeuIsIdempotentOnceConsistent) {
  Rng rng(GetParam() ^ 0x1de);
  NoisyChainTable random(&rng, 100, 12, 0.1);
  HeuOptions options;
  options.max_passes = 32;
  HeuRepairer heu(random.fds, options);
  const BaselineResult first = heu.Repair(&random.table);
  ASSERT_TRUE(first.consistent);
  Table again = random.table;
  const BaselineResult second = heu.Repair(&again);
  EXPECT_EQ(second.cells_changed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinePropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(BaselineTerminationTest, HeuReportsNonConvergenceHonestly) {
  // A dense adversarial table with cyclically interacting FDs can defeat
  // the pass-bounded heuristic; the contract is that Repair terminates
  // within max_passes and reports consistent=false rather than looping.
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a", "b", "c", "d"});
  Table table(schema, pool);
  Rng rng(99);
  for (size_t r = 0; r < 120; ++r) {
    Tuple t(4);
    for (size_t a = 0; a < 4; ++a) {
      t[a] = pool->Intern("a" + std::to_string(a) + "v" +
                          std::to_string(rng.Uniform(3)));
    }
    table.AppendRow(std::move(t));
  }
  const std::vector<FunctionalDependency> fds = {
      MakeFd(*schema, {"a"}, {"b"}), MakeFd(*schema, {"b"}, {"a"}),
      MakeFd(*schema, {"c"}, {"d"}), MakeFd(*schema, {"d"}, {"c"})};
  HeuOptions options;
  options.max_passes = 4;
  HeuRepairer heu(fds, options);
  const BaselineResult result = heu.Repair(&table);
  EXPECT_EQ(result.passes, 4u);  // terminated at the bound
  // consistent may be true or false depending on the draw; the test is
  // that we got here at all, with an honest flag:
  bool all_satisfied = true;
  for (const auto& fd : fds) all_satisfied &= Satisfies(table, fd);
  EXPECT_EQ(result.consistent, all_satisfied);
}

}  // namespace
}  // namespace fixrep
