// The flat row store and its zero-copy views (relation/row_store.h,
// relation/tuple_ref.h): storage layout, view lifetime rules, and the
// Table surface built on top of them. See docs/storage.md.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/csv.h"
#include "relation/row_store.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "relation/tuple_ref.h"
#include "relation/value_pool.h"

namespace fixrep {
namespace {

TEST(TupleRefTest, ViewsOwningTupleImplicitly) {
  const Tuple t = {1, 2, 3};
  const TupleRef view = t;
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[2], 3);
  EXPECT_EQ(view.data(), t.data());
}

TEST(TupleRefTest, EqualityComparesCells) {
  const Tuple a = {1, 2, 3};
  const Tuple b = {1, 2, 3};
  const Tuple c = {1, 2, 4};
  const Tuple shorter = {1, 2};
  EXPECT_EQ(TupleRef(a), TupleRef(b));  // distinct storage, same cells
  EXPECT_NE(TupleRef(a), TupleRef(c));
  EXPECT_NE(TupleRef(a), TupleRef(shorter));
  EXPECT_EQ(TupleRef(a), b);  // mixed Tuple/TupleRef comparison
}

TEST(TupleRefTest, ToTupleMaterializesACopy) {
  Tuple t = {7, 8};
  const TupleRef view = t;
  const Tuple copy = view.ToTuple();
  t[0] = 99;
  EXPECT_EQ(copy, (Tuple{7, 8}));
}

TEST(TupleRefTest, DefaultIsEmpty) {
  const TupleRef view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view, TupleRef());
}

TEST(TupleSpanTest, WritesThroughToTheOwningTuple) {
  Tuple t = {1, 2, 3};
  const TupleSpan span = t;  // shallow-const: still writable
  span[1] = 42;
  EXPECT_EQ(t[1], 42);
}

TEST(TupleSpanTest, ConvertsToTupleRef) {
  Tuple t = {5, 6};
  const TupleSpan span = t;
  const TupleRef view = span;
  EXPECT_EQ(view, t);
}

TEST(TupleSpanTest, CopyFromRestoresCells) {
  Tuple t = {1, 2, 3};
  const Tuple original = t;
  const TupleSpan span = t;
  span[0] = 9;
  span[2] = 9;
  span.CopyFrom(original);
  EXPECT_EQ(t, original);
}

TEST(RowStoreTest, AppendAndReadBack) {
  RowStore store(3);
  EXPECT_EQ(store.arity(), 3u);
  EXPECT_EQ(store.num_rows(), 0u);
  store.AppendRow(Tuple{1, 2, 3});
  store.AppendRow(Tuple{4, 5, 6});
  ASSERT_EQ(store.num_rows(), 2u);
  EXPECT_EQ(store.row(0), (Tuple{1, 2, 3}));
  EXPECT_EQ(store.row(1), (Tuple{4, 5, 6}));
  EXPECT_EQ(store.cell(1, 2), 6);
}

TEST(RowStoreTest, CellsAreContiguousAndArityStrided) {
  RowStore store(2);
  store.AppendRow(Tuple{10, 11});
  store.AppendRow(Tuple{20, 21});
  store.AppendRow(Tuple{30, 31});
  // One flat array: row i begins exactly arity cells after row i-1.
  const ValueId* base = store.row(0).data();
  EXPECT_EQ(store.row(1).data(), base + 2);
  EXPECT_EQ(store.row(2).data(), base + 4);
}

TEST(RowStoreTest, WriteCellAndWriteRow) {
  RowStore store(2);
  store.AppendRow(Tuple{1, 2});
  store.WriteCell(0, 1, 42);
  EXPECT_EQ(store.cell(0, 1), 42);
  const TupleSpan span = store.WriteRow(0);
  span[0] = 7;
  EXPECT_EQ(store.row(0), (Tuple{7, 42}));
}

TEST(RowStoreTest, InPlaceWritesNeverInvalidateViews) {
  RowStore store(2);
  store.AppendRow(Tuple{1, 2});
  store.AppendRow(Tuple{3, 4});
  const TupleRef view = store.row(0);
  const ValueId* before = view.data();
  for (size_t i = 0; i < 100; ++i) {
    store.WriteCell(1, 0, static_cast<ValueId>(i));
    store.WriteRow(1)[1] = static_cast<ValueId>(i);
  }
  EXPECT_EQ(view.data(), before);
  EXPECT_EQ(view, (Tuple{1, 2}));
}

TEST(RowStoreTest, ReserveMakesViewsStableAcrossAppends) {
  RowStore store(2);
  store.Reserve(1000);
  store.AppendRow(Tuple{1, 2});
  const ValueId* before = store.row(0).data();
  for (ValueId i = 0; i < 999; ++i) store.AppendRow(Tuple{i, i});
  EXPECT_EQ(store.row(0).data(), before);
  EXPECT_EQ(store.num_rows(), 1000u);
}

TEST(RowStoreTest, AppendRowUninitFillsWithNulls) {
  RowStore store(3);
  const TupleSpan span = store.AppendRowUninit();
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(store.row(0), (Tuple{kNullValue, kNullValue, kNullValue}));
  span[1] = 5;
  EXPECT_EQ(store.cell(0, 1), 5);
}

TEST(RowStoreTest, ClearKeepsTheAllocation) {
  RowStore store(4);
  for (ValueId i = 0; i < 100; ++i) {
    store.AppendRow(Tuple{i, i, i, i});
  }
  const size_t bytes_before = store.bytes();
  ASSERT_GT(bytes_before, 0u);
  store.Clear();
  EXPECT_EQ(store.num_rows(), 0u);
  EXPECT_EQ(store.bytes(), bytes_before);  // chunk reuse: no realloc
  store.AppendRow(Tuple{1, 2, 3, 4});
  EXPECT_EQ(store.row(0), (Tuple{1, 2, 3, 4}));
  EXPECT_EQ(store.bytes(), bytes_before);
}

TEST(RowStoreTest, GrowthIsRowAligned) {
  RowStore store(5);
  for (ValueId i = 0; i < 10000; ++i) {
    store.AppendRow(Tuple{i, i, i, i, i});
    // Capacity always holds whole rows: a reallocation can never split
    // one.
    EXPECT_EQ(store.capacity_rows() * store.arity() % store.arity(), 0u);
    ASSERT_GE(store.capacity_rows(), store.num_rows());
  }
  for (ValueId i = 0; i < 10000; ++i) {
    ASSERT_EQ(store.cell(static_cast<size_t>(i), 3), i) << "row " << i;
  }
}

TEST(RowStoreTest, ReserveRoundsUpToWholeBlocks) {
  RowStore store(2);
  store.Reserve(1);
  EXPECT_GE(store.capacity_rows(), RowStore::kRowsPerBlock);
  EXPECT_EQ(store.capacity_rows() % RowStore::kRowsPerBlock, 0u);
}

class TableStorageTest : public ::testing::Test {
 protected:
  TableStorageTest()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "R", std::vector<std::string>{"a", "b", "c"})),
        table_(schema_, pool_) {}

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table table_;
};

TEST_F(TableStorageTest, RowViewsReadTheFlatStore) {
  table_.AppendRowStrings({"x", "y", "z"});
  const TupleRef row = table_.row(0);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], pool_->Find("x"));
  EXPECT_EQ(row.ToTuple(),
            (Tuple{pool_->Find("x"), pool_->Find("y"), pool_->Find("z")}));
}

TEST_F(TableStorageTest, CopyingATableCopiesCells) {
  table_.AppendRowStrings({"x", "y", "z"});
  Table copy = table_;
  copy.WriteCell(0, 0, pool_->Intern("other"));
  EXPECT_EQ(table_.CellString(0, 0), "x");
  EXPECT_EQ(copy.CellString(0, 0), "other");
  EXPECT_FALSE(table_.RowsEqual(copy));
}

TEST_F(TableStorageTest, RowsEqualComparesCellsOnly) {
  table_.AppendRowStrings({"x", "y", "z"});
  Table other(schema_, pool_);
  EXPECT_FALSE(table_.RowsEqual(other));  // row-count mismatch
  other.AppendRowStrings({"x", "y", "z"});
  EXPECT_TRUE(table_.RowsEqual(other));
  other.WriteCell(0, 2, kNullValue);
  EXPECT_FALSE(table_.RowsEqual(other));
}

TEST_F(TableStorageTest, ClearKeepsSchemaAndPool) {
  table_.AppendRowStrings({"x", "y", "z"});
  table_.Clear();
  EXPECT_EQ(table_.num_rows(), 0u);
  table_.AppendRowStrings({"p", "q", "r"});
  EXPECT_EQ(table_.CellString(0, 0), "p");
}

// Satellite: CellString on a kNullValue cell must return a reference that
// can never dangle, whatever the table's lifetime.
TEST_F(TableStorageTest, NullCellStringIsEmptyAndOutlivesTheTable) {
  const std::string* empty = nullptr;
  {
    Table local(schema_, pool_);
    local.AppendRow({kNullValue, pool_->Intern("v"), kNullValue});
    empty = &local.CellString(0, 0);
    EXPECT_EQ(*empty, "");
    EXPECT_EQ(local.CellString(0, 2), "");
    EXPECT_EQ(local.CellString(0, 1), "v");
  }
  // The table is gone; the reference is to the process-lifetime empty
  // string, not into freed table state.
  EXPECT_EQ(*empty, "");
  Table another(schema_, pool_);
  another.AppendRow({kNullValue, kNullValue, kNullValue});
  // Every null cell of every table aliases the same static string.
  EXPECT_EQ(&another.CellString(0, 0), empty);
}

TEST_F(TableStorageTest, NullCellsRoundTripThroughCsvWrite) {
  table_.AppendRow({kNullValue, pool_->Intern("mid"), kNullValue});
  table_.AppendRowStrings({"u", "v", "w"});
  std::ostringstream out;
  WriteCsv(table_, out);
  EXPECT_EQ(out.str(), "a,b,c\n,mid,\nu,v,w\n");

  // Reading it back: the empty fields come back as the interned empty
  // string (a real value), rendering identically through CellString.
  std::istringstream in(out.str());
  const Table reread = ReadCsv(in, "R", pool_);
  ASSERT_EQ(reread.num_rows(), 2u);
  EXPECT_EQ(reread.CellString(0, 0), "");
  EXPECT_EQ(reread.CellString(0, 1), "mid");
  EXPECT_EQ(reread.CellString(0, 2), "");
  EXPECT_EQ(reread.cell(0, 0), pool_->Find(""));
  // And a second write is byte-identical to the first.
  std::ostringstream again;
  WriteCsv(reread, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ValuePoolReserveTest, ReserveDoesNotDisturbInterning) {
  ValuePool pool;
  const ValueId a = pool.Intern("before");
  pool.Reserve(100000);
  EXPECT_EQ(pool.Find("before"), a);
  const ValueId b = pool.Intern("after");
  EXPECT_EQ(pool.GetString(b), "after");
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace fixrep
