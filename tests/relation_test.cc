#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/active_domain.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value_pool.h"

namespace fixrep {
namespace {

TEST(ValuePoolTest, InternIsIdempotent) {
  ValuePool pool;
  const ValueId a = pool.Intern("Beijing");
  const ValueId b = pool.Intern("Shanghai");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("Beijing"), a);
  EXPECT_EQ(pool.Intern("Shanghai"), b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ValuePoolTest, GetStringRoundTrips) {
  ValuePool pool;
  const ValueId a = pool.Intern("China");
  EXPECT_EQ(pool.GetString(a), "China");
}

TEST(ValuePoolTest, FindWithoutIntern) {
  ValuePool pool;
  EXPECT_EQ(pool.Find("nope"), kNullValue);
  pool.Intern("yes");
  EXPECT_EQ(pool.Find("yes"), 0);
  EXPECT_EQ(pool.Find("nope"), kNullValue);
}

TEST(ValuePoolTest, EmptyStringIsAValue) {
  ValuePool pool;
  const ValueId empty = pool.Intern("");
  EXPECT_NE(empty, kNullValue);
  EXPECT_EQ(pool.GetString(empty), "");
}

TEST(ValuePoolTest, ManyValuesKeepStableStrings) {
  ValuePool pool;
  std::vector<ValueId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(pool.Intern("value_" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(pool.GetString(ids[i]), "value_" + std::to_string(i));
  }
  EXPECT_EQ(pool.size(), 10000u);
}

TEST(SchemaTest, AttributeLookup) {
  const Schema schema("Travel",
                      {"name", "country", "capital", "city", "conf"});
  EXPECT_EQ(schema.arity(), 5u);
  EXPECT_EQ(schema.name(), "Travel");
  EXPECT_EQ(schema.AttributeIndex("country"), 1);
  EXPECT_EQ(schema.attribute_name(2), "capital");
  EXPECT_EQ(schema.FindAttribute("nope"), kInvalidAttr);
  EXPECT_EQ(schema.FindAttribute("conf"), 4);
}

TEST(SchemaTest, Equality) {
  const Schema a("R", {"x", "y"});
  const Schema b("R", {"x", "y"});
  const Schema c("R", {"y", "x"});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaDeathTest, DuplicateAttributeAborts) {
  EXPECT_DEATH(Schema("R", {"x", "x"}), "duplicate attribute");
}

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "Travel", std::vector<std::string>{"name", "country", "capital",
                                               "city", "conf"})),
        table_(schema_, pool_) {}

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table table_;
};

TEST_F(TableTest, AppendAndReadBack) {
  table_.AppendRowStrings({"George", "China", "Beijing", "Beijing", "SIGMOD"});
  ASSERT_EQ(table_.num_rows(), 1u);
  EXPECT_EQ(table_.num_columns(), 5u);
  EXPECT_EQ(table_.CellString(0, 1), "China");
  EXPECT_EQ(table_.cell(0, 2), pool_->Find("Beijing"));
}

TEST_F(TableTest, SetCell) {
  table_.AppendRowStrings({"Ian", "China", "Shanghai", "Hongkong", "ICDE"});
  const ValueId beijing = pool_->Intern("Beijing");
  table_.WriteCell(0, 2, beijing);
  EXPECT_EQ(table_.CellString(0, 2), "Beijing");
}

TEST_F(TableTest, SharedPoolComparesAcrossTables) {
  table_.AppendRowStrings({"a", "b", "c", "d", "e"});
  Table other(schema_, pool_);
  other.AppendRowStrings({"a", "b", "c", "d", "e"});
  EXPECT_EQ(table_.row(0), other.row(0));
}

TEST_F(TableTest, FormatRow) {
  table_.AppendRowStrings({"Mike", "Canada", "Toronto", "Toronto", "ICDE"});
  EXPECT_EQ(table_.FormatRow(0), "(Mike, Canada, Toronto, Toronto, ICDE)");
}

TEST_F(TableTest, ArityMismatchAborts) {
  EXPECT_DEATH(table_.AppendRowStrings({"too", "few"}), "");
}

TEST(ActiveDomainTest, DistinctPerColumnInFirstSeenOrder) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a", "b"});
  Table table(schema, pool);
  table.AppendRowStrings({"x", "1"});
  table.AppendRowStrings({"y", "1"});
  table.AppendRowStrings({"x", "2"});
  const auto domains = ActiveDomains(table);
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0].size(), 2u);
  EXPECT_EQ(domains[1].size(), 2u);
  EXPECT_EQ(domains[0][0], pool->Find("x"));
  EXPECT_EQ(domains[0][1], pool->Find("y"));
}

TEST(ActiveDomainTest, SkipsNulls) {
  auto pool = std::make_shared<ValuePool>();
  auto schema =
      std::make_shared<Schema>("R", std::vector<std::string>{"a"});
  Table table(schema, pool);
  table.AppendRow({kNullValue});
  table.AppendRow({pool->Intern("v")});
  const auto domains = ActiveDomains(table);
  EXPECT_EQ(domains[0].size(), 1u);
}

}  // namespace
}  // namespace fixrep
