// Sharded repair (repair/sharded.h) and the acceptance matrix of the
// rule-dictionary refactor: repair output must be byte-identical between
// the in-RAM CompiledRuleIndex and the compiled on-disk dictionary
// across datasets (travel/hosp/uis) × engines (serial, memo-off,
// pooled, sharded) × error policies (abort/skip/quarantine) ×
// whole-table/stream/spill.

#include "repair/sharded.h"

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/quarantine.h"
#include "common/random.h"
#include "common/status.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "repair/lrepair.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"
#include "rules/rule_dict.h"
#include "rules/rule_io.h"
#include "rules/rule_set.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using ::fixrep::testing::RandomRuleUniverse;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "fixrep_sharded_" + name;
}

std::string ToCsv(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  for (size_t r = 0; r < want.num_rows(); ++r) {
    ASSERT_EQ(got.row(r), want.row(r)) << context << " row " << r;
  }
}

void ExpectSameDiagnostics(const std::vector<Diagnostic>& got,
                           const std::vector<Diagnostic>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << context << " #" << i;
  }
}

// ------------------------------------------------------ engine level --

TEST(ShardedRepair, ByteIdenticalToSerialAcrossShardCounts) {
  Rng rng(0x5a4d);
  for (int trial = 0; trial < 8; ++trial) {
    RandomRuleUniverse universe;
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(10);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }
    const CompiledRuleIndex index(&rules);

    Table base(universe.schema, universe.pool);
    for (int r = 0; r < 120; ++r) base.AppendRow(universe.RandomTuple(&rng));

    // Random universes can hold conflicting rules, so the reference runs
    // in lenient (skip) mode — every engine must agree anyway.
    Table expected = base;
    size_t expected_quarantined = 0;
    {
      const std::unique_ptr<RuleSourceHandle> handle = index.MakeHandle();
      FastRepairer serial(handle->source());
      for (size_t r = 0; r < expected.num_rows(); ++r) {
        size_t changed = 0;
        if (!serial.TryRepairTuple(expected.WriteRow(r), &changed).ok()) {
          ++expected_quarantined;
        }
      }
    }

    for (const size_t shards : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
      Table actual = base;
      ShardedRepairOptions options;
      options.shards = shards;
      options.on_error = OnErrorPolicy::kSkip;
      const ShardedRepairResult result =
          ShardedRepairTable(index, &actual, options);
      const std::string context =
          "trial " + std::to_string(trial) + " shards " +
          std::to_string(shards);
      ExpectSameRows(actual, expected, context);
      EXPECT_EQ(result.tuples_quarantined, expected_quarantined) << context;
      EXPECT_GE(result.shards_used, 1u) << context;
    }
  }
}

// Cascading fixture from the streaming quarantine suite: (name = flag)
// tuples need two chase pops, so max_chase_steps = 1 fails exactly them.
RuleSet CascadeRules(std::shared_ptr<const Schema> schema,
                     std::shared_ptr<ValuePool> pool) {
  const std::string text =
      "RULE\n"
      "  IF country = China\n"
      "  WRONG capital IN Shanghai | Hongkong\n"
      "  THEN capital = Beijing\n"
      "END\n"
      "RULE\n"
      "  IF name = flag\n"
      "  WRONG country IN Chn\n"
      "  THEN country = China\n"
      "END\n";
  return ParseRulesFromString(text, std::move(schema), std::move(pool));
}

TEST(ShardedRepair, LenientDiagnosticsAndWriteLogMatchSerial) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital", "name"});
  const RuleSet rules = CascadeRules(schema, pool);
  const CompiledRuleIndex index(&rules);

  Table base(schema, pool);
  for (int i = 0; i < 40; ++i) {
    base.AppendRowStrings({"China", "Shanghai", "x" + std::to_string(i)});
    base.AppendRowStrings({"Chn", "Hongkong", "flag"});
    base.AppendRowStrings({"France", "Paris", "y" + std::to_string(i)});
  }

  // Serial reference: per-tuple isolation with the same step budget,
  // write log captured row by row.
  Table expected = base;
  std::vector<Diagnostic> expected_diags;
  std::vector<CellRepair> expected_log;
  {
    const std::unique_ptr<RuleSourceHandle> handle = index.MakeHandle();
    FastRepairer serial(handle->source());
    serial.set_max_chase_steps(1);
    serial.set_write_log(&expected_log);
    for (size_t r = 0; r < expected.num_rows(); ++r) {
      size_t changed = 0;
      serial.set_write_log_row(r);
      const Status status =
          serial.TryRepairTuple(expected.WriteRow(r), &changed);
      if (!status.ok()) {
        expected_diags.push_back(Diagnostic{r, status.code(),
                                            status.message(),
                                            expected.FormatRow(r)});
      }
    }
  }
  ASSERT_FALSE(expected_diags.empty());
  ASSERT_FALSE(expected_log.empty());

  for (const size_t shards : {size_t{2}, size_t{3}, size_t{7}}) {
    Table actual = base;
    VectorQuarantineSink sink;
    std::vector<CellRepair> log;
    ShardedRepairOptions options;
    options.shards = shards;
    options.on_error = OnErrorPolicy::kQuarantine;
    options.quarantine = &sink;
    options.max_chase_steps = 1;
    options.write_log = &log;
    const ShardedRepairResult result =
        ShardedRepairTable(index, &actual, options);
    const std::string context = "shards " + std::to_string(shards);
    ExpectSameRows(actual, expected, context);
    EXPECT_EQ(result.tuples_quarantined, expected_diags.size()) << context;
    ExpectSameDiagnostics(sink.diagnostics(), expected_diags, context);
    ASSERT_EQ(log.size(), expected_log.size()) << context;
    for (size_t i = 0; i < expected_log.size(); ++i) {
      EXPECT_EQ(log[i].row, expected_log[i].row) << context << " #" << i;
      EXPECT_EQ(log[i].attr, expected_log[i].attr) << context << " #" << i;
      EXPECT_EQ(log[i].new_value, expected_log[i].new_value)
          << context << " #" << i;
      EXPECT_EQ(log[i].rule_index, expected_log[i].rule_index)
          << context << " #" << i;
    }
  }
}

TEST(ShardedRepair, DictionaryBackendMatchesIndexBackend) {
  Rng rng(0xd1c7);
  RandomRuleUniverse universe;
  RuleSet rules(universe.schema, universe.pool);
  for (size_t i = 0; i < 9; ++i) rules.Add(universe.RandomRule(&rng));
  const CompiledRuleIndex index(&rules);

  const std::string path = TestPath("engine_dict.frd");
  ASSERT_TRUE(CompileRuleDict(rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_TRUE((*dict)->Bind(*universe.schema, universe.pool).ok());

  Table base(universe.schema, universe.pool);
  for (int r = 0; r < 200; ++r) base.AppendRow(universe.RandomTuple(&rng));

  ShardedRepairOptions options;
  options.shards = 4;
  options.on_error = OnErrorPolicy::kSkip;

  Table via_index = base;
  Table via_dict = base;
  const ShardedRepairResult index_result =
      ShardedRepairTable(index, &via_index, options);
  const ShardedRepairResult dict_result =
      ShardedRepairTable(**dict, &via_dict, options);
  ExpectSameRows(via_dict, via_index, "dict vs index");
  EXPECT_EQ(dict_result.stats.cells_changed, index_result.stats.cells_changed);
  EXPECT_EQ(dict_result.stats.per_rule_applications,
            index_result.stats.per_rule_applications);
  EXPECT_EQ(dict_result.tuples_quarantined, index_result.tuples_quarantined);
}

// ----------------------------------------------------- session matrix --

struct Dataset {
  std::string name;
  std::shared_ptr<ValuePool> pool;
  std::shared_ptr<const Schema> schema;
  Table dirty;
  RuleSet rules;

  Dataset(std::string name_, std::shared_ptr<ValuePool> pool_,
          std::shared_ptr<const Schema> schema_, Table dirty_, RuleSet rules_)
      : name(std::move(name_)),
        pool(std::move(pool_)),
        schema(std::move(schema_)),
        dirty(std::move(dirty_)),
        rules(std::move(rules_)) {}
};

Dataset TravelDataset() {
  TravelExample example;
  return {"travel", example.pool, example.schema, example.dirty,
          std::move(example.rules)};
}

Dataset HospDataset() {
  HospOptions options;
  options.rows = 400;
  options.num_hospitals = 40;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 150;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return {"hosp", data.pool, data.schema, std::move(dirty), std::move(rules)};
}

Dataset UisDataset() {
  UisOptions options;
  options.rows = 300;
  options.duplicate_ratio = 0.4;
  options.num_zips = 30;
  GeneratedData data = GenerateUis(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 100;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return {"uis", data.pool, data.schema, std::move(dirty), std::move(rules)};
}

// One whole-table repair through the facade.
struct MatrixRun {
  Table table;
  RepairReport report;
  std::vector<Diagnostic> diagnostics;
};

MatrixRun RunMatrix(const Dataset& data, const std::string& dict_path,
                    size_t threads, size_t shards, bool use_memo,
                    OnErrorPolicy policy) {
  MatrixRun run{data.dirty, {}, {}};
  VectorQuarantineSink sink;
  RepairConfig config;
  config.threads = threads;
  config.shards = shards;
  config.use_memo = use_memo;
  config.on_error = policy;
  config.max_chase_steps = policy == OnErrorPolicy::kAbort ? 0 : 1;
  if (policy == OnErrorPolicy::kQuarantine) config.quarantine = &sink;
  config.rules_dict = dict_path;  // empty = in-RAM index backend
  RepairSession session(&data.rules, config);
  StatusOr<RepairReport> report = session.Repair(&run.table);
  EXPECT_TRUE(report.ok()) << report.status();
  if (report.ok()) run.report = report.value();
  run.diagnostics = sink.diagnostics();
  return run;
}

TEST(ShardedSessionMatrix, DictAndShardsByteIdenticalAcrossDatasets) {
  for (Dataset (*make)() : {TravelDataset, HospDataset, UisDataset}) {
    const Dataset data = make();
    ASSERT_GT(data.rules.size(), 0u) << data.name;
    const std::string dict_path = TestPath(data.name + "_matrix.frd");
    ASSERT_TRUE(CompileRuleDict(data.rules, dict_path).ok()) << data.name;

    for (const OnErrorPolicy policy :
         {OnErrorPolicy::kAbort, OnErrorPolicy::kSkip,
          OnErrorPolicy::kQuarantine}) {
      // Reference: serial, in-RAM index.
      const MatrixRun reference =
          RunMatrix(data, "", /*threads=*/1, /*shards=*/0, true, policy);

      for (const bool dict_backed : {false, true}) {
        const std::string dict = dict_backed ? dict_path : "";
        struct Mode {
          const char* tag;
          size_t threads;
          size_t shards;
          bool use_memo;
        };
        for (const Mode& mode :
             {Mode{"serial", 1, 0, true}, Mode{"memo_off", 1, 0, false},
              Mode{"pooled", 3, 0, true}, Mode{"sharded", 1, 3, true}}) {
          const std::string context =
              data.name + " " + OnErrorPolicyName(policy) + " " + mode.tag +
              (dict_backed ? " dict" : " index");
          const MatrixRun run = RunMatrix(data, dict, mode.threads,
                                          mode.shards, mode.use_memo, policy);
          ExpectSameRows(run.table, reference.table, context);
          EXPECT_EQ(run.report.cells_changed, reference.report.cells_changed)
              << context;
          EXPECT_EQ(run.report.tuples_quarantined,
                    reference.report.tuples_quarantined)
              << context;
          ExpectSameDiagnostics(run.diagnostics, reference.diagnostics,
                                context);
        }
      }
    }
  }
}

// One streaming run through the facade; output as a string for exact
// byte comparison.
std::string RunStreamMatrix(const Dataset& data, const std::string& dict_path,
                            size_t shards, size_t chunk_rows,
                            size_t memory_budget, OnErrorPolicy policy) {
  std::istringstream in(ToCsv(data.dirty));
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, "stream", data.pool, {});
  EXPECT_TRUE(reader.ok()) << reader.status();
  if (!reader.ok()) return {};
  VectorQuarantineSink sink;
  RepairConfig config;
  config.shards = shards;
  config.on_error = policy;
  config.max_chase_steps = policy == OnErrorPolicy::kAbort ? 0 : 1;
  if (policy == OnErrorPolicy::kQuarantine) config.quarantine = &sink;
  config.rules_dict = dict_path;
  config.chunk_rows = chunk_rows;
  config.memory_budget_bytes = memory_budget;
  RepairSession session(&data.rules, config);
  std::ostringstream out;
  StatusOr<RepairReport> report = session.RepairStream(&reader.value(), out);
  EXPECT_TRUE(report.ok()) << report.status();
  return out.str();
}

TEST(ShardedSessionMatrix, StreamAndSpillByteIdenticalAcrossBackends) {
  for (Dataset (*make)() : {TravelDataset, HospDataset, UisDataset}) {
    const Dataset data = make();
    ASSERT_GT(data.rules.size(), 0u) << data.name;
    const std::string dict_path = TestPath(data.name + "_stream.frd");
    ASSERT_TRUE(CompileRuleDict(data.rules, dict_path).ok()) << data.name;

    for (const OnErrorPolicy policy :
         {OnErrorPolicy::kAbort, OnErrorPolicy::kQuarantine}) {
      // Reference: serial whole-table repair, in-RAM index.
      const MatrixRun reference =
          RunMatrix(data, "", /*threads=*/1, /*shards=*/0, true, policy);
      const std::string want = ToCsv(reference.table);

      struct StreamMode {
        const char* tag;
        size_t shards;
        size_t chunk_rows;
        size_t memory_budget;
      };
      for (const StreamMode& mode :
           {StreamMode{"chunked", 0, 97, 0},
            StreamMode{"chunked_sharded", 3, 97, 0},
            StreamMode{"spill", 0, RepairConfig::kWholeFile, 16 * 1024},
            StreamMode{"spill_sharded", 3, RepairConfig::kWholeFile,
                       16 * 1024}}) {
        for (const bool dict_backed : {false, true}) {
          const std::string context =
              data.name + " " + OnErrorPolicyName(policy) + " " + mode.tag +
              (dict_backed ? " dict" : " index");
          const std::string got =
              RunStreamMatrix(data, dict_backed ? dict_path : "", mode.shards,
                              mode.chunk_rows, mode.memory_budget, policy);
          EXPECT_EQ(got, want) << context;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fixrep
