#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/profile.h"

namespace fixrep {
namespace {

TEST(ProfileTest, TravelRules) {
  TravelExample example;
  const RuleSetProfile profile = ProfileRules(example.rules);
  EXPECT_EQ(profile.num_rules, 4u);
  EXPECT_EQ(profile.total_size, example.rules.TotalSize());
  // Targets: capital x2 (phi_1, phi_2), country x1 (phi_3), city x1
  // (phi_4).
  EXPECT_EQ(profile.rules_per_target.at(2), 2u);
  EXPECT_EQ(profile.rules_per_target.at(1), 1u);
  EXPECT_EQ(profile.rules_per_target.at(3), 1u);
  // Evidence arities: 1, 1, 3, 2.
  EXPECT_EQ(profile.evidence_arity_histogram.at(1), 2u);
  EXPECT_EQ(profile.evidence_arity_histogram.at(2), 1u);
  EXPECT_EQ(profile.evidence_arity_histogram.at(3), 1u);
  // Negative patterns: 2, 1, 1, 1 -> max 2, mean 1.25.
  EXPECT_EQ(profile.max_negative_patterns, 2u);
  EXPECT_DOUBLE_EQ(profile.mean_negative_patterns, 1.25);
  EXPECT_EQ(profile.negative_pattern_histogram.at(1), 3u);
  EXPECT_EQ(profile.negative_pattern_histogram.at(2), 1u);
}

TEST(ProfileTest, EmptySet) {
  TravelExample example;
  RuleSet empty(example.schema, example.pool);
  const RuleSetProfile profile = ProfileRules(empty);
  EXPECT_EQ(profile.num_rules, 0u);
  EXPECT_EQ(profile.total_size, 0u);
  EXPECT_DOUBLE_EQ(profile.mean_negative_patterns, 0.0);
  EXPECT_TRUE(profile.rules_per_target.empty());
}

TEST(ProfileTest, FormatMentionsAttributeNames) {
  TravelExample example;
  const RuleSetProfile profile = ProfileRules(example.rules);
  const std::string text = profile.Format(*example.schema);
  EXPECT_NE(text.find("capital=2"), std::string::npos);
  EXPECT_NE(text.find("country=1"), std::string::npos);
  EXPECT_NE(text.find("size(Sigma)"), std::string::npos);
  EXPECT_NE(text.find("mean negatives: 1.25"), std::string::npos);
}

}  // namespace
}  // namespace fixrep
