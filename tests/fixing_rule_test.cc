#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/fixing_rule.h"
#include "rules/rule_set.h"

namespace fixrep {
namespace {

TEST(AttrSetTest, BasicOperations) {
  AttrSet s;
  EXPECT_TRUE(s.empty());
  s.Add(0);
  s.Add(5);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(1));
  AttrSet t = AttrSet::Of({1, 5});
  EXPECT_TRUE(s.Intersects(t));
  s.UnionWith(t);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(AttrSet().Intersects(s));
}

TEST(AttrSetTest, HighBits) {
  AttrSet s = AttrSet::Of({63});
  EXPECT_TRUE(s.Contains(63));
  EXPECT_FALSE(s.Contains(62));
}

class FixingRuleTest : public ::testing::Test {
 protected:
  TravelExample example_;
  const FixingRule& phi1() { return example_.rules.rule(0); }
  const FixingRule& phi2() { return example_.rules.rule(1); }
  const FixingRule& phi3() { return example_.rules.rule(2); }
  const FixingRule& phi4() { return example_.rules.rule(3); }
};

TEST_F(FixingRuleTest, MatchSemanticsExample3) {
  // r1 does not match phi_1: country is China but capital (Beijing) is
  // not a negative pattern.
  EXPECT_FALSE(phi1().Matches(example_.dirty.row(0)));
  // r2 matches phi_1.
  EXPECT_TRUE(phi1().Matches(example_.dirty.row(1)));
  // r4 matches phi_2.
  EXPECT_TRUE(phi2().Matches(example_.dirty.row(3)));
  EXPECT_FALSE(phi2().Matches(example_.dirty.row(0)));
  // r3 matches phi_3 (capital/city Tokyo, conf ICDE, country China).
  EXPECT_TRUE(phi3().Matches(example_.dirty.row(2)));
}

TEST_F(FixingRuleTest, ApplyUpdatesOnlyTarget) {
  Tuple r2 = example_.dirty.row(1).ToTuple();
  const Tuple before = r2;
  phi1().Apply(r2);
  EXPECT_EQ(r2[2], example_.pool->Find("Beijing"));
  for (size_t a = 0; a < r2.size(); ++a) {
    if (a != 2) EXPECT_EQ(r2[a], before[a]);
  }
}

TEST_F(FixingRuleTest, SizeCountsConstants) {
  EXPECT_EQ(phi1().size(), 1u + 2u + 1u);  // X + Tp + fact
  EXPECT_EQ(phi3().size(), 3u + 1u + 1u);
}

TEST_F(FixingRuleTest, EvidenceValueFor) {
  EXPECT_EQ(phi1().EvidenceValueFor(1), example_.pool->Find("China"));
  EXPECT_EQ(phi1().EvidenceValueFor(3), kNullValue);
  EXPECT_EQ(phi3().EvidenceValueFor(4), example_.pool->Find("ICDE"));
}

TEST_F(FixingRuleTest, AssuredSetIsEvidencePlusTarget) {
  const AttrSet assured = phi1().AssuredSet();
  EXPECT_TRUE(assured.Contains(1));  // country
  EXPECT_TRUE(assured.Contains(2));  // capital
  EXPECT_FALSE(assured.Contains(0));
}

TEST_F(FixingRuleTest, IsNegative) {
  EXPECT_TRUE(phi1().IsNegative(example_.pool->Find("Shanghai")));
  EXPECT_TRUE(phi1().IsNegative(example_.pool->Find("Hongkong")));
  EXPECT_FALSE(phi1().IsNegative(example_.pool->Find("Beijing")));
  EXPECT_FALSE(phi1().IsNegative(kNullValue));
}

TEST_F(FixingRuleTest, FormatIsReadable) {
  EXPECT_EQ(phi2().Format(*example_.schema, *example_.pool),
            "((country=Canada), (capital, {Toronto})) -> Ottawa");
}

TEST_F(FixingRuleTest, MakeRuleSortsEvidenceAndNegatives) {
  const FixingRule rule = MakeRule(
      *example_.schema, example_.pool.get(),
      {{"conf", "ICDE"}, {"capital", "Tokyo"}, {"city", "Tokyo"}}, "country",
      {"China"}, "Japan");
  EXPECT_EQ(rule.evidence_attrs, (std::vector<AttrId>{2, 3, 4}));
  EXPECT_TRUE(std::is_sorted(rule.negative_patterns.begin(),
                             rule.negative_patterns.end()));
  EXPECT_EQ(rule, phi3());
}

TEST_F(FixingRuleTest, MakeRuleDedupesNegatives) {
  const FixingRule rule =
      MakeRule(*example_.schema, example_.pool.get(), {{"country", "China"}},
               "capital", {"Shanghai", "Shanghai", "Hongkong"}, "Beijing");
  EXPECT_EQ(rule.negative_patterns.size(), 2u);
}

TEST_F(FixingRuleTest, EmptyEvidenceRuleMatchesOnNegativeAlone) {
  // A rule with empty X: "Hongkong is never a capital in this table".
  const FixingRule rule = MakeRule(*example_.schema, example_.pool.get(), {},
                                   "capital", {"Hongkong"}, "Beijing");
  Tuple t = example_.dirty.row(0).ToTuple();
  t[2] = example_.pool->Intern("Hongkong");
  EXPECT_TRUE(rule.Matches(t));
  t[2] = example_.pool->Find("Beijing");
  EXPECT_FALSE(rule.Matches(t));
}

TEST_F(FixingRuleTest, ValidateRejectsFactInNegatives) {
  EXPECT_DEATH(MakeRule(*example_.schema, example_.pool.get(),
                        {{"country", "China"}}, "capital",
                        {"Beijing", "Shanghai"}, "Beijing"),
               "fact");
}

TEST_F(FixingRuleTest, ValidateRejectsTargetInEvidence) {
  EXPECT_DEATH(MakeRule(*example_.schema, example_.pool.get(),
                        {{"capital", "Tokyo"}}, "capital", {"Shanghai"},
                        "Beijing"),
               "target");
}

TEST_F(FixingRuleTest, ValidateRejectsEmptyNegatives) {
  EXPECT_DEATH(MakeRule(*example_.schema, example_.pool.get(),
                        {{"country", "China"}}, "capital", {}, "Beijing"),
               "negative pattern");
}

TEST(RuleSetTest, AddRemovePrefix) {
  TravelExample example;
  RuleSet rules = example.rules;
  EXPECT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules.TotalSize(), example.rules.TotalSize());
  const RuleSet prefix = rules.Prefix(2);
  EXPECT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix.rule(0), example.rules.rule(0));
  rules.Remove({1, 3});
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.rule(0), example.rules.rule(0));
  EXPECT_EQ(rules.rule(1), example.rules.rule(2));
}

TEST(RuleSetTest, TotalSizeSumsRuleSizes) {
  TravelExample example;
  size_t expected = 0;
  for (const auto& rule : example.rules.rules()) expected += rule.size();
  EXPECT_EQ(example.rules.TotalSize(), expected);
}

}  // namespace
}  // namespace fixrep
