#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  TravelExample example_;
  size_t arity() const { return example_.schema->arity(); }

  FixingRule Rule(const std::vector<std::pair<std::string, std::string>>& ev,
                  const std::string& target,
                  const std::vector<std::string>& negatives,
                  const std::string& fact) {
    return MakeRule(*example_.schema, example_.pool.get(), ev, target,
                    negatives, fact);
  }
};

// --- Paper examples -------------------------------------------------------

TEST_F(ConsistencyTest, PaperRulesPhi1ToPhi4AreConsistent) {
  EXPECT_TRUE(IsConsistentChar(example_.rules));
  EXPECT_TRUE(IsConsistentEnum(example_.rules));
}

TEST_F(ConsistencyTest, Phi1PrimeConflictsWithPhi3) {
  // Example 8: phi_1' and phi_3 are inconsistent (tuple r3 has two fixes).
  const FixingRule phi1_prime = MakeTravelPhi1Prime(&example_);
  const FixingRule& phi3 = example_.rules.rule(2);
  Conflict conflict;
  EXPECT_FALSE(PairConsistentChar(phi1_prime, phi3, arity(), &conflict));
  EXPECT_EQ(conflict.kind, ConflictKind::kMutualTargetInEvidence);
  EXPECT_FALSE(PairConsistentEnum(phi1_prime, phi3, arity(), &conflict));
  EXPECT_EQ(conflict.kind, ConflictKind::kDivergentFix);
}

TEST_F(ConsistencyTest, Phi1PrimeConsistentWithPhi2) {
  // Example 10: phi_1' applies only to China tuples, phi_2 only to
  // Canada tuples — no tuple matches both (Lemma 4).
  const FixingRule phi1_prime = MakeTravelPhi1Prime(&example_);
  const FixingRule& phi2 = example_.rules.rule(1);
  EXPECT_TRUE(PairConsistentChar(phi1_prime, phi2, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(phi1_prime, phi2, arity(), nullptr));
}

TEST_F(ConsistencyTest, WholeSetWithPhi1PrimeIsInconsistent) {
  RuleSet rules = example_.rules;
  rules.Add(MakeTravelPhi1Prime(&example_));
  std::vector<Conflict> conflicts;
  EXPECT_FALSE(IsConsistentChar(rules, &conflicts, /*find_all=*/true));
  ASSERT_FALSE(conflicts.empty());
  EXPECT_FALSE(IsConsistentEnum(rules));
}

TEST_F(ConsistencyTest, EnumWitnessIsR3Like) {
  // The divergent tuple for (phi_1', phi_3) must carry China / Tokyo /
  // Tokyo / ICDE, i.e., the essence of tuple r3 from Fig. 1.
  const FixingRule phi1_prime = MakeTravelPhi1Prime(&example_);
  Conflict conflict;
  ASSERT_FALSE(PairConsistentEnum(phi1_prime, example_.rules.rule(2), arity(),
                                  &conflict));
  ASSERT_EQ(conflict.witness.size(), arity());
  EXPECT_EQ(conflict.witness[1], example_.pool->Find("China"));
  EXPECT_EQ(conflict.witness[2], example_.pool->Find("Tokyo"));
  EXPECT_EQ(conflict.witness[3], example_.pool->Find("Tokyo"));
  EXPECT_EQ(conflict.witness[4], example_.pool->Find("ICDE"));
}

// --- Case analysis of Fig. 4, one unit test per case ----------------------

TEST_F(ConsistencyTest, Case1SameTargetOverlapDifferentFacts) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"conf", "ICDE"}}, "capital", {"Shanghai"}, "Nanjing");
  Conflict conflict;
  EXPECT_FALSE(PairConsistentChar(a, b, arity(), &conflict));
  EXPECT_EQ(conflict.kind, ConflictKind::kSameTargetDivergentFacts);
  EXPECT_FALSE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case1SameFactsAreConsistent) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"conf", "ICDE"}}, "capital", {"Shanghai", "Tokyo"}, "Beijing");
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case1DisjointNegativesAreConsistent) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"conf", "ICDE"}}, "capital", {"Hongkong"}, "Nanjing");
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case2aTargetInOtherEvidence) {
  // a's target (capital) is evidence of b, and b's evidence value
  // (Shanghai) is one of a's negative patterns -> inconsistent.
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"capital", "Shanghai"}}, "city", {"Paris"}, "Shanghai");
  Conflict conflict;
  EXPECT_FALSE(PairConsistentChar(a, b, arity(), &conflict));
  EXPECT_EQ(conflict.kind, ConflictKind::kTargetInEvidenceIj);
  EXPECT_FALSE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case2aSafeWhenEvidenceValueNotNegative) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"capital", "Beijing"}}, "city", {"Paris"}, "Shanghai");
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case2bSymmetric) {
  const FixingRule a =
      Rule({{"capital", "Shanghai"}}, "city", {"Paris"}, "Shanghai");
  const FixingRule b =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  Conflict conflict;
  EXPECT_FALSE(PairConsistentChar(a, b, arity(), &conflict));
  EXPECT_EQ(conflict.kind, ConflictKind::kTargetInEvidenceJi);
  EXPECT_FALSE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case2cMutualNeedsBothConditions) {
  // Mutual layout, but only one of the two membership conditions holds:
  // consistent.
  const FixingRule a = Rule({{"capital", "Tokyo"}}, "country", {"China"},
                            "Japan");  // country target
  const FixingRule b = Rule({{"country", "Korea"}}, "capital", {"Tokyo"},
                            "Seoul");  // capital target
  // b's evidence country=Korea is NOT in a's negatives {China}; a's
  // evidence capital=Tokyo IS in b's negatives. Only one direction.
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, Case2dIndependentTargetsCommute) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"country", "China"}}, "city", {"Peking"}, "Shanghai");
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, IncompatibleEvidenceIsAlwaysConsistent) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const FixingRule b =
      Rule({{"country", "Canada"}}, "capital", {"Shanghai"}, "Ottawa");
  EXPECT_TRUE(PairConsistentChar(a, b, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, b, arity(), nullptr));
}

TEST_F(ConsistencyTest, DuplicateRulesAreConsistent) {
  const FixingRule a =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  EXPECT_TRUE(PairConsistentChar(a, a, arity(), nullptr));
  EXPECT_TRUE(PairConsistentEnum(a, a, arity(), nullptr));
}

TEST_F(ConsistencyTest, EmptySetAndSingletonAreConsistent) {
  RuleSet empty(example_.schema, example_.pool);
  EXPECT_TRUE(IsConsistentChar(empty));
  EXPECT_TRUE(IsConsistentEnum(empty));
  empty.Add(example_.rules.rule(0));
  EXPECT_TRUE(IsConsistentChar(empty));
  EXPECT_TRUE(IsConsistentEnum(empty));
}

TEST_F(ConsistencyTest, FindAllCollectsEveryConflict) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing"));
  rules.Add(Rule({{"conf", "ICDE"}}, "capital", {"Shanghai"}, "Nanjing"));
  rules.Add(Rule({{"city", "Tokyo"}}, "capital", {"Shanghai"}, "Seoul"));
  std::vector<Conflict> conflicts;
  EXPECT_FALSE(IsConsistentChar(rules, &conflicts, /*find_all=*/true));
  // All three pairs conflict pairwise (same target, shared negative,
  // three different facts).
  EXPECT_EQ(conflicts.size(), 3u);
}

TEST_F(ConsistencyTest, DescribeMentionsBothRules) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(MakeTravelPhi1Prime(&example_));
  rules.Add(example_.rules.rule(2));
  std::vector<Conflict> conflicts;
  ASSERT_FALSE(IsConsistentChar(rules, &conflicts));
  const std::string description = conflicts[0].Describe(rules);
  EXPECT_NE(description.find("rule #0"), std::string::npos);
  EXPECT_NE(description.find("rule #1"), std::string::npos);
  EXPECT_NE(description.find("China"), std::string::npos);
}

TEST_F(ConsistencyTest, CharWitnessHasDivergentFixes) {
  // The witness built by the characterization checker must itself chase
  // to two different fixpoints.
  const FixingRule phi1_prime = MakeTravelPhi1Prime(&example_);
  const FixingRule& phi3 = example_.rules.rule(2);
  Conflict conflict;
  ASSERT_FALSE(PairConsistentChar(phi1_prime, phi3, arity(), &conflict));
  ASSERT_EQ(conflict.witness.size(), arity());
  Tuple ab = conflict.witness;
  Tuple ba = conflict.witness;
  ChaseWithPriority({&phi1_prime, &phi3}, &ab);
  ChaseWithPriority({&phi3, &phi1_prime}, &ba);
  EXPECT_NE(ab, ba);
}

// --- Proposition 3 counterexample (found by randomized testing) --------
//
// The paper claims (Prop. 3) that pairwise consistency implies set
// consistency. The three rules below are pairwise consistent under the
// Fig. 4 characterization, yet the tuple (a0v2, _, a2v0, a3v3) has two
// distinct fixes: rules #0 and #1 write the SAME fact to a0, but #1's
// evidence includes a2, so firing #1 first assures a2 and blocks #2,
// while firing #0 first leaves a2 free for #2 to rewrite. The strict
// checker flags the (#0, #1) pair.
TEST(Proposition3Test, PairwiseConsistentSetCanStillDiverge) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a0", "a1", "a2", "a3"});
  RuleSet rules(schema, pool);
  rules.Add(MakeRule(*schema, pool.get(), {{"a3", "y"}}, "a0", {"bad"},
                     "fixed"));
  rules.Add(MakeRule(*schema, pool.get(), {{"a2", "x"}, {"a3", "y"}}, "a0",
                     {"bad"}, "fixed"));
  rules.Add(MakeRule(*schema, pool.get(), {{"a0", "fixed"}}, "a2", {"x"},
                     "z"));
  // Pairwise consistent per the paper's characterization and per tuple
  // enumeration...
  EXPECT_TRUE(IsConsistentChar(rules));
  EXPECT_TRUE(IsConsistentEnum(rules));
  // ...but the set diverges on this tuple:
  Tuple t(schema->arity(), kNullValue);
  t[0] = pool->Intern("bad");
  t[2] = pool->Intern("x");
  t[3] = pool->Intern("y");
  Tuple via_rule0 = t;
  ChaseWithPriority({&rules.rule(0), &rules.rule(1), &rules.rule(2)},
                    &via_rule0);
  Tuple via_rule1 = t;
  ChaseWithPriority({&rules.rule(1), &rules.rule(0), &rules.rule(2)},
                    &via_rule1);
  EXPECT_NE(via_rule0, via_rule1) << "expected the Prop. 3 counterexample";
  // The strict checker catches the dangerous pair.
  std::vector<Conflict> conflicts;
  EXPECT_FALSE(IsConsistentStrict(rules, &conflicts));
  ASSERT_FALSE(conflicts.empty());
  EXPECT_EQ(conflicts[0].kind, ConflictKind::kSameTargetDivergentAssured);
}

TEST(Proposition3Test, StrictCheckerAcceptsIdenticalEvidenceTwins) {
  // Same target, same fact, same evidence pattern: firing order is
  // immaterial, so strict mode must NOT flag it.
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a0", "a1"});
  RuleSet rules(schema, pool);
  rules.Add(MakeRule(*schema, pool.get(), {{"a1", "y"}}, "a0", {"bad"},
                     "fixed"));
  rules.Add(MakeRule(*schema, pool.get(), {{"a1", "y"}}, "a0",
                     {"bad", "worse"}, "fixed"));
  EXPECT_TRUE(IsConsistentStrict(rules));
}

TEST_F(ConsistencyTest, PaperRulesAreAlsoStrictlyConsistent) {
  EXPECT_TRUE(IsConsistentStrict(example_.rules));
}

TEST_F(ConsistencyTest, ChaseReachesFixpoint) {
  // r2 chased with all four rules ends as the clean r2 (Fig. 8).
  std::vector<const FixingRule*> priority;
  for (const auto& rule : example_.rules.rules()) priority.push_back(&rule);
  Tuple r2 = example_.dirty.row(1).ToTuple();
  ChaseWithPriority(priority, &r2);
  EXPECT_EQ(r2, example_.clean.row(1));
}

}  // namespace
}  // namespace fixrep
