// Live run telemetry (common/telemetry.h, common/metrics_server.h): the
// JSONL event journal, the heartbeat sampler thread (run under TSan via
// the observability label), Prometheus text exposition, and the scrape
// endpoint. The golden-journal test replays a small travel streaming
// run and checks the stable fields only — event types, field presence,
// and monotonicity — never timings.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/metrics_server.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "datagen/travel.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "repair/lrepair.h"
#include "repair/session.h"
#include "testing_util.h"

namespace fixrep {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool HasField(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

// Parses the integer value of `key`, EXPECTing it to be present.
uint64_t FieldUint(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

bool IsEvent(const std::string& line, const std::string& type) {
  return line.find("{\"event\":\"" + type + "\"") == 0;
}

// ---------------------------------------------------------------------
// TelemetryEvent / TelemetryJournal.

TEST(TelemetryEventTest, RendersFieldsInInsertionOrder) {
  TelemetryEvent event("unit");
  event.Set("n", uint64_t{7})
      .Set("signed", int64_t{-3})
      .Set("rate", 1.5)
      .SetString("path", "a\"b");
  const std::string line = event.ToJsonLine(12);
  EXPECT_EQ(line,
            "{\"event\":\"unit\",\"t_ms\":12,\"n\":7,\"signed\":-3,"
            "\"rate\":1.500,\"path\":\"a\\\"b\"}");
  EXPECT_TRUE(testing::JsonChecker::IsValid(line));
}

TEST(TelemetryJournalTest, OpensWithVersionedHeaderAndAppends) {
  std::ostringstream sink;
  {
    TelemetryJournal journal(&sink);
    journal.Append(TelemetryEvent("ping").Set("n", uint64_t{1}));
    journal.Append(TelemetryEvent("ping").Set("n", uint64_t{2}));
  }
  const std::vector<std::string> lines = Lines(sink.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(IsEvent(lines[0], "journal_open"));
  EXPECT_EQ(FieldUint(lines[0], "version"), 1u);
  EXPECT_TRUE(IsEvent(lines[1], "ping"));
  EXPECT_EQ(FieldUint(lines[2], "n"), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(testing::JsonChecker::IsValid(line)) << line;
  }
  // t_ms never runs backwards.
  EXPECT_LE(FieldUint(lines[1], "t_ms"), FieldUint(lines[2], "t_ms"));
}

TEST(TelemetryJournalTest, OpenRejectsUnwritablePath) {
  const auto journal = TelemetryJournal::Open("/nonexistent-dir/t.jsonl");
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kIoError);
}

TEST(TelemetryJournalTest, GlobalSlotInstallsAndClears) {
  EXPECT_EQ(GetGlobalJournal(), nullptr);
  std::ostringstream sink;
  {
    TelemetryJournal journal(&sink);
    SetGlobalJournal(&journal);
    EXPECT_EQ(GetGlobalJournal(), &journal);
    SetGlobalJournal(nullptr);  // must clear before destruction
  }
  EXPECT_EQ(GetGlobalJournal(), nullptr);
}

TEST(TelemetryTest, PeakRssIsNonzeroOnLinux) {
  EXPECT_GT(TelemetryPeakRssBytes(), 0u);
}

// ---------------------------------------------------------------------
// HeartbeatSampler. The observability CTest label runs this suite under
// TSan, which is the real assertion on the sampler thread.

TEST(HeartbeatSamplerTest, StopEmitsFinalSampleWithRegistryState) {
  MetricsRegistry registry;
  registry.GetCounter("fixrep.progress.rows")->Add(42);
  registry.GetGauge("fixrep.progress.chunk")->Set(3);
  registry.GetGauge("fixrep.progress.resident_bytes")->Set(1 << 20);
  registry.GetGauge("fixrep.progress.budget_bytes")->Set(4 << 20);

  std::ostringstream sink;
  TelemetryJournal journal(&sink);
  HeartbeatOptions options;
  options.interval_ms = 60 * 1000;  // never fires on its own in-test
  options.registry = &registry;
  options.journal = &journal;
  HeartbeatSampler sampler(options);
  sampler.Start();
  EXPECT_EQ(sampler.running(), kMetricsEnabled);
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  if (!kMetricsEnabled) return;  // nothing sampled when compiled out
  const std::vector<std::string> lines = Lines(sink.str());
  ASSERT_GE(lines.size(), 2u);  // journal_open + the final heartbeat
  const std::string& beat = lines.back();
  ASSERT_TRUE(IsEvent(beat, "heartbeat")) << beat;
  EXPECT_TRUE(testing::JsonChecker::IsValid(beat));
  EXPECT_EQ(FieldUint(beat, "final"), 1u);
  EXPECT_EQ(FieldUint(beat, "rows"), 42u);
  EXPECT_EQ(FieldUint(beat, "chunk"), 3u);
  EXPECT_EQ(FieldUint(beat, "budget_bytes"), uint64_t{4} << 20);
  EXPECT_GT(FieldUint(beat, "rss_peak_bytes"), 0u);
  // The counter moved since the (virtual) previous sample, so its delta
  // is journaled under the d. namespace.
  EXPECT_EQ(FieldUint(beat, "d.fixrep.progress.rows"), 42u);
}

TEST(HeartbeatSamplerTest, ProgressLineRendersRowsAndResidency) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry registry;
  registry.GetCounter("fixrep.progress.rows")->Add(1234);
  registry.GetGauge("fixrep.progress.chunk")->Set(2);
  registry.GetGauge("fixrep.progress.resident_bytes")->Set(1 << 20);
  registry.GetGauge("fixrep.progress.budget_bytes")->Set(8 << 20);

  std::ostringstream progress;
  HeartbeatOptions options;
  options.interval_ms = 60 * 1000;
  options.registry = &registry;
  options.progress = true;
  options.progress_out = &progress;
  HeartbeatSampler sampler(options);
  sampler.Start();
  sampler.Stop();

  const std::string line = progress.str();
  EXPECT_NE(line.find("[fixrep]"), std::string::npos) << line;
  EXPECT_NE(line.find("chunk 2"), std::string::npos) << line;
  EXPECT_NE(line.find("rows 1234"), std::string::npos) << line;
  EXPECT_NE(line.find("resident 1.0/8.0 MB"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');  // the final sample closes the line
}

TEST(HeartbeatSamplerTest, PeriodicSamplingRunsConcurrentlyWithUpdates) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // Tight interval + live counter traffic: the interesting part is the
  // TSan pass over sampler-vs-mutator accesses.
  MetricsRegistry registry;
  Counter* rows = registry.GetCounter("fixrep.progress.rows");
  std::ostringstream sink;
  TelemetryJournal journal(&sink);
  HeartbeatOptions options;
  options.interval_ms = 1;
  options.registry = &registry;
  options.journal = &journal;
  HeartbeatSampler sampler(options);
  sampler.Start();
  for (int i = 0; i < 50000; ++i) rows->Add(1);
  sampler.Stop();

  const std::vector<std::string> lines = Lines(sink.str());
  ASSERT_GE(lines.size(), 2u);
  uint64_t last_rows = 0;
  uint64_t heartbeats = 0;
  for (const std::string& line : lines) {
    if (!IsEvent(line, "heartbeat")) continue;
    ++heartbeats;
    const uint64_t sampled = FieldUint(line, "rows");
    EXPECT_GE(sampled, last_rows) << "rows ran backwards: " << line;
    last_rows = sampled;
  }
  EXPECT_GE(heartbeats, 1u);
  EXPECT_EQ(last_rows, 50000u);  // the final sample sees every row
}

// ---------------------------------------------------------------------
// Golden journal: a travel streaming run journals chunk events whose
// stable fields replay into the per-chunk rows curve.

TEST(TelemetryJournalTest, GoldenTravelStreamRun) {
  TravelExample example;
  std::ostringstream dirty_csv;
  WriteCsv(example.dirty, dirty_csv);

  std::ostringstream sink;
  std::ostringstream repaired;
  StatusOr<RepairReport> report = Status::Internal("not run");
  {
    TelemetryJournal journal(&sink);
    SetGlobalJournal(&journal);
    std::istringstream in(dirty_csv.str());
    StatusOr<CsvChunkReader> reader =
        CsvChunkReader::Open(in, "travel", example.pool);
    ASSERT_TRUE(reader.ok());
    RepairConfig config;
    config.chunk_rows = 2;
    RepairSession session(&example.rules, config);
    report = session.RepairStream(&reader.value(), repaired);
    SetGlobalJournal(nullptr);
  }
  ASSERT_TRUE(report.ok()) << report.status().message();

  // Telemetry must not perturb the repair itself.
  Table want = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&want);
  std::ostringstream want_csv;
  WriteCsv(want, want_csv);
  EXPECT_EQ(repaired.str(), want_csv.str());

  const std::vector<std::string> lines = Lines(sink.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(IsEvent(lines[0], "journal_open"));

  size_t chunk_events = 0;
  size_t span_opens = 0;
  size_t span_closes = 0;
  uint64_t last_rows_total = 0;
  uint64_t last_t_ms = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(testing::JsonChecker::IsValid(line)) << line;
    const uint64_t t_ms = FieldUint(line, "t_ms");
    EXPECT_GE(t_ms, last_t_ms) << "t_ms ran backwards: " << line;
    last_t_ms = t_ms;
    if (IsEvent(line, "span_open")) ++span_opens;
    if (IsEvent(line, "span_close")) {
      ++span_closes;
      EXPECT_TRUE(HasField(line, "duration_ns")) << line;
    }
    if (!IsEvent(line, "chunk")) continue;
    ++chunk_events;
    // Stable fields only: presence and monotonicity, never timings.
    for (const char* key :
         {"index", "rows", "rows_total", "cells_changed_total",
          "duration_ns", "resident_bytes", "peak_resident_bytes"}) {
      EXPECT_TRUE(HasField(line, key)) << key << " missing in: " << line;
    }
    EXPECT_EQ(FieldUint(line, "index"), chunk_events);
    const uint64_t rows_total = FieldUint(line, "rows_total");
    EXPECT_GT(rows_total, last_rows_total);  // every chunk emits rows here
    last_rows_total = rows_total;
  }
  EXPECT_EQ(chunk_events, report->chunks);
  EXPECT_EQ(last_rows_total, report->rows);
  // Spans balance: whatever opened inside the journaled window closed.
  EXPECT_EQ(span_opens, span_closes);
  EXPECT_GT(span_opens, 0u);  // the streaming run opens at least one span
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(ExportPrometheusTest, RendersEveryKindAndSkipsRejectedNames) {
  MetricsRegistry registry;
  registry.GetCounter("fixrep.test.requests")->Add(3);
  registry.GetGauge("fixrep.test.depth")->Set(-2);
  Histogram* latency = registry.GetHistogram("fixrep.test.latency_ns", "ns");
  latency->Observe(100);
  latency->Observe(200);
  registry.GetCounterVector("fixrep.test.per_rule")->AddAll({5, 0, 7});
  registry.GetCounter("bad name")->Add(9);  // hidden from exposition

  std::ostringstream out;
  ExportPrometheus(out, registry);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE fixrep_test_requests counter\n"
                      "fixrep_test_requests 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE fixrep_test_depth gauge\n"
                      "fixrep_test_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fixrep_test_per_rule{index=\"0\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("fixrep_test_per_rule{index=\"2\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT fixrep_test_latency_ns ns"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fixrep_test_latency_ns histogram"),
            std::string::npos);
  // 100 lands in [64,128), 200 in [128,256): cumulative le buckets.
  EXPECT_NE(text.find("fixrep_test_latency_ns_bucket{le=\"128\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_bucket{le=\"256\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_sum 300"), std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_p50 "), std::string::npos);
  EXPECT_NE(text.find("fixrep_test_latency_ns_p99 "), std::string::npos);
  // The rejected name is absent but tallied.
  EXPECT_EQ(text.find("bad"), std::string::npos);
  EXPECT_NE(text.find("# fixrep: 1 metric(s) hidden"), std::string::npos);
}

// ---------------------------------------------------------------------
// Scrape endpoint.

std::string ReadAll(int fd) {
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

std::string TcpRequest(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)),
            0)
      << std::strerror(errno);
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const std::string response = ReadAll(fd);
  close(fd);
  return response;
}

std::string UnixRequest(const std::string& path, const std::string& request) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)),
            0)
      << path << ": " << std::strerror(errno);
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const std::string response = ReadAll(fd);
  close(fd);
  return response;
}

TEST(MetricsServerTest, RequiresExactlyOneListener) {
  MetricsServerOptions neither;
  EXPECT_EQ(MetricsServer::Start(neither).status().code(),
            StatusCode::kMalformedInput);
  MetricsServerOptions both;
  both.unix_socket_path = "/tmp/fixrep-test.sock";
  both.tcp_port = 0;
  EXPECT_EQ(MetricsServer::Start(both).status().code(),
            StatusCode::kMalformedInput);
}

TEST(MetricsServerTest, ServesMetricsOverEphemeralTcpPort) {
  MetricsRegistry registry;
  registry.GetCounter("fixrep.test.scrapes")->Add(11);

  MetricsServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.registry = &registry;
  StatusOr<std::unique_ptr<MetricsServer>> server =
      MetricsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_GT((*server)->port(), 0);

  const std::string response =
      TcpRequest((*server)->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("fixrep_test_scrapes 11"), std::string::npos);

  // Scrapes observe live updates, one connection after another.
  registry.GetCounter("fixrep.test.scrapes")->Add(1);
  const std::string second =
      TcpRequest((*server)->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(second.find("fixrep_test_scrapes 12"), std::string::npos);

  const std::string not_found =
      TcpRequest((*server)->port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_NE(not_found.find("404 Not Found"), std::string::npos);

  (*server)->Stop();
}

TEST(MetricsServerTest, ServesMetricsOverUnixSocket) {
  MetricsRegistry registry;
  registry.GetCounter("fixrep.test.scrapes")->Add(7);

  const std::string path = ::testing::TempDir() + "fixrep-metrics-test.sock";
  MetricsServerOptions options;
  options.unix_socket_path = path;
  options.registry = &registry;
  StatusOr<std::unique_ptr<MetricsServer>> server =
      MetricsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  const std::string response =
      UnixRequest(path, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("fixrep_test_scrapes 7"), std::string::npos);

  server->reset();  // destructor stops the thread and unlinks the socket
  EXPECT_NE(access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace fixrep
