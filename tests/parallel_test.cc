#include <gtest/gtest.h>

#include "common/metrics.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "rulegen/rulegen.h"

namespace fixrep {
namespace {

TEST(ParallelRepairTest, MatchesSerialOnTravelExample) {
  TravelExample example;
  Table serial = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&serial);
  for (const size_t threads : {1u, 2u, 4u, 16u}) {
    Table parallel = example.dirty;
    const RepairStats stats =
        ParallelRepairTable(example.rules, &parallel, threads);
    for (size_t r = 0; r < serial.num_rows(); ++r) {
      EXPECT_EQ(parallel.row(r), serial.row(r)) << "threads " << threads;
    }
    EXPECT_EQ(stats.cells_changed, repairer.stats().cells_changed);
  }
}

TEST(ParallelRepairTest, MatchesSerialOnGeneratedData) {
  HospOptions options;
  options.rows = 8000;
  options.num_hospitals = 300;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 400;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);

  Table serial = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&serial);

  Table parallel = dirty;
  const RepairStats stats = ParallelRepairTable(rules, &parallel, 4);
  for (size_t r = 0; r < serial.num_rows(); ++r) {
    ASSERT_EQ(parallel.row(r), serial.row(r)) << "row " << r;
  }
  EXPECT_EQ(stats.tuples_examined, dirty.num_rows());
  EXPECT_EQ(stats.cells_changed, repairer.stats().cells_changed);
  EXPECT_EQ(stats.per_rule_applications,
            repairer.stats().per_rule_applications);
}

TEST(ParallelRepairTest, MoreThreadsThanRows) {
  TravelExample example;
  Table table = example.dirty;
  const RepairStats stats = ParallelRepairTable(example.rules, &table, 64);
  EXPECT_EQ(stats.tuples_examined, 4u);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r), example.clean.row(r));
  }
}

TEST(ParallelRepairTest, RegistryCountsMatchSerialBaseline) {
  // Metrics published by the sharded parallel run (worker stats merged
  // after the join) must agree with a single-threaded FastRepairer run.
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
  }
  HospOptions options;
  options.rows = 4000;
  options.num_hospitals = 200;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 200;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);

  Table serial = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&serial);
  const RepairStats baseline = repairer.stats();

  auto& registry = MetricsRegistry::Global();
  registry.ResetAllForTest();
  Table parallel = dirty;
  ParallelRepairTable(rules, &parallel, 4);

  const auto counter = [&](const char* name) {
    const Counter* c =
        registry.FindCounter(std::string("fixrep.lrepair.") + name);
    return c == nullptr ? uint64_t{0} : c->Value();
  };
  EXPECT_EQ(counter("tuples_examined"), baseline.tuples_examined);
  EXPECT_EQ(counter("tuples_changed"), baseline.tuples_changed);
  EXPECT_EQ(counter("cells_changed"), baseline.cells_changed);
  EXPECT_EQ(counter("rule_applications"), baseline.rule_applications);

  const CounterVector* per_rule =
      registry.FindCounterVector("fixrep.lrepair.per_rule_applications");
  ASSERT_NE(per_rule, nullptr);
  const std::vector<uint64_t> registry_counts = per_rule->Values();
  ASSERT_EQ(registry_counts.size(), baseline.per_rule_applications.size());
  for (size_t i = 0; i < registry_counts.size(); ++i) {
    EXPECT_EQ(registry_counts[i], baseline.per_rule_applications[i])
        << "rule " << i;
  }
}

TEST(ParallelRepairTest, PooledAndMemoizedConfigsMatchSerial) {
  // Every engine configuration — shared index, pooled workers, memo on
  // or off — must be bit-identical to the plain serial chase.
  HospOptions options;
  options.rows = 6000;
  options.num_hospitals = 250;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 300;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);

  Table serial = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&serial);

  const CompiledRuleIndex index(&rules);
  for (const bool use_memo : {false, true}) {
    for (const size_t threads : {2u, 4u, 16u}) {
      Table parallel = dirty;
      ParallelRepairOptions parallel_options;
      parallel_options.threads = threads;
      parallel_options.use_memo = use_memo;
      const RepairStats stats =
          ParallelRepairTable(index, &parallel, parallel_options);
      for (size_t r = 0; r < serial.num_rows(); ++r) {
        ASSERT_EQ(parallel.row(r), serial.row(r))
            << "row " << r << " threads " << threads << " memo "
            << use_memo;
      }
      EXPECT_EQ(stats.tuples_examined, repairer.stats().tuples_examined);
      EXPECT_EQ(stats.cells_changed, repairer.stats().cells_changed);
      EXPECT_EQ(stats.per_rule_applications,
                repairer.stats().per_rule_applications);
    }
  }
}

TEST(ParallelRepairTest, IndexBuiltOncePerRuleSetNotPerWorkerOrCall) {
  // Regression guard for the old design, which rebuilt the inverted
  // index once per worker per ParallelRepairTable call: with a shared
  // CompiledRuleIndex, fixrep.lrepair.index_builds ticks exactly once
  // per rule set no matter how many workers or repair calls follow.
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
  }
  TravelExample example;
  auto& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter("fixrep.lrepair.index_builds")->Value();
  const CompiledRuleIndex index(&example.rules);
  for (int call = 0; call < 3; ++call) {
    Table table = example.dirty;
    ParallelRepairOptions options;
    options.threads = 4;
    ParallelRepairTable(index, &table, options);
  }
  EXPECT_EQ(registry.GetCounter("fixrep.lrepair.index_builds")->Value(),
            before + 1);
}

TEST(ParallelRepairTest, EmptyTable) {
  TravelExample example;
  Table empty(example.schema, example.pool);
  const RepairStats stats = ParallelRepairTable(example.rules, &empty, 4);
  EXPECT_EQ(stats.tuples_examined, 0u);
  EXPECT_EQ(stats.cells_changed, 0u);
}

TEST(ParallelRepairTest, DefaultThreadCount) {
  TravelExample example;
  Table table = example.dirty;
  ParallelRepairTable(example.rules, &table);  // threads = 0 -> hardware
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r), example.clean.row(r));
  }
}

}  // namespace
}  // namespace fixrep
