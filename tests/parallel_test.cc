#include <gtest/gtest.h>

#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "rulegen/rulegen.h"

namespace fixrep {
namespace {

TEST(ParallelRepairTest, MatchesSerialOnTravelExample) {
  TravelExample example;
  Table serial = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&serial);
  for (const size_t threads : {1u, 2u, 4u, 16u}) {
    Table parallel = example.dirty;
    const RepairStats stats =
        ParallelRepairTable(example.rules, &parallel, threads);
    for (size_t r = 0; r < serial.num_rows(); ++r) {
      EXPECT_EQ(parallel.row(r), serial.row(r)) << "threads " << threads;
    }
    EXPECT_EQ(stats.cells_changed, repairer.stats().cells_changed);
  }
}

TEST(ParallelRepairTest, MatchesSerialOnGeneratedData) {
  HospOptions options;
  options.rows = 8000;
  options.num_hospitals = 300;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 400;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);

  Table serial = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&serial);

  Table parallel = dirty;
  const RepairStats stats = ParallelRepairTable(rules, &parallel, 4);
  for (size_t r = 0; r < serial.num_rows(); ++r) {
    ASSERT_EQ(parallel.row(r), serial.row(r)) << "row " << r;
  }
  EXPECT_EQ(stats.tuples_examined, dirty.num_rows());
  EXPECT_EQ(stats.cells_changed, repairer.stats().cells_changed);
  EXPECT_EQ(stats.per_rule_applications,
            repairer.stats().per_rule_applications);
}

TEST(ParallelRepairTest, MoreThreadsThanRows) {
  TravelExample example;
  Table table = example.dirty;
  const RepairStats stats = ParallelRepairTable(example.rules, &table, 64);
  EXPECT_EQ(stats.tuples_examined, 4u);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r), example.clean.row(r));
  }
}

TEST(ParallelRepairTest, EmptyTable) {
  TravelExample example;
  Table empty(example.schema, example.pool);
  const RepairStats stats = ParallelRepairTable(example.rules, &empty, 4);
  EXPECT_EQ(stats.tuples_examined, 0u);
  EXPECT_EQ(stats.cells_changed, 0u);
}

TEST(ParallelRepairTest, DefaultThreadCount) {
  TravelExample example;
  Table table = example.dirty;
  ParallelRepairTable(example.rules, &table);  // threads = 0 -> hardware
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r), example.clean.row(r));
  }
}

}  // namespace
}  // namespace fixrep
