#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/travel.h"
#include "repair/lrepair.h"
#include "repair/memo_cache.h"
#include "repair/parallel.h"
#include "testing_util.h"

namespace fixrep {
namespace {

// A random table over the universe's value space, duplicate-prone: rows
// are drawn from a small set of distinct tuples so the memo actually
// hits.
Table RandomTable(testing::RandomRuleUniverse* universe, Rng* rng,
                  size_t rows, size_t distinct) {
  Table table(universe->schema, universe->pool);
  std::vector<Tuple> shapes;
  for (size_t d = 0; d < distinct; ++d) {
    Tuple t;
    for (AttrId a = 0; a < static_cast<AttrId>(universe->schema->arity());
         ++a) {
      t.push_back(universe->Value(
          a, static_cast<int>(rng->Uniform(universe->values_per_attribute))));
    }
    shapes.push_back(std::move(t));
  }
  for (size_t r = 0; r < rows; ++r) {
    table.AppendRow(shapes[rng->Uniform(shapes.size())]);
  }
  return table;
}

void ExpectTablesEqual(const Table& a, const Table& b, const char* label) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.row(r), b.row(r)) << label << " row " << r;
  }
}

TEST(MemoCacheTest, ReplayMatchesChaseOnTravelExample) {
  TravelExample example;
  Table plain = example.dirty;
  FastRepairer baseline(&example.rules);
  baseline.RepairTable(&plain);

  Table memoized = example.dirty;
  // Repair the table twice over so the second pass is all memo hits.
  for (size_t copy = 0; copy < 2; ++copy) {
    Table round = example.dirty;
    FastRepairer repairer(&example.rules);
    MemoCache memo;
    repairer.set_memo(&memo);
    repairer.RepairTable(&round);
    memoized = round;
  }
  ExpectTablesEqual(memoized, plain, "travel");
}

TEST(MemoCacheTest, FuzzedTablesBitIdenticalSerial) {
  Rng rng(0x5eed);
  for (int round = 0; round < 15; ++round) {
    testing::RandomRuleUniverse universe;
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(40);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }
    const Table dirty =
        RandomTable(&universe, &rng, 200, 1 + rng.Uniform(30));

    Table plain = dirty;
    FastRepairer baseline(&rules);
    baseline.RepairTable(&plain);

    Table memoized = dirty;
    FastRepairer repairer(&rules);
    MemoCache memo;
    repairer.set_memo(&memo);
    repairer.RepairTable(&memoized);

    ExpectTablesEqual(memoized, plain, "fuzz");
    // Outcome stats replay exactly; only chase internals may differ.
    EXPECT_EQ(repairer.stats().tuples_examined,
              baseline.stats().tuples_examined);
    EXPECT_EQ(repairer.stats().tuples_changed,
              baseline.stats().tuples_changed);
    EXPECT_EQ(repairer.stats().cells_changed,
              baseline.stats().cells_changed);
    EXPECT_EQ(repairer.stats().rule_applications,
              baseline.stats().rule_applications);
    EXPECT_EQ(repairer.stats().per_rule_applications,
              baseline.stats().per_rule_applications);
    EXPECT_GT(memo.stats().hits, 0u);  // duplicate-prone by construction
  }
}

TEST(MemoCacheTest, FuzzedTablesBitIdenticalParallel) {
  Rng rng(0xfade);
  for (int round = 0; round < 8; ++round) {
    testing::RandomRuleUniverse universe;
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(40);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }
    const Table dirty =
        RandomTable(&universe, &rng, 500, 1 + rng.Uniform(40));

    Table plain = dirty;
    FastRepairer baseline(&rules);
    baseline.RepairTable(&plain);

    const CompiledRuleIndex index(&rules);
    for (const bool use_memo : {false, true}) {
      Table parallel = dirty;
      ParallelRepairOptions options;
      options.threads = 4;
      options.use_memo = use_memo;
      const RepairStats stats =
          ParallelRepairTable(index, &parallel, options);
      ExpectTablesEqual(parallel, plain,
                        use_memo ? "parallel+memo" : "parallel");
      EXPECT_EQ(stats.cells_changed, baseline.stats().cells_changed);
      EXPECT_EQ(stats.per_rule_applications,
                baseline.stats().per_rule_applications);
    }
  }
}

TEST(MemoCacheTest, EvictionUnderPressureStaysCorrect) {
  Rng rng(0xcafe);
  testing::RandomRuleUniverse universe;
  RuleSet rules(universe.schema, universe.pool);
  for (size_t i = 0; i < 30; ++i) rules.Add(universe.RandomRule(&rng));
  // Many more distinct tuples than slots: the direct-mapped cache must
  // constantly evict yet never corrupt an answer.
  const Table dirty = RandomTable(&universe, &rng, 400, 200);

  Table plain = dirty;
  FastRepairer baseline(&rules);
  baseline.RepairTable(&plain);

  Table memoized = dirty;
  FastRepairer repairer(&rules);
  MemoCache memo(/*capacity=*/4);
  repairer.set_memo(&memo);
  repairer.RepairTable(&memoized);

  ExpectTablesEqual(memoized, plain, "eviction");
  EXPECT_EQ(memo.capacity(), 4u);
  EXPECT_GT(memo.stats().evictions, 0u);
  EXPECT_EQ(memo.stats().insertions, memo.stats().misses);
}

TEST(MemoCacheTest, CapacityOneForcesCollisionsWithoutWrongReplays) {
  // Every distinct tuple maps to the single slot, so any hash-only
  // shortcut would replay the wrong write set; the full-key compare must
  // keep the output exact.
  Rng rng(0xd00d);
  testing::RandomRuleUniverse universe;
  RuleSet rules(universe.schema, universe.pool);
  for (size_t i = 0; i < 25; ++i) rules.Add(universe.RandomRule(&rng));
  const Table dirty = RandomTable(&universe, &rng, 300, 50);

  Table plain = dirty;
  FastRepairer baseline(&rules);
  baseline.RepairTable(&plain);

  Table memoized = dirty;
  FastRepairer repairer(&rules);
  MemoCache memo(/*capacity=*/1);
  repairer.set_memo(&memo);
  repairer.RepairTable(&memoized);
  ExpectTablesEqual(memoized, plain, "capacity-one");
}

TEST(MemoCacheTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MemoCache(1).capacity(), 1u);
  EXPECT_EQ(MemoCache(3).capacity(), 4u);
  EXPECT_EQ(MemoCache(64).capacity(), 64u);
  EXPECT_EQ(MemoCache(65).capacity(), 128u);
}

TEST(MemoCacheTest, HitRequiresExactTuple) {
  MemoCache memo(8);
  const Tuple a = {1, 2, 3};
  const Tuple b = {1, 2, 4};
  const uint64_t ha = MemoCache::HashTuple(a);
  memo.Insert(ha, a, {{2, 9, 0}});
  ASSERT_NE(memo.Find(ha, a), nullptr);
  EXPECT_EQ(memo.Find(MemoCache::HashTuple(b), b), nullptr);
  EXPECT_EQ(memo.stats().hits, 1u);
  EXPECT_EQ(memo.stats().misses, 1u);
}

}  // namespace
}  // namespace fixrep
