// Exhaustive verification on a small universe: for strictly consistent
// rule sets, EVERY tuple of the (3 values + null)^4 tuple space must
// reach the same fix under several chase orders and under both engines.
// This is the strongest executable statement of the unique-fix guarantee
// — no sampling, the whole space.

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "rules/consistency.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using testing::RandomRuleUniverse;

class ExhaustiveChaseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveChaseTest, UniqueFixOverTheWholeTupleSpace) {
  RandomRuleUniverse universe;
  universe.values_per_attribute = 3;
  Rng rng(GetParam());
  // Build a strictly consistent set greedily.
  RuleSet rules(universe.schema, universe.pool);
  const size_t arity = universe.schema->arity();
  for (int attempt = 0; attempt < 200 && rules.size() < 7; ++attempt) {
    const FixingRule candidate = universe.RandomRule(&rng);
    bool ok = true;
    for (const auto& existing : rules.rules()) {
      if (!PairConsistentStrictChar(existing, candidate, arity, nullptr)) {
        ok = false;
        break;
      }
    }
    if (ok) rules.Add(candidate);
  }
  ASSERT_GT(rules.size(), 2u);

  std::vector<const FixingRule*> forward;
  for (const auto& rule : rules.rules()) forward.push_back(&rule);
  std::vector<const FixingRule*> backward(forward.rbegin(),
                                          forward.rend());
  ChaseRepairer crepair(&rules);
  FastRepairer lrepair(&rules);

  // The whole tuple space: each attribute takes one of its 3 universe
  // values or null.
  const int options_per_attr = universe.values_per_attribute + 1;
  size_t total = 1;
  for (size_t a = 0; a < arity; ++a) total *= options_per_attr;
  for (size_t n = 0; n < total; ++n) {
    size_t rest = n;
    Tuple t(arity, kNullValue);
    for (size_t a = 0; a < arity; ++a) {
      const int k = static_cast<int>(rest % options_per_attr);
      rest /= options_per_attr;
      if (k > 0) t[a] = universe.Value(static_cast<AttrId>(a), k - 1);
    }
    Tuple fix_forward = t;
    ChaseWithPriority(forward, &fix_forward);
    Tuple fix_backward = t;
    ChaseWithPriority(backward, &fix_backward);
    ASSERT_EQ(fix_forward, fix_backward) << "tuple #" << n;
    Tuple by_crepair = t;
    crepair.RepairTuple(by_crepair);
    ASSERT_EQ(by_crepair, fix_forward) << "tuple #" << n;
    Tuple by_lrepair = t;
    lrepair.RepairTuple(by_lrepair);
    ASSERT_EQ(by_lrepair, fix_forward) << "tuple #" << n;
  }
}

TEST_P(ExhaustiveChaseTest, PaperCheckerAgreesOnPairsOverWholeSpace) {
  // For PAIRS (where Prop. 3 holds trivially), the paper's
  // characterization verdict must equal brute-force whole-space
  // uniqueness checking.
  RandomRuleUniverse universe;
  universe.values_per_attribute = 3;
  Rng rng(GetParam() ^ 0xeeee);
  const size_t arity = universe.schema->arity();
  for (int trial = 0; trial < 20; ++trial) {
    const FixingRule a = universe.RandomRule(&rng);
    const FixingRule b = universe.RandomRule(&rng);
    const bool by_char = PairConsistentChar(a, b, arity, nullptr);

    bool unique_everywhere = true;
    const int options_per_attr = universe.values_per_attribute + 1;
    size_t total = 1;
    for (size_t x = 0; x < arity; ++x) total *= options_per_attr;
    for (size_t n = 0; n < total && unique_everywhere; ++n) {
      size_t rest = n;
      Tuple t(arity, kNullValue);
      for (size_t x = 0; x < arity; ++x) {
        const int k = static_cast<int>(rest % options_per_attr);
        rest /= options_per_attr;
        if (k > 0) t[x] = universe.Value(static_cast<AttrId>(x), k - 1);
      }
      Tuple ab = t;
      ChaseWithPriority({&a, &b}, &ab);
      Tuple ba = t;
      ChaseWithPriority({&b, &a}, &ba);
      unique_everywhere = (ab == ba);
    }
    ASSERT_EQ(by_char, unique_everywhere)
        << "pair verdict disagrees with whole-space ground truth\n  a: "
        << a.Format(*universe.schema, *universe.pool)
        << "\n  b: " << b.Format(*universe.schema, *universe.pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveChaseTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace fixrep
