// Deterministic fault injection: registry mechanics (nth-hit plans,
// probability determinism, disarm) and one test per FIXREP_FAULT site,
// driving every recovery path a real fault would take. The whole suite
// skips when the build compiles fault sites out.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "relation/csv.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/recovery.h"
#include "rules/rule_io.h"

namespace fixrep {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionEnabled) {
      GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
    }
    FaultRegistry::Global().DisarmAll();
    MetricsRegistry::Global().ResetAllForTest();
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "fixrep_fault_" + name;
  }

  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital"});

  RuleSet MakeRules() {
    return ParseRulesFromString(
        "RULE\n"
        "  IF country = China\n"
        "  WRONG capital IN Shanghai\n"
        "  THEN capital = Beijing\n"
        "END\n",
        schema_, pool_);
  }

  Table MakeTable(size_t rows) {
    Table table(schema_, pool_);
    for (size_t r = 0; r < rows; ++r) {
      table.AppendRowStrings({"China", r % 2 == 0 ? "Shanghai" : "Beijing"});
    }
    return table;
  }
};

// ------------------------------------------------- registry mechanics --

TEST_F(FaultInjectionTest, NthHitPlanFiresExactWindow) {
  auto& registry = FaultRegistry::Global();
  FaultPlan plan;
  plan.skip_hits = 2;
  plan.max_fires = 3;
  registry.Arm("test.point", plan);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(registry.ShouldFail("test.point"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false}));
  EXPECT_EQ(registry.HitCount("test.point"), 8u);
  EXPECT_EQ(registry.FireCount("test.point"), 3u);
}

TEST_F(FaultInjectionTest, ProbabilityPlanIsSeedDeterministic) {
  auto& registry = FaultRegistry::Global();
  FaultPlan plan;
  plan.probability = 0.5;
  plan.seed = 42;
  const auto run = [&registry, &plan] {
    registry.Arm("test.point", plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(registry.ShouldFail("test.point"));
    }
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const uint64_t fires = registry.FireCount("test.point");
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);

  plan.seed = 43;
  registry.Arm("test.point", plan);
  std::vector<bool> reseeded;
  for (int i = 0; i < 64; ++i) {
    reseeded.push_back(registry.ShouldFail("test.point"));
  }
  EXPECT_NE(reseeded, first);
}

TEST_F(FaultInjectionTest, DisarmStopsFiringAndArmResetsCounters) {
  auto& registry = FaultRegistry::Global();
  registry.Arm("test.point", FaultPlan{});
  EXPECT_TRUE(registry.ShouldFail("test.point"));
  registry.Disarm("test.point");
  registry.Arm("test.other", FaultPlan{});  // keep the registry active
  EXPECT_FALSE(registry.ShouldFail("test.point"));
  registry.Arm("test.point", FaultPlan{});
  EXPECT_EQ(registry.HitCount("test.point"), 0u);
  EXPECT_EQ(registry.FireCount("test.point"), 0u);
  registry.DisarmAll();
  // With nothing armed the fast path doesn't even count hits.
  const uint64_t hits = registry.HitCount("test.point");
  EXPECT_FALSE(registry.ShouldFail("test.point"));
  EXPECT_EQ(registry.HitCount("test.point"), hits);
}

// ------------------------------------------------------- ingest sites --

TEST_F(FaultInjectionTest, CsvOpenReadFault) {
  const std::string path = TempPath("read.csv");
  { std::ofstream(path) << "country,capital\nChina,Shanghai\n"; }
  FaultRegistry::Global().Arm("csv.open_read", FaultPlan{});
  const StatusOr<Table> failed =
      ReadCsvFileLenient(path, "R", std::make_shared<ValuePool>());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_NE(failed.status().message().find("cannot open"), std::string::npos);
  FaultRegistry::Global().Disarm("csv.open_read");
  EXPECT_TRUE(
      ReadCsvFileLenient(path, "R", std::make_shared<ValuePool>()).ok());
}

TEST_F(FaultInjectionTest, CsvAppendRowFaultQuarantinesExactRow) {
  FaultPlan plan;
  plan.skip_hits = 1;
  plan.max_fires = 1;
  FaultRegistry::Global().Arm("csv.append_row", plan);
  std::istringstream in("a,b\nr0,0\nr1,1\nr2,2\n");
  CsvReadOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<Table> table =
      ReadCsvLenient(in, "R", std::make_shared<ValuePool>(), options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].line, 1u);
  EXPECT_EQ(sink.diagnostics()[0].code, StatusCode::kInternal);
  EXPECT_EQ(sink.diagnostics()[0].raw_text, "r1,1");

  // Abort mode propagates the same failure fail-fast.
  FaultRegistry::Global().Arm("csv.append_row", FaultPlan{});
  std::istringstream retry("a,b\nr0,0\n");
  const StatusOr<Table> aborted =
      ReadCsvLenient(retry, "R", std::make_shared<ValuePool>());
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, CsvWriteFaults) {
  const Table table = MakeTable(4);
  const std::string path = TempPath("write.csv");
  FaultRegistry::Global().Arm("csv.open_write", FaultPlan{});
  Status status = TryWriteCsvFile(table, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("cannot open"), std::string::npos);
  FaultRegistry::Global().Disarm("csv.open_write");

  std::remove(path.c_str());
  FaultRegistry::Global().Arm("csv.write_flush", FaultPlan{});
  status = TryWriteCsvFile(table, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Writes stage through path.tmp (common/atomic_file.h): the failure
  // names the staging file and the final path never appears.
  EXPECT_NE(status.message().find(".tmp' failed"), std::string::npos);
  EXPECT_FALSE(std::ifstream(path).good());
  FaultRegistry::Global().Disarm("csv.write_flush");
  EXPECT_TRUE(TryWriteCsvFile(table, path).ok());
}

TEST_F(FaultInjectionTest, RulesOpenReadFault) {
  const std::string path = TempPath("rules.txt");
  { std::ofstream(path) << "RULE\n  WRONG capital IN X\n"
                           "  THEN capital = Y\nEND\n"; }
  FaultRegistry::Global().Arm("rules.open_read", FaultPlan{});
  const StatusOr<RuleSet> failed =
      ParseRulesFileLenient(path, schema_, pool_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  FaultRegistry::Global().Disarm("rules.open_read");
  EXPECT_TRUE(ParseRulesFileLenient(path, schema_, pool_).ok());
}

TEST_F(FaultInjectionTest, RulesWriteFaults) {
  const RuleSet rules = MakeRules();
  const std::string path = TempPath("rules_out.txt");
  FaultRegistry::Global().Arm("rules.open_write", FaultPlan{});
  Status status = TryWriteRulesFile(rules, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("cannot open"), std::string::npos);
  FaultRegistry::Global().Disarm("rules.open_write");

  FaultRegistry::Global().Arm("rules.write_flush", FaultPlan{});
  status = TryWriteRulesFile(rules, path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("write failed"), std::string::npos);
  FaultRegistry::Global().Disarm("rules.write_flush");
  EXPECT_TRUE(TryWriteRulesFile(rules, path).ok());
}

// The strict CHECK-ing wrappers die with the Status message when the
// same faults hit; arming inside the statement keeps the plan local to
// the death-test child for either death-test style.
TEST_F(FaultInjectionTest, StrictWrappersDieOnWriteFaults) {
  const Table table = MakeTable(1);
  const RuleSet rules = MakeRules();
  EXPECT_DEATH(
      {
        FaultRegistry::Global().Arm("csv.write_flush", FaultPlan{});
        WriteCsvFile(table, TempPath("strict.csv"));
      },
      "failed");
  EXPECT_DEATH(
      {
        FaultRegistry::Global().Arm("rules.write_flush", FaultPlan{});
        WriteRulesFile(rules, TempPath("strict_rules.txt"));
      },
      "write failed");
}

// ------------------------------------------------------- repair sites --

TEST_F(FaultInjectionTest, RepairTupleFaultIsolatedAndRecoverable) {
  const RuleSet rules = MakeRules();
  FaultPlan plan;
  plan.max_fires = 1;

  FastRepairer fast(&rules);
  Table table = MakeTable(1);
  const Tuple original = table.row(0).ToTuple();
  FaultRegistry::Global().Arm("repair.tuple", plan);
  size_t changed = 1;
  Status status = fast.TryRepairTuple(table.WriteRow(0), &changed);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(table.row(0), original);
  // The plan is spent; the retry chases to the fix.
  ASSERT_TRUE(fast.TryRepairTuple(table.WriteRow(0), &changed).ok());
  EXPECT_EQ(table.CellString(0, 1), "Beijing");

  ChaseRepairer chase(&rules);
  Table chase_table = MakeTable(1);
  FaultRegistry::Global().Arm("repair.tuple", plan);
  status = chase.TryRepairTuple(chase_table.WriteRow(0), &changed);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(chase_table.row(0), original);
}

TEST_F(FaultInjectionTest, SerialLenientRepairQuarantinesExactRows) {
  const RuleSet rules = MakeRules();
  const CompiledRuleIndex index(&rules);
  Table table = MakeTable(8);
  FaultPlan plan;
  plan.skip_hits = 2;
  plan.max_fires = 2;
  FaultRegistry::Global().Arm("repair.tuple", plan);
  VectorQuarantineSink sink;
  LenientRepairOptions options;
  options.parallel.threads = 1;
  options.quarantine = &sink;
  const LenientRepairResult result =
      ParallelRepairTableLenient(index, &table, options);
  EXPECT_EQ(result.tuples_quarantined, 2u);
  ASSERT_EQ(sink.size(), 2u);
  // Serial execution visits rows in order, so hits 3 and 4 are rows 2, 3.
  EXPECT_EQ(sink.diagnostics()[0].line, 2u);
  EXPECT_EQ(sink.diagnostics()[1].line, 3u);
  EXPECT_EQ(table.CellString(2, 1), "Shanghai");  // preserved original
  EXPECT_EQ(table.CellString(0, 1), "Beijing");   // clean rows repaired
  EXPECT_EQ(table.CellString(4, 1), "Beijing");
}

TEST_F(FaultInjectionTest, ParallelLenientRepairSurvivesWorkerFaults) {
  const RuleSet rules = MakeRules();
  const CompiledRuleIndex index(&rules);
  Table table = MakeTable(256);
  FaultPlan plan;
  plan.skip_hits = 5;
  plan.max_fires = 3;
  FaultRegistry::Global().Arm("repair.tuple", plan);
  VectorQuarantineSink sink;
  LenientRepairOptions options;
  options.parallel.threads = 4;
  options.quarantine = &sink;
  const LenientRepairResult result =
      ParallelRepairTableLenient(index, &table, options);
  // Which rows draw the three fires depends on worker interleaving, but
  // the count is exact and the batch always completes.
  EXPECT_EQ(result.tuples_quarantined, 3u);
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(FaultRegistry::Global().FireCount("repair.tuple"), 3u);
  EXPECT_EQ(FaultRegistry::Global().HitCount("repair.tuple"), 256u);
  size_t previous_line = 0;
  for (size_t i = 0; i < sink.size(); ++i) {
    const Diagnostic& d = sink.diagnostics()[i];
    EXPECT_EQ(d.code, StatusCode::kInternal);
    EXPECT_LT(d.line, table.num_rows());
    if (i > 0) {
      EXPECT_GT(d.line, previous_line);  // sorted by row
    }
    previous_line = d.line;
  }
  EXPECT_EQ(result.stats.tuples_examined, 256u);
  const Counter* counter =
      MetricsRegistry::Global().FindCounter("fixrep.quarantine.tuples");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Value(), 3u);
}

// Coverage check that each FIXREP_FAULT point in the codebase sits on a
// reachable path. Arming an unrelated point activates hit-counting
// without making anything fire, so one pass through the normal
// read/write/repair flow must touch every site.
TEST_F(FaultInjectionTest, AllFaultSitesSeen) {
  FaultRegistry::Global().Arm("test.coverage", FaultPlan{});

  const std::string csv_path = TempPath("coverage.csv");
  ASSERT_TRUE(TryWriteCsvFile(MakeTable(2), csv_path).ok());
  ASSERT_TRUE(
      ReadCsvFileLenient(csv_path, "R", std::make_shared<ValuePool>()).ok());

  const RuleSet rules = MakeRules();
  const std::string rules_path = TempPath("coverage_rules.txt");
  ASSERT_TRUE(TryWriteRulesFile(rules, rules_path).ok());
  ASSERT_TRUE(ParseRulesFileLenient(rules_path, schema_, pool_).ok());

  FastRepairer repairer(&rules);
  Table table = MakeTable(1);
  size_t changed = 0;
  ASSERT_TRUE(
      repairer.TryRepairTuple(table.WriteRow(0), &changed).ok());

  // Durable-streaming sites: one journaled chunk commit walks the WAL
  // open/append/fsync paths and all three crash sites
  // (docs/durability.md).
  const std::string wal_path = TempPath("coverage.wal");
  WalRunHeader header;
  header.attribute_names = {"country", "capital"};
  header.chunk_rows = 1;
  StatusOr<ChunkJournal> journal = ChunkJournal::Create(wal_path, header);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->BeginChunk(1, 0, 1).ok());
  ASSERT_TRUE(journal->Commit(1, 1, 0, 0).ok());
  ASSERT_TRUE(journal->Close().ok());

  const std::vector<std::string> seen = FaultRegistry::Global().SeenPoints();
  for (const char* point :
       {"csv.open_read", "csv.append_row", "csv.open_write",
        "csv.write_flush", "rules.open_read", "rules.open_write",
        "rules.write_flush", "repair.tuple", "atomic_file.open",
        "atomic_file.write", "atomic_file.fsync", "wal.open", "wal.append",
        "wal.fsync", "wal.crash_after_append", "wal.crash_before_commit",
        "wal.crash_after_commit"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), point), seen.end())
        << "fault site never exercised: " << point;
  }
}

}  // namespace
}  // namespace fixrep
