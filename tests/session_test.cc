// RepairSession (repair/session.h): the unified facade must be
// bit-identical — repaired cells, reports, quarantine diagnostics, AND
// published metrics — to calling the engine layer directly for every
// engine/threads/error-policy combination it routes.

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"
#include "rules/rule_io.h"

namespace fixrep {
namespace {

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  for (size_t r = 0; r < want.num_rows(); ++r) {
    ASSERT_EQ(got.row(r), want.row(r)) << context << " row " << r;
  }
}

// Counter snapshot of the repair-related metric namespaces, for
// facade-vs-engine delta comparison.
std::map<std::string, uint64_t> RepairCounters() {
  std::map<std::string, uint64_t> values;
  for (const char* name :
       {"fixrep.lrepair.tuples_examined", "fixrep.lrepair.tuples_changed",
        "fixrep.lrepair.cells_changed", "fixrep.lrepair.rule_applications",
        "fixrep.lrepair.index_builds", "fixrep.quarantine.tuples"}) {
    const Counter* c = MetricsRegistry::Global().FindCounter(name);
    values[name] = c == nullptr ? 0 : c->Value();
  }
  return values;
}

TEST(RepairSessionTest, DefaultConfigMatchesFastRepairer) {
  TravelExample example;
  Table direct = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&direct);

  Table via_session = example.dirty;
  RepairSession session(&example.rules);
  const StatusOr<RepairReport> report = session.Repair(&via_session);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ExpectSameRows(via_session, direct, "default config");
  EXPECT_EQ(report->rows, example.dirty.num_rows());
  EXPECT_EQ(report->cells_changed, repairer.stats().cells_changed);
  EXPECT_EQ(report->tuples_quarantined, 0u);
  ASSERT_NE(session.index(), nullptr);  // built once in the ctor
}

TEST(RepairSessionTest, CRepairEngineMatchesChaseRepairer) {
  TravelExample example;
  Table direct = example.dirty;
  ChaseRepairer chase(&example.rules);
  chase.RepairTable(&direct);

  Table via_session = example.dirty;
  RepairConfig config;
  config.engine = RepairEngine::kCRepair;
  RepairSession session(&example.rules, config);
  const StatusOr<RepairReport> report = session.Repair(&via_session);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ExpectSameRows(via_session, direct, "crepair");
  EXPECT_EQ(session.index(), nullptr);  // no lRepair index for the chase
}

TEST(RepairSessionTest, ThreadedConfigsMatchSerialOnGeneratedData) {
  HospOptions options;
  options.rows = 6000;
  options.num_hospitals = 250;
  GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 300;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);

  Table serial = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&serial);

  for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    for (const bool use_memo : {false, true}) {
      RepairConfig config;
      config.threads = threads;
      config.use_memo = use_memo;
      RepairSession session(&rules, config);
      Table table = dirty;
      const StatusOr<RepairReport> report = session.Repair(&table);
      ASSERT_TRUE(report.ok());
      ExpectSameRows(table, serial,
                     "threads=" + std::to_string(threads) +
                         " memo=" + std::to_string(use_memo));
      EXPECT_EQ(report->cells_changed, repairer.stats().cells_changed);
    }
  }
}

TEST(RepairSessionTest, MetricsDeltasEqualDirectEngineCall) {
  // The acceptance bar for the facade: zero behavior change, observable
  // through identical metric deltas for the same work.
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
  }
  TravelExample example;
  auto& registry = MetricsRegistry::Global();

  registry.ResetAllForTest();
  Table direct = example.dirty;
  ParallelRepairTable(example.rules, &direct, 1);
  const auto direct_counters = RepairCounters();

  registry.ResetAllForTest();
  Table via_session = example.dirty;
  RepairSession session(&example.rules);
  ASSERT_TRUE(session.Repair(&via_session).ok());
  const auto session_counters = RepairCounters();

  EXPECT_EQ(session_counters, direct_counters);
}

// Cascading rules (from the quarantine suite): (name = flag) tuples need
// two chase pops, so max_chase_steps = 1 fails exactly those tuples.
RuleSet CascadeRules(std::shared_ptr<const Schema> schema,
                     std::shared_ptr<ValuePool> pool) {
  const std::string text =
      "RULE\n"
      "  IF country = China\n"
      "  WRONG capital IN Shanghai | Hongkong\n"
      "  THEN capital = Beijing\n"
      "END\n"
      "RULE\n"
      "  IF name = flag\n"
      "  WRONG country IN Chn\n"
      "  THEN country = China\n"
      "END\n";
  return ParseRulesFromString(text, std::move(schema), std::move(pool));
}

class RepairSessionLenientTest : public ::testing::Test {
 protected:
  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital", "name"});
  RuleSet rules_ = CascadeRules(schema_, pool_);

  Table MakeTable() {
    Table table(schema_, pool_);
    table.AppendRowStrings({"China", "Shanghai", "x"});
    table.AppendRowStrings({"Chn", "Shanghai", "flag"});  // budget fail
    table.AppendRowStrings({"France", "Paris", "y"});
    table.AppendRowStrings({"Chn", "Hongkong", "flag"});  // budget fail
    return table;
  }
};

TEST_F(RepairSessionLenientTest, QuarantineMatchesLenientEngine) {
  const CompiledRuleIndex index(&rules_);
  Table direct = MakeTable();
  VectorQuarantineSink direct_sink;
  LenientRepairOptions lenient;
  lenient.parallel.threads = 1;
  lenient.quarantine = &direct_sink;
  lenient.max_chase_steps = 1;
  const LenientRepairResult direct_result =
      ParallelRepairTableLenient(index, &direct, lenient);
  ASSERT_EQ(direct_result.tuples_quarantined, 2u);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    Table via_session = MakeTable();
    VectorQuarantineSink sink;
    RepairConfig config;
    config.threads = threads;
    config.on_error = OnErrorPolicy::kQuarantine;
    config.quarantine = &sink;
    config.max_chase_steps = 1;
    RepairSession session(&rules_, config);
    const StatusOr<RepairReport> report = session.Repair(&via_session);
    ASSERT_TRUE(report.ok());
    const std::string context = "threads=" + std::to_string(threads);
    ExpectSameRows(via_session, direct, context);
    EXPECT_EQ(report->tuples_quarantined, 2u) << context;
    ASSERT_EQ(sink.size(), direct_sink.size()) << context;
    for (size_t i = 0; i < sink.size(); ++i) {
      EXPECT_EQ(sink.diagnostics()[i].line,
                direct_sink.diagnostics()[i].line)
          << context;
      EXPECT_EQ(sink.diagnostics()[i].raw_text,
                direct_sink.diagnostics()[i].raw_text)
          << context;
    }
  }
}

TEST_F(RepairSessionLenientTest, CRepairLenientMatchesDirectChaseLoop) {
  // Serial lenient cRepair (the old CLI loop, now inside the facade)
  // must match driving ChaseRepairer::TryRepairTuple by hand. The chase
  // budget counts rule examinations, so 2 passes already-clean tuples
  // but trips every tuple that needs an application.
  const size_t kBudget = 2;
  Table direct = MakeTable();
  ChaseRepairer chase(&rules_);
  chase.set_max_chase_steps(kBudget);
  std::vector<size_t> failed;
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    size_t cells = 0;
    if (!chase.TryRepairTuple(direct.WriteRow(r), &cells).ok()) {
      failed.push_back(r);
    }
  }
  ASSERT_GT(failed.size(), 0u);  // the budget must bite...
  ASSERT_LT(failed.size(), direct.num_rows());  // ...but not on everything

  Table via_session = MakeTable();
  VectorQuarantineSink sink;
  RepairConfig config;
  config.engine = RepairEngine::kCRepair;
  config.on_error = OnErrorPolicy::kQuarantine;
  config.quarantine = &sink;
  config.max_chase_steps = kBudget;
  RepairSession session(&rules_, config);
  const StatusOr<RepairReport> report = session.Repair(&via_session);
  ASSERT_TRUE(report.ok());
  ExpectSameRows(via_session, direct, "crepair lenient");
  EXPECT_EQ(report->tuples_quarantined, failed.size());
  ASSERT_EQ(sink.size(), failed.size());
  for (size_t i = 0; i < failed.size(); ++i) {
    EXPECT_EQ(sink.diagnostics()[i].line, failed[i]) << "diagnostic " << i;
  }
}

TEST(RepairSessionTest, RejectsUnroutableConfigs) {
  TravelExample example;
  {
    RepairConfig config;
    config.engine = RepairEngine::kCRepair;
    config.threads = 4;  // the chase is serial-only
    RepairSession session(&example.rules, config);
    Table table = example.dirty;
    const StatusOr<RepairReport> report = session.Repair(&table);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kMalformedInput);
  }
  {
    RepairConfig config;
    config.engine = RepairEngine::kCRepair;
    RepairSession session(&example.rules, config);
    std::istringstream in("a,b\n1,2\n");
    StatusOr<CsvChunkReader> reader =
        CsvChunkReader::Open(in, "stream", std::make_shared<ValuePool>());
    ASSERT_TRUE(reader.ok());
    std::ostringstream out;
    const StatusOr<RepairReport> report =
        session.RepairStream(&reader.value(), out);
    ASSERT_FALSE(report.ok());  // streaming is lRepair-only
    EXPECT_EQ(report.status().code(), StatusCode::kMalformedInput);
  }
}

TEST(RepairSessionTest, StreamMatchesInMemoryRepairBytes) {
  TravelExample example;
  Table repaired = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&repaired);
  std::ostringstream want;
  WriteCsv(repaired, want);

  std::ostringstream dirty_csv;
  WriteCsv(example.dirty, dirty_csv);

  for (const bool prune : {false, true}) {
    for (const size_t budget : {size_t{0}, size_t{1}}) {
      std::istringstream in(dirty_csv.str());
      StatusOr<CsvChunkReader> reader =
          CsvChunkReader::Open(in, "stream", example.pool);
      ASSERT_TRUE(reader.ok());
      RepairConfig config;
      config.chunk_rows = 2;
      config.memory_budget_bytes = budget;
      config.prune_columns = prune;
      RepairSession session(&example.rules, config);
      std::ostringstream out;
      const StatusOr<RepairReport> report =
          session.RepairStream(&reader.value(), out);
      ASSERT_TRUE(report.ok()) << report.status().message();
      EXPECT_EQ(out.str(), want.str())
          << "prune=" << prune << " budget=" << budget;
      EXPECT_EQ(report->rows, example.dirty.num_rows());
      EXPECT_EQ(report->chunks, 2u);
    }
  }
}

}  // namespace
}  // namespace fixrep
