#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/rule_io.h"

namespace fixrep {
namespace {

class RuleIoTest : public ::testing::Test {
 protected:
  TravelExample example_;

  RuleSet Parse(const std::string& text) {
    return ParseRulesFromString(text, example_.schema, example_.pool);
  }
};

TEST_F(RuleIoTest, ParsesPhi1) {
  const RuleSet rules = Parse(
      "# phi_1\n"
      "RULE\n"
      "  IF country = China\n"
      "  WRONG capital IN Shanghai | Hongkong\n"
      "  THEN capital = Beijing\n"
      "END\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(0));
}

TEST_F(RuleIoTest, ParsesMultipleEvidenceLines) {
  const RuleSet rules = Parse(
      "RULE\n"
      "IF capital = Tokyo\n"
      "IF city = Tokyo\n"
      "IF conf = ICDE\n"
      "WRONG country IN China\n"
      "THEN country = Japan\n"
      "END\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(2));
}

TEST_F(RuleIoTest, SerializeParseRoundTrip) {
  const std::string text = SerializeRules(example_.rules);
  const RuleSet again = Parse(text);
  ASSERT_EQ(again.size(), example_.rules.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.rule(i), example_.rules.rule(i)) << "rule " << i;
  }
}

TEST_F(RuleIoTest, CommentsAndBlankLinesIgnored) {
  const RuleSet rules = Parse(
      "\n# header comment\n\n"
      "RULE\n"
      "  # inner comment\n"
      "  IF country = Canada\n"
      "  WRONG capital IN Toronto\n"
      "  THEN capital = Ottawa\n"
      "END\n\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(1));
}

TEST_F(RuleIoTest, ValuesWithSpaces) {
  const RuleSet rules = Parse(
      "RULE\n"
      "IF country = New Zealand\n"
      "WRONG capital IN Auckland City | Hamilton\n"
      "THEN capital = Wellington\n"
      "END\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(example_.pool->GetString(rules.rule(0).evidence_values[0]),
            "New Zealand");
  EXPECT_EQ(example_.pool->GetString(rules.rule(0).fact), "Wellington");
  EXPECT_EQ(rules.rule(0).negative_patterns.size(), 2u);
}

TEST_F(RuleIoTest, EmptyInputYieldsEmptySet) {
  EXPECT_EQ(Parse("").size(), 0u);
  EXPECT_EQ(Parse("# only comments\n").size(), 0u);
}

TEST_F(RuleIoTest, RejectsUnterminatedRule) {
  EXPECT_DEATH(Parse("RULE\nIF country = China\n"), "unterminated");
}

TEST_F(RuleIoTest, RejectsRuleWithoutWrong) {
  EXPECT_DEATH(Parse("RULE\nIF country = China\nEND\n"), "without WRONG");
}

TEST_F(RuleIoTest, RejectsRuleWithoutThen) {
  EXPECT_DEATH(
      Parse("RULE\nWRONG capital IN Shanghai\nEND\n"), "without THEN");
}

TEST_F(RuleIoTest, RejectsThenAttrMismatch) {
  EXPECT_DEATH(Parse("RULE\n"
                     "WRONG capital IN Shanghai\n"
                     "THEN city = Beijing\n"
                     "END\n"),
               "must match");
}

TEST_F(RuleIoTest, RejectsUnknownDirective) {
  EXPECT_DEATH(Parse("RULE\nWHEN x = y\nEND\n"), "unknown directive");
}

TEST_F(RuleIoTest, RejectsDirectiveOutsideRule) {
  EXPECT_DEATH(Parse("IF country = China\n"), "outside RULE");
}

TEST_F(RuleIoTest, RejectsNestedRule) {
  EXPECT_DEATH(Parse("RULE\nRULE\n"), "nested RULE");
}

TEST_F(RuleIoTest, RejectsUnknownAttribute) {
  EXPECT_DEATH(Parse("RULE\n"
                     "IF planet = Mars\n"
                     "WRONG capital IN X\n"
                     "THEN capital = Y\n"
                     "END\n"),
               "no attribute");
}

TEST_F(RuleIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rules.txt";
  WriteRulesFile(example_.rules, path);
  const RuleSet again = ParseRulesFile(path, example_.schema, example_.pool);
  ASSERT_EQ(again.size(), example_.rules.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.rule(i), example_.rules.rule(i));
  }
}

}  // namespace
}  // namespace fixrep
