// The multi-tenant repair daemon (src/serve/, docs/serving.md): wire
// protocol round trips and corruption handling, tenant registry load /
// hot-reload semantics, and a live daemon exercised by concurrent
// clients — byte-identity against direct RepairSession runs on the
// travel/hosp/uis workloads, admission rejection under a full queue,
// reload under load with zero dropped requests, and graceful drain
// (including a real fixrep_cli child on SIGTERM).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/csv.h"
#include "repair/config.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"
#include "rules/rule_dict.h"
#include "rules/rule_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace fixrep::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fixrep_serve_" + name;
}

std::string ToCsv(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

std::string JoinAttrs(const Schema& schema) {
  std::string out;
  for (const std::string& name : schema.attribute_names()) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out;
}

// One self-contained workload: a dirty batch (as CSV bytes), its rules
// on disk (text, and optionally compiled), and the tenant spec that
// serves them.
struct Workload {
  std::string name;
  std::string csv;         // dirty batch, header + rows
  std::string rules_path;  // text rules file
  std::string spec;        // --ruleset value (minus NAME=)
  std::shared_ptr<ValuePool> pool;
  std::shared_ptr<const Schema> schema;
  std::optional<RuleSet> rules;
  std::string expected;  // direct RepairSession output, default config
};

// Mirrors the daemon's request path with a private pool: parse the
// batch leniently, repair through RepairSession, write CSV + the
// quarantine file. Byte-for-byte what a dependable daemon must return.
struct DirectRun {
  Status status = Status::Ok();
  std::string csv;
  std::string quarantine;
  uint64_t tuples_quarantined = 0;
};

DirectRun DirectRepair(const Workload& w, const RepairConfig& base) {
  DirectRun run;
  RepairConfig config = base;
  const bool quarantining = config.on_error == OnErrorPolicy::kQuarantine;
  VectorQuarantineSink row_sink;
  VectorQuarantineSink tuple_sink;
  if (quarantining) config.quarantine = &tuple_sink;
  auto pool = std::make_shared<ValuePool>();
  StatusOr<RuleSet> rules =
      ParseRulesFileLenient(w.rules_path, w.schema, pool, {});
  if (!rules.ok()) {
    run.status = rules.status();
    return run;
  }
  std::istringstream in(w.csv);
  CsvReadOptions csv_options;
  csv_options.on_error = config.on_error;
  csv_options.quarantine = quarantining ? &row_sink : nullptr;
  StatusOr<Table> table = ReadCsvLenient(in, "data", pool, csv_options);
  if (!table.ok()) {
    run.status = table.status();
    return run;
  }
  RepairSession session(&rules.value(), config);
  StatusOr<RepairReport> report = session.Repair(&table.value());
  if (!report.ok()) {
    run.status = report.status();
    return run;
  }
  run.csv = ToCsv(table.value());
  run.tuples_quarantined = report.value().tuples_quarantined;
  if (quarantining && (!row_sink.diagnostics().empty() ||
                       !tuple_sink.diagnostics().empty())) {
    std::ostringstream q;
    WriteQuarantineHeader(q);
    for (const Diagnostic& d : row_sink.diagnostics()) {
      WriteQuarantineRecord(q, "csv", d);
    }
    for (const Diagnostic& d : tuple_sink.diagnostics()) {
      WriteQuarantineRecord(q, "repair", d);
    }
    run.quarantine = q.str();
  }
  return run;
}

Workload MakeTravelWorkload() {
  Workload w;
  w.name = "travel";
  TravelExample example;
  w.pool = example.pool;
  w.schema = example.schema;
  w.csv = ToCsv(example.dirty);
  w.rules_path = TempPath("travel_rules.txt");
  EXPECT_TRUE(TryWriteRulesFile(example.rules, w.rules_path).ok());
  w.spec = w.rules_path + "@" + JoinAttrs(*example.schema);
  w.rules.emplace(example.rules);
  w.expected = DirectRepair(w, {}).csv;
  return w;
}

Workload MakeGeneratedWorkload(const std::string& name, GeneratedData data,
                               size_t max_rules) {
  Workload w;
  w.name = name;
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  w.pool = data.pool;
  w.schema = data.schema;
  w.csv = ToCsv(dirty);
  w.rules_path = TempPath(name + "_rules.txt");
  EXPECT_TRUE(TryWriteRulesFile(rules, w.rules_path).ok());
  w.spec = w.rules_path + "@" + JoinAttrs(*data.schema);
  w.rules.emplace(rules);
  w.expected = DirectRepair(w, {}).csv;
  return w;
}

Workload MakeHospWorkload() {
  HospOptions options;
  options.rows = 1500;
  options.num_hospitals = 60;
  return MakeGeneratedWorkload("hosp", GenerateHosp(options), 150);
}

Workload MakeUisWorkload() {
  UisOptions options;
  options.rows = 600;
  return MakeGeneratedWorkload("uis", GenerateUis(options), 80);
}

// A dict-backed twin of the hosp workload: same rules, compiled to the
// mmap artifact, so the tenant exercises the RuleDict repository path.
Workload MakeHospDictWorkload(const Workload& hosp) {
  Workload w = hosp;
  w.name = "hospdict";
  const std::string dict_path = TempPath("hosp_rules.frd");
  EXPECT_TRUE(CompileRuleDict(*hosp.rules, dict_path).ok());
  w.spec = dict_path;  // dictionaries are schema-self-describing
  return w;
}

// Built once: rule generation dominates test wall time.
const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload>* workloads = [] {
    auto* all = new std::vector<Workload>();
    all->push_back(MakeTravelWorkload());
    all->push_back(MakeHospWorkload());
    all->push_back(MakeUisWorkload());
    all->push_back(MakeHospDictWorkload((*all)[1]));
    return all;
  }();
  return *workloads;
}

// --- protocol ---

TEST(ServeProtocolTest, RequestRoundTripsEveryVerb) {
  Request repair;
  repair.verb = Verb::kRepair;
  repair.repair.tenant = "hosp";
  repair.repair.config = {{"engine", "crepair"}, {"threads", "4"}};
  repair.repair.csv = "a,b\n1,2\n";
  Request reload;
  reload.verb = Verb::kReload;
  reload.reload.tenant = "hosp";
  reload.reload.spec = "/tmp/rules.txt@a,b";
  Request ping;
  ping.verb = Verb::kPing;
  Request list;
  list.verb = Verb::kList;

  for (const Request& request : {repair, reload, ping, list}) {
    std::string frame;
    AppendFrame(&frame, EncodeRequest(request));
    std::string payload;
    uint32_t crc = 0;
    ASSERT_EQ(ExtractFrame(&frame, &payload, &crc), FrameParse::kFrame);
    EXPECT_TRUE(frame.empty());  // fully consumed
    ASSERT_TRUE(VerifyFrame(payload, crc).ok());
    StatusOr<Request> decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->verb, request.verb);
    EXPECT_EQ(decoded->repair.tenant, request.repair.tenant);
    EXPECT_EQ(decoded->repair.config, request.repair.config);
    EXPECT_EQ(decoded->repair.csv, request.repair.csv);
    EXPECT_EQ(decoded->reload.tenant, request.reload.tenant);
    EXPECT_EQ(decoded->reload.spec, request.reload.spec);
  }
}

TEST(ServeProtocolTest, ResponseRoundTripsResultsAndErrors) {
  Response ok;
  ok.verb = Verb::kRepair;
  ok.repair.rows = 7;
  ok.repair.cells_changed = 3;
  ok.repair.tuples_quarantined = 1;
  ok.repair.csv = "a,b\n1,2\n";
  ok.repair.quarantine = "source,line\n";
  std::string payload = EncodeResponse(ok);
  StatusOr<Response> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->repair.rows, 7u);
  EXPECT_EQ(decoded->repair.cells_changed, 3u);
  EXPECT_EQ(decoded->repair.tuples_quarantined, 1u);
  EXPECT_EQ(decoded->repair.csv, ok.repair.csv);
  EXPECT_EQ(decoded->repair.quarantine, ok.repair.quarantine);

  Response error;
  error.verb = Verb::kRepair;
  error.status = Status::Unavailable("admission queue full");
  decoded = DecodeResponse(EncodeResponse(error));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded->status.message(), "admission queue full");
}

TEST(ServeProtocolTest, CorruptedPayloadFailsCrc) {
  Request request;
  request.verb = Verb::kPing;
  std::string frame;
  AppendFrame(&frame, EncodeRequest(request));
  frame[9] ^= 0x40;  // flip a payload bit, CRC trailer now disagrees
  std::string payload;
  uint32_t crc = 0;
  ASSERT_EQ(ExtractFrame(&frame, &payload, &crc), FrameParse::kFrame);
  const Status status = VerifyFrame(payload, crc);
  EXPECT_EQ(status.code(), StatusCode::kMalformedInput);
}

TEST(ServeProtocolTest, PartialFramesNeedMoreAndPipelineCleanly) {
  Request a;
  a.verb = Verb::kRepair;
  a.repair.tenant = "t";
  a.repair.csv = "a\n1\n";
  Request b;
  b.verb = Verb::kList;
  std::string wire;
  AppendFrame(&wire, EncodeRequest(a));
  AppendFrame(&wire, EncodeRequest(b));

  // Dribble the bytes in: never a frame until the last byte of A, and
  // the remainder (frame B) survives in the buffer untouched.
  std::string buffer;
  std::string payload;
  uint32_t crc = 0;
  size_t frames = 0;
  for (const char byte : wire) {
    buffer.push_back(byte);
    while (true) {
      const FrameParse parse = ExtractFrame(&buffer, &payload, &crc);
      if (parse != FrameParse::kFrame) {
        ASSERT_EQ(parse, FrameParse::kNeedMore);
        break;
      }
      ASSERT_TRUE(VerifyFrame(payload, crc).ok());
      StatusOr<Request> decoded = DecodeRequest(payload);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->verb, frames == 0 ? Verb::kRepair : Verb::kList);
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_TRUE(buffer.empty());
}

TEST(ServeProtocolTest, GarbageStreamsAreRejectedNotBuffered) {
  std::string buffer = "GET /metrics HTTP/1.1\r\n";
  std::string payload;
  uint32_t crc = 0;
  EXPECT_EQ(ExtractFrame(&buffer, &payload, &crc), FrameParse::kBadMagic);

  // A correct magic with an absurd length prefix must not allocate.
  buffer.assign("FXRP", 4);
  const uint32_t huge = kMaxFramePayload + 1;
  buffer.append(reinterpret_cast<const char*>(&huge), 4);
  EXPECT_EQ(ExtractFrame(&buffer, &payload, &crc), FrameParse::kTooLarge);
}

TEST(ServeProtocolTest, DecodeRejectsVersionSkewAndTrailingBytes) {
  Request request;
  request.verb = Verb::kPing;
  std::string payload = EncodeRequest(request);
  payload[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_FALSE(DecodeRequest(payload).ok());

  payload = EncodeRequest(request);
  payload += "extra";
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

// --- registry ---

TEST(ServeRegistryTest, ParseTenantSpecGrammar) {
  StatusOr<TenantSpec> dict = ParseTenantSpec("/tmp/dict.frd");
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->path, "/tmp/dict.frd");
  EXPECT_TRUE(dict->attrs.empty());

  StatusOr<TenantSpec> text = ParseTenantSpec("/tmp/rules.txt@a,b,c");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->path, "/tmp/rules.txt");
  EXPECT_EQ(text->attrs, (std::vector<std::string>{"a", "b", "c"}));

  EXPECT_FALSE(ParseTenantSpec("").ok());
  EXPECT_FALSE(ParseTenantSpec("@a,b").ok());
  EXPECT_FALSE(ParseTenantSpec("/tmp/rules.txt@a,,c").ok());
}

TEST(ServeRegistryTest, LoadReloadAndFailureKeepsOldSnapshot) {
  const Workload& travel = AllWorkloads()[0];
  TenantRegistry registry;
  ASSERT_TRUE(registry.Load("travel", travel.spec).ok());
  const auto first = registry.Find("travel");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_FALSE(first->dict_backed());
  EXPECT_EQ(first->num_rules(), travel.rules->size());
  EXPECT_EQ(registry.Find("nosuch"), nullptr);

  // Reload replaces the snapshot and bumps the generation; the pinned
  // old snapshot stays alive and usable.
  ASSERT_TRUE(registry.Load("travel", travel.spec).ok());
  const auto second = registry.Find("travel");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->generation(), 2u);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->generation(), 1u);

  // A failing reload leaves the published snapshot untouched.
  EXPECT_FALSE(
      registry.Load("travel", TempPath("absent_rules.txt") + "@a,b").ok());
  EXPECT_EQ(registry.Find("travel").get(), second.get());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServeRegistryTest, DictTenantIsSelfDescribing) {
  const Workload& hospdict = AllWorkloads()[3];
  TenantRegistry registry;
  ASSERT_TRUE(registry.Load("hospdict", hospdict.spec).ok());
  const auto snapshot = registry.Find("hospdict");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->dict_backed());
  EXPECT_EQ(snapshot->num_rules(), hospdict.rules->size());
  EXPECT_EQ(snapshot->schema()->attribute_names(),
            hospdict.schema->attribute_names());

  // A dictionary carries its own schema; explicit attrs are an error.
  EXPECT_FALSE(registry.Load("bad", hospdict.spec + "@a,b").ok());
}

// --- daemon ---

class ServeDaemonTest : public ::testing::Test {
 protected:
  void StartDaemon(DaemonOptions options = {},
                   const std::vector<size_t>& workload_indices = {0, 1, 2,
                                                                  3}) {
    // Keyed by test name AND pid: concurrent serve_test processes (CI,
    // sanitizer reruns) must not unlink or bind over each other's
    // sockets.
    socket_path_ = TempPath(
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "." + std::to_string(getpid()) + ".sock");
    std::remove(socket_path_.c_str());
    for (const size_t index : workload_indices) {
      const Workload& w = AllWorkloads()[index];
      ASSERT_TRUE(registry_.Load(w.name, w.spec).ok()) << w.name;
    }
    if (options.unix_socket_path.empty() && options.tcp_port < 0) {
      options.unix_socket_path = socket_path_;
    }
    StatusOr<std::unique_ptr<RepairDaemon>> daemon =
        RepairDaemon::Start(&registry_, std::move(options));
    ASSERT_TRUE(daemon.ok()) << daemon.status();
    daemon_ = std::move(daemon).value();
  }

  void TearDown() override {
    if (daemon_ != nullptr) daemon_->Shutdown();
    std::remove(socket_path_.c_str());
  }

  StatusOr<Client> Connect() {
    ClientOptions options;
    options.unix_socket_path = socket_path_;
    return Client::Connect(options);
  }

  std::string socket_path_;
  TenantRegistry registry_;
  std::unique_ptr<RepairDaemon> daemon_;
};

TEST_F(ServeDaemonTest, PingAndListReportTenants) {
  StartDaemon();
  StatusOr<Client> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  StatusOr<PingInfo> info = client->Ping();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->rule_sets, 4u);

  StatusOr<std::vector<RuleSetInfo>> sets = client->List();
  ASSERT_TRUE(sets.ok()) << sets.status();
  ASSERT_EQ(sets->size(), 4u);
  bool saw_dict = false;
  for (const RuleSetInfo& set : sets.value()) {
    EXPECT_EQ(set.generation, 1u) << set.name;
    EXPECT_GT(set.num_rules, 0u) << set.name;
    if (set.name == "hospdict") saw_dict = set.dict_backed;
  }
  EXPECT_TRUE(saw_dict);
}

TEST_F(ServeDaemonTest, SubmitMatchesDirectRepairPerTenant) {
  StartDaemon();
  StatusOr<Client> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  for (const Workload& w : AllWorkloads()) {
    StatusOr<RepairResult> result = client->Submit(w.name, {}, w.csv);
    ASSERT_TRUE(result.ok()) << w.name << ": " << result.status();
    EXPECT_EQ(result->csv, w.expected) << w.name;
    EXPECT_GT(result->cells_changed, 0u) << w.name;
  }
}

TEST_F(ServeDaemonTest, ConfigHeadersSelectEngineAndThreads) {
  StartDaemon();
  StatusOr<Client> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  const Workload& travel = AllWorkloads()[0];
  for (const auto& config :
       std::vector<std::vector<std::pair<std::string, std::string>>>{
           {{"engine", "crepair"}},
           {{"threads", "4"}},
           {{"threads", "2"}, {"no-memo", "true"}}}) {
    RepairConfig direct_config;
    for (const auto& [key, value] : config) {
      ASSERT_TRUE(ParseRepairConfig(key, value, &direct_config).ok());
    }
    const DirectRun direct = DirectRepair(travel, direct_config);
    ASSERT_TRUE(direct.status.ok()) << direct.status;
    StatusOr<RepairResult> result =
        client->Submit(travel.name, config, travel.csv);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->csv, direct.csv);
    EXPECT_EQ(result->csv, travel.expected);  // engines agree byte-for-byte
  }
}

TEST_F(ServeDaemonTest, ConcurrentMixedTenantsAreByteIdentical) {
  StartDaemon();
  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 4;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      StatusOr<Client> client = Connect();
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const Workload& w = AllWorkloads()[(c + r) % AllWorkloads().size()];
        StatusOr<RepairResult> result = client->Submit(w.name, {}, w.csv);
        if (!result.ok() || result->csv != w.expected) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(daemon_->requests_served(), kClients * kRequestsPerClient);
}

TEST_F(ServeDaemonTest, UnknownTenantAndSessionLocalKeysAreRejected) {
  StartDaemon();
  StatusOr<Client> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  const Workload& travel = AllWorkloads()[0];

  StatusOr<RepairResult> unknown = client->Submit("nosuch", {}, travel.csv);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kMalformedInput);

  for (const char* key : {"wal", "rules-dict", "chunk-rows"}) {
    StatusOr<RepairResult> local = client->Submit(
        travel.name, {{key, "whatever"}}, travel.csv);
    ASSERT_FALSE(local.ok()) << key;
    EXPECT_EQ(local.status().code(), StatusCode::kMalformedInput) << key;
  }

  StatusOr<RepairResult> bad_key =
      client->Submit(travel.name, {{"frobnicate", "1"}}, travel.csv);
  ASSERT_FALSE(bad_key.ok());
  EXPECT_EQ(bad_key.status().code(), StatusCode::kMalformedInput);

  // The connection survives rejected requests.
  StatusOr<RepairResult> again = client->Submit(travel.name, {}, travel.csv);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->csv, travel.expected);
}

TEST_F(ServeDaemonTest, MismatchedHeaderAndQuarantinePolicyMatchDirect) {
  StartDaemon();
  StatusOr<Client> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  const Workload& travel = AllWorkloads()[0];

  StatusOr<RepairResult> mismatch =
      client->Submit(travel.name, {}, "wrong,header\n1,2\n");
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kMalformedInput);

  // A batch with a malformed row (wrong field count): abort fails,
  // quarantine captures it with the same bytes the local lenient flow
  // writes.
  const std::string torn = travel.csv + "too,few\n";
  StatusOr<RepairResult> abort = client->Submit(travel.name, {}, torn);
  EXPECT_FALSE(abort.ok());

  Workload torn_workload = travel;
  torn_workload.csv = torn;
  RepairConfig lenient;
  lenient.on_error = OnErrorPolicy::kQuarantine;
  const DirectRun direct = DirectRepair(torn_workload, lenient);
  ASSERT_TRUE(direct.status.ok()) << direct.status;
  StatusOr<RepairResult> quarantined = client->Submit(
      travel.name, {{"on-error", "quarantine"}}, torn);
  ASSERT_TRUE(quarantined.ok()) << quarantined.status();
  EXPECT_EQ(quarantined->csv, direct.csv);
  EXPECT_EQ(quarantined->quarantine, direct.quarantine);
  EXPECT_FALSE(quarantined->quarantine.empty());
  EXPECT_EQ(quarantined->tuples_quarantined, direct.tuples_quarantined);
}

TEST_F(ServeDaemonTest, FullAdmissionQueueRejectsImmediately) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<size_t> stalled{0};
  DaemonOptions options;
  options.max_pending = 1;
  options.request_stall_for_test = [&] {
    ++stalled;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartDaemon(std::move(options), {0});
  const Workload& travel = AllWorkloads()[0];

  // One admitted request parks in the stall hook and fills the queue.
  std::thread holder([&] {
    StatusOr<Client> client = Connect();
    ASSERT_TRUE(client.ok()) << client.status();
    StatusOr<RepairResult> result = client->Submit(travel.name, {},
                                                   travel.csv);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->csv, travel.expected);
  });
  while (stalled.load() == 0) std::this_thread::yield();

  // Queue full: the next frame is answered kUnavailable from the loop
  // thread — immediately, not after the holder finishes.
  StatusOr<Client> probe = Connect();
  ASSERT_TRUE(probe.ok()) << probe.status();
  StatusOr<PingInfo> rejected = probe->Ping();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(daemon_->requests_rejected(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();

  // The queue drained; the same probe connection serves again.
  StatusOr<PingInfo> info = probe->Ping();
  ASSERT_TRUE(info.ok()) << info.status();
}

TEST_F(ServeDaemonTest, ReloadUnderLoadDropsNothing) {
  StartDaemon({}, {0, 1});
  const Workload& travel = AllWorkloads()[0];
  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 12;
  constexpr size_t kReloads = 10;
  std::atomic<size_t> failures{0};

  std::thread reloader([&] {
    StatusOr<Client> client = Connect();
    ASSERT_TRUE(client.ok()) << client.status();
    for (size_t i = 0; i < kReloads; ++i) {
      StatusOr<ReloadResult> result =
          client->Reload(travel.name, travel.spec);
      if (!result.ok()) ++failures;
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      StatusOr<Client> client = Connect();
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        StatusOr<RepairResult> result =
            client->Submit(travel.name, {}, travel.csv);
        // Identical rules reloaded: every response, whichever snapshot
        // served it, is byte-identical — and none may be dropped.
        if (!result.ok() || result->csv != travel.expected) ++failures;
      }
    });
  }
  reloader.join();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  const auto snapshot = registry_.Find(travel.name);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->generation(), 1u + kReloads);
}

TEST_F(ServeDaemonTest, ShutdownDrainsInFlightRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<size_t> stalled{0};
  DaemonOptions options;
  options.request_stall_for_test = [&] {
    ++stalled;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartDaemon(std::move(options), {0});
  const Workload& travel = AllWorkloads()[0];

  constexpr size_t kInFlight = 3;
  std::atomic<size_t> completed{0};
  std::vector<std::thread> holders;
  for (size_t i = 0; i < kInFlight; ++i) {
    holders.emplace_back([&] {
      StatusOr<Client> client = Connect();
      ASSERT_TRUE(client.ok()) << client.status();
      StatusOr<RepairResult> result =
          client->Submit(travel.name, {}, travel.csv);
      if (result.ok() && result->csv == travel.expected) ++completed;
    });
  }
  // The stall hook can only park as many requests as the pool has
  // workers; on a small machine the rest wait in the pool queue. Wait
  // until every request has been admitted (in flight) and the workers
  // that can park have parked — only then is "Shutdown must drain all
  // three" actually on the table.
  const size_t parked =
      std::min(kInFlight, ThreadPool::Global().num_workers());
  while (stalled.load() < parked || daemon_->in_flight() < kInFlight) {
    std::this_thread::yield();
  }

  // Shutdown must wait for all three; release them shortly after it
  // starts draining.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  });
  daemon_->Shutdown();
  releaser.join();
  for (std::thread& t : holders) t.join();
  EXPECT_EQ(completed.load(), kInFlight);
  EXPECT_EQ(daemon_->requests_served(), kInFlight);
}

TEST_F(ServeDaemonTest, EphemeralTcpPortServes) {
  DaemonOptions options;
  options.tcp_port = 0;
  StartDaemon(std::move(options), {0});
  ASSERT_GT(daemon_->port(), 0);
  ClientOptions client_options;
  client_options.tcp_port = daemon_->port();
  StatusOr<Client> client = Client::Connect(client_options);
  ASSERT_TRUE(client.ok()) << client.status();
  const Workload& travel = AllWorkloads()[0];
  StatusOr<RepairResult> result = client->Submit(travel.name, {},
                                                 travel.csv);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->csv, travel.expected);
}

// --- the real CLI child: SIGTERM drain + --port-file discovery ---

TEST(ServeCliTest, ServeChildPublishesPortAndDrainsOnSigterm) {
#ifndef FIXREP_CLI_PATH
  GTEST_SKIP() << "built without FIXREP_CLI_PATH";
#else
  const std::string cli = FIXREP_CLI_PATH;
  if (!std::ifstream(cli).good()) {
    GTEST_SKIP() << "fixrep_cli not built at " << cli;
  }
  const Workload& travel = AllWorkloads()[0];
  const std::string port_file = TempPath("cli_port.txt");
  std::remove(port_file.c_str());
  const std::string ruleset = "travel=" + travel.spec;

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    execl(cli.c_str(), cli.c_str(), "serve", "--port", "0", "--port-file",
          port_file.c_str(), "--ruleset", ruleset.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }

  // The port file appears only after the daemon is bound and serving.
  int port = 0;
  for (int i = 0; i < 200 && port == 0; ++i) {
    std::ifstream in(port_file);
    if (!(in >> port)) {
      port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  ASSERT_GT(port, 0) << "daemon never published its port";

  ClientOptions options;
  options.tcp_port = port;
  StatusOr<Client> client = Client::Connect(options);
  ASSERT_TRUE(client.ok()) << client.status();
  StatusOr<RepairResult> result = client->Submit("travel", {}, travel.csv);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->csv, travel.expected);

  ASSERT_EQ(kill(child, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  std::remove(port_file.c_str());
#endif
}

}  // namespace
}  // namespace fixrep::serve
