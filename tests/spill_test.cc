// Out-of-core RowStore: block spilling, mmap read-back, LRU eviction,
// pins, and budget-floor semantics (docs/storage.md).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"
#include "relation/row_store.h"

namespace fixrep {
namespace {

constexpr size_t kArity = 3;
constexpr size_t kBlockBytes =
    RowStore::kRowsPerBlock * kArity * sizeof(ValueId);

// Deterministic cell pattern so any lost or torn block is detected.
ValueId CellValue(size_t row, size_t attr) {
  return static_cast<ValueId>(row * 31 + attr * 7 + 1);
}

void AppendRows(RowStore* store, size_t rows) {
  for (size_t i = 0; i < rows; ++i) {
    const size_t r = store->num_rows();
    TupleSpan span = store->AppendRowUninit();
    for (size_t a = 0; a < kArity; ++a) span[a] = CellValue(r, a);
  }
}

void ExpectAllRows(const RowStore& store) {
  for (size_t r = 0; r < store.num_rows(); ++r) {
    const TupleRef row = store.row(r);
    for (size_t a = 0; a < kArity; ++a) {
      ASSERT_EQ(row[a], CellValue(r, a)) << "row " << r << " attr " << a;
    }
  }
}

TEST(SpillTest, FlatStoreReportsNoSpillState) {
  RowStore store(kArity);
  AppendRows(&store, 10);
  EXPECT_FALSE(store.spilling());
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_EQ(store.spilled_blocks(), 0u);
  EXPECT_EQ(store.spill_file_bytes(), 0u);
}

TEST(SpillTest, ZeroArityCannotSpill) {
  RowStore store(0);
  EXPECT_FALSE(store.EnableSpill(1).ok());
  EXPECT_FALSE(store.spilling());
}

TEST(SpillTest, UnlimitedBudgetKeepsEverythingResident) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(0).ok());  // 0 = machinery on, no eviction
  AppendRows(&store, 3 * RowStore::kRowsPerBlock + 17);
  EXPECT_TRUE(store.spilling());
  EXPECT_EQ(store.spilled_blocks(), 0u);
  EXPECT_EQ(store.spill_file_bytes(), 0u);
  EXPECT_EQ(store.resident_bytes(), 4 * kBlockBytes);
  ExpectAllRows(store);
}

TEST(SpillTest, TinyBudgetDegradesToWorkingSetFloor) {
  // A 1-byte budget cannot be honored; the effective budget is the floor
  // (tail + one in-flight block, no pins), never a deadlock.
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  AppendRows(&store, 4 * RowStore::kRowsPerBlock);
  EXPECT_EQ(store.effective_budget_bytes(), 2 * kBlockBytes);
  EXPECT_LE(store.resident_bytes(), store.effective_budget_bytes());
  EXPECT_GT(store.spilled_blocks(), 0u);
  EXPECT_GT(store.spill_file_bytes(), 0u);
  // Sequential re-read maps each spilled block back in and must still
  // respect the budget afterwards.
  ExpectAllRows(store);
  EXPECT_LE(store.resident_bytes(), store.effective_budget_bytes());
}

TEST(SpillTest, BudgetBoundsResidencyDuringFillAndScan) {
  RowStore store(kArity);
  const size_t budget = 4 * kBlockBytes;
  ASSERT_TRUE(store.EnableSpill(budget).ok());
  AppendRows(&store, 8 * RowStore::kRowsPerBlock + 5);
  EXPECT_EQ(store.effective_budget_bytes(), budget);
  EXPECT_LE(store.resident_bytes(), budget);
  EXPECT_LE(store.peak_resident_bytes(), budget + kBlockBytes);
  ExpectAllRows(store);
  EXPECT_LE(store.resident_bytes(), budget);
  EXPECT_GE(store.spilled_blocks(), 8u + 1u - budget / kBlockBytes);
}

TEST(SpillTest, WritesSurviveEvictionRoundTrip) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  AppendRows(&store, 5 * RowStore::kRowsPerBlock);
  // Rewrite one cell in block 0 (long since spilled): the write loads the
  // block back into heap memory.
  const ValueId sentinel = static_cast<ValueId>(999999);
  store.WriteCell(7, 1, sentinel);
  // Force block 0 out again by touching every other block.
  for (size_t b = 1; b < store.num_blocks(); ++b) {
    (void)store.row(b * RowStore::kRowsPerBlock);
  }
  EXPECT_EQ(store.cell(7, 1), sentinel);  // mapped back from disk
  EXPECT_EQ(store.cell(7, 0), CellValue(7, 0));
  EXPECT_EQ(store.cell(7, 2), CellValue(7, 2));
}

TEST(SpillTest, PinRaisesFloorAndNestsAcrossEviction) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  AppendRows(&store, 6 * RowStore::kRowsPerBlock);
  EXPECT_EQ(store.effective_budget_bytes(), 2 * kBlockBytes);

  store.PinBlock(0);
  EXPECT_EQ(store.effective_budget_bytes(), 3 * kBlockBytes);
  store.PinBlock(0);  // pins nest; floor counts blocks, not pin count
  EXPECT_EQ(store.effective_budget_bytes(), 3 * kBlockBytes);

  // Scan everything: block 0 must stay addressable (and correct) while
  // every other block pages through the tiny budget.
  ExpectAllRows(store);
  const TupleRef pinned_row = store.row(5);
  for (size_t b = 1; b < store.num_blocks(); ++b) {
    (void)store.row(b * RowStore::kRowsPerBlock);
  }
  // The view taken while pinned is still valid: no transition evicted it.
  EXPECT_EQ(pinned_row[0], CellValue(5, 0));

  store.UnpinBlock(0);
  store.UnpinBlock(0);
  EXPECT_EQ(store.effective_budget_bytes(), 2 * kBlockBytes);
}

TEST(SpillTest, MakeBlockWritableGivesPlainStoresUnderPins) {
  // The block-wise parallel driver contract: pin + MakeBlockWritable up
  // front, then concurrent lock-free reads/writes inside the block.
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  const size_t rows = 3 * RowStore::kRowsPerBlock;
  AppendRows(&store, rows);

  for (size_t b = 0; b < store.num_blocks(); ++b) {
    store.PinBlock(b);
    store.MakeBlockWritable(b);
    const size_t begin = b * RowStore::kRowsPerBlock;
    const size_t end = begin + store.rows_in_block(b);
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        for (size_t r = begin + w; r < end; r += 4) {
          TupleSpan span = store.WriteRow(r);
          span[2] = static_cast<ValueId>(span[0] + span[1]);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    store.UnpinBlock(b);
  }
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_EQ(store.cell(r, 2),
              static_cast<ValueId>(CellValue(r, 0) + CellValue(r, 1)));
  }
}

TEST(SpillTest, PartialTailBlockGeometry) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(0).ok());
  AppendRows(&store, RowStore::kRowsPerBlock + 3);
  EXPECT_EQ(store.num_blocks(), 2u);
  EXPECT_EQ(store.rows_in_block(0), RowStore::kRowsPerBlock);
  EXPECT_EQ(store.rows_in_block(1), 3u);
  EXPECT_EQ(store.capacity_rows(), 2 * RowStore::kRowsPerBlock);
}

TEST(SpillTest, ClearReusesSpillFileAcrossChunks) {
  // The streaming pipeline Clear()s one chunk store between chunks; the
  // spill file resets instead of growing without bound.
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  for (int chunk = 0; chunk < 3; ++chunk) {
    AppendRows(&store, 4 * RowStore::kRowsPerBlock);
    ExpectAllRows(store);
    EXPECT_LE(store.spill_file_bytes(), 4 * kBlockBytes);
    store.Clear();
    EXPECT_EQ(store.num_rows(), 0u);
    EXPECT_EQ(store.resident_bytes(), 0u);
    EXPECT_EQ(store.spilled_blocks(), 0u);
    EXPECT_EQ(store.spill_file_bytes(), 0u);
  }
}

TEST(SpillTest, PeakResidentTracksHighWaterMark) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(2 * kBlockBytes).ok());
  AppendRows(&store, 5 * RowStore::kRowsPerBlock);
  EXPECT_GE(store.peak_resident_bytes(), store.resident_bytes());
  EXPECT_GE(store.peak_resident_bytes(), 2 * kBlockBytes);
  const size_t peak = store.peak_resident_bytes();
  ExpectAllRows(store);  // paging within budget must not raise the peak
  EXPECT_LE(store.peak_resident_bytes(), peak + kBlockBytes);
}

TEST(SpillTest, EvictionPublishesMetrics) {
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
  }
  auto& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter("fixrep.spill.blocks_evicted")->Value();
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  AppendRows(&store, 4 * RowStore::kRowsPerBlock);
  EXPECT_GT(registry.GetCounter("fixrep.spill.blocks_evicted")->Value(),
            before);
}

TEST(SpillTest, MoveTransfersSpillState) {
  RowStore store(kArity);
  ASSERT_TRUE(store.EnableSpill(1).ok());
  AppendRows(&store, 3 * RowStore::kRowsPerBlock);
  RowStore moved(std::move(store));
  EXPECT_TRUE(moved.spilling());
  EXPECT_EQ(moved.num_rows(), 3 * RowStore::kRowsPerBlock);
  ExpectAllRows(moved);
}

}  // namespace
}  // namespace fixrep
