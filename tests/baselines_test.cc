#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/csm.h"
#include "baselines/editing.h"
#include "baselines/heu.h"
#include "baselines/union_find.h"
#include "datagen/travel.h"
#include "deps/violation.h"

namespace fixrep {
namespace {

TEST(UnionFindTest, BasicConnectivity) {
  UnionFind uf(6);
  EXPECT_FALSE(uf.Connected(0, 1));
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  uf.Union(3, 4);
  uf.Union(2, 4);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_FALSE(uf.Connected(5, 0));
}

TEST(UnionFindTest, FindIsStableUnderPathCompression) {
  UnionFind uf(100);
  for (size_t i = 1; i < 100; ++i) uf.Union(i - 1, i);
  const size_t root = uf.Find(0);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(uf.Find(i), root);
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "R", std::vector<std::string>{"country", "capital", "city"})),
        table_(schema_, pool_) {}

  // Majority of tuples carry the right capital; one is off.
  void FillMajorityTable() {
    table_.AppendRowStrings({"China", "Beijing", "a"});
    table_.AppendRowStrings({"China", "Beijing", "b"});
    table_.AppendRowStrings({"China", "Shanghai", "c"});  // error
    table_.AppendRowStrings({"Canada", "Ottawa", "d"});
    table_.AppendRowStrings({"Canada", "Toronto", "e"});  // error
    table_.AppendRowStrings({"Canada", "Ottawa", "f"});
  }

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table table_;
};

TEST_F(BaselineFixture, HeuFixesMinorityValues) {
  FillMajorityTable();
  const auto fd = ParseFd(*schema_, "country -> capital");
  HeuRepairer heu({fd});
  const auto result = heu.Repair(&table_);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.cells_changed, 2u);
  EXPECT_EQ(table_.CellString(2, 1), "Beijing");
  EXPECT_EQ(table_.CellString(4, 1), "Ottawa");
  EXPECT_TRUE(Satisfies(table_, fd));
}

TEST_F(BaselineFixture, HeuIsDeterministicOnTies) {
  table_.AppendRowStrings({"China", "Beijing", "a"});
  table_.AppendRowStrings({"China", "Shanghai", "b"});
  const auto fd = ParseFd(*schema_, "country -> capital");
  HeuRepairer heu({fd});
  heu.Repair(&table_);
  // Tie between Beijing and Shanghai: lexicographically smaller wins.
  EXPECT_EQ(table_.CellString(0, 1), "Beijing");
  EXPECT_EQ(table_.CellString(1, 1), "Beijing");
}

TEST_F(BaselineFixture, HeuHandlesMultipleFdsToFixpoint) {
  // capital errors ripple into a second FD whose LHS is capital.
  table_.AppendRowStrings({"China", "Beijing", "good"});
  table_.AppendRowStrings({"China", "Beijing", "good"});
  table_.AppendRowStrings({"China", "Peking", "bad"});
  const auto fd1 = ParseFd(*schema_, "country -> capital");
  const auto fd2 = ParseFd(*schema_, "capital -> city");
  HeuRepairer heu({fd1, fd2});
  const auto result = heu.Repair(&table_);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(Satisfies(table_, fd1));
  EXPECT_TRUE(Satisfies(table_, fd2));
  EXPECT_EQ(table_.CellString(2, 1), "Beijing");
  EXPECT_EQ(table_.CellString(2, 2), "good");
}

TEST_F(BaselineFixture, HeuSimilarityCostCanOverrulePlurality) {
  // Class values: zz x3, ab x2, ac x2. Plurality picks zz; the
  // similarity cost model ties zz/ab/ac at total cost 4.0 and the
  // deterministic tie-break picks the smallest string, ab — the two cost
  // models genuinely diverge here.
  table_.AppendRowStrings({"k", "zz", "1"});
  table_.AppendRowStrings({"k", "zz", "2"});
  table_.AppendRowStrings({"k", "zz", "3"});
  table_.AppendRowStrings({"k", "ab", "4"});
  table_.AppendRowStrings({"k", "ab", "5"});
  table_.AppendRowStrings({"k", "ac", "6"});
  table_.AppendRowStrings({"k", "ac", "7"});
  const auto fd = ParseFd(*schema_, "country -> capital");
  {
    Table plurality = table_;
    HeuRepairer heu({fd});
    heu.Repair(&plurality);
    EXPECT_EQ(plurality.CellString(0, 1), "zz");
    EXPECT_EQ(plurality.CellString(3, 1), "zz");
  }
  {
    Table similarity = table_;
    HeuOptions options;
    options.use_similarity_cost = true;
    HeuRepairer heu({fd}, options);
    heu.Repair(&similarity);
    EXPECT_EQ(similarity.CellString(0, 1), "ab");
    EXPECT_EQ(similarity.CellString(5, 1), "ab");
  }
}

TEST_F(BaselineFixture, HeuSimilarityCostPrefersCentroidValue) {
  // Typo cluster: 'Springfield' x2 against one-off typos; both models
  // pick the clean spelling, similarity because it is the centroid.
  table_.AppendRowStrings({"k", "Springfield", "1"});
  table_.AppendRowStrings({"k", "Springfield", "2"});
  table_.AppendRowStrings({"k", "Springfeld", "3"});
  const auto fd = ParseFd(*schema_, "country -> capital");
  HeuOptions options;
  options.use_similarity_cost = true;
  HeuRepairer heu({fd}, options);
  heu.Repair(&table_);
  EXPECT_EQ(table_.CellString(2, 1), "Springfield");
}

TEST_F(BaselineFixture, HeuNoopOnCleanData) {
  table_.AppendRowStrings({"China", "Beijing", "a"});
  table_.AppendRowStrings({"Japan", "Tokyo", "b"});
  HeuRepairer heu({ParseFd(*schema_, "country -> capital")});
  const auto result = heu.Repair(&table_);
  EXPECT_EQ(result.cells_changed, 0u);
  EXPECT_TRUE(result.consistent);
}

TEST_F(BaselineFixture, CsmProducesConsistentRepair) {
  FillMajorityTable();
  const auto fd = ParseFd(*schema_, "country -> capital");
  CsmRepairer csm({fd});
  const auto result = csm.Repair(&table_);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(Satisfies(table_, fd));
  EXPECT_GT(result.cells_changed, 0u);
}

TEST_F(BaselineFixture, CsmIsSeedDeterministic) {
  FillMajorityTable();
  Table copy1 = table_;
  Table copy2 = table_;
  const auto fd = ParseFd(*schema_, "country -> capital");
  CsmOptions options;
  options.seed = 99;
  CsmRepairer csm({fd}, options);
  csm.Repair(&copy1);
  csm.Repair(&copy2);
  for (size_t r = 0; r < copy1.num_rows(); ++r) {
    EXPECT_EQ(copy1.row(r), copy2.row(r));
  }
}

TEST_F(BaselineFixture, CsmDifferentSeedsCanDiffer) {
  // Csm samples from the repair space; different seeds may choose
  // different witnesses. (Not guaranteed per-seed-pair, so only check it
  // still repairs.)
  FillMajorityTable();
  const auto fd = ParseFd(*schema_, "country -> capital");
  CsmOptions options;
  options.seed = 1234;
  CsmRepairer csm({fd}, options);
  const auto result = csm.Repair(&table_);
  EXPECT_TRUE(result.consistent);
}

TEST(AutoEditTest, FiresOnEvidenceAloneAndBreaksCorrectCells) {
  TravelExample example;
  AutoEditRepairer edit(&example.rules);
  // r3 is (Peter, China, Tokyo, Tokyo, ICDE): country China is an error.
  // phi_1 as an editing rule sees country=China and forces capital to
  // Beijing even though Tokyo was correct — the Fig. 12(b) failure mode.
  Tuple r3 = example.dirty.row(2).ToTuple();
  edit.RepairTuple(r3);
  EXPECT_EQ(r3[2], example.pool->Find("Beijing"));
}

TEST(AutoEditTest, NoChangeWhenFactAlreadyPresent) {
  TravelExample example;
  AutoEditRepairer edit(&example.rules);
  Tuple r1 = example.dirty.row(0).ToTuple();  // clean China tuple, capital Beijing
  EXPECT_EQ(edit.RepairTuple(r1), 0u);
  EXPECT_EQ(r1, example.clean.row(0));
}

TEST(AutoEditTest, StillFixesTrueErrorsOnRhs) {
  TravelExample example;
  AutoEditRepairer edit(&example.rules);
  Tuple r4 = example.dirty.row(3).ToTuple();  // Canada/Toronto
  EXPECT_EQ(edit.RepairTuple(r4), 1u);
  EXPECT_EQ(r4, example.clean.row(3));
}

}  // namespace
}  // namespace fixrep
