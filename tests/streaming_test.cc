// The chunked streaming repair pipeline (repair/streaming.h): for every
// chunk size, engine width, and error policy, the streamed output —
// repaired CSV bytes AND quarantine diagnostics — is bit-identical to
// repairing the whole table in memory and writing it out.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/random.h"
#include "common/status.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/csv.h"
#include "relation/row_store.h"
#include "relation/table.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/rule_index.h"
#include "repair/streaming.h"
#include "rulegen/rulegen.h"
#include "rules/rule_io.h"
#include "testing_util.h"

namespace fixrep {
namespace {

uint64_t CounterValue(const char* name) {
  const Counter* counter = MetricsRegistry::Global().FindCounter(name);
  return counter == nullptr ? 0 : counter->Value();
}

std::string ToCsv(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

// One end-to-end streaming run over CSV text: reader -> session -> string.
struct StreamRun {
  std::string csv;
  StreamingRepairResult result;
  std::vector<Diagnostic> tuple_diagnostics;  // failed repairs
  std::vector<Diagnostic> row_diagnostics;    // malformed CSV records
};

struct StreamConfig {
  size_t chunk_rows = 1;
  size_t threads = 1;
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  size_t max_chase_steps = 0;
  OnErrorPolicy csv_policy = OnErrorPolicy::kAbort;
  size_t memory_budget_bytes = 0;  // > 0: spill chunk blocks to disk
  bool prune_columns = false;
};

StatusOr<StreamRun> RunStream(const std::string& csv_text,
                              std::shared_ptr<ValuePool> pool,
                              const CompiledRuleIndex& index,
                              const StreamConfig& config) {
  VectorQuarantineSink tuple_sink;
  VectorQuarantineSink row_sink;
  CsvReadOptions csv_options;
  csv_options.on_error = config.csv_policy;
  if (config.csv_policy == OnErrorPolicy::kQuarantine) {
    csv_options.quarantine = &row_sink;
  }
  std::istringstream in(csv_text);
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, "stream", std::move(pool), csv_options);
  if (!reader.ok()) return reader.status();

  StreamingRepairOptions options;
  options.chunk_rows = config.chunk_rows;
  options.repair.parallel.threads = config.threads;
  options.repair.on_error = config.on_error;
  if (config.on_error == OnErrorPolicy::kQuarantine) {
    options.repair.quarantine = &tuple_sink;
  }
  options.repair.max_chase_steps = config.max_chase_steps;
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.prune_columns = config.prune_columns;
  StreamingRepairSession session(&index, options);
  std::ostringstream out;
  StatusOr<StreamingRepairResult> result = session.Run(&reader.value(), out);
  if (!result.ok()) return result.status();

  StreamRun run;
  run.csv = out.str();
  run.result = result.value();
  run.tuple_diagnostics = tuple_sink.diagnostics();
  run.row_diagnostics = row_sink.diagnostics();
  return run;
}

void ExpectSameDiagnostics(const std::vector<Diagnostic>& got,
                           const std::vector<Diagnostic>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].line, want[i].line) << context << " #" << i;
    EXPECT_EQ(got[i].code, want[i].code) << context << " #" << i;
    EXPECT_EQ(got[i].message, want[i].message) << context << " #" << i;
    EXPECT_EQ(got[i].raw_text, want[i].raw_text) << context << " #" << i;
  }
}

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAllForTest(); }
};

// ------------------------------------------------------ running example --

TEST_F(StreamingTest, TravelExampleStreamsToTheCleanInstance) {
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  const std::string dirty_csv = ToCsv(example.dirty);
  const std::string want = ToCsv(example.clean);
  for (const size_t chunk_rows : {size_t{1}, size_t{2}, size_t{100}}) {
    const StatusOr<StreamRun> run = RunStream(
        dirty_csv, example.pool, index, {.chunk_rows = chunk_rows});
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->csv, want) << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(run->result.rows_emitted, example.dirty.num_rows());
    EXPECT_TRUE(run->tuple_diagnostics.empty());
  }
}

TEST_F(StreamingTest, EmptyInputEmitsHeaderOnly) {
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  Table empty(example.schema, example.pool);
  const StatusOr<StreamRun> run =
      RunStream(ToCsv(empty), example.pool, index, {.chunk_rows = 4});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->csv, ToCsv(empty));
  EXPECT_EQ(run->result.rows_emitted, 0u);
  EXPECT_EQ(run->result.chunks, 0u);
}

TEST_F(StreamingTest, ArityMismatchWithRulesIsMalformedInput) {
  TravelExample example;  // 5-attribute rules
  const CompiledRuleIndex index(&example.rules);
  const StatusOr<StreamRun> run =
      RunStream("a,b\n1,2\n", example.pool, index, {.chunk_rows = 1});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kMalformedInput);
}

// ------------------------------------------------------- random universe --

// Property: for random rule sets and random tables, chunked streaming at
// every chunk size — serial or pooled, memoized or not — emits exactly
// the bytes a whole-table serial repair would write.
TEST_F(StreamingTest, ChunkedRepairBitIdenticalToWholeTableSerial) {
  testing::RandomRuleUniverse universe;
  Rng rng(20260806);
  for (int round = 0; round < 10; ++round) {
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(12);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }
    Table table(universe.schema, universe.pool);
    const size_t num_rows = 1 + rng.Uniform(300);
    for (size_t r = 0; r < num_rows; ++r) {
      table.AppendRow(universe.RandomTuple(&rng));
    }
    const std::string input_csv = ToCsv(table);

    Table reference = table;
    FastRepairer repairer(&rules);
    repairer.RepairTable(&reference);
    const std::string want = ToCsv(reference);

    const CompiledRuleIndex index(&rules);
    for (const size_t chunk_rows :
         {size_t{1}, size_t{7}, size_t{1024}, num_rows}) {
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        const StatusOr<StreamRun> run =
            RunStream(input_csv, universe.pool, index,
                      {.chunk_rows = chunk_rows, .threads = threads});
        ASSERT_TRUE(run.ok()) << run.status().message();
        ASSERT_EQ(run->csv, want) << "round=" << round
                                  << " chunk_rows=" << chunk_rows
                                  << " threads=" << threads;
        EXPECT_EQ(run->result.rows_emitted, num_rows);
      }
    }
  }
}

// ---------------------------------------------------- generated datasets --

// Shared shape of the hosp/uis checks: corrupt a generated clean table,
// learn rules from the (clean, dirty) pair, and require streaming at
// every chunk size to reproduce the whole-table repair byte for byte.
void ExpectStreamingMatchesWholeTable(const GeneratedData& data,
                                      const Table& dirty,
                                      const RuleSet& rules) {
  const std::string input_csv = ToCsv(dirty);
  Table reference = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&reference);
  const std::string want = ToCsv(reference);
  EXPECT_NE(want, input_csv) << "noise should leave something to repair";

  const CompiledRuleIndex index(&rules);
  for (const size_t chunk_rows :
       {size_t{1}, size_t{7}, size_t{1024}, dirty.num_rows()}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const StatusOr<StreamRun> run =
          RunStream(input_csv, data.pool, index,
                    {.chunk_rows = chunk_rows, .threads = threads});
      ASSERT_TRUE(run.ok()) << run.status().message();
      ASSERT_EQ(run->csv, want) << "chunk_rows=" << chunk_rows
                                << " threads=" << threads;
      EXPECT_EQ(run->result.rows_emitted, dirty.num_rows());
    }
  }
}

TEST_F(StreamingTest, HospGeneratedDataStreamsBitIdentically) {
  HospOptions options;
  options.rows = 800;
  options.num_hospitals = 60;
  options.num_measures = 8;
  const GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 200;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ASSERT_GT(rules.size(), 0u);
  ExpectStreamingMatchesWholeTable(data, dirty, rules);
}

TEST_F(StreamingTest, UisGeneratedDataStreamsBitIdentically) {
  UisOptions options;
  options.rows = 600;
  options.duplicate_ratio = 0.4;  // repeated people so rules have support
  options.num_zips = 40;
  const GeneratedData data = GenerateUis(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 100;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ASSERT_GT(rules.size(), 0u);
  ExpectStreamingMatchesWholeTable(data, dirty, rules);
}

// ---------------------------------------------------- quarantine ordering --

// Cascading pair from the quarantine suite: (name = flag) tuples need two
// chase pops, so max_chase_steps = 1 makes exactly those tuples fail.
RuleSet CascadeRules(std::shared_ptr<const Schema> schema,
                     std::shared_ptr<ValuePool> pool) {
  const std::string text =
      "RULE\n"
      "  IF country = China\n"
      "  WRONG capital IN Shanghai | Hongkong\n"
      "  THEN capital = Beijing\n"
      "END\n"
      "RULE\n"
      "  IF name = flag\n"
      "  WRONG country IN Chn\n"
      "  THEN country = China\n"
      "END\n";
  return ParseRulesFromString(text, std::move(schema), std::move(pool));
}

class StreamingQuarantineTest : public StreamingTest {
 protected:
  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital", "name"});
  RuleSet rules_ = CascadeRules(schema_, pool_);

  Table MakeTable(const std::vector<std::vector<std::string>>& rows) {
    Table table(schema_, pool_);
    for (const auto& row : rows) table.AppendRowStrings(row);
    return table;
  }
};

// Failing tuples land on both sides of every chunk boundary; the streamed
// diagnostics must still carry whole-table row indices, in row order,
// with the same messages and preserved raw values as an in-memory run.
TEST_F(StreamingQuarantineTest, DiagnosticsMatchWholeTableLenientRepair) {
  Table table = MakeTable({
      {"China", "Shanghai", "x"},   // one pop: fine under budget 1
      {"Chn", "Shanghai", "flag"},  // cascade: budget-exhausted
      {"France", "Paris", "y"},
      {"Chn", "Hongkong", "flag"},  // cascade: budget-exhausted
      {"China", "Hongkong", "z"},   // one pop: fine
      {"Chn", "Shanghai", "flag"},  // cascade: budget-exhausted
  });
  const std::string input_csv = ToCsv(table);
  const CompiledRuleIndex index(&rules_);

  Table reference = table;
  VectorQuarantineSink reference_sink;
  LenientRepairOptions reference_options;
  reference_options.parallel.threads = 1;
  reference_options.quarantine = &reference_sink;
  reference_options.max_chase_steps = 1;
  const LenientRepairResult reference_result =
      ParallelRepairTableLenient(index, &reference, reference_options);
  ASSERT_EQ(reference_result.tuples_quarantined, 3u);
  const std::string want = ToCsv(reference);

  for (const size_t chunk_rows :
       {size_t{1}, size_t{2}, size_t{3}, size_t{6}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const std::string context = "chunk_rows=" + std::to_string(chunk_rows) +
                                  " threads=" + std::to_string(threads);
      const StatusOr<StreamRun> run =
          RunStream(input_csv, pool_, index,
                    {.chunk_rows = chunk_rows,
                     .threads = threads,
                     .on_error = OnErrorPolicy::kQuarantine,
                     .max_chase_steps = 1});
      ASSERT_TRUE(run.ok()) << run.status().message();
      EXPECT_EQ(run->csv, want) << context;
      EXPECT_EQ(run->result.tuples_quarantined, 3u) << context;
      ExpectSameDiagnostics(run->tuple_diagnostics,
                            reference_sink.diagnostics(), context);
    }
  }
}

TEST_F(StreamingQuarantineTest, SkipModeDropsFixesButKeepsRowsAndBytes) {
  Table table = MakeTable({
      {"Chn", "Shanghai", "flag"},
      {"China", "Shanghai", "x"},
  });
  const CompiledRuleIndex index(&rules_);
  const StatusOr<StreamRun> run =
      RunStream(ToCsv(table), pool_, index,
                {.chunk_rows = 1,
                 .on_error = OnErrorPolicy::kSkip,
                 .max_chase_steps = 1});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result.tuples_quarantined, 1u);
  EXPECT_TRUE(run->tuple_diagnostics.empty());  // skip: no sink traffic
  // Failed tuple preserved verbatim, clean tuple repaired.
  EXPECT_EQ(run->csv,
            "country,capital,name\nChn,Shanghai,flag\nChina,Beijing,x\n");
}

// Malformed CSV records and failing tuples in one stream: record
// diagnostics carry input ordinals, tuple diagnostics carry output-row
// indices, and both match the non-streaming lenient pipeline exactly.
TEST_F(StreamingQuarantineTest, MalformedRecordsKeepGlobalOrdinals) {
  const std::string input_csv =
      "country,capital,name\n"
      "China,Shanghai,x\n"         // record 0 -> output row 0
      "bad,row,with,too,many\n"    // record 1: arity mismatch
      "Chn,Shanghai,flag\n"        // record 2 -> output row 1, budget fail
      "France,Paris\n"             // record 3: arity mismatch
      "France,Paris,y\n";          // record 4 -> output row 2

  // Non-streaming reference: lenient read, then lenient whole-table
  // repair.
  VectorQuarantineSink reference_rows;
  CsvReadOptions read_options;
  read_options.on_error = OnErrorPolicy::kQuarantine;
  read_options.quarantine = &reference_rows;
  std::istringstream in(input_csv);
  StatusOr<Table> reference = ReadCsvLenient(in, "R", pool_, read_options);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->num_rows(), 3u);
  const CompiledRuleIndex index(&rules_);
  VectorQuarantineSink reference_tuples;
  LenientRepairOptions repair_options;
  repair_options.parallel.threads = 1;
  repair_options.quarantine = &reference_tuples;
  repair_options.max_chase_steps = 1;
  ParallelRepairTableLenient(index, &reference.value(), repair_options);
  const std::string want = ToCsv(reference.value());

  for (const size_t chunk_rows : {size_t{1}, size_t{2}, size_t{10}}) {
    MetricsRegistry::Global().ResetAllForTest();
    const std::string context = "chunk_rows=" + std::to_string(chunk_rows);
    const StatusOr<StreamRun> run =
        RunStream(input_csv, pool_, index,
                  {.chunk_rows = chunk_rows,
                   .on_error = OnErrorPolicy::kQuarantine,
                   .max_chase_steps = 1,
                   .csv_policy = OnErrorPolicy::kQuarantine});
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->csv, want) << context;
    ExpectSameDiagnostics(run->row_diagnostics,
                          reference_rows.diagnostics(), context);
    ExpectSameDiagnostics(run->tuple_diagnostics,
                          reference_tuples.diagnostics(), context);
    ASSERT_EQ(run->row_diagnostics.size(), 2u);
    EXPECT_EQ(run->row_diagnostics[0].line, 1u);  // input record ordinal
    EXPECT_EQ(run->row_diagnostics[1].line, 3u);
    ASSERT_EQ(run->tuple_diagnostics.size(), 1u);
    EXPECT_EQ(run->tuple_diagnostics[0].line, 1u);  // output-row index
    EXPECT_EQ(CounterValue("fixrep.quarantine.rows"), 2u) << context;
    EXPECT_EQ(CounterValue("fixrep.quarantine.tuples"), 1u) << context;
  }
}

TEST_F(StreamingQuarantineTest, StreamingCountersTickPerChunkAndRow) {
  Table table = MakeTable({
      {"China", "Shanghai", "a"},
      {"China", "Shanghai", "b"},
      {"China", "Shanghai", "c"},
      {"China", "Shanghai", "d"},
      {"China", "Shanghai", "e"},
  });
  const CompiledRuleIndex index(&rules_);
  const StatusOr<StreamRun> run =
      RunStream(ToCsv(table), pool_, index, {.chunk_rows = 2});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result.chunks, 3u);  // 2 + 2 + 1
  EXPECT_EQ(run->result.rows_emitted, 5u);
  EXPECT_EQ(run->result.cells_changed, 5u);
  EXPECT_EQ(CounterValue("fixrep.streaming.chunks"), 3u);
  EXPECT_EQ(CounterValue("fixrep.streaming.rows"), 5u);
}

// ------------------------------------------------------- out-of-core spill --

// Property: with the whole input as one chunk, every spill budget — tiny
// (degrades to the working-set floor), a few blocks, unlimited — emits
// exactly the bytes of an in-memory run, serial and pooled.
void ExpectSpillConfigsMatch(const std::string& input_csv,
                             std::shared_ptr<ValuePool> pool,
                             const CompiledRuleIndex& index,
                             const std::string& want, size_t num_rows) {
  const size_t block_bytes =
      RowStore::kRowsPerBlock * index.arity() * sizeof(ValueId);
  for (const size_t budget : {size_t{1}, 4 * block_bytes, size_t{0}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const std::string context = "budget=" + std::to_string(budget) +
                                  " threads=" + std::to_string(threads);
      const StatusOr<StreamRun> run =
          RunStream(input_csv, pool, index,
                    {.chunk_rows = ~size_t{0},  // spilling, not chunking,
                     .threads = threads,        // bounds resident memory
                     .memory_budget_bytes = budget});
      ASSERT_TRUE(run.ok()) << context << ": " << run.status().message();
      ASSERT_EQ(run->csv, want) << context;
      EXPECT_EQ(run->result.rows_emitted, num_rows) << context;
      if (budget == 1) {
        // Floor: tail + in-flight + (parallel) one pinned block, plus one
        // transient block between NoteResident and eviction.
        EXPECT_LE(run->result.peak_resident_bytes, 4 * block_bytes)
            << context;
      } else if (budget > 0) {
        EXPECT_LE(run->result.peak_resident_bytes, budget + block_bytes)
            << context;
      }
    }
  }
}

TEST_F(StreamingTest, SpillBudgetsBitIdenticalOnTravelExample) {
  // Single-block table: exercises the spill machinery (budget floor, file
  // lifecycle) without eviction pressure.
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  ExpectSpillConfigsMatch(ToCsv(example.dirty), example.pool, index,
                          ToCsv(example.clean), example.dirty.num_rows());
}

TEST_F(StreamingTest, SpillBudgetsBitIdenticalOnGeneratedHosp) {
  // Five blocks of rows: a tiny budget forces real eviction and mmap
  // read-back mid-repair.
  HospOptions options;
  options.rows = 4 * RowStore::kRowsPerBlock + 1500;
  options.num_hospitals = 120;
  const GeneratedData data = GenerateHosp(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 150;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ASSERT_GT(rules.size(), 0u);

  Table reference = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&reference);
  const CompiledRuleIndex index(&rules);
  ExpectSpillConfigsMatch(ToCsv(dirty), data.pool, index, ToCsv(reference),
                          dirty.num_rows());
}

TEST_F(StreamingTest, SpillBudgetsBitIdenticalOnGeneratedUis) {
  UisOptions options;
  options.rows = 600;
  options.duplicate_ratio = 0.4;
  options.num_zips = 40;
  const GeneratedData data = GenerateUis(options);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
  RuleGenOptions rulegen;
  rulegen.max_rules = 100;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ASSERT_GT(rules.size(), 0u);

  Table reference = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&reference);
  const CompiledRuleIndex index(&rules);
  ExpectSpillConfigsMatch(ToCsv(dirty), data.pool, index, ToCsv(reference),
                          dirty.num_rows());
}

// Spilled blocks under the lenient block-wise driver: quarantine
// diagnostics and bytes still match the in-memory lenient run, with
// failing tuples scattered across block boundaries.
TEST_F(StreamingQuarantineTest, SpillWithQuarantineMatchesInMemory) {
  const size_t rows = 2 * RowStore::kRowsPerBlock + 700;
  Table table(schema_, pool_);
  for (size_t r = 0; r < rows; ++r) {
    switch (r % 5) {
      case 0:
        table.AppendRowStrings({"China", "Shanghai", "x"});
        break;
      case 3:  // cascade: budget-exhausted under max_chase_steps = 1
        table.AppendRowStrings({"Chn", "Hongkong", "flag"});
        break;
      default:
        table.AppendRowStrings({"France", "Paris", "y"});
        break;
    }
  }
  const std::string input_csv = ToCsv(table);
  const CompiledRuleIndex index(&rules_);

  Table reference = table;
  VectorQuarantineSink reference_sink;
  LenientRepairOptions reference_options;
  reference_options.parallel.threads = 1;
  reference_options.quarantine = &reference_sink;
  reference_options.max_chase_steps = 1;
  const LenientRepairResult reference_result =
      ParallelRepairTableLenient(index, &reference, reference_options);
  ASSERT_GT(reference_result.tuples_quarantined, 0u);
  const std::string want = ToCsv(reference);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    const std::string context = "threads=" + std::to_string(threads);
    const StatusOr<StreamRun> run =
        RunStream(input_csv, pool_, index,
                  {.chunk_rows = ~size_t{0},
                   .threads = threads,
                   .on_error = OnErrorPolicy::kQuarantine,
                   .max_chase_steps = 1,
                   .memory_budget_bytes = 1});
    ASSERT_TRUE(run.ok()) << context << ": " << run.status().message();
    ASSERT_EQ(run->csv, want) << context;
    EXPECT_EQ(run->result.tuples_quarantined,
              reference_result.tuples_quarantined)
        << context;
    ExpectSameDiagnostics(run->tuple_diagnostics,
                          reference_sink.diagnostics(), context);
  }
}

// -------------------------------------------------------- column pruning --

// A schema with one column no rule mentions, whose raw text needs CSV
// requoting — the pass-through sidecar must reproduce it byte for byte.
class StreamingPruneTest : public StreamingTest {
 protected:
  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R",
      std::vector<std::string>{"country", "capital", "name", "note"});
  RuleSet rules_ = CascadeRules(schema_, pool_);

  Table MakeTable() {
    Table table(schema_, pool_);
    table.AppendRowStrings({"China", "Shanghai", "x", "plain"});
    table.AppendRowStrings({"China", "Hongkong", "y", "needs,quoting"});
    table.AppendRowStrings({"France", "Paris", "z", "embedded \"quote\""});
    table.AppendRowStrings({"China", "Shanghai", "w", ""});
    table.AppendRowStrings({"Chn", "Hongkong", "flag", "multi\nline"});
    return table;
  }
};

TEST_F(StreamingPruneTest, PrunedStreamBitIdenticalToUnpruned) {
  Table reference = MakeTable();
  const CompiledRuleIndex index(&rules_);
  ASSERT_FALSE(index.mentioned_attrs().Contains(3));  // note: unmentioned
  FastRepairer repairer(&rules_);
  repairer.RepairTable(&reference);
  const std::string want = ToCsv(reference);
  const std::string input_csv = ToCsv(MakeTable());

  for (const size_t chunk_rows : {size_t{1}, size_t{2}, size_t{100}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const std::string context = "chunk_rows=" + std::to_string(chunk_rows) +
                                  " threads=" + std::to_string(threads);
      const StatusOr<StreamRun> run =
          RunStream(input_csv, pool_, index,
                    {.chunk_rows = chunk_rows,
                     .threads = threads,
                     .prune_columns = true});
      ASSERT_TRUE(run.ok()) << context << ": " << run.status().message();
      ASSERT_EQ(run->csv, want) << context;
      EXPECT_EQ(run->result.columns_pruned, 1u) << context;
    }
  }
}

TEST_F(StreamingPruneTest, PruneWithQuarantineKeepsFullRawText) {
  // Diagnostics must carry the complete original tuple — including the
  // pruned column's raw text — exactly as an unpruned run renders it.
  const std::string input_csv = ToCsv(MakeTable());
  const CompiledRuleIndex index(&rules_);

  Table reference = MakeTable();
  VectorQuarantineSink reference_sink;
  LenientRepairOptions reference_options;
  reference_options.parallel.threads = 1;
  reference_options.quarantine = &reference_sink;
  reference_options.max_chase_steps = 1;
  ParallelRepairTableLenient(index, &reference, reference_options);
  ASSERT_EQ(reference_sink.size(), 1u);  // the cascade row
  const std::string want = ToCsv(reference);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    const std::string context = "threads=" + std::to_string(threads);
    const StatusOr<StreamRun> run =
        RunStream(input_csv, pool_, index,
                  {.chunk_rows = 2,
                   .threads = threads,
                   .on_error = OnErrorPolicy::kQuarantine,
                   .max_chase_steps = 1,
                   .prune_columns = true});
    ASSERT_TRUE(run.ok()) << context << ": " << run.status().message();
    ASSERT_EQ(run->csv, want) << context;
    ExpectSameDiagnostics(run->tuple_diagnostics,
                          reference_sink.diagnostics(), context);
  }
}

TEST_F(StreamingPruneTest, PruningComposesWithSpill) {
  const std::string input_csv = ToCsv(MakeTable());
  const CompiledRuleIndex index(&rules_);
  Table reference = MakeTable();
  FastRepairer repairer(&rules_);
  repairer.RepairTable(&reference);
  const StatusOr<StreamRun> run =
      RunStream(input_csv, pool_, index,
                {.chunk_rows = ~size_t{0},
                 .threads = 4,
                 .memory_budget_bytes = 1,
                 .prune_columns = true});
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->csv, ToCsv(reference));
  EXPECT_EQ(run->result.columns_pruned, 1u);
  EXPECT_EQ(CounterValue("fixrep.streaming.columns_pruned"), 1u);
}

}  // namespace
}  // namespace fixrep
