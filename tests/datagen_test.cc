#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/active_domain.h"
#include "deps/violation.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

HospOptions SmallHosp() {
  HospOptions options;
  options.rows = 5000;
  options.num_hospitals = 300;
  options.num_measures = 20;
  return options;
}

UisOptions SmallUis() {
  UisOptions options;
  options.rows = 3000;
  return options;
}

TEST(TravelExampleTest, DirtyDiffersFromCleanInExactlyFourCells) {
  TravelExample example;
  size_t diffs = 0;
  for (size_t r = 0; r < example.dirty.num_rows(); ++r) {
    for (size_t a = 0; a < example.dirty.num_columns(); ++a) {
      diffs += example.dirty.cell(r, static_cast<AttrId>(a)) !=
               example.clean.cell(r, static_cast<AttrId>(a));
    }
  }
  EXPECT_EQ(diffs, 4u);  // r2[capital], r2[city], r3[country], r4[capital]
}

TEST(TravelExampleTest, RulesAreConsistent) {
  TravelExample example;
  EXPECT_TRUE(IsConsistentChar(example.rules));
  EXPECT_TRUE(IsConsistentEnum(example.rules));
}

TEST(TravelExampleTest, MasterDataAgreesWithClean) {
  TravelExample example;
  // Every (country, capital) pair in the clean table appears in Dm.
  for (size_t r = 0; r < example.clean.num_rows(); ++r) {
    bool found = false;
    for (size_t m = 0; m < example.master.num_rows(); ++m) {
      if (example.master.cell(m, 0) == example.clean.cell(r, 1) &&
          example.master.cell(m, 1) == example.clean.cell(r, 2)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "row " << r;
  }
}

TEST(HospGeneratorTest, ProducesRequestedRows) {
  const auto data = GenerateHosp(SmallHosp());
  EXPECT_EQ(data.clean.num_rows(), 5000u);
  EXPECT_EQ(data.schema->arity(), 17u);
  EXPECT_EQ(data.fds.size(), 5u);
}

TEST(HospGeneratorTest, CleanDataSatisfiesAllFds) {
  const auto data = GenerateHosp(SmallHosp());
  for (const auto& fd : data.fds) {
    EXPECT_TRUE(Satisfies(data.clean, fd))
        << FormatFd(*data.schema, fd) << " violated by clean data";
  }
}

TEST(HospGeneratorTest, DeterministicForSameSeed) {
  const auto a = GenerateHosp(SmallHosp());
  const auto b = GenerateHosp(SmallHosp());
  ASSERT_EQ(a.clean.num_rows(), b.clean.num_rows());
  for (size_t r = 0; r < a.clean.num_rows(); ++r) {
    ASSERT_EQ(a.clean.FormatRow(r), b.clean.FormatRow(r)) << "row " << r;
  }
}

TEST(HospGeneratorTest, DifferentSeedsDiffer) {
  auto options = SmallHosp();
  const auto a = GenerateHosp(options);
  options.seed ^= 0xdead;
  const auto b = GenerateHosp(options);
  size_t same = 0;
  for (size_t r = 0; r < 100; ++r) {
    same += a.clean.FormatRow(r) == b.clean.FormatRow(r);
  }
  EXPECT_LT(same, 100u);
}

TEST(HospGeneratorTest, ValuesRepeatAcrossRows) {
  // Zipf skew must give some hospitals many rows (repeated patterns are
  // what fixing rules need).
  const auto data = GenerateHosp(SmallHosp());
  const AttrId pn = data.schema->AttributeIndex("PN");
  const auto partition = PartitionBy(data.clean, {pn});
  size_t biggest = 0;
  for (const auto& [key, rows] : partition) {
    biggest = std::max(biggest, rows.size());
  }
  EXPECT_GT(biggest, 50u);
}

TEST(UisGeneratorTest, ProducesRequestedRows) {
  const auto data = GenerateUis(SmallUis());
  EXPECT_EQ(data.clean.num_rows(), 3000u);
  EXPECT_EQ(data.schema->arity(), 11u);
  EXPECT_EQ(data.fds.size(), 3u);
}

TEST(UisGeneratorTest, CleanDataSatisfiesAllFds) {
  const auto data = GenerateUis(SmallUis());
  for (const auto& fd : data.fds) {
    EXPECT_TRUE(Satisfies(data.clean, fd))
        << FormatFd(*data.schema, fd) << " violated by clean data";
  }
}

TEST(UisGeneratorTest, RecordIdsAreUnique) {
  const auto data = GenerateUis(SmallUis());
  const AttrId rid = data.schema->AttributeIndex("RecordID");
  EXPECT_EQ(PartitionBy(data.clean, {rid}).size(), data.clean.num_rows());
}

TEST(UisGeneratorTest, HasFewRepeatedPatterns) {
  // Most ssn groups are small — the property behind the paper's low uis
  // recall.
  const auto data = GenerateUis(SmallUis());
  const AttrId ssn = data.schema->AttributeIndex("ssn");
  const auto partition = PartitionBy(data.clean, {ssn});
  size_t singletons = 0;
  for (const auto& [key, rows] : partition) singletons += rows.size() == 1;
  EXPECT_GT(singletons, partition.size() / 3);
}

TEST(ConstraintAttributesTest, CollectsLhsAndRhs) {
  const auto data = GenerateUis(SmallUis());
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  // Everything except RecordID participates in a uis FD.
  EXPECT_EQ(attrs.size(), data.schema->arity() - 1);
  for (const AttrId a : attrs) {
    EXPECT_NE(data.schema->attribute_name(a), "RecordID");
  }
}

TEST(NoiseTest, RatesRoughlyHonored) {
  auto data = GenerateHosp(SmallHosp());
  Table dirty = data.clean;
  NoiseOptions options;
  options.noise_rate = 0.10;
  options.typo_share = 0.5;
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  const auto report = InjectNoise(&dirty, attrs, options);
  EXPECT_NEAR(static_cast<double>(report.rows_corrupted) / 5000, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(report.typos) / report.rows_corrupted, 0.5,
              0.1);
  EXPECT_EQ(report.typos + report.active_domain_errors,
            report.rows_corrupted);
}

TEST(NoiseTest, CorruptsOnlyConstraintAttributes) {
  auto data = GenerateHosp(SmallHosp());
  Table dirty = data.clean;
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  InjectNoise(&dirty, attrs, NoiseOptions{});
  std::vector<bool> allowed(data.schema->arity(), false);
  for (const AttrId a : attrs) allowed[static_cast<size_t>(a)] = true;
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (size_t a = 0; a < dirty.num_columns(); ++a) {
      if (dirty.cell(r, static_cast<AttrId>(a)) !=
          data.clean.cell(r, static_cast<AttrId>(a))) {
        EXPECT_TRUE(allowed[a]) << "non-constraint attribute corrupted";
      }
    }
  }
}

TEST(NoiseTest, EveryCorruptionChangesTheValue) {
  auto data = GenerateUis(SmallUis());
  Table dirty = data.clean;
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  const auto report = InjectNoise(&dirty, attrs, NoiseOptions{});
  size_t diffs = 0;
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (size_t a = 0; a < dirty.num_columns(); ++a) {
      diffs += dirty.cell(r, static_cast<AttrId>(a)) !=
               data.clean.cell(r, static_cast<AttrId>(a));
    }
  }
  EXPECT_EQ(diffs, report.rows_corrupted);
}

TEST(NoiseTest, ZeroRateIsNoop) {
  auto data = GenerateUis(SmallUis());
  Table dirty = data.clean;
  NoiseOptions options;
  options.noise_rate = 0.0;
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  const auto report = InjectNoise(&dirty, attrs, options);
  EXPECT_EQ(report.rows_corrupted, 0u);
}

TEST(NoiseTest, TypoShareExtremes) {
  auto data = GenerateUis(SmallUis());
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  {
    Table dirty = data.clean;
    NoiseOptions options;
    options.typo_share = 1.0;
    const auto report = InjectNoise(&dirty, attrs, options);
    EXPECT_EQ(report.active_domain_errors, 0u);
    EXPECT_GT(report.typos, 0u);
  }
  {
    Table dirty = data.clean;
    NoiseOptions options;
    options.typo_share = 0.0;
    const auto report = InjectNoise(&dirty, attrs, options);
    // Some attributes may fall back to typos when their active domain is
    // degenerate; for uis constraint attrs that should not happen.
    EXPECT_EQ(report.typos, 0u);
    EXPECT_GT(report.active_domain_errors, 0u);
  }
}

TEST(NoiseTest, ActiveDomainErrorsComeFromCleanDomain) {
  auto data = GenerateUis(SmallUis());
  Table dirty = data.clean;
  NoiseOptions options;
  options.typo_share = 0.0;
  const auto attrs = ConstraintAttributes(*data.schema, data.fds);
  InjectNoise(&dirty, attrs, options);
  const auto domains = ActiveDomains(data.clean);
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (const AttrId a : attrs) {
      const ValueId v = dirty.cell(r, a);
      if (v == data.clean.cell(r, a)) continue;
      const auto& domain = domains[static_cast<size_t>(a)];
      EXPECT_NE(std::find(domain.begin(), domain.end(), v), domain.end());
    }
  }
}

}  // namespace
}  // namespace fixrep
