#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "baselines/editing_master.h"

namespace fixrep {
namespace {

class MasterEditTest : public ::testing::Test {
 protected:
  MasterEditTest() {
    // eR1 from the paper's introduction: match country against the Cap
    // master relation and copy the master capital.
    EditingRule er1;
    er1.match_attrs = {example_.schema->AttributeIndex("country")};
    er1.master_match_attrs = {
        example_.master.schema().AttributeIndex("country")};
    er1.update_attr = example_.schema->AttributeIndex("capital");
    er1.master_update_attr =
        example_.master.schema().AttributeIndex("capital");
    rules_.push_back(er1);
  }

  TravelExample example_;
  std::vector<EditingRule> rules_;
};

TEST_F(MasterEditTest, OracleUserRepairsOnlyCertifiedTuples) {
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table = example_.dirty;
  const EditingStats stats = repairer.Repair(
      &table, EditingUserModel::kOracle, &example_.clean);
  // All four tuples have a country that matches master, so the user is
  // asked four times.
  EXPECT_EQ(stats.user_interactions, 4u);
  // r2 (China correct) and r4 (Canada correct) get their capitals fixed;
  // r1 is already right (fired, no change); r3's country is wrong, the
  // oracle says no.
  EXPECT_EQ(stats.cells_changed, 2u);
  EXPECT_EQ(table.CellString(1, 2), "Beijing");
  EXPECT_EQ(table.CellString(3, 2), "Ottawa");
  // r3 untouched: still (China, Tokyo) — editing rules cannot fix the
  // country error, only certify-and-copy the capital.
  EXPECT_EQ(table.CellString(2, 2), "Tokyo");
}

TEST_F(MasterEditTest, OracleRepairsAreGuaranteedCorrect) {
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table = example_.dirty;
  repairer.Repair(&table, EditingUserModel::kOracle, &example_.clean);
  // Every changed cell matches the ground truth (the editing-rules
  // guarantee).
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < table.num_columns(); ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      if (table.cell(r, attr) != example_.dirty.cell(r, attr)) {
        EXPECT_EQ(table.cell(r, attr), example_.clean.cell(r, attr));
      }
    }
  }
}

TEST_F(MasterEditTest, AlwaysYesIntroducesAnError) {
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table = example_.dirty;
  const EditingStats stats =
      repairer.Repair(&table, EditingUserModel::kAlwaysYes, nullptr);
  EXPECT_EQ(stats.user_interactions, 4u);
  // r3's wrong country (China) is now trusted: capital Tokyo (correct!)
  // gets overwritten with Beijing — the failure mode Fig. 12(b)
  // quantifies.
  EXPECT_EQ(table.CellString(2, 2), "Beijing");
  EXPECT_EQ(stats.cells_changed, 3u);
}

TEST_F(MasterEditTest, PatternConditionScopesTheRule) {
  // Restrict eR1 to ICDE tuples; r1 (SIGMOD) is no longer asked about.
  rules_[0].pattern_attrs = {example_.schema->AttributeIndex("conf")};
  rules_[0].pattern_values = {example_.pool->Intern("ICDE")};
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table = example_.dirty;
  const EditingStats stats = repairer.Repair(
      &table, EditingUserModel::kOracle, &example_.clean);
  EXPECT_EQ(stats.user_interactions, 3u);
}

TEST_F(MasterEditTest, NoMasterMatchNoInteraction) {
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table(example_.schema, example_.pool);
  table.AppendRowStrings({"Zoe", "Atlantis", "Nowhere", "x", "y"});
  const Table truth = table;
  const EditingStats stats =
      repairer.Repair(&table, EditingUserModel::kOracle, &truth);
  EXPECT_EQ(stats.user_interactions, 0u);
  EXPECT_EQ(stats.cells_changed, 0u);
}

TEST_F(MasterEditTest, OracleWithoutTruthAborts) {
  MasterEditRepairer repairer(rules_, &example_.master);
  Table table = example_.dirty;
  EXPECT_DEATH(repairer.Repair(&table, EditingUserModel::kOracle, nullptr),
               "ground truth");
}

}  // namespace
}  // namespace fixrep
