// Kernel-independence suite for the vectorized evidence-matching path
// (common/simd.h, CompiledRuleIndex::LookupBatch, FastRepairer row
// groups): every SIMD kernel must produce bit-identical hashes, probe
// results, repaired output, and chase-semantic metrics. The scalar
// kernel always participates, so the fallback path is exercised even on
// AVX2 machines. Labeled `simd` (also `repair`) — run the label under
// TSan to vet the pooled row-group path.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/csv.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/rule_index.h"
#include "repair/streaming.h"
#include "rulegen/rulegen.h"
#include "testing_util.h"

namespace fixrep {
namespace {

std::vector<SimdKernel> SupportedKernels() {
  std::vector<SimdKernel> kernels = {SimdKernel::kScalar};
  if (SimdKernelSupported(SimdKernel::kSse)) {
    kernels.push_back(SimdKernel::kSse);
  }
  if (SimdKernelSupported(SimdKernel::kAvx2)) {
    kernels.push_back(SimdKernel::kAvx2);
  }
  return kernels;
}

// Restores the process-wide active kernel on scope exit so tests that
// pin a kernel cannot leak it into later tests in the binary.
class SimdKernelGuard {
 public:
  SimdKernelGuard() : saved_(ActiveSimdKernel()) {}
  ~SimdKernelGuard() { SetSimdKernel(saved_); }

 private:
  SimdKernel saved_;
};

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(SimdKernelSupported(SimdKernel::kScalar));
  EXPECT_STREQ(SimdKernelName(SimdKernel::kScalar), "scalar");
  EXPECT_STREQ(SimdKernelName(SimdKernel::kSse), "sse");
  EXPECT_STREQ(SimdKernelName(SimdKernel::kAvx2), "avx2");
  // Best is one of the supported kernels by definition.
  EXPECT_TRUE(SimdKernelSupported(BestSupportedSimdKernel()));
}

TEST(SimdDispatchTest, SetSimdKernelRoundTrips) {
  SimdKernelGuard guard;
  for (const SimdKernel kernel : SupportedKernels()) {
    SetSimdKernel(kernel);
    EXPECT_EQ(ActiveSimdKernel(), kernel);
  }
}

// HashBatch is the function the kernels actually vectorize; everything
// downstream is shared scalar code. Bit-identity here, across sizes that
// straddle the SSE (2-wide) and AVX2 (4-wide) vector tails, is the core
// guarantee.
TEST(HashBatchTest, BitIdenticalAcrossKernelsAndSizes) {
  const std::vector<SimdKernel> kernels = SupportedKernels();
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                         size_t{4}, size_t{5}, size_t{7}, size_t{8},
                         size_t{15}, size_t{16}, size_t{17}, size_t{31},
                         size_t{33}, size_t{64}, size_t{100}}) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      // Half realistic packed keys (small attr, small value), half
      // arbitrary bit patterns.
      keys[i] = (i % 2 == 0)
                    ? CompiledRuleIndex::PackKey(
                          static_cast<AttrId>(i % 64),
                          static_cast<ValueId>(i * 13))
                    : SplitMix64(0x9e3779b97f4a7c15ULL * (i + 1));
    }
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) expected[i] = SplitMix64(keys[i]);
    for (const SimdKernel kernel : kernels) {
      std::vector<uint64_t> got(n, 0);
      HashBatch(kernel, keys.data(), n, got.data());
      EXPECT_EQ(got, expected)
          << "kernel " << SimdKernelName(kernel) << " n=" << n;
    }
  }
}

// LookupBatch fuzz: random rule universe, probe keys mixing real
// evidence cells, absent values, and packed null cells, at batch sizes
// straddling the 16-key sub-batch boundary. Every kernel must return
// exactly what per-key Lookup returns.
TEST(LookupBatchTest, MatchesScalarLookupOnFuzzedKeys) {
  testing::RandomRuleUniverse universe;
  Rng rng(0x51a7);
  RuleSet rules(universe.schema, universe.pool);
  for (int i = 0; i < 200; ++i) rules.Add(universe.RandomRule(&rng));
  const CompiledRuleIndex index(&rules);
  const auto arity = static_cast<AttrId>(universe.schema->arity());
  const std::vector<SimdKernel> kernels = SupportedKernels();

  for (const size_t n : {size_t{1}, size_t{2}, size_t{15}, size_t{16},
                         size_t{17}, size_t{33}, size_t{64}, size_t{129}}) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      const AttrId attr = static_cast<AttrId>(rng.Uniform(arity));
      ValueId value;
      const uint64_t mix = rng.Uniform(4);
      if (mix == 0) {
        value = kNullValue;  // a null cell's packed key
      } else if (mix == 1) {
        value = static_cast<ValueId>(1000000 + rng.Uniform(1000));  // absent
      } else {
        value = universe.Value(
            attr, static_cast<int>(
                      rng.Uniform(universe.values_per_attribute)));
      }
      keys[i] = CompiledRuleIndex::PackKey(attr, value);
    }
    for (const SimdKernel kernel : kernels) {
      std::vector<PostingRange> out(n);
      index.LookupBatch(kernel, keys.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        const AttrId attr = static_cast<AttrId>(keys[i] >> 32);
        const ValueId value = static_cast<ValueId>(
            static_cast<uint32_t>(keys[i]));
        const PostingRange expected = index.Lookup(attr, value);
        EXPECT_EQ(out[i].begin, expected.begin)
            << "kernel " << SimdKernelName(kernel) << " key " << i;
        EXPECT_EQ(out[i].end, expected.end)
            << "kernel " << SimdKernelName(kernel) << " key " << i;
      }
    }
  }
}

// MatchesFlat must agree with FixingRule::Matches on random tuples —
// it is the chase's candidate re-verification, flattened.
TEST(MatchesFlatTest, AgreesWithRuleMatches) {
  testing::RandomRuleUniverse universe;
  Rng rng(0xf1a7);
  RuleSet rules(universe.schema, universe.pool);
  for (int i = 0; i < 100; ++i) rules.Add(universe.RandomRule(&rng));
  const CompiledRuleIndex index(&rules);
  for (int trial = 0; trial < 500; ++trial) {
    const Tuple t = universe.RandomTuple(&rng);
    for (uint32_t i = 0; i < rules.size(); ++i) {
      ASSERT_EQ(index.MatchesFlat(i, TupleRef(t)),
                rules.rule(i).Matches(TupleRef(t)))
          << "rule " << i;
    }
  }
}

// --- cross-kernel end-to-end property: byte-identical repairs and
// identical chase-semantic metrics on every engine/policy combo. ---

// The chase-semantic counters every kernel must reproduce exactly.
// batch_probes/batch_keys are deliberately absent: they count probe
// *mechanics* (zero on the scalar path) and differ by design.
std::vector<size_t> ChaseSignature(const RepairStats& stats) {
  return {stats.tuples_examined,     stats.tuples_changed,
          stats.cells_changed,       stats.rule_applications,
          stats.index_hits,          stats.counter_bumps,
          stats.candidates_enqueued, stats.candidates_rejected};
}

std::string TableCsv(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

struct EngineRun {
  std::string output;            // repaired bytes
  std::vector<size_t> metrics;   // ChaseSignature
};

// One workload, one engine configuration, run under `kernel`.
using EngineFn = EngineRun (*)(const Table& dirty, const RuleSet& rules);

EngineRun RunSerial(const Table& dirty, const RuleSet& rules) {
  Table copy = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&copy);
  return {TableCsv(copy), ChaseSignature(repairer.stats())};
}

EngineRun RunSerialMemo(const Table& dirty, const RuleSet& rules) {
  Table copy = dirty;
  FastRepairer repairer(&rules);
  MemoCache memo;
  repairer.set_memo(&memo);
  repairer.RepairTable(&copy);
  return {TableCsv(copy), ChaseSignature(repairer.stats())};
}

EngineRun RunPooled(const Table& dirty, const RuleSet& rules) {
  Table copy = dirty;
  const CompiledRuleIndex index(&rules);
  ParallelRepairOptions options;
  options.threads = 3;
  options.use_memo = false;
  const RepairStats stats = ParallelRepairTable(index, &copy, options);
  return {TableCsv(copy), ChaseSignature(stats)};
}

EngineRun RunLenientBudget(const Table& dirty, const RuleSet& rules) {
  Table copy = dirty;
  FastRepairer repairer(&rules);
  repairer.set_max_chase_steps(2);  // small enough to trip on cascades
  size_t quarantined = 0;
  for (size_t r = 0; r < copy.num_rows(); ++r) {
    size_t changed = 0;
    if (!repairer.TryRepairTuple(copy.WriteRow(r), &changed).ok()) {
      ++quarantined;
    }
  }
  EngineRun run = {TableCsv(copy), ChaseSignature(repairer.stats())};
  run.metrics.push_back(quarantined);
  return run;
}

EngineRun StreamRun(const Table& dirty, const RuleSet& rules,
                    size_t budget_bytes) {
  const std::string input = TableCsv(dirty);
  const CompiledRuleIndex index(&rules);
  StreamingRepairOptions options;
  options.chunk_rows = budget_bytes > 0 ? ~size_t{0} : 512;
  options.memory_budget_bytes = budget_bytes;
  std::istringstream in(input);
  std::ostringstream out;
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, "simd_test", dirty.pool_ptr(), {});
  EXPECT_TRUE(reader.ok());
  StreamingRepairSession session(&index, options);
  const StatusOr<StreamingRepairResult> result =
      session.Run(&reader.value(), out);
  EXPECT_TRUE(result.ok());
  return {out.str(),
          {result.value().rows_emitted, result.value().cells_changed}};
}

EngineRun RunStreamChunked(const Table& dirty, const RuleSet& rules) {
  return StreamRun(dirty, rules, 0);
}

EngineRun RunStreamBudget(const Table& dirty, const RuleSet& rules) {
  // A few blocks of budget: the whole-file chunk must spill and the
  // row-group gather must survive block eviction between probe and
  // chase.
  const size_t block_bytes =
      RowStore::kRowsPerBlock * dirty.num_columns() * sizeof(ValueId);
  return StreamRun(dirty, rules, 4 * block_bytes);
}

void ExpectKernelIndependent(const Table& dirty, const RuleSet& rules,
                             const char* workload) {
  SimdKernelGuard guard;
  const struct {
    const char* name;
    EngineFn run;
  } engines[] = {
      {"serial", RunSerial},           {"serial_memo", RunSerialMemo},
      {"pooled", RunPooled},           {"lenient_budget", RunLenientBudget},
      {"stream", RunStreamChunked},    {"stream_budget", RunStreamBudget},
  };
  for (const auto& engine : engines) {
    SetSimdKernel(SimdKernel::kScalar);
    const EngineRun reference = engine.run(dirty, rules);
    EXPECT_FALSE(reference.output.empty());
    for (const SimdKernel kernel : SupportedKernels()) {
      if (kernel == SimdKernel::kScalar) continue;
      SetSimdKernel(kernel);
      const EngineRun run = engine.run(dirty, rules);
      EXPECT_EQ(run.output, reference.output)
          << workload << "/" << engine.name << " output diverged under "
          << SimdKernelName(kernel);
      EXPECT_EQ(run.metrics, reference.metrics)
          << workload << "/" << engine.name << " metrics diverged under "
          << SimdKernelName(kernel);
    }
  }
}

TEST(SimdKernelIndependenceTest, Travel) {
  const TravelExample example;
  ExpectKernelIndependent(example.dirty, example.rules, "travel");
}

TEST(SimdKernelIndependenceTest, Hosp) {
  HospOptions hosp;
  hosp.rows = 2000;
  hosp.num_hospitals = 70;
  hosp.seed = 0x4051;
  GeneratedData data = GenerateHosp(hosp);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.seed = 0x77;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = 300;
  rulegen.seed = 0x9e37;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ExpectKernelIndependent(dirty, rules, "hosp");
}

TEST(SimdKernelIndependenceTest, Uis) {
  UisOptions uis;
  uis.rows = 1500;
  uis.seed = 0x0715;
  GeneratedData data = GenerateUis(uis);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.seed = 0x78;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = 60;
  rulegen.seed = 0x9e38;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ExpectKernelIndependent(dirty, rules, "uis");
}

// The batch metrics do tick on the batched path — otherwise the
// telemetry satellite is wiring to dead counters.
TEST(SimdMetricsTest, BatchCountersTickOnBatchedPathOnly) {
  SimdKernelGuard guard;
  const TravelExample example;

  SetSimdKernel(SimdKernel::kScalar);
  {
    Table copy = example.dirty;
    FastRepairer repairer(&example.rules);
    repairer.RepairTable(&copy);
    EXPECT_EQ(repairer.stats().batch_probes, 0u);
    EXPECT_EQ(repairer.stats().batch_keys, 0u);
  }

  const SimdKernel best = BestSupportedSimdKernel();
  if (best == SimdKernel::kScalar) {
    GTEST_SKIP() << "no SIMD kernel available on this machine/build";
  }
  SetSimdKernel(best);
  Table copy = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&copy);
  EXPECT_GT(repairer.stats().batch_probes, 0u);
  EXPECT_GT(repairer.stats().batch_keys, 0u);
  // Row-group batching probes each non-null cell exactly once.
  EXPECT_LE(repairer.stats().batch_keys,
            example.dirty.num_rows() * example.dirty.num_columns());
}

}  // namespace
}  // namespace fixrep
