// Session-scoped metric domains (common/metric_scope.h), histogram
// quantile estimation, and the exposition-name sanitization behind
// Prometheus export (common/metric_names.h): scopes must isolate
// concurrent sessions, flushes must roll up exactly once, and
// sanitization must reject any registry name that cannot round-trip.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metric_names.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/status.h"
#include "datagen/travel.h"
#include "relation/table.h"
#include "repair/lrepair.h"
#include "repair/session.h"

namespace fixrep {
namespace {

uint64_t GlobalCounterValue(const std::string& name) {
  const Counter* c = MetricsRegistry::Global().FindCounter(name);
  return c == nullptr ? 0 : c->Value();
}

// ---------------------------------------------------------------------
// Histogram quantiles.

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.P50(), 0.0);
  EXPECT_EQ(snap.P99(), 0.0);
}

TEST(HistogramQuantileTest, SingleObservationClampsToThatValue) {
  Histogram h;
  h.Observe(100);
  const HistogramSnapshot snap = h.Snapshot();
  // Interpolation inside the [64, 128) bucket is clamped to [min, max],
  // which for one observation pins every quantile to the value itself.
  EXPECT_EQ(snap.P50(), 100.0);
  EXPECT_EQ(snap.P95(), 100.0);
  EXPECT_EQ(snap.P99(), 100.0);
}

TEST(HistogramQuantileTest, QuantilesAreMonotoneAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 1000u);
  const double p10 = snap.Quantile(0.10);
  const double p50 = snap.P50();
  const double p95 = snap.P95();
  const double p99 = snap.P99();
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p10, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Power-of-two buckets bound the estimate to within one bucket width:
  // the true p50 of 1..1000 is 500, inside the [512, 1024) or [256, 512)
  // neighborhood depending on interpolation.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(HistogramQuantileTest, UnitTagFirstWriterWins) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("fixrep.test.latency_ns", "ns");
  EXPECT_STREQ(h->unit(), "ns");
  // A later registration with a different unit is ignored.
  registry.GetHistogram("fixrep.test.latency_ns", "bytes");
  EXPECT_STREQ(h->unit(), "ns");
  EXPECT_STREQ(h->Snapshot().unit, "ns");
}

// ---------------------------------------------------------------------
// Exposition-name sanitization.

TEST(MetricNamesTest, ExposableNames) {
  EXPECT_TRUE(IsExposableMetricName("fixrep.lrepair.tuples_examined"));
  EXPECT_TRUE(IsExposableMetricName("fixrep.span.lrepair.chase_ns"));
  EXPECT_TRUE(IsExposableMetricName("a"));
  EXPECT_FALSE(IsExposableMetricName(""));
  EXPECT_FALSE(IsExposableMetricName("."));
  EXPECT_FALSE(IsExposableMetricName("a..b"));
  EXPECT_FALSE(IsExposableMetricName(".a"));
  EXPECT_FALSE(IsExposableMetricName("a."));
  EXPECT_FALSE(IsExposableMetricName("Fixrep.counter"));  // uppercase
  EXPECT_FALSE(IsExposableMetricName("fixrep.1counter"));  // digit-led segment
  EXPECT_FALSE(IsExposableMetricName("fixrep._counter"));  // '_'-led segment
  EXPECT_FALSE(IsExposableMetricName("test.json \"quoted\""));
}

TEST(MetricNamesTest, SanitizeRewritesDots) {
  std::string out;
  ASSERT_TRUE(SanitizeMetricName("fixrep.memo.hit_rate", &out).ok());
  EXPECT_EQ(out, "fixrep_memo_hit_rate");

  std::string untouched = "sentinel";
  const Status status = SanitizeMetricName("bad name", &untouched);
  EXPECT_EQ(status.code(), StatusCode::kMalformedInput);
  EXPECT_EQ(untouched, "sentinel");
}

TEST(MetricNamesTest, MapRejectsCollisionsAndStaysIdempotent) {
  MetricNameMap map;
  ASSERT_TRUE(map.Add("a.b_c").ok());
  // a_b.c sanitizes to the same a_b_c — the second name must lose.
  const Status collision = map.Add("a_b.c");
  EXPECT_EQ(collision.code(), StatusCode::kMalformedInput);

  ASSERT_NE(map.Sanitized("a.b_c"), nullptr);
  EXPECT_EQ(*map.Sanitized("a.b_c"), "a_b_c");
  EXPECT_EQ(map.Sanitized("a_b.c"), nullptr);  // rejected
  ASSERT_NE(map.Original("a_b_c"), nullptr);
  EXPECT_EQ(*map.Original("a_b_c"), "a.b_c");

  // Re-adding either name repeats the original verdict.
  EXPECT_TRUE(map.Add("a.b_c").ok());
  EXPECT_EQ(map.Add("a_b.c").code(), StatusCode::kMalformedInput);
  EXPECT_EQ(map.Add("no good").code(), StatusCode::kMalformedInput);
  EXPECT_EQ(map.Sanitized("no good"), nullptr);
}

TEST(MetricNamesTest, RegistryExposesRoundTrippableNamesOnly) {
  MetricsRegistry registry;
  registry.GetCounter("fixrep.test.requests");
  registry.GetCounter("bad name");  // registers locally, hidden from export
  ASSERT_NE(registry.PrometheusName("fixrep.test.requests"), nullptr);
  EXPECT_EQ(*registry.PrometheusName("fixrep.test.requests"),
            "fixrep_test_requests");
  EXPECT_EQ(registry.PrometheusName("bad name"), nullptr);
  // The hidden counter still works for local use.
  registry.GetCounter("bad name")->Add(3);
  EXPECT_EQ(registry.FindCounter("bad name")->Value(), 3u);
}

// ---------------------------------------------------------------------
// MetricScope.

TEST(MetricScopeTest, CurrentMetricsDefaultsToGlobal) {
  EXPECT_EQ(&CurrentMetrics(), &MetricsRegistry::Global());
}

TEST(MetricScopeTest, ActivationRoutesAndRestores) {
  MetricsRegistry parent;
  MetricScope outer(&parent);
  MetricScope inner(&parent);
  {
    MetricScope::Activation activate_outer(&outer);
    EXPECT_EQ(&CurrentMetrics(), &outer.registry());
    {
      MetricScope::Activation activate_inner(&inner);
      EXPECT_EQ(&CurrentMetrics(), &inner.registry());
    }
    EXPECT_EQ(&CurrentMetrics(), &outer.registry());  // restored
  }
  EXPECT_EQ(&CurrentMetrics(), &MetricsRegistry::Global());
}

TEST(MetricScopeTest, ConcurrentScopesAccumulateDisjointly) {
  MetricsRegistry parent;
  MetricScope a(&parent);
  MetricScope b(&parent);
  const auto publish = [](MetricScope* scope, uint64_t n) {
    MetricScope::Activation active(scope);
    for (uint64_t i = 0; i < n; ++i) {
      CurrentMetrics().GetCounter("fixrep.test.events")->Add(1);
    }
    CurrentMetrics().GetHistogram("fixrep.test.sizes_bytes", "bytes")
        ->Observe(n);
  };
  std::thread ta(publish, &a, uint64_t{1000});
  std::thread tb(publish, &b, uint64_t{7});
  ta.join();
  tb.join();

  EXPECT_EQ(a.registry().FindCounter("fixrep.test.events")->Value(), 1000u);
  EXPECT_EQ(b.registry().FindCounter("fixrep.test.events")->Value(), 7u);
  EXPECT_EQ(parent.FindCounter("fixrep.test.events"), nullptr);  // pre-flush

  a.Flush();
  b.Flush();
  EXPECT_EQ(parent.FindCounter("fixrep.test.events")->Value(), 1007u);
  const Histogram* merged = parent.FindHistogram("fixrep.test.sizes_bytes");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->Count(), 2u);
  EXPECT_EQ(merged->Sum(), 1007u);
  EXPECT_EQ(merged->Min(), 7u);
  EXPECT_EQ(merged->Max(), 1000u);
  EXPECT_STREQ(merged->unit(), "bytes");  // unit propagates through merge
}

TEST(MetricScopeTest, RepeatedFlushNeverDoubleCounts) {
  MetricsRegistry parent;
  MetricScope scope(&parent);
  {
    MetricScope::Activation active(&scope);
    CurrentMetrics().GetCounter("fixrep.test.events")->Add(5);
    CurrentMetrics().GetGauge("fixrep.test.level")->Set(42);
  }
  scope.Flush();
  scope.Flush();  // nothing new accumulated — must be a no-op
  EXPECT_EQ(parent.FindCounter("fixrep.test.events")->Value(), 5u);
  EXPECT_EQ(parent.FindGauge("fixrep.test.level")->Value(), 42);
  // Local values were reset by the first flush.
  EXPECT_EQ(scope.registry().FindCounter("fixrep.test.events")->Value(), 0u);
}

TEST(MetricScopeTest, DestructorFlushesRemainder) {
  MetricsRegistry parent;
  {
    MetricScope scope(&parent);
    MetricScope::Activation active(&scope);
    CurrentMetrics().GetCounter("fixrep.test.events")->Add(9);
  }
  EXPECT_EQ(parent.FindCounter("fixrep.test.events")->Value(), 9u);
}

// ---------------------------------------------------------------------
// Scoped sessions end to end: two concurrent RepairSessions with
// scoped_metrics accumulate attributable, disjoint counts, repair output
// stays identical, and FlushMetrics rolls both up into the global
// registry.

TEST(ScopedSessionTest, TwoConcurrentSessionsStayAttributable) {
  TravelExample example;
  Table want = example.dirty;
  FastRepairer repairer(&example.rules);
  repairer.RepairTable(&want);

  const uint64_t global_before =
      GlobalCounterValue("fixrep.lrepair.tuples_examined");

  RepairConfig config;
  config.scoped_metrics = true;
  RepairSession session_a(&example.rules, config);
  RepairSession session_b(&example.rules, config);

  Table table_a = example.dirty;
  Table table_b = example.dirty;
  StatusOr<RepairReport> report_a = Status::Internal("not run");
  StatusOr<RepairReport> report_b = Status::Internal("not run");
  std::thread ta([&]() { report_a = session_a.Repair(&table_a); });
  std::thread tb([&]() { report_b = session_b.Repair(&table_b); });
  ta.join();
  tb.join();
  ASSERT_TRUE(report_a.ok()) << report_a.status().message();
  ASSERT_TRUE(report_b.ok()) << report_b.status().message();

  // Output is identical to the unscoped engine.
  for (size_t r = 0; r < want.num_rows(); ++r) {
    EXPECT_EQ(table_a.row(r), want.row(r)) << "session a, row " << r;
    EXPECT_EQ(table_b.row(r), want.row(r)) << "session b, row " << r;
  }

  // Each session's private registry saw exactly its own table.
  const uint64_t rows = example.dirty.num_rows();
  const Counter* examined_a =
      session_a.metrics().FindCounter("fixrep.lrepair.tuples_examined");
  const Counter* examined_b =
      session_b.metrics().FindCounter("fixrep.lrepair.tuples_examined");
  ASSERT_NE(examined_a, nullptr);
  ASSERT_NE(examined_b, nullptr);
  EXPECT_EQ(examined_a->Value(), rows);
  EXPECT_EQ(examined_b->Value(), rows);

  // Nothing leaked into the global registry before the flush...
  EXPECT_EQ(GlobalCounterValue("fixrep.lrepair.tuples_examined"),
            global_before);

  // ...and the flush rolls both up exactly once.
  session_a.FlushMetrics();
  session_b.FlushMetrics();
  session_a.FlushMetrics();  // idempotent
  EXPECT_EQ(GlobalCounterValue("fixrep.lrepair.tuples_examined"),
            global_before + 2 * rows);
  EXPECT_EQ(
      session_a.metrics().FindCounter("fixrep.lrepair.tuples_examined")
          ->Value(),
      0u);
}

TEST(ScopedSessionTest, UnscopedSessionUsesGlobalRegistry) {
  TravelExample example;
  RepairSession session(&example.rules);
  EXPECT_EQ(&session.metrics(), &MetricsRegistry::Global());
  session.FlushMetrics();  // no-op without a scope
}

}  // namespace
}  // namespace fixrep
