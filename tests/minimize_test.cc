#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/crepair.h"
#include "rules/consistency.h"
#include "rules/minimize.h"

namespace fixrep {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  TravelExample example_;

  FixingRule Rule(const std::vector<std::pair<std::string, std::string>>& ev,
                  const std::string& target,
                  const std::vector<std::string>& negatives,
                  const std::string& fact) {
    return MakeRule(*example_.schema, example_.pool.get(), ev, target,
                    negatives, fact);
  }
};

TEST_F(MinimizeTest, PaperRulesAreAlreadyMinimal) {
  RuleSet rules = example_.rules;
  const MinimizeReport report = MinimizeRules(&rules);
  EXPECT_TRUE(report.removed_rules.empty());
  EXPECT_EQ(rules.size(), 4u);
}

TEST_F(MinimizeTest, RemovesExactDuplicate) {
  RuleSet rules = example_.rules;
  rules.Add(example_.rules.rule(0));  // duplicate of phi_1 at index 4
  const MinimizeReport report = MinimizeRules(&rules);
  ASSERT_EQ(report.removed_rules.size(), 1u);
  EXPECT_EQ(report.removed_rules[0], 4u);
  EXPECT_EQ(rules.size(), 4u);
}

TEST_F(MinimizeTest, RemovesSubsumedRule) {
  RuleSet rules = example_.rules;
  // Weaker phi_1 with only one of its negative patterns.
  rules.Add(Rule({{"country", "China"}}, "capital", {"Hongkong"},
                 "Beijing"));
  const MinimizeReport report = MinimizeRules(&rules);
  ASSERT_EQ(report.removed_rules.size(), 1u);
  EXPECT_EQ(report.removed_rules[0], 4u);
}

TEST_F(MinimizeTest, KeepsIndependentRules) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"},
                 "Beijing"));
  rules.Add(Rule({{"country", "Canada"}}, "capital", {"Toronto"},
                 "Ottawa"));
  const MinimizeReport report = MinimizeRules(&rules);
  EXPECT_TRUE(report.removed_rules.empty());
  EXPECT_EQ(rules.size(), 2u);
}

TEST_F(MinimizeTest, MinimizedSetComputesSameFixes) {
  RuleSet rules = example_.rules;
  rules.Add(example_.rules.rule(1));  // duplicate
  rules.Add(Rule({{"country", "China"}}, "capital", {"Shanghai"},
                 "Beijing"));        // subsumed by phi_1
  RuleSet minimized = rules;
  const MinimizeReport report = MinimizeRules(&minimized);
  EXPECT_EQ(report.removed_rules.size(), 2u);
  ChaseRepairer full(&rules);
  ChaseRepairer small(&minimized);
  for (size_t r = 0; r < example_.dirty.num_rows(); ++r) {
    Tuple a = example_.dirty.row(r).ToTuple();
    Tuple b = example_.dirty.row(r).ToTuple();
    full.RepairTuple(a);
    small.RepairTuple(b);
    EXPECT_EQ(a, b) << "row " << r;
  }
}

TEST_F(MinimizeTest, MutuallyRedundantPairKeepsOne) {
  RuleSet rules(example_.schema, example_.pool);
  const FixingRule rule =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  rules.Add(rule);
  rules.Add(rule);
  rules.Add(rule);
  const MinimizeReport report = MinimizeRules(&rules);
  EXPECT_EQ(report.removed_rules.size(), 2u);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), rule);
}

}  // namespace
}  // namespace fixrep
