#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "rules/consistency.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using testing::RandomRuleUniverse;

// Builds a random rule set with *strict* pairwise consistency, which —
// unlike the paper's Proposition-3 notion — provably guarantees unique
// fixes (see PairConsistentStrictChar; randomized testing found a
// Proposition-3 counterexample, kept as a unit test in
// consistency_test.cc).
RuleSet RandomConsistentSet(RandomRuleUniverse* universe, Rng* rng,
                            size_t target_size) {
  RuleSet rules(universe->schema, universe->pool);
  const size_t arity = universe->schema->arity();
  for (int attempt = 0; attempt < 400 && rules.size() < target_size;
       ++attempt) {
    const FixingRule candidate = universe->RandomRule(rng);
    bool compatible = true;
    for (const auto& existing : rules.rules()) {
      if (!PairConsistentStrictChar(existing, candidate, arity, nullptr)) {
        compatible = false;
        break;
      }
    }
    if (compatible) rules.Add(candidate);
  }
  return rules;
}

class RepairPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairPropertyTest, EnginesAgreeOnUniqueFix) {
  RandomRuleUniverse universe;
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const RuleSet rules = RandomConsistentSet(&universe, &rng, 8);
    ASSERT_TRUE(IsConsistentStrict(rules));
    ChaseRepairer crepair(&rules);
    FastRepairer lrepair(&rules);
    for (int trial = 0; trial < 100; ++trial) {
      const Tuple original = universe.RandomTuple(&rng);
      Tuple by_crepair = original;
      crepair.RepairTuple(by_crepair);
      Tuple by_lrepair = original;
      lrepair.RepairTuple(by_lrepair);
      ASSERT_EQ(by_crepair, by_lrepair)
          << "engines diverge (round " << round << ", trial " << trial
          << ")";
    }
  }
}

TEST_P(RepairPropertyTest, FixIsOrderIndependent) {
  // Church-Rosser: for a consistent set, any priority order chases a
  // tuple to the same fix.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0x5a5a);
  const RuleSet rules = RandomConsistentSet(&universe, &rng, 8);
  std::vector<const FixingRule*> order;
  for (const auto& rule : rules.rules()) order.push_back(&rule);
  for (int trial = 0; trial < 60; ++trial) {
    const Tuple original = universe.RandomTuple(&rng);
    Tuple reference = original;
    ChaseWithPriority(order, &reference);
    for (int perm = 0; perm < 6; ++perm) {
      std::vector<const FixingRule*> shuffled = order;
      rng.Shuffle(&shuffled);
      Tuple t = original;
      ChaseWithPriority(shuffled, &t);
      ASSERT_EQ(t, reference) << "fix depends on rule order";
    }
  }
}

TEST_P(RepairPropertyTest, ReversedPriorityChaseAgreesWithEngines) {
  // A third independent witness of the unique fix: the generic chase run
  // with the rule order reversed must land on the same tuple as both
  // engines.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xf00d);
  const RuleSet rules = RandomConsistentSet(&universe, &rng, 6);
  std::vector<const FixingRule*> reversed;
  for (const auto& rule : rules.rules()) reversed.push_back(&rule);
  std::reverse(reversed.begin(), reversed.end());
  FastRepairer lrepair(&rules);
  for (int trial = 0; trial < 100; ++trial) {
    const Tuple original = universe.RandomTuple(&rng);
    Tuple by_lrepair = original;
    lrepair.RepairTuple(by_lrepair);
    Tuple by_chase = original;
    ChaseWithPriority(reversed, &by_chase);
    ASSERT_EQ(by_chase, by_lrepair);
  }
}

TEST(RepairSemanticsTest, RepairIsNotIdempotentInGeneral) {
  // Documented semantics, not a bug: assured attributes protect corrected
  // cells only *within* one repairing process (Section 3.2). Here psi
  // rewrites a1 to "v", which phi considers wrong; in one pass psi wins
  // and a1 is frozen at "v", but re-repairing the result lets phi fire.
  // The pair is consistent — every tuple has a unique fix — yet the
  // repair operator is not idempotent as a function on tuples.
  auto pool = std::make_shared<ValuePool>();
  auto schema =
      std::make_shared<Schema>("R", std::vector<std::string>{"a0", "a1"});
  RuleSet rules(schema, pool);
  rules.Add(MakeRule(*schema, pool.get(), {{"a0", "ctx"}}, "a1", {"u"},
                     "v"));  // psi
  rules.Add(MakeRule(*schema, pool.get(), {{"a0", "ctx"}}, "a1", {"v"},
                     "w"));  // phi
  ASSERT_TRUE(IsConsistentStrict(rules));
  Tuple t = {pool->Intern("ctx"), pool->Intern("u")};
  FastRepairer repairer(&rules);
  repairer.RepairTuple(t);
  EXPECT_EQ(t[1], pool->Find("v"));  // psi fired, a1 assured, phi blocked
  repairer.RepairTuple(t);
  EXPECT_EQ(t[1], pool->Find("w"));  // fresh pass: phi fires on "v"
}

TEST_P(RepairPropertyTest, OnlyNegativePatternCellsChange) {
  // Soundness: every changed cell was (a) matched via a negative pattern
  // of some rule targeting it and (b) rewritten to that rule's fact.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xbeef);
  const RuleSet rules = RandomConsistentSet(&universe, &rng, 8);
  FastRepairer lrepair(&rules);
  for (int trial = 0; trial < 100; ++trial) {
    const Tuple original = universe.RandomTuple(&rng);
    Tuple repaired = original;
    lrepair.RepairTuple(repaired);
    for (size_t a = 0; a < repaired.size(); ++a) {
      if (repaired[a] == original[a]) continue;
      bool explained = false;
      for (const auto& rule : rules.rules()) {
        if (rule.target == static_cast<AttrId>(a) &&
            rule.fact == repaired[a] && rule.IsNegative(original[a])) {
          explained = true;
          break;
        }
      }
      EXPECT_TRUE(explained)
          << "cell " << a << " changed without a justifying rule";
    }
  }
}

TEST_P(RepairPropertyTest, TerminationWithinArityApplications) {
  // Each application assures at least the target attribute, so at most
  // |R| cells can ever change for one tuple.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xaaaa);
  const RuleSet rules = RandomConsistentSet(&universe, &rng, 10);
  ChaseRepairer crepair(&rules);
  for (int trial = 0; trial < 200; ++trial) {
    Tuple t = universe.RandomTuple(&rng);
    const size_t changes = crepair.RepairTuple(t);
    EXPECT_LE(changes, universe.schema->arity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPropertyTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace fixrep
