#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "datagen/travel.h"
#include "repair/lrepair.h"
#include "repair/rule_index.h"
#include "testing_util.h"

namespace fixrep {
namespace {

// Naive reference: every (attr, value) evidence cell -> rule ids, in
// insertion order (the build preserves per-key rule order).
std::map<std::pair<AttrId, ValueId>, std::vector<uint32_t>> NaivePostings(
    const RuleSet& rules) {
  std::map<std::pair<AttrId, ValueId>, std::vector<uint32_t>> postings;
  for (uint32_t i = 0; i < rules.size(); ++i) {
    const FixingRule& rule = rules.rule(i);
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      postings[{rule.evidence_attrs[e], rule.evidence_values[e]}]
          .push_back(i);
    }
  }
  return postings;
}

void ExpectMatchesNaive(const RuleSet& rules,
                        const CompiledRuleIndex& index) {
  const auto naive = NaivePostings(rules);
  EXPECT_EQ(index.num_keys(), naive.size());
  size_t total = 0;
  for (const auto& [key, expected] : naive) {
    const PostingRange range = index.Lookup(key.first, key.second);
    const std::vector<uint32_t> got(range.begin, range.end);
    EXPECT_EQ(got, expected) << "attr " << key.first << " value "
                             << key.second;
    total += expected.size();
  }
  EXPECT_EQ(index.num_postings(), total);
}

TEST(CompiledRuleIndexTest, TravelPostingsMatchNaiveConstruction) {
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  ExpectMatchesNaive(example.rules, index);
  EXPECT_EQ(index.num_rules(), example.rules.size());
  EXPECT_EQ(index.arity(), example.rules.schema().arity());
  EXPECT_GT(index.bytes(), 0u);
}

TEST(CompiledRuleIndexTest, SideArraysMirrorRules) {
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  for (uint32_t i = 0; i < example.rules.size(); ++i) {
    const FixingRule& rule = example.rules.rule(i);
    EXPECT_EQ(index.evidence_count(i), rule.evidence_attrs.size());
    EXPECT_EQ(index.target(i), rule.target);
    EXPECT_EQ(index.fact(i), rule.fact);
    EXPECT_EQ(index.assured(i), rule.AssuredSet());
  }
}

TEST(CompiledRuleIndexTest, LookupMissReturnsEmptyRange) {
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  const ValueId unseen = example.pool->Intern("value-no-rule-mentions");
  EXPECT_TRUE(index.Lookup(0, unseen).empty());
  EXPECT_TRUE(index.Lookup(0, kNullValue).empty());
}

TEST(CompiledRuleIndexTest, FuzzedRuleSetsMatchNaiveConstruction) {
  Rng rng(0xbead);
  for (int round = 0; round < 20; ++round) {
    testing::RandomRuleUniverse universe;
    RuleSet rules(universe.schema, universe.pool);
    const size_t n = 1 + rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) rules.Add(universe.RandomRule(&rng));
    const CompiledRuleIndex index(&rules);
    ExpectMatchesNaive(rules, index);
  }
}

TEST(CompiledRuleIndexTest, EmptyEvidenceRulesAreListedNotIndexed) {
  testing::RandomRuleUniverse universe;
  RuleSet rules(universe.schema, universe.pool);
  FixingRule rule;
  rule.target = 1;
  rule.negative_patterns = {universe.Value(1, 0)};
  rule.fact = universe.Value(1, 1);
  rules.Add(rule);
  const CompiledRuleIndex index(&rules);
  ASSERT_EQ(index.empty_evidence_rules().size(), 1u);
  EXPECT_EQ(index.empty_evidence_rules()[0], 0u);
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_EQ(index.evidence_count(0), 0u);
}

TEST(CompiledRuleIndexTest, SharedIndexDrivesMultipleRepairers) {
  // The point of the compiled index: many engines, one build. Both
  // repairers below must behave exactly like privately-indexed ones.
  TravelExample example;
  const CompiledRuleIndex index(&example.rules);
  FastRepairer a(&index);
  FastRepairer b(&index);
  Table table_a = example.dirty;
  Table table_b = example.dirty;
  a.RepairTable(&table_a);
  b.RepairTable(&table_b);
  for (size_t r = 0; r < example.clean.num_rows(); ++r) {
    EXPECT_EQ(table_a.row(r), example.clean.row(r));
    EXPECT_EQ(table_b.row(r), example.clean.row(r));
  }
}

TEST(CompiledRuleIndexTest, IndexBuildCounterTicksOncePerIndex) {
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
  }
  TravelExample example;
  auto& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter("fixrep.lrepair.index_builds")->Value();
  const CompiledRuleIndex index(&example.rules);
  FastRepairer a(&index);
  FastRepairer b(&index);
  Table copy = example.dirty;
  a.RepairTable(&copy);
  EXPECT_EQ(registry.GetCounter("fixrep.lrepair.index_builds")->Value(),
            before + 1);
}

}  // namespace
}  // namespace fixrep
