// End-to-end pipeline tests: generate -> corrupt -> derive rules ->
// check consistency -> repair -> evaluate, on both datasets and with the
// baselines alongside. These are the smallest full instances of the
// paper's Exp-2 loop.

#include <gtest/gtest.h>

#include "baselines/csm.h"
#include "baselines/editing.h"
#include "baselines/heu.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/uis.h"
#include "deps/violation.h"
#include "eval/metrics.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "rulegen/rulegen.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

struct Workload {
  GeneratedData data;
  Table dirty;
  RuleSet rules;
};

Workload MakeHospWorkload(double typo_share, size_t max_rules) {
  HospOptions hosp;
  hosp.rows = 8000;
  hosp.num_hospitals = 400;
  hosp.num_measures = 24;
  GeneratedData data = GenerateHosp(hosp);
  Table dirty = data.clean;
  NoiseOptions noise;
  noise.typo_share = typo_share;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), noise);
  RuleGenOptions rulegen;
  rulegen.max_rules = max_rules;
  RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  return Workload{std::move(data), std::move(dirty), std::move(rules)};
}

TEST(IntegrationTest, HospPipelineRepairsWithHighPrecision) {
  Workload w = MakeHospWorkload(0.5, 800);
  ASSERT_TRUE(IsConsistentChar(w.rules));
  Table repaired = w.dirty;
  FastRepairer repairer(&w.rules);
  repairer.RepairTable(&repaired);
  const Accuracy acc = EvaluateRepair(w.data.clean, w.dirty, repaired);
  EXPECT_GT(acc.precision(), 0.95);
  EXPECT_GT(acc.recall(), 0.15);
}

TEST(IntegrationTest, BothEnginesProduceIdenticalRepairs) {
  Workload w = MakeHospWorkload(0.5, 400);
  Table by_crepair = w.dirty;
  Table by_lrepair = w.dirty;
  ChaseRepairer crepair(&w.rules);
  FastRepairer lrepair(&w.rules);
  crepair.RepairTable(&by_crepair);
  lrepair.RepairTable(&by_lrepair);
  for (size_t r = 0; r < by_crepair.num_rows(); ++r) {
    ASSERT_EQ(by_crepair.row(r), by_lrepair.row(r)) << "row " << r;
  }
  EXPECT_EQ(crepair.stats().cells_changed, lrepair.stats().cells_changed);
}

TEST(IntegrationTest, FixingRulesBeatBaselinePrecisionOnActiveDomainErrors) {
  // At typo_share 0 every error is an in-domain substitution, the regime
  // where the paper shows Heu/Csm losing precision while Fix stays high
  // (Fig. 10(a)).
  Workload w = MakeHospWorkload(/*typo_share=*/0.0, 800);
  Table by_fix = w.dirty;
  FastRepairer repairer(&w.rules);
  repairer.RepairTable(&by_fix);
  const Accuracy fix = EvaluateRepair(w.data.clean, w.dirty, by_fix);

  Table by_heu = w.dirty;
  HeuRepairer heu(w.data.fds);
  heu.Repair(&by_heu);
  const Accuracy heu_acc = EvaluateRepair(w.data.clean, w.dirty, by_heu);

  Table by_csm = w.dirty;
  CsmRepairer csm(w.data.fds);
  csm.Repair(&by_csm);
  const Accuracy csm_acc = EvaluateRepair(w.data.clean, w.dirty, by_csm);

  EXPECT_GT(fix.precision(), heu_acc.precision());
  EXPECT_GT(fix.precision(), csm_acc.precision());
  EXPECT_GT(fix.precision(), 0.9);
}

TEST(IntegrationTest, HeuristicsReachHigherRecallThanFix) {
  // The flip side the paper reports (Fig. 10(b)): heuristics repair more
  // of the errors, at lower precision.
  Workload w = MakeHospWorkload(0.5, 200);
  Table by_fix = w.dirty;
  FastRepairer repairer(&w.rules);
  repairer.RepairTable(&by_fix);
  const Accuracy fix = EvaluateRepair(w.data.clean, w.dirty, by_fix);

  Table by_heu = w.dirty;
  HeuRepairer heu(w.data.fds);
  heu.Repair(&by_heu);
  const Accuracy heu_acc = EvaluateRepair(w.data.clean, w.dirty, by_heu);

  EXPECT_GT(heu_acc.recall(), fix.recall());
}

TEST(IntegrationTest, MoreRulesMeanMoreRecallSamePrecisionRegime) {
  Workload w = MakeHospWorkload(0.5, 1000);
  double previous_recall = -1.0;
  for (const size_t count : {100u, 400u, 1000u}) {
    const RuleSet prefix = w.rules.Prefix(count);
    Table repaired = w.dirty;
    FastRepairer repairer(&prefix);
    repairer.RepairTable(&repaired);
    const Accuracy acc = EvaluateRepair(w.data.clean, w.dirty, repaired);
    EXPECT_GE(acc.recall() + 1e-9, previous_recall)
        << "recall regressed at " << count << " rules";
    previous_recall = acc.recall();
    EXPECT_GT(acc.precision(), 0.9);
  }
}

TEST(IntegrationTest, FixBeatsAutomatedEditingRules) {
  // Exp-2(d): stripping negative patterns (automated editing rules)
  // loses precision relative to fixing rules.
  Workload w = MakeHospWorkload(0.5, 600);
  Table by_fix = w.dirty;
  FastRepairer fix_repairer(&w.rules);
  fix_repairer.RepairTable(&by_fix);
  const Accuracy fix = EvaluateRepair(w.data.clean, w.dirty, by_fix);

  Table by_edit = w.dirty;
  AutoEditRepairer edit_repairer(&w.rules);
  edit_repairer.RepairTable(&by_edit);
  const Accuracy edit = EvaluateRepair(w.data.clean, w.dirty, by_edit);

  EXPECT_GE(fix.precision(), edit.precision());
  EXPECT_GT(fix.precision(), 0.9);
}

TEST(IntegrationTest, UisPipelineHasLowRecallButHighPrecision) {
  UisOptions uis;
  uis.rows = 6000;
  GeneratedData data = GenerateUis(uis);
  Table dirty = data.clean;
  InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
              NoiseOptions{});
  RuleGenOptions rulegen;
  rulegen.max_rules = 100;
  const RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
  ASSERT_TRUE(IsConsistentChar(rules));
  Table repaired = dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&repaired);
  const Accuracy acc = EvaluateRepair(data.clean, dirty, repaired);
  EXPECT_GT(acc.precision(), 0.8);
  EXPECT_LT(acc.recall(), 0.5);  // uis: few repeated patterns
}

TEST(IntegrationTest, RepairReducesFdViolations) {
  Workload w = MakeHospWorkload(0.5, 800);
  const size_t before = CountViolatingRows(w.dirty, w.data.fds);
  Table repaired = w.dirty;
  FastRepairer repairer(&w.rules);
  repairer.RepairTable(&repaired);
  const size_t after = CountViolatingRows(repaired, w.data.fds);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace fixrep
