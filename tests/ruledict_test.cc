// Compiled rule dictionaries (rules/rule_dict.h): compile/open/bind
// round trips, byte-identical repair against the in-RAM index, compile
// determinism, the per-worker translator/cache scratch, and — the
// robustness half — refusal of every corrupted or truncated file shape
// with a Status, never UB.

#include "rules/rule_dict.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/wal.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "repair/session.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/memo_cache.h"
#include "rules/fingerprint.h"
#include "rules/rule_set.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using ::fixrep::testing::RandomRuleUniverse;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "fixrep_ruledict_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A deterministic small rule universe with a couple of handwritten rules
// for the exact-value assertions.
struct SmallCorpus {
  std::shared_ptr<ValuePool> pool = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital", "city"});
  RuleSet rules{schema, pool};

  SmallCorpus() {
    rules.Add(MakeRule(*schema, pool.get(), {{"country", "China"}}, "capital",
                       {"Hongkong", "Shanghai"}, "Beijing"));
    rules.Add(MakeRule(*schema, pool.get(), {{"country", "Canada"}},
                       "capital", {"Toronto"}, "Ottawa"));
    rules.Add(MakeRule(*schema, pool.get(), {}, "country", {"Cnina"},
                       "China"));
  }
};

TEST(RuleDictCompile, RoundTripsHeaderAndIdentity) {
  SmallCorpus corpus;
  const std::string path = TestPath("roundtrip.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, path).ok());

  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  EXPECT_EQ((*dict)->num_rules(), corpus.rules.size());
  EXPECT_EQ((*dict)->arity(), corpus.schema->arity());
  EXPECT_EQ((*dict)->fingerprint(), RuleSetFingerprint(corpus.rules));
  EXPECT_EQ((*dict)->attribute_names(), corpus.schema->attribute_names());
  EXPECT_EQ((*dict)->header().num_empty_evidence, 1u);
  EXPECT_GT((*dict)->file_bytes(), sizeof(RuleDictHeader));
  EXPECT_FALSE((*dict)->bound());
}

TEST(RuleDictCompile, IsByteDeterministic) {
  SmallCorpus corpus;
  const std::string a = TestPath("det_a.dict");
  const std::string b = TestPath("det_b.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, a).ok());
  ASSERT_TRUE(CompileRuleDict(corpus.rules, b).ok());
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
}

TEST(RuleDictBind, RefusesMismatchedSchema) {
  SmallCorpus corpus;
  const std::string path = TestPath("bind_schema.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();

  const Schema other("S", {"country", "capital"});
  const Status status = (*dict)->Bind(other, corpus.pool);
  EXPECT_EQ(status.code(), StatusCode::kMalformedInput);
  EXPECT_FALSE((*dict)->bound());
}

TEST(RuleDictRepair, MatchesInMemoryIndexOnSmallCorpus) {
  SmallCorpus corpus;
  const std::string path = TestPath("repair_small.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_TRUE((*dict)->Bind(*corpus.schema, corpus.pool).ok());

  Table expected(corpus.schema, corpus.pool);
  auto val = [&](const char* s) { return corpus.pool->Intern(s); };
  expected.AppendRow({val("China"), val("Hongkong"), val("Wuhan")});
  expected.AppendRow({val("Cnina"), val("Shanghai"), val("Wuhan")});
  expected.AppendRow({val("Canada"), val("Toronto"), kNullValue});
  expected.AppendRow({val("France"), val("Paris"), val("Lyon")});
  Table actual = expected;

  FastRepairer reference(&corpus.rules);
  reference.RepairTable(&expected);

  auto handle = (*dict)->MakeHandle();
  FastRepairer via_dict(handle->source());
  via_dict.RepairTable(&actual);

  EXPECT_TRUE(actual.RowsEqual(expected));
  // Row 0: capital fixed. Row 1: empty-evidence rule fixes country, then
  // the cascade fixes capital.
  EXPECT_EQ(expected.CellString(0, 1), "Beijing");
  EXPECT_EQ(expected.CellString(1, 0), "China");
  EXPECT_EQ(expected.CellString(1, 1), "Beijing");
  EXPECT_EQ(via_dict.stats().cells_changed, reference.stats().cells_changed);
  EXPECT_EQ(via_dict.stats().rule_applications,
            reference.stats().rule_applications);
  EXPECT_EQ(via_dict.stats().per_rule_applications,
            reference.stats().per_rule_applications);
}

// The property half of the byte-identity acceptance bar: random rule
// sets and random tuples (including values no rule mentions and values
// interned after compilation), chased through the in-RAM index and the
// dictionary, must agree cell for cell — under both engines, with and
// without a memo.
TEST(RuleDictRepair, PropertyByteIdenticalToInMemoryIndex) {
  Rng rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRuleUniverse universe;
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(12);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }

    const std::string path =
        TestPath("property_" + std::to_string(trial) + ".dict");
    ASSERT_TRUE(CompileRuleDict(rules, path).ok());
    auto dict = RuleDict::Open(path);
    ASSERT_TRUE(dict.ok()) << dict.status();
    ASSERT_TRUE((*dict)->Bind(*universe.schema, universe.pool).ok());

    Table base(universe.schema, universe.pool);
    for (int r = 0; r < 60; ++r) {
      Tuple t = universe.RandomTuple(&rng);
      if (rng.Bernoulli(0.2)) {
        // A live value the dictionary has never seen.
        t[rng.Uniform(universe.schema->arity())] =
            universe.pool->Intern("unseen-" + std::to_string(trial) + "-" +
                                  std::to_string(r));
      }
      base.AppendRow(t);
    }

    auto handle = (*dict)->MakeHandle();

    {
      Table expected = base;
      Table actual = base;
      FastRepairer reference(&rules);
      FastRepairer via_dict(handle->source());
      reference.RepairTable(&expected);
      via_dict.RepairTable(&actual);
      EXPECT_TRUE(actual.RowsEqual(expected)) << "lrepair trial " << trial;
      EXPECT_EQ(via_dict.stats().per_rule_applications,
                reference.stats().per_rule_applications);
    }
    {
      Table expected = base;
      Table actual = base;
      ChaseRepairer reference(&rules);
      ChaseRepairer via_dict(handle->source());
      reference.RepairTable(&expected);
      via_dict.RepairTable(&actual);
      EXPECT_TRUE(actual.RowsEqual(expected)) << "crepair trial " << trial;
    }
    {
      Table expected = base;
      Table actual = base;
      FastRepairer reference(&rules);
      MemoCache reference_memo(1024);
      reference.set_memo(&reference_memo);
      FastRepairer via_dict(handle->source());
      MemoCache dict_memo(1024);
      via_dict.set_memo(&dict_memo);
      reference.RepairTable(&expected);
      via_dict.RepairTable(&actual);
      EXPECT_TRUE(actual.RowsEqual(expected)) << "memo trial " << trial;
    }
  }
}

TEST(RuleDictHandleTest, HotCacheServesDuplicateProbes) {
  SmallCorpus corpus;
  const std::string path = TestPath("hot_cache.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_TRUE((*dict)->Bind(*corpus.schema, corpus.pool).ok());

  Table table(corpus.schema, corpus.pool);
  auto val = [&](const char* s) { return corpus.pool->Intern(s); };
  for (int i = 0; i < 200; ++i) {
    table.AppendRow({val("China"), val("Hongkong"), val("Wuhan")});
  }

  auto handle = (*dict)->MakeHandle();
  FastRepairer repairer(handle->source());
  repairer.RepairTable(&table);
  EXPECT_EQ(table.CellString(0, 1), "Beijing");

  const PostingCache* cache = handle->source().posting_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->hits(), 0u);
  // Duplicate rows resolve the same few keys over and over: far more
  // hits than distinct-key misses.
  EXPECT_GT(cache->hits(), cache->misses());
}

TEST(RuleDictHandleTest, HandlesAreIndependentScratch) {
  SmallCorpus corpus;
  const std::string path = TestPath("handles.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_TRUE((*dict)->Bind(*corpus.schema, corpus.pool).ok());

  auto h1 = (*dict)->MakeHandle();
  auto h2 = (*dict)->MakeHandle();
  EXPECT_NE(h1->source().posting_cache(), h2->source().posting_cache());
  EXPECT_NE(h1->source().translator(), h2->source().translator());
}

// ---------------------------------------------------------------------
// Robustness: every invalid file shape is refused with a Status.

class RuleDictRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("robust.dict");
    ASSERT_TRUE(CompileRuleDict(corpus_.rules, path_).ok());
    bytes_ = ReadFileBytes(path_);
    std::memcpy(&header_, bytes_.data(), sizeof header_);
  }

  // Writes `bytes` to a scratch path and expects Open to refuse it.
  void ExpectRefused(const std::string& bytes, const std::string& tag) {
    const std::string path = TestPath("robust_" + tag + ".dict");
    WriteFileBytes(path, bytes);
    auto dict = RuleDict::Open(path);
    ASSERT_FALSE(dict.ok()) << tag;
    EXPECT_EQ(dict.status().code(), StatusCode::kMalformedInput) << tag;
  }

  // Re-seals the header CRC after a deliberate header edit, so the test
  // reaches the check behind the CRC gate.
  static void ResealCrc(std::string* bytes) {
    RuleDictHeader h;
    std::memcpy(&h, bytes->data(), sizeof h);
    h.header_crc = 0;
    h.header_crc = Crc32(&h, sizeof h);
    std::memcpy(bytes->data(), &h, sizeof h);
  }

  SmallCorpus corpus_;
  std::string path_;
  std::string bytes_;
  RuleDictHeader header_;
};

TEST_F(RuleDictRobustness, RefusesMissingFile) {
  auto dict = RuleDict::Open(TestPath("does_not_exist.dict"));
  ASSERT_FALSE(dict.ok());
  EXPECT_EQ(dict.status().code(), StatusCode::kIoError);
}

TEST_F(RuleDictRobustness, RefusesBadMagic) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  ExpectRefused(bytes, "magic");
}

TEST_F(RuleDictRobustness, RefusesUnknownVersion) {
  std::string bytes = bytes_;
  RuleDictHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  h.version = kRuleDictFormatVersion + 7;
  std::memcpy(bytes.data(), &h, sizeof h);
  ResealCrc(&bytes);
  const std::string path = TestPath("robust_version.dict");
  WriteFileBytes(path, bytes);
  auto dict = RuleDict::Open(path);
  ASSERT_FALSE(dict.ok());
  EXPECT_EQ(dict.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(dict.status().message().find("version"), std::string::npos);
}

TEST_F(RuleDictRobustness, RefusesHeaderCorruption) {
  // Flip one byte in every header field region; each flip must be caught
  // (by the CRC unless the flip hits the CRC field itself, in which case
  // the CRC no longer matches the rest — same refusal).
  for (size_t offset = 8; offset < sizeof(RuleDictHeader); offset += 13) {
    std::string bytes = bytes_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5a);
    ExpectRefused(bytes, "hdr" + std::to_string(offset));
  }
}

TEST_F(RuleDictRobustness, RefusesTruncationAtEverySectionBoundary) {
  // Shorter than the header at all.
  ExpectRefused(bytes_.substr(0, sizeof(RuleDictHeader) / 2), "tiny");
  // Exactly the header, no sections.
  ExpectRefused(bytes_.substr(0, sizeof(RuleDictHeader)), "header_only");
  for (size_t i = 0; i < kNumDictSections; ++i) {
    // Cut at the start of the section, mid-section, and one byte short
    // of its end.
    const uint64_t off = header_.section_offset[i];
    const uint64_t end = off + header_.section_bytes[i];
    ExpectRefused(bytes_.substr(0, off), "sec" + std::to_string(i) + "_start");
    if (header_.section_bytes[i] > 1) {
      ExpectRefused(bytes_.substr(0, off + header_.section_bytes[i] / 2),
                    "sec" + std::to_string(i) + "_mid");
      ExpectRefused(bytes_.substr(0, end - 1),
                    "sec" + std::to_string(i) + "_short");
    }
  }
}

TEST_F(RuleDictRobustness, RefusesTrailingGarbage) {
  ExpectRefused(bytes_ + std::string(64, '\0'), "padded");
}

TEST_F(RuleDictRobustness, RefusesSectionBoundsOutsideFile) {
  std::string bytes = bytes_;
  RuleDictHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  h.section_offset[static_cast<size_t>(DictSection::kPostings)] =
      h.file_size + 8;
  std::memcpy(bytes.data(), &h, sizeof h);
  ResealCrc(&bytes);
  ExpectRefused(bytes, "oob_section");
}

TEST_F(RuleDictRobustness, RefusesSectionSizeDisagreement) {
  std::string bytes = bytes_;
  RuleDictHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  h.num_rules += 1;  // every per-rule section size now disagrees
  std::memcpy(bytes.data(), &h, sizeof h);
  ResealCrc(&bytes);
  ExpectRefused(bytes, "size_disagree");
}

TEST_F(RuleDictRobustness, RefusesNonPowerOfTwoTables) {
  std::string bytes = bytes_;
  RuleDictHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  h.slot_count -= 1;
  std::memcpy(bytes.data(), &h, sizeof h);
  ResealCrc(&bytes);
  ExpectRefused(bytes, "pow2");
}

TEST(RuleDictEmpty, CompilesAndOpensEmptyRuleSet) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a", "b"});
  RuleSet rules(schema, pool);
  const std::string path = TestPath("empty.dict");
  ASSERT_TRUE(CompileRuleDict(rules, path).ok());
  auto dict = RuleDict::Open(path);
  ASSERT_TRUE(dict.ok()) << dict.status();
  EXPECT_EQ((*dict)->num_rules(), 0u);
  ASSERT_TRUE((*dict)->Bind(*schema, pool).ok());
  auto handle = (*dict)->MakeHandle();
  Table table(schema, pool);
  table.AppendRow({pool->Intern("x"), pool->Intern("y")});
  FastRepairer repairer(handle->source());
  repairer.RepairTable(&table);
  EXPECT_EQ(repairer.stats().cells_changed, 0u);
}

// A WAL written under one dictionary must refuse to resume under
// another: the header carries the rule-set fingerprint and the
// dictionary stamps the same identity, so ValidateWalHeader catches a
// swapped dictionary file just like swapped in-memory rules.
TEST(RuleDictResume, WalRefusesAMismatchedDictionary) {
  SmallCorpus corpus;
  const std::string dict_a = TestPath("resume_a.dict");
  ASSERT_TRUE(CompileRuleDict(corpus.rules, dict_a).ok());
  RuleSet fewer(corpus.schema, corpus.pool);
  fewer.Add(corpus.rules.rule(0));
  const std::string dict_b = TestPath("resume_b.dict");
  ASSERT_TRUE(CompileRuleDict(fewer, dict_b).ok());

  const std::string dirty_csv =
      "country,capital,city\n"
      "China,Shanghai,s\n"
      "Canada,Toronto,t\n"
      "Cnina,Hongkong,h\n"
      "China,Beijing,b\n";
  const std::string wal = TestPath("resume.wal");

  const auto run = [&](const std::string& dict_path,
                       bool resume) -> StatusOr<std::string> {
    std::istringstream in(dirty_csv);
    auto pool = std::make_shared<ValuePool>();
    StatusOr<CsvChunkReader> reader =
        CsvChunkReader::Open(in, "stream", pool, {});
    if (!reader.ok()) return reader.status();
    RepairConfig config;
    config.rules_dict = dict_path;
    config.chunk_rows = 2;
    config.wal_path = wal;
    config.resume = resume;
    RepairSession session(config);
    std::ostringstream out;
    StatusOr<RepairReport> report =
        session.RepairStream(&reader.value(), out);
    if (!report.ok()) return report.status();
    return out.str();
  };

  const StatusOr<std::string> full = run(dict_a, false);
  ASSERT_TRUE(full.ok()) << full.status();
  // dict_b fingerprints differently: refused before any replay.
  const StatusOr<std::string> wrong = run(dict_b, true);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kMalformedInput);
  // The matching dictionary replays the complete log to the same bytes.
  const StatusOr<std::string> same = run(dict_a, true);
  ASSERT_TRUE(same.ok()) << same.status();
  EXPECT_EQ(*same, *full);
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace fixrep
