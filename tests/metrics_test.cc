#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/text_table.h"

namespace fixrep {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "R", std::vector<std::string>{"a", "b"})),
        truth_(schema_, pool_),
        dirty_(schema_, pool_),
        repaired_(schema_, pool_) {}

  void AddRow(Table* t, const std::string& a, const std::string& b) {
    t->AppendRowStrings({a, b});
  }

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table truth_, dirty_, repaired_;
};

TEST_F(MetricsTest, PerfectRepair) {
  AddRow(&truth_, "x", "y");
  AddRow(&dirty_, "x", "BAD");
  AddRow(&repaired_, "x", "y");
  const Accuracy acc = EvaluateRepair(truth_, dirty_, repaired_);
  EXPECT_EQ(acc.cells_erroneous, 1u);
  EXPECT_EQ(acc.cells_changed, 1u);
  EXPECT_EQ(acc.cells_corrected, 1u);
  EXPECT_EQ(acc.cells_broken, 0u);
  EXPECT_DOUBLE_EQ(acc.precision(), 1.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 1.0);
  EXPECT_DOUBLE_EQ(acc.f1(), 1.0);
}

TEST_F(MetricsTest, NoRepairGivesZeroRecallPerfectPrecision) {
  AddRow(&truth_, "x", "y");
  AddRow(&dirty_, "x", "BAD");
  AddRow(&repaired_, "x", "BAD");
  const Accuracy acc = EvaluateRepair(truth_, dirty_, repaired_);
  EXPECT_EQ(acc.cells_changed, 0u);
  EXPECT_DOUBLE_EQ(acc.precision(), 1.0);  // vacuous: no changes
  EXPECT_DOUBLE_EQ(acc.recall(), 0.0);
}

TEST_F(MetricsTest, WrongChangeHurtsPrecision) {
  AddRow(&truth_, "x", "y");
  AddRow(&dirty_, "x", "y");  // clean
  AddRow(&repaired_, "x", "WRONG");
  const Accuracy acc = EvaluateRepair(truth_, dirty_, repaired_);
  EXPECT_EQ(acc.cells_changed, 1u);
  EXPECT_EQ(acc.cells_corrected, 0u);
  EXPECT_EQ(acc.cells_broken, 1u);
  EXPECT_DOUBLE_EQ(acc.precision(), 0.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 1.0);  // vacuous: no errors to fix
}

TEST_F(MetricsTest, ChangeToDifferentWrongValueCountsAsChangeNotCorrection) {
  AddRow(&truth_, "x", "y");
  AddRow(&dirty_, "x", "BAD");
  AddRow(&repaired_, "x", "OTHER");
  const Accuracy acc = EvaluateRepair(truth_, dirty_, repaired_);
  EXPECT_EQ(acc.cells_changed, 1u);
  EXPECT_EQ(acc.cells_corrected, 0u);
  EXPECT_EQ(acc.cells_erroneous, 1u);
  EXPECT_DOUBLE_EQ(acc.precision(), 0.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.0);
  // Not "broken": the cell was already wrong.
  EXPECT_EQ(acc.cells_broken, 0u);
}

TEST_F(MetricsTest, MixedCountsAccumulate) {
  // row 0: corrected; row 1: missed; row 2: broken; row 3: untouched.
  AddRow(&truth_, "t0", "u0");
  AddRow(&truth_, "t1", "u1");
  AddRow(&truth_, "t2", "u2");
  AddRow(&truth_, "t3", "u3");
  AddRow(&dirty_, "E0", "u0");
  AddRow(&dirty_, "E1", "u1");
  AddRow(&dirty_, "t2", "u2");
  AddRow(&dirty_, "t3", "u3");
  AddRow(&repaired_, "t0", "u0");
  AddRow(&repaired_, "E1", "u1");
  AddRow(&repaired_, "t2", "XX");
  AddRow(&repaired_, "t3", "u3");
  const Accuracy acc = EvaluateRepair(truth_, dirty_, repaired_);
  EXPECT_EQ(acc.cells_erroneous, 2u);
  EXPECT_EQ(acc.cells_changed, 2u);
  EXPECT_EQ(acc.cells_corrected, 1u);
  EXPECT_EQ(acc.cells_broken, 1u);
  EXPECT_DOUBLE_EQ(acc.precision(), 0.5);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.5);
  EXPECT_DOUBLE_EQ(acc.f1(), 0.5);
}

TEST_F(MetricsTest, MismatchedShapesAbort) {
  AddRow(&truth_, "x", "y");
  EXPECT_DEATH(EvaluateRepair(truth_, dirty_, repaired_), "");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"algo", "precision"});
  table.AddRow({"Fix", "0.99"});
  table.AddRow({"Heu", "0.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string expected =
      "| algo | precision |\n"
      "|------|-----------|\n"
      "| Fix  | 0.99      |\n"
      "| Heu  | 0.5       |\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(TextTableTest, RowArityMustMatchHeader) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(0.97251, 3), "0.973");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(12.5, 0), "12");
  EXPECT_EQ(FormatDouble(12.5, 0), "12");
}

TEST(EnvHelpersTest, DefaultsWhenUnset) {
  ::unsetenv("FIXREP_TEST_ENV_X");
  EXPECT_EQ(EnvSizeT("FIXREP_TEST_ENV_X", 7), 7u);
  EXPECT_DOUBLE_EQ(EnvDouble("FIXREP_TEST_ENV_X", 0.5), 0.5);
  EXPECT_TRUE(EnvBool("FIXREP_TEST_ENV_X", true));
  EXPECT_FALSE(EnvBool("FIXREP_TEST_ENV_X", false));
}

TEST(EnvHelpersTest, ParsesSetValues) {
  ::setenv("FIXREP_TEST_ENV_Y", "123", 1);
  EXPECT_EQ(EnvSizeT("FIXREP_TEST_ENV_Y", 7), 123u);
  ::setenv("FIXREP_TEST_ENV_Y", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FIXREP_TEST_ENV_Y", 0.5), 0.25);
  ::setenv("FIXREP_TEST_ENV_Y", "true", 1);
  EXPECT_TRUE(EnvBool("FIXREP_TEST_ENV_Y", false));
  ::setenv("FIXREP_TEST_ENV_Y", "0", 1);
  EXPECT_FALSE(EnvBool("FIXREP_TEST_ENV_Y", true));
  ::unsetenv("FIXREP_TEST_ENV_Y");
}

TEST(ExperimentScaleTest, DescribeMentionsSizes) {
  const auto scale = GetExperimentScale();
  const std::string banner = DescribeScale(scale);
  EXPECT_NE(banner.find("hosp"), std::string::npos);
  EXPECT_NE(banner.find("uis"), std::string::npos);
}

}  // namespace
}  // namespace fixrep
