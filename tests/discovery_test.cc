#include <gtest/gtest.h>

#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "eval/metrics.h"
#include "repair/lrepair.h"
#include "rulegen/discovery.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

struct DiscoveryPipeline {
  GeneratedData data;
  Table dirty;

  DiscoveryPipeline()
      : data([] {
          HospOptions options;
          options.rows = 8000;
          options.num_hospitals = 250;
          options.num_measures = 20;
          return GenerateHosp(options);
        }()),
        dirty(data.clean) {
    InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds),
                NoiseOptions{});
  }
};

TEST(DiscoveryTest, DiscoversUsableRulesWithoutGroundTruth) {
  DiscoveryPipeline pipeline;
  DiscoveryOptions options;
  options.max_rules = 500;
  const RuleSet rules = DiscoverRules(pipeline.dirty, pipeline.data.fds,
                                      options);
  EXPECT_GT(rules.size(), 10u);
  EXPECT_TRUE(IsConsistentStrict(rules));
}

TEST(DiscoveryTest, DiscoveredRulesRepairWithGoodPrecision) {
  DiscoveryPipeline pipeline;
  DiscoveryOptions options;
  options.max_rules = 500;
  const RuleSet rules = DiscoverRules(pipeline.dirty, pipeline.data.fds,
                                      options);
  Table repaired = pipeline.dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&repaired);
  const Accuracy accuracy =
      EvaluateRepair(pipeline.data.clean, pipeline.dirty, repaired);
  EXPECT_GT(accuracy.cells_corrected, 0u);
  EXPECT_GT(accuracy.precision(), 0.85);
}

TEST(DiscoveryTest, ConfidenceThresholdSuppressesAmbiguousGroups) {
  // In a 50/50 split group no value dominates; the discoverer must stay
  // silent rather than guess.
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"k", "v"});
  Table table(schema, pool);
  for (int i = 0; i < 5; ++i) table.AppendRowStrings({"key", "a"});
  for (int i = 0; i < 5; ++i) table.AppendRowStrings({"key", "b"});
  const auto fd = ParseFd(*schema, "k -> v");
  const RuleSet rules = DiscoverRules(table, {fd}, DiscoveryOptions{});
  EXPECT_EQ(rules.size(), 0u);
}

TEST(DiscoveryTest, StrongMajorityYieldsARule) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"k", "v"});
  Table table(schema, pool);
  for (int i = 0; i < 9; ++i) table.AppendRowStrings({"key", "good"});
  table.AppendRowStrings({"key", "bad"});
  const auto fd = ParseFd(*schema, "k -> v");
  const RuleSet rules = DiscoverRules(table, {fd}, DiscoveryOptions{});
  ASSERT_EQ(rules.size(), 1u);
  const FixingRule& rule = rules.rule(0);
  EXPECT_EQ(rule.fact, pool->Find("good"));
  EXPECT_EQ(rule.negative_patterns,
            std::vector<ValueId>{pool->Find("bad")});
  EXPECT_EQ(rule.evidence_values, std::vector<ValueId>{pool->Find("key")});
}

TEST(DiscoveryTest, MinSupportFiltersSmallGroups) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"k", "v"});
  Table table(schema, pool);
  table.AppendRowStrings({"key", "good"});
  table.AppendRowStrings({"key", "bad"});
  const auto fd = ParseFd(*schema, "k -> v");
  DiscoveryOptions options;
  options.min_support = 3;
  EXPECT_EQ(DiscoverRules(table, {fd}, options).size(), 0u);
}

TEST(DiscoveryTest, MarginGuardsAgainstNearTies) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"k", "v"});
  Table table(schema, pool);
  for (int i = 0; i < 5; ++i) table.AppendRowStrings({"key", "good"});
  for (int i = 0; i < 4; ++i) table.AppendRowStrings({"key", "bad"});
  const auto fd = ParseFd(*schema, "k -> v");
  DiscoveryOptions options;
  options.min_confidence = 0.5;
  options.min_margin = 2;
  EXPECT_EQ(DiscoverRules(table, {fd}, options).size(), 0u);
  options.min_margin = 1;
  EXPECT_EQ(DiscoverRules(table, {fd}, options).size(), 1u);
}

TEST(DiscoveryTest, DeterministicAcrossRuns) {
  DiscoveryPipeline pipeline;
  const RuleSet a =
      DiscoverRules(pipeline.dirty, pipeline.data.fds, DiscoveryOptions{});
  const RuleSet b =
      DiscoverRules(pipeline.dirty, pipeline.data.fds, DiscoveryOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.rule(i), b.rule(i));
}

}  // namespace
}  // namespace fixrep
