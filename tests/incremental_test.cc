#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/incremental.h"

namespace fixrep {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  TravelExample example_;
};

TEST_F(IncrementalTest, ConstructionRepairsEverything) {
  IncrementalRepairer session(&example_.rules, example_.dirty);
  for (size_t r = 0; r < session.table().num_rows(); ++r) {
    EXPECT_EQ(session.table().row(r), example_.clean.row(r));
  }
  EXPECT_EQ(session.stats().cells_changed, 4u);
}

TEST_F(IncrementalTest, InsertRepairsTheNewRow) {
  IncrementalRepairer session(&example_.rules, example_.dirty);
  Tuple row(example_.schema->arity());
  row[0] = example_.pool->Intern("Nan");
  row[1] = example_.pool->Find("China");
  row[2] = example_.pool->Find("Hongkong");
  row[3] = example_.pool->Find("Shanghai");
  row[4] = example_.pool->Find("ICDE");
  const size_t index = session.Insert(std::move(row));
  EXPECT_EQ(index, 4u);
  // phi_1 fires on insert: capital Hongkong -> Beijing.
  EXPECT_EQ(session.table().CellString(index, 2), "Beijing");
}

TEST_F(IncrementalTest, CleanInsertIsUntouched) {
  IncrementalRepairer session(&example_.rules, example_.dirty);
  const size_t index = session.Insert(example_.clean.row(0).ToTuple());
  EXPECT_EQ(session.table().row(index), example_.clean.row(0));
}

TEST_F(IncrementalTest, UpdateCellRechasesTheRow) {
  IncrementalRepairer session(&example_.rules, example_.clean);
  // A user "corrupts" r1's capital to Shanghai; the session fixes it
  // right back (and the cascade re-runs as needed).
  const size_t changes =
      session.UpdateCell(0, 2, example_.pool->Find("Shanghai"));
  EXPECT_EQ(changes, 1u);
  EXPECT_EQ(session.table().CellString(0, 2), "Beijing");
}

TEST_F(IncrementalTest, UpdateToCleanValueChangesNothing) {
  IncrementalRepairer session(&example_.rules, example_.clean);
  const size_t changes =
      session.UpdateCell(0, 0, example_.pool->Intern("Georgia"));
  EXPECT_EQ(changes, 0u);
  EXPECT_EQ(session.table().CellString(0, 0), "Georgia");
}

TEST_F(IncrementalTest, StatsAccumulateAcrossMutations) {
  IncrementalRepairer session(&example_.rules, example_.dirty);
  const size_t after_init = session.stats().cells_changed;
  session.UpdateCell(0, 2, example_.pool->Find("Hongkong"));
  EXPECT_EQ(session.stats().cells_changed, after_init + 1);
}

TEST_F(IncrementalTest, SessionMatchesBatchRepairAfterMutations) {
  // Applying the same mutations to a raw table and batch-repairing must
  // land in the same state as the incremental session.
  IncrementalRepairer session(&example_.rules, example_.dirty);
  Tuple extra(example_.schema->arity(), kNullValue);
  extra[1] = example_.pool->Find("Canada");
  extra[2] = example_.pool->Find("Toronto");
  session.Insert(extra);

  Table batch = example_.dirty;
  batch.AppendRow(extra);
  FastRepairer repairer(&example_.rules);
  repairer.RepairTable(&batch);
  ASSERT_EQ(batch.num_rows(), session.table().num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    EXPECT_EQ(batch.row(r), session.table().row(r)) << "row " << r;
  }
}

}  // namespace
}  // namespace fixrep
