#include <string>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/lrepair.h"
#include "repair/provenance.h"

namespace fixrep {
namespace {

class ProvenanceTest : public ::testing::Test {
 protected:
  TravelExample example_;
};

TEST_F(ProvenanceTest, RecordsEveryChange) {
  Table table = example_.dirty;
  const RepairLog log = RepairWithProvenance(example_.rules, &table);
  ASSERT_EQ(log.repairs.size(), 4u);
  // The repaired table matches the clean one and each entry is a real
  // cell diff.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r), example_.clean.row(r));
  }
  for (const auto& repair : log.repairs) {
    EXPECT_EQ(example_.dirty.cell(repair.row, repair.attr),
              repair.old_value);
    EXPECT_EQ(table.cell(repair.row, repair.attr), repair.new_value);
    EXPECT_NE(repair.old_value, repair.new_value);
  }
}

TEST_F(ProvenanceTest, AttributesChangesToTheRightRules) {
  Table table = example_.dirty;
  const RepairLog log = RepairWithProvenance(example_.rules, &table);
  const auto counts = log.PerRuleCounts(example_.rules.size());
  // Fig. 8: each of phi_1..phi_4 repairs exactly one cell.
  EXPECT_EQ(counts, (std::vector<size_t>{1, 1, 1, 1}));
  for (const auto& repair : log.repairs) {
    const FixingRule& rule = example_.rules.rule(repair.rule_index);
    EXPECT_EQ(rule.target, repair.attr);
    EXPECT_EQ(rule.fact, repair.new_value);
    EXPECT_TRUE(rule.IsNegative(repair.old_value));
  }
}

TEST_F(ProvenanceTest, AgreesWithFastRepairer) {
  Table by_provenance = example_.dirty;
  RepairWithProvenance(example_.rules, &by_provenance);
  Table by_lrepair = example_.dirty;
  FastRepairer repairer(&example_.rules);
  repairer.RepairTable(&by_lrepair);
  for (size_t r = 0; r < by_provenance.num_rows(); ++r) {
    EXPECT_EQ(by_provenance.row(r), by_lrepair.row(r));
  }
}

TEST_F(ProvenanceTest, DescribeIsHumanReadable) {
  Table table = example_.dirty;
  const RepairLog log = RepairWithProvenance(example_.rules, &table);
  ASSERT_FALSE(log.repairs.empty());
  // Find the r2[capital] repair.
  const CellRepair* capital_repair = nullptr;
  for (const auto& repair : log.repairs) {
    if (repair.row == 1 && repair.attr == 2) capital_repair = &repair;
  }
  ASSERT_NE(capital_repair, nullptr);
  const std::string text =
      log.Describe(*capital_repair, *example_.schema, *example_.pool);
  EXPECT_EQ(text, "row 1 capital: 'Shanghai' -> 'Beijing' by rule #0");
}

TEST_F(ProvenanceTest, CleanTableYieldsEmptyLog) {
  Table table = example_.clean;
  const RepairLog log = RepairWithProvenance(example_.rules, &table);
  EXPECT_TRUE(log.repairs.empty());
}

}  // namespace
}  // namespace fixrep
