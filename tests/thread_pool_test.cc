#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace fixrep {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const size_t n = 10000;
  std::vector<std::atomic<uint32_t>> touched(n);
  pool.ParallelFor(n, /*grain=*/64, /*max_participants=*/4,
                   [&](size_t begin, size_t end, size_t slot) {
                     ASSERT_LT(slot, 4u);
                     for (size_t i = begin; i < end; ++i) {
                       touched[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, SlotScratchIsRaceFree) {
  // Per-slot accumulators with no atomics: correct iff no two threads
  // ever share a slot (the contract per-worker FastRepairer scratch
  // relies on). TSan runs of this test double as the race check.
  ThreadPool pool(3);
  const size_t n = 50000;
  const size_t max_participants = 4;
  std::vector<uint64_t> per_slot(max_participants, 0);
  pool.ParallelFor(n, /*grain=*/32, max_participants,
                   [&](size_t begin, size_t end, size_t slot) {
                     for (size_t i = begin; i < end; ++i) {
                       per_slot[slot] += i;
                     }
                   });
  const uint64_t total =
      std::accumulate(per_slot.begin(), per_slot.end(), uint64_t{0});
  EXPECT_EQ(total, uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 16, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleParticipantRunsInline) {
  ThreadPool pool(2);
  size_t calls = 0;  // non-atomic: must only ever run on this thread
  pool.ParallelFor(100, 7, /*max_participants=*/1,
                   [&](size_t begin, size_t end, size_t slot) {
                     EXPECT_EQ(slot, 0u);
                     calls += end - begin;
                   });
  EXPECT_EQ(calls, 100u);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(2);
  std::atomic<size_t> chunks{0};
  pool.ParallelFor(10, /*grain=*/1000, 4,
                   [&](size_t begin, size_t end, size_t) {
                     EXPECT_EQ(begin, 0u);
                     EXPECT_EQ(end, 10u);
                     chunks.fetch_add(1);
                   });
  EXPECT_EQ(chunks.load(), 1u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolDegradesToInline) {
  ThreadPool pool(0);
  std::vector<uint8_t> touched(1000, 0);
  pool.ParallelFor(1000, 64, 8, [&](size_t begin, size_t end, size_t slot) {
    EXPECT_EQ(slot, 0u);
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) EXPECT_EQ(touched[i], 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // The whole point of the pool: many cheap dispatches, no per-call
  // thread spawn. Also checks job isolation (no leakage between calls).
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> sum{0};
    const size_t n = 64 + static_cast<size_t>(round);
    pool.ParallelFor(n, 8, 4, [&](size_t begin, size_t end, size_t) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), uint64_t{n} * (n - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, GlobalPoolIsPersistent) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
  std::atomic<size_t> count{0};
  a.ParallelFor(100, 4, 0 /* clamped to 1 */, [&](size_t begin, size_t end,
                                                  size_t) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

}  // namespace
}  // namespace fixrep
