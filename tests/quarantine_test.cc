// The quarantine (dead-letter) pipeline: lenient CSV ingestion, lenient
// rule parsing, and failure-isolating repair, including the property
// that on clean inputs quarantine mode is bit-identical to abort mode,
// serial and parallel.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/random.h"
#include "common/status.h"
#include "relation/csv.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "rules/rule_io.h"
#include "testing_util.h"

namespace fixrep {
namespace {

uint64_t CounterValue(const char* name) {
  const Counter* counter = MetricsRegistry::Global().FindCounter(name);
  return counter == nullptr ? 0 : counter->Value();
}

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAllForTest(); }
};

// ---------------------------------------------------------------- CSV --

StatusOr<Table> ReadLenient(const std::string& text,
                            const CsvReadOptions& options) {
  std::istringstream in(text);
  return ReadCsvLenient(in, "test", std::make_shared<ValuePool>(), options);
}

TEST_F(QuarantineTest, CsvCleanInputMatchesStrict) {
  const std::string text = "a,b\n1,2\n\"x,y\",3\n";
  CsvReadOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<Table> lenient = ReadLenient(text, options);
  ASSERT_TRUE(lenient.ok());
  std::istringstream in(text);
  const Table strict = ReadCsv(in, "test", std::make_shared<ValuePool>());
  ASSERT_EQ(lenient->num_rows(), strict.num_rows());
  for (size_t r = 0; r < strict.num_rows(); ++r) {
    for (size_t a = 0; a < strict.schema().arity(); ++a) {
      EXPECT_EQ(lenient->CellString(r, static_cast<AttrId>(a)),
                strict.CellString(r, static_cast<AttrId>(a)));
    }
  }
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(CounterValue("fixrep.quarantine.rows"), 0u);
}

TEST_F(QuarantineTest, CsvQuarantinesArityMismatch) {
  CsvReadOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<Table> table = ReadLenient("a,b\n1,2\n1,2,3\nx,y\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->CellString(1, 0), "x");
  ASSERT_EQ(sink.size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.line, 1u);  // 0-based data-record ordinal
  EXPECT_EQ(d.code, StatusCode::kMalformedInput);
  EXPECT_NE(d.message.find("arity mismatch"), std::string::npos);
  EXPECT_EQ(d.raw_text, "1,2,3");
  EXPECT_EQ(CounterValue("fixrep.quarantine.rows"), 1u);
}

TEST_F(QuarantineTest, CsvQuarantinesUnterminatedQuoteAtEof) {
  CsvReadOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<Table> table = ReadLenient("a,b\n1,2\n\"oops,3\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("unterminated"),
            std::string::npos);
  EXPECT_EQ(CounterValue("fixrep.quarantine.rows"), 1u);
}

TEST_F(QuarantineTest, CsvSkipModeDropsSilently) {
  CsvReadOptions options;
  options.on_error = OnErrorPolicy::kSkip;
  StatusOr<Table> table = ReadLenient("a,b\n1,2,3\nx,y\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(CounterValue("fixrep.quarantine.rows"), 1u);
}

TEST_F(QuarantineTest, CsvAbortModeReturnsFirstError) {
  const StatusOr<Table> table = ReadLenient("a,b\n1,2,3\n", {});
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(table.status().message().find("arity mismatch"),
            std::string::npos);
}

TEST_F(QuarantineTest, CsvHeaderProblemsAreFatalInEveryMode) {
  for (const OnErrorPolicy policy :
       {OnErrorPolicy::kAbort, OnErrorPolicy::kSkip,
        OnErrorPolicy::kQuarantine}) {
    CsvReadOptions options;
    options.on_error = policy;
    EXPECT_FALSE(ReadLenient("", options).ok());
    const StatusOr<Table> duplicate = ReadLenient("a,b,a\n1,2,3\n", options);
    ASSERT_FALSE(duplicate.ok());
    EXPECT_NE(duplicate.status().message().find("duplicate CSV header"),
              std::string::npos);
    const StatusOr<Table> unterminated = ReadLenient("a,\"b\n", options);
    ASSERT_FALSE(unterminated.ok());
    EXPECT_NE(unterminated.status().message().find("unterminated"),
              std::string::npos);
  }
}

TEST(QuarantineDeathTest, StrictReadCsvDiesOnUnterminatedQuote) {
  std::istringstream in("a,b\n\"oops,3\n");
  EXPECT_DEATH(ReadCsv(in, "t", std::make_shared<ValuePool>()),
               "unterminated");
}

TEST(QuarantineDeathTest, StrictReadCsvDiesOnDuplicateHeader) {
  std::istringstream in("a,a\n1,2\n");
  EXPECT_DEATH(ReadCsv(in, "t", std::make_shared<ValuePool>()),
               "duplicate CSV header");
}

// --------------------------------------------------------------- rules --

class RuleQuarantineTest : public QuarantineTest {
 protected:
  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R", std::vector<std::string>{"name", "country", "capital"});

  StatusOr<RuleSet> Parse(const std::string& text,
                          const RuleParseOptions& options) {
    std::istringstream in(text);
    return ParseRulesLenient(in, schema_, pool_, options);
  }
};

constexpr char kGoodRule[] =
    "RULE\n"
    "  IF country = China\n"
    "  WRONG capital IN Shanghai | Hongkong\n"
    "  THEN capital = Beijing\n"
    "END\n";

TEST_F(RuleQuarantineTest, CleanRulesMatchStrict) {
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(kGoodRule, options);
  ASSERT_TRUE(rules.ok());
  const RuleSet strict = ParseRulesFromString(kGoodRule, schema_, pool_);
  ASSERT_EQ(rules->size(), strict.size());
  EXPECT_EQ(rules->rule(0), strict.rule(0));
  EXPECT_TRUE(sink.empty());
}

TEST_F(RuleQuarantineTest, BadBlockQuarantinedRestKept) {
  const std::string text = std::string(kGoodRule) +
                           "RULE\n"
                           "  WHEN x = y\n"
                           "  WRONG capital IN X\n"
                           "  THEN capital = Y\n"
                           "END\n" +
                           kGoodRule;
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);
  ASSERT_EQ(sink.size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, StatusCode::kMalformedInput);
  EXPECT_NE(d.message.find("unknown directive"), std::string::npos);
  // The whole block, RULE through END, is preserved verbatim.
  EXPECT_NE(d.raw_text.find("WHEN x = y"), std::string::npos);
  EXPECT_NE(d.raw_text.find("END"), std::string::npos);
  EXPECT_EQ(CounterValue("fixrep.quarantine.rules"), 1u);
}

TEST_F(RuleQuarantineTest, UnknownAttributeQuarantined) {
  const std::string text =
      "RULE\n"
      "  IF planet = Mars\n"
      "  WRONG capital IN X\n"
      "  THEN capital = Y\n"
      "END\n" +
      std::string(kGoodRule);
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kSkip;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);
  EXPECT_EQ(CounterValue("fixrep.quarantine.rules"), 1u);
}

TEST_F(RuleQuarantineTest, MalformedRuleVariantsAllRecovered) {
  // One bad block of each kind, a good rule in between each.
  const std::vector<std::string> bad_blocks = {
      // missing WRONG
      "RULE\n  IF country = China\nEND\n",
      // missing THEN
      "RULE\n  WRONG capital IN X\nEND\n",
      // THEN/WRONG attribute mismatch
      "RULE\n  WRONG capital IN X\n  THEN name = Y\nEND\n",
      // fact inside the negative patterns
      "RULE\n  WRONG capital IN X | Y\n  THEN capital = X\nEND\n",
      // duplicate evidence attribute
      "RULE\n  IF country = China\n  IF country = Japan\n"
      "  WRONG capital IN X\n  THEN capital = Y\nEND\n",
      // target repeated in the evidence
      "RULE\n  IF capital = Tokyo\n  WRONG capital IN X\n"
      "  THEN capital = Y\nEND\n",
      // missing '=' in an assignment
      "RULE\n  IF country China\n  WRONG capital IN X\n"
      "  THEN capital = Y\nEND\n",
      // empty negative pattern
      "RULE\n  WRONG capital IN X | | Y\n  THEN capital = Z\nEND\n",
      // duplicate WRONG
      "RULE\n  WRONG capital IN X\n  WRONG capital IN Y\n"
      "  THEN capital = Z\nEND\n",
      // THEN before WRONG
      "RULE\n  THEN capital = Z\n  WRONG capital IN X\nEND\n",
  };
  std::string text;
  for (const std::string& block : bad_blocks) {
    text += block;
    text += kGoodRule;
  }
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), bad_blocks.size());
  EXPECT_EQ(sink.size(), bad_blocks.size());
  EXPECT_EQ(CounterValue("fixrep.quarantine.rules"), bad_blocks.size());
  // Abort mode rejects each block on its own.
  for (const std::string& block : bad_blocks) {
    EXPECT_FALSE(Parse(block, {}).ok()) << block;
  }
}

TEST_F(RuleQuarantineTest, StrayTopLevelLineQuarantined) {
  const std::string text =
      "IF country = China\n" + std::string(kGoodRule);
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].line, 1u);  // 1-based source line
  EXPECT_NE(sink.diagnostics()[0].message.find("outside RULE"),
            std::string::npos);
}

TEST_F(RuleQuarantineTest, UnterminatedTrailingBlockQuarantined) {
  const std::string text =
      std::string(kGoodRule) + "RULE\n  IF country = China\n";
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("unterminated RULE"),
            std::string::npos);
}

TEST_F(RuleQuarantineTest, NestedRuleStartsFreshBlock) {
  const std::string text =
      "RULE\n"
      "  IF country = China\n"
      "RULE\n"
      "  WRONG capital IN Shanghai\n"
      "  THEN capital = Beijing\n"
      "END\n";
  RuleParseOptions options;
  options.on_error = OnErrorPolicy::kQuarantine;
  VectorQuarantineSink sink;
  options.quarantine = &sink;
  StatusOr<RuleSet> rules = Parse(text, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);  // the second block is a valid rule
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("nested RULE"),
            std::string::npos);
  // The dead block's raw text does not swallow the new RULE line.
  EXPECT_EQ(sink.diagnostics()[0].raw_text, "RULE\n  IF country = China\n");
}

// -------------------------------------------------------------- repair --

// Cascading pair: a tuple matching (name = flag) needs rule 2 (country
// fix) to unlock rule 1 (capital fix) — two chase applications. Rule 2
// carries evidence so that tuples not in the cascade never enqueue it,
// keeping their Ω-pop count at one.
RuleSet CascadeRules(std::shared_ptr<const Schema> schema,
                     std::shared_ptr<ValuePool> pool) {
  const std::string text =
      "RULE\n"
      "  IF country = China\n"
      "  WRONG capital IN Shanghai | Hongkong\n"
      "  THEN capital = Beijing\n"
      "END\n"
      "RULE\n"
      "  IF name = flag\n"
      "  WRONG country IN Chn\n"
      "  THEN country = China\n"
      "END\n";
  return ParseRulesFromString(text, std::move(schema), std::move(pool));
}

class RepairQuarantineTest : public QuarantineTest {
 protected:
  std::shared_ptr<ValuePool> pool_ = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema_ = std::make_shared<Schema>(
      "R", std::vector<std::string>{"country", "capital", "name"});
  RuleSet rules_ = CascadeRules(schema_, pool_);

  Table MakeTable(const std::vector<std::vector<std::string>>& rows) {
    Table table(schema_, pool_);
    for (const auto& row : rows) table.AppendRowStrings(row);
    return table;
  }
};

TEST_F(RepairQuarantineTest, FastRepairerBudgetRestoresTuple) {
  FastRepairer repairer(&rules_);
  repairer.set_max_chase_steps(1);
  Table table = MakeTable({{"Chn", "Shanghai", "flag"}});
  const Tuple original = table.row(0).ToTuple();
  const size_t applications_before = repairer.stats().rule_applications;
  size_t changed = 1;
  const Status status =
      repairer.TryRepairTuple(table.WriteRow(0), &changed);
  EXPECT_EQ(status.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(table.row(0), original);
  EXPECT_EQ(repairer.stats().rule_applications, applications_before);
  EXPECT_EQ(repairer.stats().cells_changed, 0u);
  EXPECT_EQ(repairer.stats().tuples_changed, 0u);

  // With an adequate budget the same tuple chases to its fix.
  repairer.set_max_chase_steps(16);
  ASSERT_TRUE(
      repairer.TryRepairTuple(table.WriteRow(0), &changed).ok());
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(table.CellString(0, 0), "China");
  EXPECT_EQ(table.CellString(0, 1), "Beijing");
}

TEST_F(RepairQuarantineTest, ChaseRepairerBudgetRestoresTuple) {
  ChaseRepairer repairer(&rules_);
  repairer.set_max_chase_steps(1);
  Table table = MakeTable({{"Chn", "Shanghai", "flag"}});
  const Tuple original = table.row(0).ToTuple();
  const size_t applications_before = repairer.stats().rule_applications;
  size_t changed = 1;
  const Status status =
      repairer.TryRepairTuple(table.WriteRow(0), &changed);
  EXPECT_EQ(status.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(table.row(0), original);
  EXPECT_EQ(repairer.stats().rule_applications, applications_before);

  repairer.set_max_chase_steps(64);
  ASSERT_TRUE(
      repairer.TryRepairTuple(table.WriteRow(0), &changed).ok());
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(table.CellString(0, 1), "Beijing");
}

TEST_F(RepairQuarantineTest, TryRepairTupleRejectsWrongArity) {
  FastRepairer fast(&rules_);
  ChaseRepairer chase(&rules_);
  Tuple short_tuple(2, kNullValue);
  size_t changed = 0;
  EXPECT_EQ(fast.TryRepairTuple(short_tuple, &changed).code(),
            StatusCode::kMalformedInput);
  EXPECT_EQ(chase.TryRepairTuple(short_tuple, &changed).code(),
            StatusCode::kMalformedInput);
}

TEST_F(RepairQuarantineTest, LenientRepairQuarantinesPathologicalTuples) {
  const std::vector<std::vector<std::string>> rows = {
      {"China", "Shanghai", "x"},  // one Ω pop: fine under budget 1
      {"Chn", "Shanghai", "flag"},  // cascade, two pops: budget-exhausted
      {"France", "Paris", "y"},     // untouched
      {"Chn", "Hongkong", "flag"},  // cascade: budget-exhausted
  };
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    MetricsRegistry::Global().ResetAllForTest();
    Table table = MakeTable(rows);
    const CompiledRuleIndex index(&rules_);
    VectorQuarantineSink sink;
    LenientRepairOptions options;
    options.parallel.threads = threads;
    options.quarantine = &sink;
    options.max_chase_steps = 1;
    const LenientRepairResult result =
        ParallelRepairTableLenient(index, &table, options);
    EXPECT_EQ(result.tuples_quarantined, 2u) << threads;
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.diagnostics()[0].line, 1u);
    EXPECT_EQ(sink.diagnostics()[1].line, 3u);
    for (const Diagnostic& d : sink.diagnostics()) {
      EXPECT_EQ(d.code, StatusCode::kBudgetExhausted);
      EXPECT_NE(d.raw_text.find("Chn"), std::string::npos)
          << "original values preserved in the diagnostic";
    }
    // Clean rows repaired, bad rows preserved untouched.
    EXPECT_EQ(table.CellString(0, 1), "Beijing");
    EXPECT_EQ(table.CellString(1, 0), "Chn");
    EXPECT_EQ(table.CellString(1, 1), "Shanghai");
    EXPECT_EQ(table.CellString(2, 1), "Paris");
    EXPECT_EQ(table.CellString(3, 0), "Chn");
    EXPECT_EQ(CounterValue("fixrep.quarantine.tuples"), 2u);
    EXPECT_EQ(result.stats.tuples_examined, rows.size());
    EXPECT_EQ(result.stats.cells_changed, 1u);
  }
}

// Property: on clean inputs, quarantine mode is a no-op — the repaired
// table is bit-identical to the fail-fast engines', serial and parallel,
// and serial/parallel lenient runs agree on stats and diagnostics.
TEST_F(QuarantineTest, LenientRepairCleanInputsBitIdenticalToStrict) {
  testing::RandomRuleUniverse universe;
  Rng rng(20260806);
  for (int round = 0; round < 20; ++round) {
    RuleSet rules(universe.schema, universe.pool);
    const size_t num_rules = 1 + rng.Uniform(12);
    for (size_t i = 0; i < num_rules; ++i) {
      rules.Add(universe.RandomRule(&rng));
    }
    Table table(universe.schema, universe.pool);
    const size_t num_rows = 1 + rng.Uniform(200);
    for (size_t r = 0; r < num_rows; ++r) {
      table.AppendRow(universe.RandomTuple(&rng));
    }

    Table strict_serial = table;
    FastRepairer strict(&rules);
    strict.RepairTable(&strict_serial);

    Table strict_parallel = table;
    ParallelRepairTable(rules, &strict_parallel, /*threads=*/4);

    const CompiledRuleIndex index(&rules);
    Table lenient_serial = table;
    VectorQuarantineSink serial_sink;
    LenientRepairOptions serial_options;
    serial_options.parallel.threads = 1;
    serial_options.quarantine = &serial_sink;
    const LenientRepairResult serial_result =
        ParallelRepairTableLenient(index, &lenient_serial, serial_options);

    Table lenient_parallel = table;
    VectorQuarantineSink parallel_sink;
    LenientRepairOptions parallel_options;
    parallel_options.parallel.threads = 4;
    parallel_options.quarantine = &parallel_sink;
    const LenientRepairResult parallel_result = ParallelRepairTableLenient(
        index, &lenient_parallel, parallel_options);

    EXPECT_EQ(serial_result.tuples_quarantined, 0u);
    EXPECT_EQ(parallel_result.tuples_quarantined, 0u);
    EXPECT_TRUE(serial_sink.empty());
    EXPECT_TRUE(parallel_sink.empty());
    for (size_t r = 0; r < num_rows; ++r) {
      ASSERT_EQ(lenient_serial.row(r), strict_serial.row(r)) << round;
      ASSERT_EQ(lenient_parallel.row(r), strict_serial.row(r)) << round;
      ASSERT_EQ(strict_parallel.row(r), strict_serial.row(r)) << round;
    }
    EXPECT_EQ(serial_result.stats.tuples_examined,
              parallel_result.stats.tuples_examined);
    EXPECT_EQ(serial_result.stats.cells_changed,
              parallel_result.stats.cells_changed);
    EXPECT_EQ(serial_result.stats.rule_applications,
              parallel_result.stats.rule_applications);
    EXPECT_EQ(serial_result.stats.per_rule_applications,
              parallel_result.stats.per_rule_applications);
  }
}

}  // namespace
}  // namespace fixrep
