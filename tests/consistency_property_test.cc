#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rules/consistency.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using testing::RandomRuleUniverse;

// The rule-characterization checker (Fig. 4) and the tuple-enumeration
// checker decide the same language; cross-validate them on randomized
// rule pairs and sets. Each parameter value seeds one independent batch.
class CheckerAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerAgreementTest, PairwiseAgreement) {
  RandomRuleUniverse universe;
  Rng rng(GetParam());
  const size_t arity = universe.schema->arity();
  for (int trial = 0; trial < 300; ++trial) {
    const FixingRule a = universe.RandomRule(&rng);
    const FixingRule b = universe.RandomRule(&rng);
    Conflict char_conflict;
    Conflict enum_conflict;
    const bool by_char = PairConsistentChar(a, b, arity, &char_conflict);
    const bool by_enum = PairConsistentEnum(a, b, arity, &enum_conflict);
    ASSERT_EQ(by_char, by_enum)
        << "checkers disagree (trial " << trial << ")\n  a: "
        << a.Format(*universe.schema, *universe.pool)
        << "\n  b: " << b.Format(*universe.schema, *universe.pool);
    if (!by_enum) {
      // The enumeration witness must really diverge.
      Tuple ab = enum_conflict.witness;
      Tuple ba = enum_conflict.witness;
      ChaseWithPriority({&a, &b}, &ab);
      ChaseWithPriority({&b, &a}, &ba);
      EXPECT_NE(ab, ba);
    }
  }
}

TEST_P(CheckerAgreementTest, WholeSetAgreement) {
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 40; ++trial) {
    RuleSet rules(universe.schema, universe.pool);
    const size_t n = 2 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) rules.Add(universe.RandomRule(&rng));
    EXPECT_EQ(IsConsistentChar(rules), IsConsistentEnum(rules))
        << "set checkers disagree on trial " << trial;
  }
}

TEST_P(CheckerAgreementTest, CharWitnessDiverges) {
  // Every conflict the characterization checker reports must come with a
  // witness tuple whose two chase orders truly diverge.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0x1234);
  const size_t arity = universe.schema->arity();
  int conflicts_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const FixingRule a = universe.RandomRule(&rng);
    const FixingRule b = universe.RandomRule(&rng);
    Conflict conflict;
    if (PairConsistentChar(a, b, arity, &conflict)) continue;
    ++conflicts_seen;
    ASSERT_EQ(conflict.witness.size(), arity);
    Tuple ab = conflict.witness;
    Tuple ba = conflict.witness;
    ChaseWithPriority({&a, &b}, &ab);
    ChaseWithPriority({&b, &a}, &ba);
    EXPECT_NE(ab, ba)
        << "non-divergent witness\n  a: "
        << a.Format(*universe.schema, *universe.pool)
        << "\n  b: " << b.Format(*universe.schema, *universe.pool);
  }
  // The universe is small enough that conflicts are common; make sure
  // the assertion above was actually exercised.
  EXPECT_GT(conflicts_seen, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAgreementTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace fixrep
