#include "common/metrics.h"

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testing_util.h"

namespace fixrep {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsEnabled) {
      GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
    }
    MetricsRegistry::Global().ResetAllForTest();
  }
};

TEST_F(MetricsRegistryTest, CounterAddsAndResets) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("fixrep.test.counter");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST_F(MetricsRegistryTest, GetReturnsSameInstanceForSameName) {
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("fixrep.test.same"),
            registry.GetCounter("fixrep.test.same"));
  EXPECT_NE(registry.GetCounter("fixrep.test.same"),
            registry.GetCounter("fixrep.test.other"));
  EXPECT_EQ(registry.FindCounter("fixrep.test.never_registered"), nullptr);
}

TEST_F(MetricsRegistryTest, GaugeLastWriteWins) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("fixrep.test.gauge");
  gauge->Set(7);
  gauge->Set(-3);
  EXPECT_EQ(gauge->Value(), -3);
}

TEST_F(MetricsRegistryTest, HistogramBucketsSumMinMax) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("fixrep.test.histogram");
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_EQ(histogram->Min(), 0u);  // empty histogram reports 0
  histogram->Observe(0);
  histogram->Observe(1);
  histogram->Observe(1000);
  histogram->Observe(1023);
  histogram->Observe(1024);
  EXPECT_EQ(histogram->Count(), 5u);
  EXPECT_EQ(histogram->Sum(), 0u + 1 + 1000 + 1023 + 1024);
  EXPECT_EQ(histogram->Min(), 0u);
  EXPECT_EQ(histogram->Max(), 1024u);
  const auto buckets = histogram->BucketCounts();
  // Bucket i holds values with bit width i, i.e. value < 2^i.
  EXPECT_EQ(buckets[0], 1u);   // 0
  EXPECT_EQ(buckets[1], 1u);   // 1
  EXPECT_EQ(buckets[10], 2u);  // 1000, 1023 in [512, 1024)
  EXPECT_EQ(buckets[11], 1u);  // 1024
  uint64_t total = 0;
  for (const uint64_t c : buckets) total += c;
  EXPECT_EQ(total, 5u);
}

TEST_F(MetricsRegistryTest, HistogramOverflowGoesToLastBucket) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("fixrep.test.overflow");
  histogram->Observe(UINT64_MAX);
  EXPECT_EQ(histogram->BucketCounts().back(), 1u);
}

TEST_F(MetricsRegistryTest, CounterVectorGrowsAndAccumulates) {
  CounterVector* vec =
      MetricsRegistry::Global().GetCounterVector("fixrep.test.vector");
  vec->Add(2, 5);
  vec->AddAll({1, 0, 3});
  EXPECT_EQ(vec->Values(), (std::vector<uint64_t>{1, 0, 8}));
  vec->Add(4, 1);  // grows past AddAll's size
  EXPECT_EQ(vec->Values(), (std::vector<uint64_t>{1, 0, 8, 0, 1}));
}

TEST_F(MetricsRegistryTest, CounterVectorResetShrinksToEmpty) {
  // Reset must drop the length, not just zero-fill: otherwise one run's
  // cardinality (e.g. a 400-rule test) bleeds into the next run's
  // per-rule vector when several tests share a process.
  CounterVector* vec =
      MetricsRegistry::Global().GetCounterVector("fixrep.test.reset_vector");
  vec->AddAll({1, 2, 3, 4});
  vec->Reset();
  EXPECT_EQ(vec->size(), 0u);
  vec->AddAll({7, 8});
  EXPECT_EQ(vec->Values(), (std::vector<uint64_t>{7, 8}));
}

TEST_F(MetricsRegistryTest, ConcurrentCounterIncrementsAreLossless) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrementsPerThread = 50000;
  Counter* counter =
      MetricsRegistry::Global().GetCounter("fixrep.test.concurrent");
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("fixrep.test.concurrent_ns");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t i = 0; i < kIncrementsPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(t * kIncrementsPerThread + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(histogram->Min(), 0u);
  EXPECT_EQ(histogram->Max(), kThreads * kIncrementsPerThread - 1);
}

TEST_F(MetricsRegistryTest, ConcurrentCounterVectorIsLossless) {
  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 2000;
  CounterVector* vec =
      MetricsRegistry::Global().GetCounterVector("fixrep.test.cv_threads");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (size_t i = 0; i < kRounds; ++i) vec->AddAll({1, 2, 3});
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(vec->Values(), (std::vector<uint64_t>{kThreads * kRounds,
                                                  2 * kThreads * kRounds,
                                                  3 * kThreads * kRounds}));
}

TEST_F(MetricsRegistryTest, SnapshotIsolation) {
  // A snapshot taken while writers keep mutating must reflect *some*
  // state, and later snapshots must not affect earlier ones.
  Counter* counter =
      MetricsRegistry::Global().GetCounter("fixrep.test.snapshot");
  counter->Add(5);
  const uint64_t before = counter->Value();
  counter->Add(10);
  EXPECT_EQ(before, 5u);
  EXPECT_EQ(counter->Value(), 15u);

  CounterVector* vec =
      MetricsRegistry::Global().GetCounterVector("fixrep.test.snap_vec");
  vec->AddAll({1, 1});
  const std::vector<uint64_t> snap = vec->Values();
  vec->AddAll({1, 1});
  EXPECT_EQ(snap, (std::vector<uint64_t>{1, 1}));
  EXPECT_EQ(vec->Values(), (std::vector<uint64_t>{2, 2}));
}

TEST_F(MetricsRegistryTest, WriteJsonIsWellFormedAndComplete) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("fixrep.test.json_counter")->Add(3);
  registry.GetGauge("fixrep.test.json_gauge")->Set(-7);
  registry.GetHistogram("fixrep.test.json_histogram")->Observe(99);
  registry.GetCounterVector("fixrep.test.json_vector")->AddAll({4, 0, 2});
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(testing::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"fixrep.test.json_counter\": 3"),
            std::string::npos);
  EXPECT_NE(json.find("\"fixrep.test.json_gauge\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"fixrep.test.json_vector\": [4,0,2]"),
            std::string::npos);
  EXPECT_NE(json.find("\"fixrep.test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(MetricsRegistryTest, WriteJsonEmptyRegistryIsValid) {
  // Fresh (reset) registry with zeroed values must still be valid JSON.
  std::ostringstream out;
  MetricsRegistry::Global().WriteJson(out);
  EXPECT_TRUE(testing::JsonChecker::IsValid(out.str())) << out.str();
}

TEST_F(MetricsRegistryTest, JsonEscapeControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace fixrep
