// Property tests for the CSV layer: random tables with hostile field
// content must survive a write/read round trip bit-for-bit.

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "relation/csv.h"

namespace fixrep {
namespace {

std::string RandomField(Rng* rng) {
  static constexpr char kChars[] =
      "abcXYZ019 ,\"\n\r\t;|'\\_-=()";
  const size_t length = rng->Uniform(12);
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kChars[rng->Uniform(sizeof(kChars) - 1)]);
  }
  return out;
}

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, HostileContentSurvivesRoundTrip) {
  Rng rng(GetParam());
  const size_t columns = 1 + rng.Uniform(6);
  std::vector<std::string> header;
  for (size_t c = 0; c < columns; ++c) {
    header.push_back("col" + std::to_string(c));
  }
  auto pool = std::make_shared<ValuePool>();
  Table original(std::make_shared<Schema>("fuzz", header), pool);
  const size_t rows = rng.Uniform(30);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> fields;
    for (size_t c = 0; c < columns; ++c) {
      std::string field = RandomField(&rng);
      // Lone '\r' is normalized by the CRLF-tolerant reader; exclude it
      // from the generator (the reader's behaviour for it is covered by
      // a deterministic unit test).
      std::erase(field, '\r');
      fields.push_back(std::move(field));
    }
    original.AppendRowStrings(fields);
  }

  std::ostringstream serialized;
  WriteCsv(original, serialized);
  std::istringstream in(serialized.str());
  const Table parsed = ReadCsv(in, "fuzz", std::make_shared<ValuePool>());

  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  ASSERT_EQ(parsed.num_columns(), original.num_columns());
  for (size_t r = 0; r < parsed.num_rows(); ++r) {
    for (size_t c = 0; c < columns; ++c) {
      ASSERT_EQ(parsed.CellString(r, static_cast<AttrId>(c)),
                original.CellString(r, static_cast<AttrId>(c)))
          << "row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(0, 32));

}  // namespace
}  // namespace fixrep
