// Keeps the README's quickstart snippet honest: this is the same code,
// compiled and asserted, so the documentation cannot rot silently.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "repair/session.h"
#include "rules/consistency.h"
#include "rules/rule_io.h"

namespace fixrep {
namespace {

TEST(ReadmeSnippetTest, QuickstartWorksAsAdvertised) {
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "Travel", std::vector<std::string>{"name", "country", "capital",
                                         "city", "conf"});

  RuleSet rules = ParseRulesFromString(R"(
RULE
  IF country = China
  WRONG capital IN Shanghai | Hongkong
  THEN capital = Beijing
END
)",
                                       schema, pool);

  ASSERT_TRUE(IsConsistentChar(rules));

  Table data(schema, pool);
  data.AppendRowStrings({"Ian", "China", "Shanghai", "Hongkong", "ICDE"});

  RepairSession session(&rules);
  auto report = session.Repair(&data);
  ASSERT_TRUE(report.ok() && report->cells_changed == 1);

  EXPECT_EQ(data.CellString(0, schema->AttributeIndex("capital")),
            "Beijing");
}

TEST(ReadmeSnippetTest, ClaimedComplexityParametersAreExposed) {
  // The README quotes O(size(Σ)) per tuple for lRepair and the paper's
  // size(Σ) measure; make sure the measure is what RuleSet reports.
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "Travel", std::vector<std::string>{"name", "country", "capital",
                                         "city", "conf"});
  RuleSet rules(schema, pool);
  rules.Add(MakeRule(*schema, pool.get(), {{"country", "China"}}, "capital",
                     {"Shanghai", "Hongkong"}, "Beijing"));
  // |X| + |Tp| + 1 = 1 + 2 + 1.
  EXPECT_EQ(rules.TotalSize(), 4u);
}

}  // namespace
}  // namespace fixrep
