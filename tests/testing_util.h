#ifndef FIXREP_TESTS_TESTING_UTIL_H_
#define FIXREP_TESTS_TESTING_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "relation/schema.h"
#include "relation/value_pool.h"
#include "rules/fixing_rule.h"
#include "rules/rule_set.h"

namespace fixrep::testing {

// A small universe for randomized tests: 4-attribute schema, per-attribute
// value spaces "a<attr>v<k>" so that values collide across rules (which is
// what makes conflicts and cascades reachable) but never across
// attributes.
struct RandomRuleUniverse {
  std::shared_ptr<ValuePool> pool = std::make_shared<ValuePool>();
  std::shared_ptr<const Schema> schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a0", "a1", "a2", "a3"});
  int values_per_attribute = 4;

  ValueId Value(AttrId attr, int k) {
    return pool->Intern("a" + std::to_string(attr) + "v" + std::to_string(k));
  }

  FixingRule RandomRule(Rng* rng) {
    FixingRule rule;
    const auto arity = static_cast<AttrId>(schema->arity());
    rule.target = static_cast<AttrId>(rng->Uniform(arity));
    for (AttrId a = 0; a < arity; ++a) {
      if (a == rule.target || !rng->Bernoulli(0.5)) continue;
      rule.evidence_attrs.push_back(a);
      rule.evidence_values.push_back(
          Value(a, static_cast<int>(rng->Uniform(values_per_attribute))));
    }
    // Leave at least one non-negative value so a fact always exists.
    const size_t max_negatives =
        std::min<size_t>(3, static_cast<size_t>(values_per_attribute) - 1);
    const size_t num_negatives = 1 + rng->Uniform(max_negatives);
    while (rule.negative_patterns.size() < num_negatives) {
      const ValueId v = Value(
          rule.target, static_cast<int>(rng->Uniform(values_per_attribute)));
      if (!rule.IsNegative(v)) {
        rule.negative_patterns.push_back(v);
        std::sort(rule.negative_patterns.begin(),
                  rule.negative_patterns.end());
      }
    }
    // values_per_attribute > max negatives, so a fact always exists.
    while (true) {
      const ValueId v = Value(
          rule.target, static_cast<int>(rng->Uniform(values_per_attribute)));
      if (!rule.IsNegative(v)) {
        rule.fact = v;
        break;
      }
    }
    rule.Validate(*schema);
    return rule;
  }

  // A random tuple over the value universe; with probability null_share a
  // cell is the out-of-universe placeholder.
  Tuple RandomTuple(Rng* rng, double null_share = 0.2) {
    Tuple t(schema->arity(), kNullValue);
    for (size_t a = 0; a < schema->arity(); ++a) {
      if (rng->Bernoulli(null_share)) continue;
      t[a] = Value(static_cast<AttrId>(a),
                   static_cast<int>(rng->Uniform(values_per_attribute)));
    }
    return t;
  }
};

// Minimal recursive-descent JSON syntax checker for validating metric /
// trace dumps without a JSON dependency. Accepts exactly one value with
// optional surrounding whitespace; numbers are the JSON grammar's.
class JsonChecker {
 public:
  static bool IsValid(const std::string& text) {
    JsonChecker checker(text);
    return checker.Value() && (checker.Ws(), checker.pos_ == text.size());
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) { return Peek() == c && (++pos_, true); }
  void Ws() {
    while (Peek() == ' ' || Peek() == '\n' || Peek() == '\t' ||
           Peek() == '\r') {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (Peek() != '"') {
      if (Peek() == '\0') return false;
      if (Eat('\\')) {
        if (Peek() == '\0') return false;
      }
      ++pos_;
    }
    return Eat('"');
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    while (Peek() >= '0' && Peek() <= '9') ++pos_;
    if (Eat('.')) {
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    Ws();
    if (Peek() == '{') {
      ++pos_;
      Ws();
      if (Eat('}')) return true;
      do {
        Ws();
        if (!String()) return false;
        Ws();
        if (!Eat(':')) return false;
        if (!Value()) return false;
        Ws();
      } while (Eat(','));
      return Eat('}');
    }
    if (Peek() == '[') {
      ++pos_;
      Ws();
      if (Eat(']')) return true;
      do {
        if (!Value()) return false;
        Ws();
      } while (Eat(','));
      return Eat(']');
    }
    if (Peek() == '"') return String();
    if (Peek() == 't') return Literal("true");
    if (Peek() == 'f') return Literal("false");
    if (Peek() == 'n') return Literal("null");
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace fixrep::testing

#endif  // FIXREP_TESTS_TESTING_UTIL_H_
