// Property tests for the implication checker on randomized strictly
// consistent sets:
//  * weakening a member rule (dropping negative patterns) always yields
//    an implied rule;
//  * a rule built from fresh constants is never implied (it fixes tuples
//    no existing rule touches).

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rules/consistency.h"
#include "rules/implication.h"
#include "testing_util.h"

namespace fixrep {
namespace {

using testing::RandomRuleUniverse;

RuleSet RandomStrictSet(RandomRuleUniverse* universe, Rng* rng,
                        size_t target_size) {
  RuleSet rules(universe->schema, universe->pool);
  const size_t arity = universe->schema->arity();
  for (int attempt = 0; attempt < 300 && rules.size() < target_size;
       ++attempt) {
    const FixingRule candidate = universe->RandomRule(rng);
    bool ok = true;
    for (const auto& existing : rules.rules()) {
      if (!PairConsistentStrictChar(existing, candidate, arity, nullptr)) {
        ok = false;
        break;
      }
    }
    if (ok) rules.Add(candidate);
  }
  return rules;
}

class ImplicationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImplicationPropertyTest, WeakenedMemberRulesAreImplied) {
  RandomRuleUniverse universe;
  Rng rng(GetParam());
  const RuleSet rules = RandomStrictSet(&universe, &rng, 6);
  ASSERT_GT(rules.size(), 1u);
  ImplicationOptions options;
  options.enumeration_cap = uint64_t{1} << 16;  // small universe: exact
  for (const auto& original : rules.rules()) {
    if (original.negative_patterns.size() < 2) continue;
    FixingRule weakened = original;
    // Drop a random negative pattern (keeping at least one).
    weakened.negative_patterns.erase(
        weakened.negative_patterns.begin() +
        static_cast<ptrdiff_t>(
            rng.Uniform(weakened.negative_patterns.size())));
    const ImplicationResult result = Implies(rules, weakened, options);
    EXPECT_TRUE(result.implied)
        << "weakened copy of a member rule must be implied: "
        << weakened.Format(*universe.schema, *universe.pool) << "\n  "
        << result.reason;
  }
}

TEST_P(ImplicationPropertyTest, FreshConstantRulesAreNotImplied) {
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xfff);
  const RuleSet rules = RandomStrictSet(&universe, &rng, 6);
  ImplicationOptions options;
  options.enumeration_cap = uint64_t{1} << 16;
  for (int trial = 0; trial < 5; ++trial) {
    // Evidence, negative pattern, and fact all use constants unseen by
    // any existing rule.
    FixingRule fresh;
    fresh.target = static_cast<AttrId>(rng.Uniform(4));
    const AttrId evidence_attr =
        static_cast<AttrId>((fresh.target + 1 + rng.Uniform(3)) % 4);
    fresh.evidence_attrs = {evidence_attr};
    fresh.evidence_values = {universe.pool->Intern(
        "fresh_e_" + std::to_string(GetParam()) + "_" +
        std::to_string(trial))};
    fresh.negative_patterns = {universe.pool->Intern(
        "fresh_n_" + std::to_string(GetParam()) + "_" +
        std::to_string(trial))};
    fresh.fact = universe.pool->Intern(
        "fresh_f_" + std::to_string(GetParam()) + "_" +
        std::to_string(trial));
    fresh.Validate(*universe.schema);
    const ImplicationResult result = Implies(rules, fresh, options);
    EXPECT_FALSE(result.implied)
        << "a rule over fresh constants cannot be implied";
    EXPECT_FALSE(result.counterexample.empty());
  }
}

TEST_P(ImplicationPropertyTest, CounterexamplesReallyDiverge) {
  // Whenever the checker says "not implied", its counterexample must
  // chase to different fixes under Sigma and Sigma ∪ {phi}.
  RandomRuleUniverse universe;
  Rng rng(GetParam() ^ 0xabc);
  const RuleSet rules = RandomStrictSet(&universe, &rng, 5);
  ImplicationOptions options;
  options.enumeration_cap = uint64_t{1} << 16;
  int divergences_checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const FixingRule candidate = universe.RandomRule(&rng);
    const ImplicationResult result = Implies(rules, candidate, options);
    if (result.implied || result.counterexample.empty()) continue;
    ++divergences_checked;
    std::vector<const FixingRule*> sigma;
    for (const auto& rule : rules.rules()) sigma.push_back(&rule);
    std::vector<const FixingRule*> with_phi = sigma;
    with_phi.push_back(&candidate);
    Tuple a = result.counterexample;
    ChaseWithPriority(sigma, &a);
    Tuple b = result.counterexample;
    ChaseWithPriority(with_phi, &b);
    EXPECT_NE(a, b);
  }
  EXPECT_GT(divergences_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace fixrep
