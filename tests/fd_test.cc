#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "deps/fd.h"
#include "deps/violation.h"
#include "relation/table.h"

namespace fixrep {
namespace {

class FdTest : public ::testing::Test {
 protected:
  FdTest()
      : pool_(std::make_shared<ValuePool>()),
        schema_(std::make_shared<Schema>(
            "Travel", std::vector<std::string>{"name", "country", "capital",
                                               "city", "conf"})),
        table_(schema_, pool_) {}

  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  Table table_;
};

TEST_F(FdTest, ParseAndFormat) {
  const auto fd = ParseFd(*schema_, "country -> capital");
  EXPECT_EQ(fd.lhs, std::vector<AttrId>{1});
  EXPECT_EQ(fd.rhs, std::vector<AttrId>{2});
  EXPECT_EQ(FormatFd(*schema_, fd), "country -> capital");
}

TEST_F(FdTest, ParseMultiAttribute) {
  const auto fd = ParseFd(*schema_, " capital , city ->  conf , name ");
  EXPECT_EQ(fd.lhs, (std::vector<AttrId>{2, 3}));
  EXPECT_EQ(fd.rhs, (std::vector<AttrId>{0, 4}));
}

TEST_F(FdTest, MakeFdSortsAndDedupes) {
  const auto fd = MakeFd(*schema_, {"city", "country", "city"}, {"capital"});
  EXPECT_EQ(fd.lhs, (std::vector<AttrId>{1, 3}));
}

TEST_F(FdTest, NormalizeToSingleRhs) {
  const auto fd = ParseFd(*schema_, "country -> capital, city");
  const auto singles = NormalizeToSingleRhs(fd);
  ASSERT_EQ(singles.size(), 2u);
  EXPECT_EQ(singles[0].rhs, std::vector<AttrId>{2});
  EXPECT_EQ(singles[1].rhs, std::vector<AttrId>{3});
  EXPECT_EQ(singles[0].lhs, fd.lhs);
}

TEST_F(FdTest, ParseRejectsMalformed) {
  EXPECT_DEATH(ParseFd(*schema_, "country capital"), "no '->'");
  EXPECT_DEATH(ParseFd(*schema_, "bogus -> capital"), "no attribute");
  EXPECT_DEATH(ParseFd(*schema_, "-> capital"), "non-empty LHS");
  EXPECT_DEATH(ParseFd(*schema_, "country ->"), "non-empty RHS");
  EXPECT_DEATH(ParseFd(*schema_, "country -> country"), "both sides");
}

TEST_F(FdTest, ParseFdListSkipsCommentsAndBlanks) {
  std::istringstream in(
      "# travel FDs\n"
      "\n"
      "country -> capital\n"
      "  capital, conf -> city  \n"
      "# trailing comment\n");
  const auto fds = ParseFdList(*schema_, in);
  ASSERT_EQ(fds.size(), 2u);
  EXPECT_EQ(FormatFd(*schema_, fds[0]), "country -> capital");
  EXPECT_EQ(FormatFd(*schema_, fds[1]), "capital,conf -> city");
}

TEST_F(FdTest, ParseFdListEmptyInput) {
  std::istringstream in("# nothing here\n\n");
  EXPECT_TRUE(ParseFdList(*schema_, in).empty());
}

TEST_F(FdTest, ParseFdListFileMissingAborts) {
  EXPECT_DEATH(ParseFdListFile(*schema_, "/nonexistent/fds.txt"),
               "cannot open");
}

TEST_F(FdTest, DetectViolationsFindsGroups) {
  // Fig. 1: (r1, r2), (r1, r3), (r2, r3) violate country -> capital.
  table_.AppendRowStrings({"George", "China", "Beijing", "Beijing", "SIGMOD"});
  table_.AppendRowStrings({"Ian", "China", "Shanghai", "Hongkong", "ICDE"});
  table_.AppendRowStrings({"Peter", "China", "Tokyo", "Tokyo", "ICDE"});
  table_.AppendRowStrings({"Mike", "Canada", "Toronto", "Toronto", "ICDE"});
  const auto fd = ParseFd(*schema_, "country -> capital");
  const auto groups = DetectViolations(table_, fd);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rows.size(), 3u);
  EXPECT_EQ(groups[0].rhs_values.size(), 3u);
  EXPECT_FALSE(Satisfies(table_, fd));
  EXPECT_EQ(CountViolatingRows(table_, {fd}), 3u);
}

TEST_F(FdTest, SatisfiedFdHasNoViolations) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c1"});
  table_.AppendRowStrings({"b", "China", "Beijing", "y", "c2"});
  table_.AppendRowStrings({"c", "Japan", "Tokyo", "z", "c3"});
  const auto fd = ParseFd(*schema_, "country -> capital");
  EXPECT_TRUE(DetectViolations(table_, fd).empty());
  EXPECT_TRUE(Satisfies(table_, fd));
  EXPECT_EQ(CountViolatingRows(table_, {fd}), 0u);
}

TEST_F(FdTest, MultiAttributeLhsPartition) {
  table_.AppendRowStrings({"a", "China", "Beijing", "Shanghai", "ICDE"});
  table_.AppendRowStrings({"b", "China", "Beijing", "Shanghai", "VLDB"});
  table_.AppendRowStrings({"c", "China", "Shanghai", "Shanghai", "ICDE"});
  const auto partition =
      PartitionBy(table_, {schema_->AttributeIndex("country"),
                           schema_->AttributeIndex("capital")});
  EXPECT_EQ(partition.size(), 2u);
}

TEST_F(FdTest, SatisfiesHandlesMultiRhs) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  table_.AppendRowStrings({"b", "China", "Beijing", "x", "d"});
  EXPECT_TRUE(Satisfies(table_, ParseFd(*schema_, "country -> capital,city")));
  EXPECT_FALSE(Satisfies(table_, ParseFd(*schema_, "country -> conf,city")));
}

TEST_F(FdTest, DetectViolationsRequiresSingleRhs) {
  table_.AppendRowStrings({"a", "China", "Beijing", "x", "c"});
  EXPECT_DEATH(
      DetectViolations(table_, ParseFd(*schema_, "country -> capital,city")),
      "single RHS");
}

}  // namespace
}  // namespace fixrep
