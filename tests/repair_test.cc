#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"

namespace fixrep {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  TravelExample example_;
};

// --- Fig. 8 walkthrough, tuple by tuple, for both engines -----------------

template <typename Repairer>
void CheckFig8(const TravelExample& example, Repairer* repairer) {
  // r1 is clean and stays unchanged.
  Tuple r1 = example.dirty.row(0).ToTuple();
  EXPECT_EQ(repairer->RepairTuple(r1), 0u);
  EXPECT_EQ(r1, example.clean.row(0));
  // r2 needs two chained fixes: phi_1 (capital -> Beijing) enables phi_4
  // (city -> Shanghai).
  Tuple r2 = example.dirty.row(1).ToTuple();
  EXPECT_EQ(repairer->RepairTuple(r2), 2u);
  EXPECT_EQ(r2, example.clean.row(1));
  // r3: phi_3 rewrites country to Japan.
  Tuple r3 = example.dirty.row(2).ToTuple();
  EXPECT_EQ(repairer->RepairTuple(r3), 1u);
  EXPECT_EQ(r3, example.clean.row(2));
  // r4: phi_2 rewrites capital to Ottawa.
  Tuple r4 = example.dirty.row(3).ToTuple();
  EXPECT_EQ(repairer->RepairTuple(r4), 1u);
  EXPECT_EQ(r4, example.clean.row(3));
}

TEST_F(RepairTest, CRepairFollowsFig8) {
  ChaseRepairer repairer(&example_.rules);
  CheckFig8(example_, &repairer);
  EXPECT_EQ(repairer.stats().tuples_examined, 4u);
  EXPECT_EQ(repairer.stats().tuples_changed, 3u);
  EXPECT_EQ(repairer.stats().cells_changed, 4u);
}

TEST_F(RepairTest, LRepairFollowsFig8) {
  FastRepairer repairer(&example_.rules);
  CheckFig8(example_, &repairer);
  EXPECT_EQ(repairer.stats().tuples_examined, 4u);
  EXPECT_EQ(repairer.stats().tuples_changed, 3u);
  EXPECT_EQ(repairer.stats().cells_changed, 4u);
}

TEST_F(RepairTest, EpochWrapAroundKeepsRepairsCorrect) {
  // The epoch stamp is a uint32 that increments once per chased tuple;
  // after ~4B tuples it wraps to 0 and the repairer hard-resets every
  // stamp array (stale stamps from the previous lap would otherwise
  // alias the new epoch and corrupt counters). Seed the epoch just below
  // the wrap and chase the Fig. 8 table repeatedly across it.
  FastRepairer repairer(&example_.rules);
  repairer.SeedEpochForTest(UINT32_MAX - 2);
  FastRepairer fresh(&example_.rules);
  // 8 tuples cross the wrap point; each must repair exactly like a
  // fresh repairer chasing the same tuple.
  for (int lap = 0; lap < 2; ++lap) {
    for (size_t r = 0; r < example_.dirty.num_rows(); ++r) {
      Tuple wrapped = example_.dirty.row(r).ToTuple();
      Tuple expected = example_.dirty.row(r).ToTuple();
      const size_t changed_wrapped = repairer.RepairTuple(wrapped);
      const size_t changed_fresh = fresh.RepairTuple(expected);
      EXPECT_EQ(changed_wrapped, changed_fresh)
          << "lap " << lap << " row " << r;
      EXPECT_EQ(wrapped, expected) << "lap " << lap << " row " << r;
      EXPECT_EQ(wrapped, example_.clean.row(r))
          << "lap " << lap << " row " << r;
    }
  }
  EXPECT_EQ(repairer.stats().cells_changed, fresh.stats().cells_changed);
  EXPECT_EQ(repairer.stats().counter_bumps, fresh.stats().counter_bumps);
  EXPECT_EQ(repairer.stats().candidates_enqueued,
            fresh.stats().candidates_enqueued);
}

TEST_F(RepairTest, PerRuleApplicationCounts) {
  FastRepairer repairer(&example_.rules);
  Table dirty = example_.dirty;
  repairer.RepairTable(&dirty);
  const auto& per_rule = repairer.stats().per_rule_applications;
  ASSERT_EQ(per_rule.size(), 4u);
  EXPECT_EQ(per_rule[0], 1u);  // phi_1 fixed r2[capital]
  EXPECT_EQ(per_rule[1], 1u);  // phi_2 fixed r4[capital]
  EXPECT_EQ(per_rule[2], 1u);  // phi_3 fixed r3[country]
  EXPECT_EQ(per_rule[3], 1u);  // phi_4 fixed r2[city]
}

TEST_F(RepairTest, RepairTableFixesAllFourErrors) {
  for (int engine = 0; engine < 2; ++engine) {
    Table dirty = example_.dirty;
    if (engine == 0) {
      ChaseRepairer repairer(&example_.rules);
      repairer.RepairTable(&dirty);
    } else {
      FastRepairer repairer(&example_.rules);
      repairer.RepairTable(&dirty);
    }
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      EXPECT_EQ(dirty.row(r), example_.clean.row(r))
          << "engine " << engine << " row " << r;
    }
  }
}

TEST_F(RepairTest, RepairIsIdempotent) {
  Table dirty = example_.dirty;
  FastRepairer repairer(&example_.rules);
  repairer.RepairTable(&dirty);
  Table again = dirty;
  FastRepairer repairer2(&example_.rules);
  repairer2.RepairTable(&again);
  EXPECT_EQ(repairer2.stats().cells_changed, 0u);
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    EXPECT_EQ(again.row(r), dirty.row(r));
  }
}

TEST_F(RepairTest, AssuredAttributesBlockLaterRules) {
  // After phi_1 fires on r2, capital is assured; a rule that wants to
  // rewrite capital again must not fire.
  RuleSet rules = example_.rules;
  rules.Add(MakeRule(*example_.schema, example_.pool.get(),
                     {{"city", "Shanghai"}}, "capital", {"Beijing"},
                     "Nanjing"));
  // (The extended set is inconsistent in general, but on r2 the chase
  // order of both engines applies phi_1 first, freezing capital.)
  Tuple r2 = example_.dirty.row(1).ToTuple();
  ChaseRepairer crepair(&rules);
  crepair.RepairTuple(r2);
  EXPECT_EQ(r2[2], example_.pool->Find("Beijing"));
}

TEST_F(RepairTest, UnmatchedTupleUntouched) {
  auto schema = example_.schema;
  Tuple t(schema->arity(), kNullValue);
  t[1] = example_.pool->Intern("Germany");
  const Tuple before = t;
  ChaseRepairer crepair(&example_.rules);
  EXPECT_EQ(crepair.RepairTuple(t), 0u);
  EXPECT_EQ(t, before);
  FastRepairer lrepair(&example_.rules);
  Tuple t2 = before;
  EXPECT_EQ(lrepair.RepairTuple(t2), 0u);
  EXPECT_EQ(t2, before);
}

TEST_F(RepairTest, EmptyRuleSetIsANoop) {
  RuleSet empty(example_.schema, example_.pool);
  ChaseRepairer crepair(&empty);
  FastRepairer lrepair(&empty);
  Tuple t = example_.dirty.row(1).ToTuple();
  const Tuple before = t;
  EXPECT_EQ(crepair.RepairTuple(t), 0u);
  EXPECT_EQ(lrepair.RepairTuple(t), 0u);
  EXPECT_EQ(t, before);
}

TEST_F(RepairTest, EmptyEvidenceRuleFires) {
  RuleSet rules(example_.schema, example_.pool);
  rules.Add(MakeRule(*example_.schema, example_.pool.get(), {}, "capital",
                     {"Hongkong"}, "Beijing"));
  Tuple t = example_.dirty.row(0).ToTuple();
  t[2] = example_.pool->Intern("Hongkong");
  Tuple t2 = t;
  ChaseRepairer crepair(&rules);
  EXPECT_EQ(crepair.RepairTuple(t), 1u);
  EXPECT_EQ(t[2], example_.pool->Find("Beijing"));
  FastRepairer lrepair(&rules);
  EXPECT_EQ(lrepair.RepairTuple(t2), 1u);
  EXPECT_EQ(t2[2], example_.pool->Find("Beijing"));
}

TEST_F(RepairTest, LRepairCascadeAcrossThreeRules) {
  // phi_a: a=1 fixes b; phi_b: b fixed value enables c fix; phi_c: c
  // fixed value enables d fix. Exercises repeated counter propagation.
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "R", std::vector<std::string>{"a", "b", "c", "d"});
  RuleSet rules(schema, pool);
  rules.Add(MakeRule(*schema, pool.get(), {{"a", "1"}}, "b", {"bad_b"},
                     "good_b"));
  rules.Add(MakeRule(*schema, pool.get(), {{"b", "good_b"}}, "c", {"bad_c"},
                     "good_c"));
  rules.Add(MakeRule(*schema, pool.get(), {{"c", "good_c"}}, "d", {"bad_d"},
                     "good_d"));
  Tuple t = {pool->Intern("1"), pool->Intern("bad_b"), pool->Intern("bad_c"),
             pool->Intern("bad_d")};
  FastRepairer lrepair(&rules);
  EXPECT_EQ(lrepair.RepairTuple(t), 3u);
  EXPECT_EQ(t[1], pool->Find("good_b"));
  EXPECT_EQ(t[2], pool->Find("good_c"));
  EXPECT_EQ(t[3], pool->Find("good_d"));
  // cRepair agrees.
  Tuple t2 = {pool->Find("1"), pool->Find("bad_b"), pool->Find("bad_c"),
              pool->Find("bad_d")};
  ChaseRepairer crepair(&rules);
  EXPECT_EQ(crepair.RepairTuple(t2), 3u);
  EXPECT_EQ(t2, t);
}

TEST_F(RepairTest, ManyTuplesEpochIsolation) {
  // Repairing many tuples in sequence must not leak candidate state
  // between tuples (epoch stamping).
  FastRepairer repairer(&example_.rules);
  for (int round = 0; round < 1000; ++round) {
    Tuple r2 = example_.dirty.row(1).ToTuple();
    repairer.RepairTuple(r2);
    ASSERT_EQ(r2, example_.clean.row(1));
    Tuple r1 = example_.dirty.row(0).ToTuple();
    ASSERT_EQ(repairer.RepairTuple(r1), 0u);
  }
}

}  // namespace
}  // namespace fixrep
