#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/crepair.h"
#include "rulegen/from_cfds.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

class FromCfdsTest : public ::testing::Test {
 protected:
  Cfd Parse(const std::string& text) {
    return ParseCfd(*example_.schema, example_.pool.get(), text);
  }

  TravelExample example_;
};

TEST_F(FromCfdsTest, ConstantRowBecomesARule) {
  const Cfd cfd = Parse("country -> capital :: (China | Beijing)");
  const RuleSet rules = RulesFromCfds(example_.dirty, {cfd});
  ASSERT_EQ(rules.size(), 1u);
  const FixingRule& rule = rules.rule(0);
  EXPECT_EQ(rule.target, example_.schema->AttributeIndex("capital"));
  EXPECT_EQ(rule.fact, example_.pool->Find("Beijing"));
  // The dirty data carries Shanghai and Tokyo for China tuples — both
  // are harvested as negative patterns.
  EXPECT_EQ(rule.negative_patterns.size(), 2u);
  EXPECT_TRUE(rule.IsNegative(example_.pool->Find("Shanghai")));
  EXPECT_TRUE(rule.IsNegative(example_.pool->Find("Tokyo")));
}

TEST_F(FromCfdsTest, DerivedRulesRepairTheData) {
  const std::vector<Cfd> cfds = {
      Parse("country -> capital :: (Canada | Ottawa)"),
  };
  const RuleSet rules = RulesFromCfds(example_.dirty, cfds);
  ASSERT_EQ(rules.size(), 1u);
  ChaseRepairer repairer(&rules);
  Tuple r4 = example_.dirty.row(3).ToTuple();
  EXPECT_EQ(repairer.RepairTuple(r4), 1u);
  EXPECT_EQ(r4, example_.clean.row(3));
}

TEST_F(FromCfdsTest, WildcardRowsAreSkipped) {
  const Cfd cfd =
      Parse("country -> capital :: (_ | _); (_ | Beijing); (China | _)");
  const RuleSet rules = RulesFromCfds(example_.dirty, {cfd});
  EXPECT_EQ(rules.size(), 0u);
}

TEST_F(FromCfdsTest, NoViolationsNoRule) {
  const Cfd cfd = Parse("country -> capital :: (Japan | Tokyo)");
  // No Japan tuple in the dirty data carries a non-Tokyo capital (there
  // are no Japan tuples at all), so there is nothing to forbid.
  const RuleSet rules = RulesFromCfds(example_.dirty, {cfd});
  EXPECT_EQ(rules.size(), 0u);
}

TEST_F(FromCfdsTest, ResultIsConsistent) {
  const std::vector<Cfd> cfds = {
      Parse("country -> capital :: (China | Beijing); (Canada | Ottawa)"),
      Parse("capital, conf -> city :: (Beijing, ICDE | Shanghai)"),
  };
  const RuleSet rules = RulesFromCfds(example_.dirty, cfds);
  EXPECT_GT(rules.size(), 0u);
  EXPECT_TRUE(IsConsistentStrict(rules));
}

TEST_F(FromCfdsTest, MultiAttributeEvidence) {
  const Cfd cfd = Parse("capital, conf -> city :: (Beijing, ICDE | Shanghai)");
  // Build a tuple matching (Beijing, ICDE) with a wrong city so a
  // negative pattern exists.
  Table data = example_.dirty;
  Tuple t(example_.schema->arity(), kNullValue);
  t[2] = example_.pool->Find("Beijing");
  t[3] = example_.pool->Intern("Hongkong");
  t[4] = example_.pool->Find("ICDE");
  data.AppendRow(t);
  const RuleSet rules = RulesFromCfds(data, {cfd});
  ASSERT_EQ(rules.size(), 1u);
  // The derived rule is exactly the paper's phi_4.
  EXPECT_EQ(rules.rule(0), example_.rules.rule(3));
}

}  // namespace
}  // namespace fixrep
