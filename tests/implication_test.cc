#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "rules/implication.h"

namespace fixrep {
namespace {

class ImplicationTest : public ::testing::Test {
 protected:
  TravelExample example_;

  FixingRule Rule(const std::vector<std::pair<std::string, std::string>>& ev,
                  const std::string& target,
                  const std::vector<std::string>& negatives,
                  const std::string& fact) {
    return MakeRule(*example_.schema, example_.pool.get(), ev, target,
                    negatives, fact);
  }
};

TEST_F(ImplicationTest, DuplicateRuleIsImplied) {
  const auto result = Implies(example_.rules, example_.rules.rule(0));
  EXPECT_TRUE(result.implied);
  EXPECT_TRUE(result.exhaustive);
}

TEST_F(ImplicationTest, WeakerNegativeSetIsImplied) {
  // phi_1 restricted to a single negative pattern never changes any fix:
  // whenever it applies, phi_1 applies with the same effect.
  const FixingRule weaker =
      Rule({{"country", "China"}}, "capital", {"Shanghai"}, "Beijing");
  const auto result = Implies(example_.rules, weaker);
  EXPECT_TRUE(result.implied) << result.reason;
}

TEST_F(ImplicationTest, NewNegativePatternIsNotImplied) {
  // Adding Nanjing to the negatives lets the new rule fix tuples no
  // existing rule touches.
  const FixingRule wider = Rule({{"country", "China"}}, "capital",
                                {"Shanghai", "Hongkong", "Nanjing"},
                                "Beijing");
  const auto result = Implies(example_.rules, wider);
  EXPECT_FALSE(result.implied);
  ASSERT_FALSE(result.counterexample.empty());
  // The counterexample must be a China tuple with capital Nanjing.
  EXPECT_EQ(result.counterexample[1], example_.pool->Find("China"));
  EXPECT_EQ(result.counterexample[2], example_.pool->Find("Nanjing"));
}

TEST_F(ImplicationTest, UnrelatedRuleIsNotImplied) {
  const FixingRule unrelated =
      Rule({{"country", "France"}}, "capital", {"Lyon"}, "Paris");
  const auto result = Implies(example_.rules, unrelated);
  EXPECT_FALSE(result.implied);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST_F(ImplicationTest, InconsistentAdditionIsNotImplied) {
  // phi_1' conflicts with phi_3, so condition (i) of the definition
  // already fails.
  const auto result = Implies(example_.rules, MakeTravelPhi1Prime(&example_));
  EXPECT_FALSE(result.implied);
  EXPECT_NE(result.reason.find("inconsistent"), std::string::npos);
  EXPECT_TRUE(result.counterexample.empty());
}

TEST_F(ImplicationTest, InconsistentSigmaIsRejected) {
  RuleSet bad(example_.schema, example_.pool);
  bad.Add(MakeTravelPhi1Prime(&example_));
  bad.Add(example_.rules.rule(2));
  const auto result = Implies(bad, example_.rules.rule(0));
  EXPECT_FALSE(result.implied);
  EXPECT_NE(result.reason.find("precondition"), std::string::npos);
}

TEST_F(ImplicationTest, EmptySigmaImpliesNothingUseful) {
  RuleSet empty(example_.schema, example_.pool);
  const auto result = Implies(empty, example_.rules.rule(0));
  EXPECT_FALSE(result.implied);
}

TEST_F(ImplicationTest, SamplingFallbackStillFindsCounterexamples) {
  // Force the sampled path with a tiny enumeration cap; the negative
  // answer must still come with a counterexample.
  ImplicationOptions options;
  options.enumeration_cap = 4;
  options.sample_count = 50000;
  const FixingRule wider = Rule({{"country", "China"}}, "capital",
                                {"Shanghai", "Hongkong", "Nanjing"},
                                "Beijing");
  const auto result = Implies(example_.rules, wider, options);
  EXPECT_FALSE(result.implied);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST_F(ImplicationTest, SamplingFallbackPositiveIsMarkedNonExhaustive) {
  ImplicationOptions options;
  options.enumeration_cap = 4;
  options.sample_count = 2000;
  const auto result = Implies(example_.rules, example_.rules.rule(0), options);
  EXPECT_TRUE(result.implied);
  EXPECT_FALSE(result.exhaustive);
}

}  // namespace
}  // namespace fixrep
