#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "datagen/hosp.h"
#include "relation/active_domain.h"
#include "datagen/noise.h"
#include "datagen/uis.h"
#include "eval/metrics.h"
#include "repair/lrepair.h"
#include "rulegen/rulegen.h"
#include "rulegen/scale.h"
#include "rules/consistency.h"
#include "rules/fingerprint.h"

namespace fixrep {
namespace {

struct Pipeline {
  GeneratedData data;
  Table dirty;

  explicit Pipeline(GeneratedData generated)
      : data(std::move(generated)), dirty(data.clean) {}
};

Pipeline SmallHospPipeline(double typo_share = 0.5) {
  HospOptions options;
  options.rows = 6000;
  options.num_hospitals = 300;
  options.num_measures = 20;
  Pipeline pipeline(GenerateHosp(options));
  NoiseOptions noise;
  noise.typo_share = typo_share;
  InjectNoise(&pipeline.dirty,
              ConstraintAttributes(*pipeline.data.schema, pipeline.data.fds),
              noise);
  return pipeline;
}

TEST(RuleGenTest, GeneratedRulesAreStructurallyValid) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 200;
  // RuleSet::Add validates every rule against the schema, so successful
  // construction is the assertion.
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  EXPECT_GT(rules.size(), 0u);
  for (const auto& rule : rules.rules()) {
    EXPECT_FALSE(rule.negative_patterns.empty());
    EXPECT_FALSE(rule.IsNegative(rule.fact));
  }
}

TEST(RuleGenTest, RespectsMaxRules) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 50;
  options.resolve_conflicts = false;
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  EXPECT_LE(rules.size(), 50u);
  EXPECT_GT(rules.size(), 0u);
}

TEST(RuleGenTest, ResolvedSetIsConsistent) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 300;
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST(RuleGenTest, FactsComeFromCleanData) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 100;
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  // Every fact value must occur somewhere in the clean column of its
  // target attribute.
  const auto domains = ActiveDomains(pipeline.data.clean);
  for (const auto& rule : rules.rules()) {
    const auto& domain = domains[static_cast<size_t>(rule.target)];
    EXPECT_NE(std::find(domain.begin(), domain.end(), rule.fact),
              domain.end());
  }
}

TEST(RuleGenTest, DeterministicForSameSeed) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 120;
  const RuleSet a = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                  pipeline.data.fds, options);
  const RuleSet b = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                  pipeline.data.fds, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.rule(i), b.rule(i));
}

TEST(RuleGenTest, MoreExtraNegativesMeansBiggerRules) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions small;
  small.max_rules = 100;
  small.extra_negatives_per_rule = 0;
  RuleGenOptions big = small;
  big.extra_negatives_per_rule = 6;
  const RuleSet rules_small = GenerateRules(
      pipeline.data.clean, pipeline.dirty, pipeline.data.fds, small);
  const RuleSet rules_big = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                          pipeline.data.fds, big);
  EXPECT_GT(rules_big.TotalSize(), rules_small.TotalSize());
}

TEST(RuleGenTest, RulesRepairDirtyDataWithHighPrecision) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions options;
  options.max_rules = 600;
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  Table repaired = pipeline.dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&repaired);
  const Accuracy accuracy =
      EvaluateRepair(pipeline.data.clean, pipeline.dirty, repaired);
  EXPECT_GT(accuracy.cells_corrected, 0u);
  EXPECT_GT(accuracy.precision(), 0.9);
}

TEST(RuleGenTest, WorksOnUis) {
  UisOptions uis_options;
  uis_options.rows = 4000;
  Pipeline pipeline{GenerateUis(uis_options)};
  InjectNoise(&pipeline.dirty,
              ConstraintAttributes(*pipeline.data.schema, pipeline.data.fds),
              NoiseOptions{});
  RuleGenOptions options;
  options.max_rules = 100;
  const RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                      pipeline.data.fds, options);
  EXPECT_GT(rules.size(), 0u);
  EXPECT_TRUE(IsConsistentChar(rules));
}

// ----------------------------------------------- scale rule generator --

std::shared_ptr<const Schema> ScaleSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<std::string>{"a", "b", "c", "d", "e"});
}

TEST(ScaleRuleGenTest, IsDeterministicAcrossPools) {
  ScaleRuleGenOptions options;
  options.scale = 500;
  const auto schema = ScaleSchema();
  const RuleSet first =
      GenerateScaleRules(schema, std::make_shared<ValuePool>(), options);
  EXPECT_EQ(first.size(), 500u);

  // A pool that interned other strings first shifts every ValueId; the
  // corpus identity must not depend on that.
  auto salted = std::make_shared<ValuePool>();
  salted->Intern("unrelated");
  const RuleSet second = GenerateScaleRules(schema, salted, options);
  EXPECT_EQ(RuleSetFingerprint(first), RuleSetFingerprint(second));

  ScaleRuleGenOptions other_seed = options;
  other_seed.seed = options.seed + 1;
  const RuleSet third = GenerateScaleRules(
      schema, std::make_shared<ValuePool>(), other_seed);
  EXPECT_NE(RuleSetFingerprint(first), RuleSetFingerprint(third));
}

TEST(ScaleRuleGenTest, CorpusIsConsistentByConstruction) {
  ScaleRuleGenOptions options;
  options.scale = 400;
  const RuleSet rules = GenerateScaleRules(
      ScaleSchema(), std::make_shared<ValuePool>(), options);
  EXPECT_TRUE(IsConsistentChar(rules));
}

TEST(ScaleRuleGenTest, AppendsToAnOrganicSet) {
  Pipeline pipeline = SmallHospPipeline();
  RuleGenOptions organic;
  organic.max_rules = 50;
  RuleSet rules = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                pipeline.data.fds, organic);
  const size_t organic_count = rules.size();
  ASSERT_GT(organic_count, 0u);

  ScaleRuleGenOptions options;
  options.scale = 300;
  AppendScaleRules(&rules, options);
  EXPECT_EQ(rules.size(), organic_count + 300);

  // Synthetic constants are rule-unique, so the combined set still
  // repairs the organic dirt exactly as the organic set alone would.
  Table organic_only = pipeline.dirty;
  {
    RuleSet baseline = GenerateRules(pipeline.data.clean, pipeline.dirty,
                                     pipeline.data.fds, organic);
    FastRepairer repairer(&baseline);
    repairer.RepairTable(&organic_only);
  }
  Table combined = pipeline.dirty;
  FastRepairer repairer(&rules);
  repairer.RepairTable(&combined);
  ASSERT_EQ(combined.num_rows(), organic_only.num_rows());
  for (size_t r = 0; r < combined.num_rows(); ++r) {
    for (AttrId a = 0; a < combined.schema().arity(); ++a) {
      EXPECT_EQ(combined.cell(r, a), organic_only.cell(r, a))
          << "row " << r << " attr " << static_cast<int>(a);
    }
  }
}

}  // namespace
}  // namespace fixrep
