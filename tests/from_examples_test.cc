#include <gtest/gtest.h>

#include "datagen/travel.h"
#include "repair/crepair.h"
#include "rulegen/from_examples.h"
#include "rules/consistency.h"

namespace fixrep {
namespace {

class FromExamplesTest : public ::testing::Test {
 protected:
  FromExamplesTest() {
    // FD hints for Travel: country determines capital; a conference's
    // capital+conf determine the host city; capital+city+conf determine
    // the country.
    hints_ = {
        ParseFd(*example_.schema, "country -> capital"),
        ParseFd(*example_.schema, "capital, conf -> city"),
        ParseFd(*example_.schema, "capital, city, conf -> country"),
    };
  }

  CorrectionExample Example(size_t row) const {
    return CorrectionExample{example_.dirty.row(row).ToTuple(),
                             example_.clean.row(row).ToTuple()};
  }

  TravelExample example_;
  std::vector<FunctionalDependency> hints_;
};

TEST_F(FromExamplesTest, LearnsPhi2FromSingleExample) {
  // r4: Canada/Toronto corrected to Canada/Ottawa teaches exactly phi_2.
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool, {Example(3)}, hints_);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(1));
}

TEST_F(FromExamplesTest, LearnsFromAllPaperCorrections) {
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool,
      {Example(1), Example(2), Example(3)}, hints_);
  EXPECT_TRUE(IsConsistentStrict(rules));
  // The learned set must repair the very tuples it was taught from.
  ChaseRepairer repairer(&rules);
  for (const size_t row : {1u, 2u, 3u}) {
    Tuple t = example_.dirty.row(row).ToTuple();
    repairer.RepairTuple(t);
    EXPECT_EQ(t, example_.clean.row(row)) << "row " << row;
  }
}

TEST_F(FromExamplesTest, LearnedRulesGeneralize) {
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool, {Example(3)}, hints_);
  // A new tuple with the same (Canada, Toronto) defect gets fixed.
  Tuple t(example_.schema->arity(), kNullValue);
  t[0] = example_.pool->Intern("Alice");
  t[1] = example_.pool->Find("Canada");
  t[2] = example_.pool->Find("Toronto");
  ChaseRepairer repairer(&rules);
  EXPECT_EQ(repairer.RepairTuple(t), 1u);
  EXPECT_EQ(t[2], example_.pool->Find("Ottawa"));
}

TEST_F(FromExamplesTest, MergesNegativesAcrossExamples) {
  // Two examples for the same context (China -> Beijing) with different
  // wrong values merge into one rule with both negative patterns.
  Tuple dirty1 = example_.clean.row(1).ToTuple();
  dirty1[2] = example_.pool->Intern("Shanghai");
  Tuple dirty2 = example_.clean.row(1).ToTuple();
  dirty2[2] = example_.pool->Intern("Hongkong");
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool,
      {CorrectionExample{dirty1, example_.clean.row(1).ToTuple()},
       CorrectionExample{dirty2, example_.clean.row(1).ToTuple()}},
      hints_);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0), example_.rules.rule(0));  // phi_1 reconstructed
}

TEST_F(FromExamplesTest, SkipsCorrectionsWithoutApplicableHint) {
  // A correction to `name` has no FD hint with name on the RHS: no rule.
  Tuple dirty = example_.clean.row(0).ToTuple();
  dirty[0] = example_.pool->Intern("Georg");
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool,
      {CorrectionExample{dirty, example_.clean.row(0).ToTuple()}}, hints_);
  EXPECT_EQ(rules.size(), 0u);
}

TEST_F(FromExamplesTest, EvidenceComesFromTheCorrectedTuple) {
  // r2's correction touches both capital and city. The learned city rule
  // must carry the CORRECTED capital (Beijing) as evidence — the Fig. 8
  // cascade — not the dirty Shanghai.
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool, {Example(1)}, hints_);
  const FixingRule* city_rule = nullptr;
  for (const auto& rule : rules.rules()) {
    if (rule.target == 3) city_rule = &rule;
  }
  ASSERT_NE(city_rule, nullptr);
  EXPECT_EQ(city_rule->EvidenceValueFor(2), example_.pool->Find("Beijing"));
  EXPECT_EQ(*city_rule, example_.rules.rule(3));  // phi_4 reconstructed
}

TEST_F(FromExamplesTest, ReconstructsAllFourPaperRules) {
  // The three corrections of Fig. 1 teach phi_2, phi_3, phi_4 exactly
  // and phi_1 restricted to the observed wrong value.
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool,
      {Example(1), Example(2), Example(3)}, hints_);
  ASSERT_EQ(rules.size(), 4u);
  size_t reconstructed = 0;
  for (const auto& learned : rules.rules()) {
    for (const auto& paper : example_.rules.rules()) {
      reconstructed += (learned == paper);
    }
  }
  EXPECT_EQ(reconstructed, 3u);  // phi_2, phi_3, phi_4 verbatim
}

TEST_F(FromExamplesTest, NoExamplesNoRules) {
  const RuleSet rules =
      LearnRulesFromExamples(example_.schema, example_.pool, {}, hints_);
  EXPECT_EQ(rules.size(), 0u);
}

TEST_F(FromExamplesTest, ContradictoryExamplesAreReconciled) {
  // Example A says (China, Shanghai) -> Beijing; example B says
  // (China, Beijing) -> Shanghai. Merged naively the negatives would
  // contain each other's facts; the learner filters fact-values and the
  // resolver reconciles the rest, ending consistent.
  Tuple dirty_a = example_.clean.row(1).ToTuple();
  dirty_a[2] = example_.pool->Intern("Shanghai");
  Tuple clean_b = example_.clean.row(1).ToTuple();
  clean_b[2] = example_.pool->Intern("Shanghai");
  Tuple dirty_b = example_.clean.row(1).ToTuple();  // capital Beijing
  const RuleSet rules = LearnRulesFromExamples(
      example_.schema, example_.pool,
      {CorrectionExample{dirty_a, example_.clean.row(1).ToTuple()},
       CorrectionExample{dirty_b, clean_b}},
      hints_);
  EXPECT_TRUE(IsConsistentStrict(rules));
}

}  // namespace
}  // namespace fixrep
