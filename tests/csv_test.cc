#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "relation/csv.h"

namespace fixrep {
namespace {

Table ReadFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadCsv(in, "test", std::make_shared<ValuePool>());
}

std::string WriteToString(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

TEST(CsvTest, HeaderBecomesSchema) {
  const Table table = ReadFromString("a,b,c\n1,2,3\n");
  EXPECT_EQ(table.schema().arity(), 3u);
  EXPECT_EQ(table.schema().attribute_name(0), "a");
  EXPECT_EQ(table.schema().attribute_name(2), "c");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.CellString(0, 1), "2");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  const Table table = ReadFromString("a,b\n,x\ny,\n");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.CellString(0, 0), "");
  EXPECT_EQ(table.CellString(0, 1), "x");
  EXPECT_EQ(table.CellString(1, 1), "");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const Table table =
      ReadFromString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.CellString(0, 0), "x,y");
  EXPECT_EQ(table.CellString(0, 1), "he said \"hi\"");
}

TEST(CsvTest, QuotedNewline) {
  const Table table = ReadFromString("a,b\n\"line1\nline2\",z\n");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.CellString(0, 0), "line1\nline2");
}

TEST(CsvTest, ToleratesCrlfAndMissingFinalNewline) {
  const Table table = ReadFromString("a,b\r\n1,2\r\n3,4");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.CellString(1, 1), "4");
}

TEST(CsvTest, RoundTrip) {
  const std::string original =
      "name,country,capital\n"
      "George,China,Beijing\n"
      "Ian,\"Chi,na\",\"say \"\"x\"\"\"\n";
  const Table table = ReadFromString(original);
  const Table again = ReadFromString(WriteToString(table));
  ASSERT_EQ(again.num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(again.CellString(r, static_cast<AttrId>(c)),
                table.CellString(r, static_cast<AttrId>(c)));
    }
  }
}

TEST(CsvTest, WriterQuotesOnlyWhenNeeded) {
  auto pool = std::make_shared<ValuePool>();
  auto schema =
      std::make_shared<Schema>("R", std::vector<std::string>{"a", "b"});
  Table table(schema, pool);
  table.AppendRowStrings({"plain", "with,comma"});
  EXPECT_EQ(WriteToString(table), "a,b\nplain,\"with,comma\"\n");
}

TEST(CsvDeathTest, ArityMismatchAborts) {
  EXPECT_DEATH(ReadFromString("a,b\n1,2,3\n"), "arity mismatch");
}

TEST(CsvDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(ReadFromString(""), "empty CSV");
}

TEST(CsvDeathTest, MissingFileAborts) {
  EXPECT_DEATH(
      ReadCsvFile("/nonexistent/p.csv", "x", std::make_shared<ValuePool>()),
      "cannot open");
}

}  // namespace
}  // namespace fixrep
