// The append-only WAL frame layer (common/wal.h): CRC32 correctness,
// frame round trips, torn-tail detection at every truncation point,
// CRC-corruption detection, append-after-scan truncation, and the
// injected IO faults the durability suite leans on. Atomic output
// finalization (common/atomic_file.h) is covered here too.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/wal.h"

namespace fixrep {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kFaultInjectionEnabled) FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override {
    if (kFaultInjectionEnabled) FaultRegistry::Global().DisarmAll();
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "fixrep_wal_" + name;
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

// ------------------------------------------------------------- checksum --

TEST_F(WalTest, Crc32MatchesKnownAnswer) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(WalTest, Crc32SeedChainsIncrementalComputation) {
  const std::string text = "hello, wal";
  const uint32_t whole = Crc32(text.data(), text.size());
  const uint32_t head = Crc32(text.data(), 4);
  const uint32_t chained = Crc32(text.data() + 4, text.size() - 4, head);
  EXPECT_EQ(chained, whole);
}

// ------------------------------------------------------ cursor encoding --

TEST_F(WalTest, PutGetRoundTripsEveryWidth) {
  std::string payload;
  WalPutU8(&payload, 0xAB);
  WalPutU32(&payload, 0xDEADBEEFu);
  WalPutU64(&payload, 0x0123456789ABCDEFull);
  WalPutString(&payload, "caf\xC3\xA9");
  WalPutString(&payload, "");

  WalCursor cursor(payload);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s1, s2;
  ASSERT_TRUE(cursor.GetU8(&u8));
  ASSERT_TRUE(cursor.GetU32(&u32));
  ASSERT_TRUE(cursor.GetU64(&u64));
  ASSERT_TRUE(cursor.GetString(&s1));
  ASSERT_TRUE(cursor.GetString(&s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s1, "caf\xC3\xA9");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(cursor.at_end());
  EXPECT_TRUE(cursor.ok());
}

TEST_F(WalTest, CursorUnderflowPoisonsAllLaterReads) {
  std::string payload;
  WalPutU32(&payload, 7);
  WalCursor cursor(payload);
  uint64_t u64 = 0;
  EXPECT_FALSE(cursor.GetU64(&u64));  // only 4 bytes available
  EXPECT_FALSE(cursor.ok());
  uint32_t u32 = 0;
  EXPECT_FALSE(cursor.GetU32(&u32));  // poisoned even though 4 bytes exist
}

// ------------------------------------------------------- frame round trip --

TEST_F(WalTest, WriteThenReadRoundTripsRecords) {
  const std::string path = TempPath("roundtrip.wal");
  {
    StatusOr<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer->Append(1, "alpha").ok());
    ASSERT_TRUE(writer->Append(2, "").ok());
    ASSERT_TRUE(writer->Append(3, std::string(1000, 'x')).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  WalRecord record;
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.type, 1);
  EXPECT_EQ(record.payload, "alpha");
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.type, 2);
  EXPECT_EQ(record.payload, "");
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.type, 3);
  EXPECT_EQ(record.payload, std::string(1000, 'x'));
  EXPECT_FALSE(reader->Next(&record));
  EXPECT_FALSE(reader->tail_truncated());  // clean EOF, not a torn tail
}

TEST_F(WalTest, NotAWalFileIsMalformedInput) {
  const std::string path = TempPath("magic.wal");
  WriteFileBytes(path, "definitely,not,a\nwal,file,here\n");
  const StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kMalformedInput);
}

TEST_F(WalTest, MissingFileIsIoError) {
  const StatusOr<WalReader> reader =
      WalReader::Open(TempPath("never_written.wal"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------- torn tails --

// Truncating the file at EVERY byte offset inside the last frame must
// yield the two whole records and a reported torn tail — exactly what a
// mid-write crash leaves.
TEST_F(WalTest, TruncationAtEveryOffsetKeepsTheDurablePrefix) {
  const std::string path = TempPath("torn.wal");
  {
    StatusOr<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "first").ok());
    ASSERT_TRUE(writer->Append(2, "second").ok());
    ASSERT_TRUE(writer->Append(3, "third-and-torn").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::string bytes = ReadFileBytes(path);
  // 9 bytes frame overhead per record.
  const size_t third_frame_start = bytes.size() - (9 + 14);
  for (size_t cut = third_frame_start; cut < bytes.size(); ++cut) {
    WriteFileBytes(path, bytes.substr(0, cut));
    StatusOr<WalReader> reader = WalReader::Open(path);
    ASSERT_TRUE(reader.ok()) << "cut=" << cut;
    WalRecord record;
    ASSERT_TRUE(reader->Next(&record)) << "cut=" << cut;
    EXPECT_EQ(record.payload, "first");
    ASSERT_TRUE(reader->Next(&record)) << "cut=" << cut;
    EXPECT_EQ(record.payload, "second");
    EXPECT_FALSE(reader->Next(&record)) << "cut=" << cut;
    // Cutting exactly at the frame boundary is a clean EOF; every cut
    // inside the third frame is a torn tail.
    EXPECT_EQ(reader->tail_truncated(), cut != third_frame_start)
        << "cut=" << cut;
    EXPECT_EQ(reader->durable_bytes(), third_frame_start) << "cut=" << cut;
  }
}

TEST_F(WalTest, CorruptedCrcStopsAtTheLastGoodFrame) {
  const std::string path = TempPath("crc.wal");
  {
    StatusOr<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "good").ok());
    ASSERT_TRUE(writer->Append(2, "flipped").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 6] ^= 0x40;  // a payload byte of the second frame
  WriteFileBytes(path, bytes);
  StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  WalRecord record;
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.payload, "good");
  EXPECT_FALSE(reader->Next(&record));
  EXPECT_TRUE(reader->tail_truncated());
}

TEST_F(WalTest, AbsurdLengthPrefixIsATornTailNotAnAllocation) {
  const std::string path = TempPath("length.wal");
  {
    StatusOr<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "ok").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  std::string bytes = ReadFileBytes(path);
  std::string huge;
  WalPutU32(&huge, 0xFFFFFFF0u);  // length prefix far past EOF
  bytes += huge + "\x01garbage";
  WriteFileBytes(path, bytes);
  StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  WalRecord record;
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_FALSE(reader->Next(&record));
  EXPECT_TRUE(reader->tail_truncated());
}

// ------------------------------------------------------- append-after-scan --

TEST_F(WalTest, OpenForAppendTruncatesTheTornTail) {
  const std::string path = TempPath("resume.wal");
  {
    StatusOr<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "keep").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  // Crash residue: half a frame after the durable prefix.
  uint64_t durable = 0;
  {
    StatusOr<WalReader> reader = WalReader::Open(path);
    ASSERT_TRUE(reader.ok());
    WalRecord record;
    while (reader->Next(&record)) {
    }
    durable = reader->durable_bytes();
  }
  WriteFileBytes(path, ReadFileBytes(path) + "\x05\x00\x00");
  {
    StatusOr<WalWriter> writer = WalWriter::OpenForAppend(path, durable);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer->Append(2, "appended").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  WalRecord record;
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.payload, "keep");
  ASSERT_TRUE(reader->Next(&record));
  EXPECT_EQ(record.payload, "appended");
  EXPECT_FALSE(reader->Next(&record));
  EXPECT_FALSE(reader->tail_truncated());
}

TEST_F(WalTest, OpenForAppendRejectsAPrefixShorterThanTheMagic) {
  const std::string path = TempPath("short.wal");
  WriteFileBytes(path, "FXREPWAL");
  const StatusOr<WalWriter> writer = WalWriter::OpenForAppend(path, 3);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kMalformedInput);
}

// --------------------------------------------------------- injected faults --

TEST_F(WalTest, InjectedShortWriteIsStickyAndLeavesATornFile) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  const std::string path = TempPath("fault_append.wal");
  StatusOr<WalWriter> writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "will-be-halved").ok());
  FaultRegistry::Global().Arm("wal.append", {});
  const Status failed = writer->Sync();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  FaultRegistry::Global().DisarmAll();
  // The error is sticky: later appends refuse rather than write after
  // an unknown number of bytes landed.
  EXPECT_EQ(writer->Append(2, "never").code(), StatusCode::kIoError);
  // And the file itself carries a torn tail a scan must discard.
  StatusOr<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  WalRecord record;
  EXPECT_FALSE(reader->Next(&record));
  EXPECT_TRUE(reader->tail_truncated());
}

TEST_F(WalTest, InjectedFsyncFailureSurfacesAsIoError) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  const std::string path = TempPath("fault_fsync.wal");
  StatusOr<WalWriter> writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "payload").ok());
  FaultRegistry::Global().Arm("wal.fsync", {});
  EXPECT_EQ(writer->Sync().code(), StatusCode::kIoError);
  FaultRegistry::Global().DisarmAll();
}

TEST_F(WalTest, InjectedOpenFailureSurfacesAsIoError) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  FaultRegistry::Global().Arm("wal.open", {});
  const StatusOr<WalWriter> writer =
      WalWriter::Create(TempPath("fault_open.wal"));
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------- atomic output --

TEST_F(WalTest, AtomicFileCommitRenamesAndDiscardLeavesTargetAlone) {
  const std::string path = TempPath("atomic.csv");
  cleanup_.push_back(path + ".tmp");
  WriteFileBytes(path, "previous contents\n");
  {
    StatusOr<AtomicFile> out = AtomicFile::Create(path);
    ASSERT_TRUE(out.ok()) << out.status().message();
    out->stream() << "half-written";
    // No Commit: destructor discards the temp file, target untouched.
  }
  EXPECT_EQ(ReadFileBytes(path), "previous contents\n");
  EXPECT_TRUE(ReadFileBytes(path + ".tmp").empty());
  {
    StatusOr<AtomicFile> out = AtomicFile::Create(path);
    ASSERT_TRUE(out.ok());
    out->stream() << "new contents\n";
    ASSERT_TRUE(out->Commit().ok());
  }
  EXPECT_EQ(ReadFileBytes(path), "new contents\n");
}

TEST_F(WalTest, AtomicFileFaultsLeaveTheTargetUntouched) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  const std::string path = TempPath("atomic_fault.csv");
  cleanup_.push_back(path + ".tmp");
  WriteFileBytes(path, "survives\n");
  for (const char* site :
       {"atomic_file.open", "atomic_file.write", "atomic_file.fsync"}) {
    FaultRegistry::Global().Arm(site, {});
    StatusOr<AtomicFile> out = AtomicFile::Create(path);
    if (out.ok()) {
      out->stream() << "doomed";
      EXPECT_EQ(out->Commit().code(), StatusCode::kIoError) << site;
    } else {
      EXPECT_EQ(out.status().code(), StatusCode::kIoError) << site;
    }
    FaultRegistry::Global().DisarmAll();
    EXPECT_EQ(ReadFileBytes(path), "survives\n") << site;
  }
}

}  // namespace
}  // namespace fixrep
