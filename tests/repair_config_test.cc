// The shared RepairConfig key/value grammar (repair/config.h): every
// knob parses from the same strings the CLI flags use, unknown keys and
// bad values are invalid-argument errors that leave the config
// untouched, and FormatRepairConfig ⇄ ParseRepairConfig round-trips any
// reachable config exactly (the property the daemon's wire headers rely
// on).

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/quarantine.h"
#include "common/status.h"
#include "repair/config.h"
#include "repair/session.h"

namespace fixrep {
namespace {

RepairConfig Parsed(
    const std::vector<std::pair<std::string, std::string>>& settings) {
  RepairConfig config;
  for (const auto& [key, value] : settings) {
    const Status status = ParseRepairConfig(key, value, &config);
    EXPECT_TRUE(status.ok()) << key << "=" << value << ": " << status;
  }
  return config;
}

void ExpectSameConfig(const RepairConfig& got, const RepairConfig& want,
                      const std::string& context) {
  EXPECT_EQ(got.engine, want.engine) << context;
  EXPECT_EQ(got.threads, want.threads) << context;
  EXPECT_EQ(got.shards, want.shards) << context;
  EXPECT_EQ(got.rules_dict, want.rules_dict) << context;
  EXPECT_EQ(got.use_memo, want.use_memo) << context;
  EXPECT_EQ(got.memo_capacity, want.memo_capacity) << context;
  EXPECT_EQ(got.on_error, want.on_error) << context;
  EXPECT_EQ(got.max_chase_steps, want.max_chase_steps) << context;
  EXPECT_EQ(got.chunk_rows, want.chunk_rows) << context;
  EXPECT_EQ(got.memory_budget_bytes, want.memory_budget_bytes) << context;
  EXPECT_EQ(got.prune_columns, want.prune_columns) << context;
  EXPECT_EQ(got.wal_path, want.wal_path) << context;
  EXPECT_EQ(got.resume, want.resume) << context;
  EXPECT_EQ(got.scoped_metrics, want.scoped_metrics) << context;
}

TEST(RepairConfigTest, EveryKeyParses) {
  const RepairConfig config = Parsed({{"engine", "crepair"},
                                      {"threads", "4"},
                                      {"shards", "3"},
                                      {"rules-dict", "/tmp/d.frd"},
                                      {"memo", "false"},
                                      {"memo-capacity", "123"},
                                      {"on-error", "quarantine"},
                                      {"max-chase-steps", "9"},
                                      {"chunk-rows", "77"},
                                      {"memory-budget", "64MB"},
                                      {"prune", ""},
                                      {"wal", "/tmp/w.wal"},
                                      {"resume", "on"},
                                      {"scoped-metrics", "1"}});
  EXPECT_EQ(config.engine, RepairEngine::kCRepair);
  EXPECT_EQ(config.threads, 4u);
  EXPECT_EQ(config.shards, 3u);
  EXPECT_EQ(config.rules_dict, "/tmp/d.frd");
  EXPECT_FALSE(config.use_memo);
  EXPECT_EQ(config.memo_capacity, 123u);
  EXPECT_EQ(config.on_error, OnErrorPolicy::kQuarantine);
  EXPECT_EQ(config.max_chase_steps, 9u);
  EXPECT_EQ(config.chunk_rows, 77u);
  EXPECT_EQ(config.memory_budget_bytes, size_t{64} << 20);
  EXPECT_TRUE(config.prune_columns);
  EXPECT_EQ(config.wal_path, "/tmp/w.wal");
  EXPECT_TRUE(config.resume);
  EXPECT_TRUE(config.scoped_metrics);
}

TEST(RepairConfigTest, NoMemoIsTheFlagSpellingOfMemoFalse) {
  EXPECT_FALSE(Parsed({{"no-memo", ""}}).use_memo);
  EXPECT_FALSE(Parsed({{"no-memo", "true"}}).use_memo);
  EXPECT_TRUE(Parsed({{"no-memo", "false"}}).use_memo);
  EXPECT_TRUE(Parsed({{"memo", "on"}}).use_memo);
}

TEST(RepairConfigTest, WholeFileChunkRows) {
  EXPECT_EQ(Parsed({{"chunk-rows", "whole-file"}}).chunk_rows,
            RepairConfig::kWholeFile);
}

TEST(RepairConfigTest, UnknownKeyIsInvalidArgument) {
  RepairConfig config;
  const Status status = ParseRepairConfig("frobnicate", "1", &config);
  EXPECT_EQ(status.code(), StatusCode::kMalformedInput);
  ExpectSameConfig(config, RepairConfig{}, "unknown key left a mark");
}

TEST(RepairConfigTest, BadValuesAreInvalidArgumentAndLeaveNoTrace) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"engine", "turbo"},       {"threads", ""},
      {"threads", "4x"},         {"shards", "-1"},
      {"rules-dict", ""},        {"memo", "maybe"},
      {"memo-capacity", "0"},    {"on-error", "explode"},
      {"max-chase-steps", "ten"}, {"chunk-rows", "0"},
      {"chunk-rows", "half"},    {"memory-budget", "lots"},
      {"memory-budget", "0"},    {"prune", "2"},
      {"wal", ""},               {"resume", "nah"},
      {"scoped-metrics", "si"}};
  for (const auto& [key, value] : bad) {
    RepairConfig config;
    const Status status = ParseRepairConfig(key, value, &config);
    EXPECT_EQ(status.code(), StatusCode::kMalformedInput)
        << key << "=" << value;
    ExpectSameConfig(config, RepairConfig{}, key + "=" + value);
  }
}

TEST(RepairConfigTest, ByteSizesParseWithSuffixes) {
  size_t bytes = 0;
  EXPECT_TRUE(ParseByteSize("512", &bytes));
  EXPECT_EQ(bytes, 512u);
  EXPECT_TRUE(ParseByteSize("512K", &bytes));
  EXPECT_EQ(bytes, size_t{512} << 10);
  EXPECT_TRUE(ParseByteSize("64MB", &bytes));
  EXPECT_EQ(bytes, size_t{64} << 20);
  EXPECT_TRUE(ParseByteSize("2g", &bytes));
  EXPECT_EQ(bytes, size_t{2} << 30);
  EXPECT_FALSE(ParseByteSize("", &bytes));
  EXPECT_FALSE(ParseByteSize("MB", &bytes));
  EXPECT_FALSE(ParseByteSize("12Q", &bytes));
}

TEST(RepairConfigTest, SessionLocalKeysAreExactlyTheDurabilityAndLayoutOnes) {
  for (const char* key : {"rules-dict", "chunk-rows", "memory-budget",
                          "prune", "wal", "resume", "scoped-metrics"}) {
    EXPECT_TRUE(RepairConfigKeyIsSessionLocal(key)) << key;
  }
  for (const char* key : {"engine", "threads", "shards", "memo", "no-memo",
                          "memo-capacity", "on-error", "max-chase-steps"}) {
    EXPECT_FALSE(RepairConfigKeyIsSessionLocal(key)) << key;
  }
}

// The round-trip property the daemon's wire headers lean on:
// Parse(Format(config)) == config for any reachable config.
TEST(RepairConfigPropertyTest, FormatThenParseRoundTripsRandomConfigs) {
  std::mt19937_64 rng(20260808);
  const auto pick = [&](size_t n) { return rng() % n; };
  for (int trial = 0; trial < 500; ++trial) {
    RepairConfig config;
    config.engine =
        pick(2) == 0 ? RepairEngine::kLRepair : RepairEngine::kCRepair;
    config.threads = pick(9);
    config.shards = pick(5);
    if (pick(3) == 0) config.rules_dict = "/tmp/dict.frd";
    config.use_memo = pick(2) == 0;
    config.memo_capacity = 1 + pick(1 << 16);
    config.on_error = std::vector<OnErrorPolicy>{
        OnErrorPolicy::kAbort, OnErrorPolicy::kSkip,
        OnErrorPolicy::kQuarantine}[pick(3)];
    config.max_chase_steps = pick(100);
    config.chunk_rows =
        pick(4) == 0 ? RepairConfig::kWholeFile : 1 + pick(1 << 20);
    config.memory_budget_bytes = pick(2) == 0 ? 0 : 1 + pick(1 << 28);
    config.prune_columns = pick(2) == 0;
    if (pick(3) == 0) config.wal_path = "/tmp/run.wal";
    config.resume = pick(4) == 0;
    config.scoped_metrics = pick(2) == 0;

    RepairConfig replayed;
    for (const auto& [key, value] : FormatRepairConfig(config)) {
      const Status status = ParseRepairConfig(key, value, &replayed);
      ASSERT_TRUE(status.ok())
          << "trial " << trial << ": " << key << "=" << value << ": "
          << status;
    }
    ExpectSameConfig(replayed, config, "trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace fixrep
