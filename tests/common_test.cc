#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/random.h"
#include "common/string_util.h"

namespace fixrep {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Join(parts, ","), "x,,yz");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(TrimTest, StripsAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("RULE x", "RULE"));
  EXPECT_FALSE(StartsWith("RU", "RULE"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(EditDistanceTest, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("Ottawa", "Ottawo"), 1u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("Beijing", "Shanghai"),
            EditDistance("Shanghai", "Beijing"));
}

TEST(MakeTypoTest, AlwaysDiffersAndIsClose) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string original = "Springfield";
    const std::string typo = MakeTypo(original, &rng);
    EXPECT_NE(typo, original);
    EXPECT_LE(EditDistance(typo, original), 2u);
  }
}

TEST(MakeTypoTest, HandlesShortStrings) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(MakeTypo("a", &rng), "a");
    EXPECT_EQ(MakeTypo("", &rng).size(), 1u);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
  // All residues should appear.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = rng.Zipf(10, 1.0);
    ASSERT_LT(r, 10u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  // Every rank occurs.
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(23);
  std::vector<int> counts(5, 0);
  const int n = 25000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(5, 0.0)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.03);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(31);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.Pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Crc32cTest, MatchesKnownAnswer) {
  // The CRC-32C (Castagnoli) check value: crc32c("123456789") ==
  // 0xE3069283 — distinct from the WAL's IEEE CRC-32 of the same input.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32cSoftware("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string text = "chained crc32c over two blocks";
  const uint32_t whole = Crc32c(text.data(), text.size());
  const uint32_t head = Crc32c(text.data(), 7);
  EXPECT_EQ(Crc32c(text.data() + 7, text.size() - 7, head), whole);
  const uint32_t soft_head = Crc32cSoftware(text.data(), 7);
  EXPECT_EQ(Crc32cSoftware(text.data() + 7, text.size() - 7, soft_head),
            whole);
}

TEST(Crc32cTest, HardwareAndSoftwareAgree) {
  // Random buffers at every alignment and awkward length, so the
  // hardware path's u8 prologue/epilogue and u64 main loop are all
  // exercised against the slice-by-8 reference. On machines without
  // SSE4.2 both sides take the software path and this degenerates to a
  // self-check.
  Rng rng(37);
  std::vector<unsigned char> buf(4096 + 16);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.Next() & 0xFF);
  for (size_t align = 0; align < 9; ++align) {
    for (const size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                             size_t{9}, size_t{63}, size_t{64}, size_t{65},
                             size_t{1023}, size_t{4096}}) {
      const unsigned char* p = buf.data() + align;
      EXPECT_EQ(Crc32c(p, len), Crc32cSoftware(p, len))
          << "align=" << align << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace fixrep
