// Durable streaming repair (repair/recovery.h): WAL record round trips,
// scan semantics for crash residue, resumed runs that are byte-identical
// to uninterrupted ones across chunk sizes, engine widths, and error
// policies, rule-level rollback, and a kill-and-resume harness that
// SIGKILLs a real fixrep_cli child at every crash site.

#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "common/wal.h"
#include "datagen/hosp.h"
#include "datagen/noise.h"
#include "datagen/travel.h"
#include "datagen/uis.h"
#include "relation/csv.h"
#include "repair/provenance.h"
#include "repair/recovery.h"
#include "repair/session.h"
#include "rulegen/rulegen.h"
#include "rules/rule_io.h"

namespace fixrep {
namespace {

std::string ToCsv(const Table& table) {
  std::ostringstream out;
  WriteCsv(table, out);
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

// One streaming run through the RepairSession facade, optionally
// journaled to / resumed from a WAL. Output goes to a string so byte
// comparisons are exact.
struct DurableConfig {
  size_t chunk_rows = 1;
  size_t threads = 1;
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  size_t max_chase_steps = 0;
  std::string wal_path;
  bool resume = false;
};

struct DurableRun {
  std::string csv;
  RepairReport report;
  std::vector<Diagnostic> tuple_diagnostics;
};

StatusOr<DurableRun> RunDurable(const std::string& csv_text,
                                std::shared_ptr<ValuePool> pool,
                                const RuleSet& rules,
                                const DurableConfig& config) {
  VectorQuarantineSink tuple_sink;
  std::istringstream in(csv_text);
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, "stream", std::move(pool), {});
  if (!reader.ok()) return reader.status();
  RepairConfig repair;
  repair.threads = config.threads;
  repair.on_error = config.on_error;
  if (config.on_error == OnErrorPolicy::kQuarantine) {
    repair.quarantine = &tuple_sink;
  }
  repair.max_chase_steps = config.max_chase_steps;
  repair.chunk_rows = config.chunk_rows;
  repair.wal_path = config.wal_path;
  repair.resume = config.resume;
  RepairSession session(&rules, repair);
  std::ostringstream out;
  StatusOr<RepairReport> report = session.RepairStream(&reader.value(), out);
  if (!report.ok()) return report.status();
  DurableRun run;
  run.csv = out.str();
  run.report = report.value();
  run.tuple_diagnostics = tuple_sink.diagnostics();
  return run;
}

void ExpectSameDiagnostics(const std::vector<Diagnostic>& got,
                           const std::vector<Diagnostic>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].line, want[i].line) << context << " #" << i;
    EXPECT_EQ(got[i].code, want[i].code) << context << " #" << i;
    EXPECT_EQ(got[i].message, want[i].message) << context << " #" << i;
    EXPECT_EQ(got[i].raw_text, want[i].raw_text) << context << " #" << i;
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kFaultInjectionEnabled) FaultRegistry::Global().DisarmAll();
    MetricsRegistry::Global().ResetAllForTest();
  }
  void TearDown() override {
    if (kFaultInjectionEnabled) FaultRegistry::Global().DisarmAll();
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "fixrep_recovery_" + name;
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

// ----------------------------------------------------------- fingerprint --

TEST_F(RecoveryTest, FingerprintIsStableAndDiscriminates) {
  TravelExample example;
  EXPECT_EQ(RuleSetFingerprint(example.rules),
            RuleSetFingerprint(example.rules));
  RuleSet other(example.schema, example.pool);
  for (size_t i = 0; i + 1 < example.rules.size(); ++i) {
    other.Add(example.rules.rule(i));  // same rules minus the last
  }
  EXPECT_NE(RuleSetFingerprint(example.rules), RuleSetFingerprint(other));
}

// The fingerprint must be a property of the rules alone, not of the
// pool that parsed them: negative_patterns is ValueId-sorted, and ids
// shift with whatever the pool interned earlier (BuildAudit interns
// every journaled delta value before `audit --rules` parses the file).
TEST_F(RecoveryTest, FingerprintIgnoresPoolInterningOrder) {
  TravelExample example;
  const std::string text = SerializeRules(example.rules);

  auto fresh_pool = std::make_shared<ValuePool>();
  const RuleSet fresh =
      ParseRulesFromString(text, example.schema, fresh_pool);
  EXPECT_EQ(RuleSetFingerprint(example.rules), RuleSetFingerprint(fresh));

  // Pre-interning the same strings in reverse hands every rule value a
  // different id order, reordering each ValueId-sorted negative set.
  auto salted_pool = std::make_shared<ValuePool>();
  salted_pool->Intern("unrelated-delta-value");
  for (size_t id = fresh_pool->size(); id-- > 0;) {
    salted_pool->Intern(fresh_pool->GetString(static_cast<ValueId>(id)));
  }
  const RuleSet salted =
      ParseRulesFromString(text, example.schema, salted_pool);
  EXPECT_EQ(RuleSetFingerprint(fresh), RuleSetFingerprint(salted));
}

// -------------------------------------------------- journal / scan round trip --

TEST_F(RecoveryTest, JournalThenScanRecoversEveryField) {
  const std::string path = TempPath("roundtrip.wal");
  WalRunHeader header;
  header.rule_fingerprint = 0xFEEDFACEu;
  header.attribute_names = {"country", "capital"};
  header.chunk_rows = 2;
  header.on_error = static_cast<uint8_t>(OnErrorPolicy::kQuarantine);

  WalCellDelta delta;
  delta.row = 1;
  delta.attr = 1;
  delta.old_is_null = false;
  delta.old_value = "Shanghai";
  delta.new_value = "Beijing";
  delta.rule_index = 3;
  Diagnostic diagnostic{7, StatusCode::kBudgetExhausted, "chase budget",
                        "Chn,Shanghai"};
  {
    StatusOr<ChunkJournal> journal = ChunkJournal::Create(path, header);
    ASSERT_TRUE(journal.ok()) << journal.status().message();
    ASSERT_TRUE(journal->BeginChunk(1, 0, 2).ok());
    ASSERT_TRUE(journal->AddDelta(delta).ok());
    ASSERT_TRUE(journal->Commit(1, 2, 1, 0).ok());
    ASSERT_TRUE(journal->BeginChunk(2, 2, 1).ok());
    ASSERT_TRUE(journal->AddQuarantine(diagnostic).ok());
    ASSERT_TRUE(journal->Commit(2, 1, 0, 1).ok());
    ASSERT_TRUE(journal->Close().ok());
    EXPECT_GE(journal->fsync_count(), 3u);  // header + one per commit
  }

  StatusOr<RecoveredRun> run = ScanWal(path);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->header.rule_fingerprint, 0xFEEDFACEu);
  EXPECT_EQ(run->header.attribute_names, header.attribute_names);
  EXPECT_EQ(run->header.chunk_rows, 2u);
  EXPECT_EQ(run->header.on_error,
            static_cast<uint8_t>(OnErrorPolicy::kQuarantine));
  EXPECT_FALSE(run->tail_discarded);
  ASSERT_EQ(run->chunks.size(), 2u);
  EXPECT_EQ(run->rows_durable(), 3u);
  const WalChunk& first = run->chunks[0];
  EXPECT_EQ(first.chunk_index, 1u);
  EXPECT_EQ(first.base_row, 0u);
  EXPECT_EQ(first.rows, 2u);
  EXPECT_EQ(first.cells_changed, 1u);
  ASSERT_EQ(first.deltas.size(), 1u);
  EXPECT_EQ(first.deltas[0], delta);
  const WalChunk& second = run->chunks[1];
  EXPECT_EQ(second.tuples_quarantined, 1u);
  ASSERT_EQ(second.quarantined.size(), 1u);
  EXPECT_EQ(second.quarantined[0].line, 7u);
  EXPECT_EQ(second.quarantined[0].code, StatusCode::kBudgetExhausted);
  EXPECT_EQ(second.quarantined[0].message, "chase budget");
  EXPECT_EQ(second.quarantined[0].raw_text, "Chn,Shanghai");
}

TEST_F(RecoveryTest, UncommittedChunkIsDiscardedAsTail) {
  const std::string path = TempPath("uncommitted.wal");
  WalRunHeader header;
  header.attribute_names = {"a"};
  header.chunk_rows = 1;
  uint64_t durable_after_commit = 0;
  {
    StatusOr<ChunkJournal> journal = ChunkJournal::Create(path, header);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->BeginChunk(1, 0, 1).ok());
    ASSERT_TRUE(journal->Commit(1, 1, 0, 0).ok());
    durable_after_commit = journal->appended_bytes();
    // Chunk 2 never commits: Close flushes its records to disk anyway,
    // exactly like a crash after the appends.
    ASSERT_TRUE(journal->BeginChunk(2, 1, 1).ok());
    ASSERT_TRUE(journal->AddDelta({}).ok());
    ASSERT_TRUE(journal->Close().ok());
  }
  StatusOr<RecoveredRun> run = ScanWal(path);
  ASSERT_TRUE(run.ok()) << run.status().message();
  ASSERT_EQ(run->chunks.size(), 1u);
  EXPECT_TRUE(run->tail_discarded);
  EXPECT_EQ(run->durable_bytes, durable_after_commit);
}

TEST_F(RecoveryTest, CorruptedMiddleByteShrinksTheDurablePrefix) {
  const std::string path = TempPath("corrupt.wal");
  WalRunHeader header;
  header.attribute_names = {"a"};
  header.chunk_rows = 1;
  {
    StatusOr<ChunkJournal> journal = ChunkJournal::Create(path, header);
    ASSERT_TRUE(journal.ok());
    for (uint64_t c = 1; c <= 3; ++c) {
      ASSERT_TRUE(journal->BeginChunk(c, c - 1, 1).ok());
      ASSERT_TRUE(journal->Commit(c, 1, 0, 0).ok());
    }
    ASSERT_TRUE(journal->Close().ok());
  }
  std::string bytes = ReadFileBytes(path);
  // Flip one bit in the last chunk's region: its CRC fails, the scan
  // keeps the first two chunks and reports the rest as discarded tail.
  bytes[bytes.size() - 10] ^= 0x01;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  StatusOr<RecoveredRun> run = ScanWal(path);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->chunks.size(), 2u);
  EXPECT_TRUE(run->tail_discarded);
}

TEST_F(RecoveryTest, ValidateWalHeaderRefusesEveryMismatch) {
  WalRunHeader header;
  header.rule_fingerprint = 11;
  header.attribute_names = {"a", "b"};
  header.chunk_rows = 8;
  header.on_error = static_cast<uint8_t>(OnErrorPolicy::kAbort);
  const std::vector<std::string> attrs = {"a", "b"};
  EXPECT_TRUE(ValidateWalHeader(header, 11, attrs, 8, OnErrorPolicy::kAbort)
                  .ok());
  EXPECT_EQ(
      ValidateWalHeader(header, 12, attrs, 8, OnErrorPolicy::kAbort).code(),
      StatusCode::kMalformedInput);
  EXPECT_EQ(ValidateWalHeader(header, 11, {"a"}, 8, OnErrorPolicy::kAbort)
                .code(),
            StatusCode::kMalformedInput);
  EXPECT_EQ(
      ValidateWalHeader(header, 11, attrs, 9, OnErrorPolicy::kAbort).code(),
      StatusCode::kMalformedInput);
  EXPECT_EQ(ValidateWalHeader(header, 11, attrs, 8,
                              OnErrorPolicy::kQuarantine)
                .code(),
            StatusCode::kMalformedInput);
}

// ------------------------------------------------------------------ audit --

TEST_F(RecoveryTest, AuditRendersGlobalRowsFromTheLogAlone) {
  TravelExample example;
  const std::string wal = TempPath("audit.wal");
  const std::string dirty_csv = ToCsv(example.dirty);
  const StatusOr<DurableRun> run =
      RunDurable(dirty_csv, example.pool, example.rules,
                 {.chunk_rows = 2, .wal_path = wal});
  ASSERT_TRUE(run.ok()) << run.status().message();
  ASSERT_GT(run->report.cells_changed, 0u);

  StatusOr<RecoveredRun> scanned = ScanWal(wal);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(ValidateWalFingerprint(scanned->header, example.rules).ok());
  StatusOr<WalAudit> audit = BuildAudit(scanned.value());
  ASSERT_TRUE(audit.ok()) << audit.status().message();
  EXPECT_EQ(audit->log.repairs.size(), run->report.cells_changed);
  EXPECT_EQ(audit->schema->attribute_names(),
            example.schema->attribute_names());
  // Every journaled repair is attributable and describable offline.
  const std::vector<size_t> per_rule =
      audit->log.PerRuleCounts(example.rules.size());
  size_t attributed = 0;
  for (const size_t count : per_rule) attributed += count;
  EXPECT_EQ(attributed, audit->log.repairs.size());
  for (const CellRepair& repair : audit->log.repairs) {
    EXPECT_FALSE(
        audit->log.Describe(repair, *audit->schema, *audit->pool).empty());
  }
}

// PerRuleCounts must tolerate rule indices from a reloaded (smaller)
// rule set instead of CHECK-failing: the fingerprint gate, not the
// counter, is what rejects mismatched rules.
TEST_F(RecoveryTest, PerRuleCountsSkipsOutOfRangeRuleIndices) {
  RepairLog log;
  log.repairs.push_back({.row = 0, .attr = 0, .rule_index = 0});
  log.repairs.push_back({.row = 1, .attr = 0, .rule_index = 99});
  const std::vector<size_t> counts = log.PerRuleCounts(2);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);  // the out-of-range repair is skipped
}

// --------------------------------------------------------------- rollback --

TEST_F(RecoveryTest, RollbackThenRepairRestoresTheRepairedBytes) {
  TravelExample example;
  const std::string wal = TempPath("rollback.wal");
  const std::string repaired_path = TempPath("rollback_repaired.csv");
  const std::string rolled_path = TempPath("rollback_rolled.csv");
  cleanup_.push_back(repaired_path + ".tmp");
  cleanup_.push_back(rolled_path + ".tmp");
  const std::string dirty_csv = ToCsv(example.dirty);
  const StatusOr<DurableRun> run =
      RunDurable(dirty_csv, example.pool, example.rules,
                 {.chunk_rows = 2, .wal_path = wal});
  ASSERT_TRUE(run.ok()) << run.status().message();
  std::ofstream(repaired_path) << run->csv;

  StatusOr<RecoveredRun> scanned = ScanWal(wal);
  ASSERT_TRUE(scanned.ok());
  StatusOr<WalAudit> audit = BuildAudit(scanned.value());
  ASSERT_TRUE(audit.ok());

  for (size_t rule = 0; rule < example.rules.size(); ++rule) {
    size_t expected = 0;
    for (const CellRepair& repair : audit->log.repairs) {
      if (repair.rule_index == rule) ++expected;
    }
    StatusOr<RollbackReport> report = RollbackRule(
        scanned.value(), example.rules, rule, repaired_path, rolled_path);
    ASSERT_TRUE(report.ok()) << "rule=" << rule << ": "
                             << report.status().message();
    EXPECT_EQ(report->cells_restored, expected) << "rule=" << rule;
    if (expected == 0) continue;
    // Re-repairing the rolled-back file restores the repaired bytes.
    const StatusOr<DurableRun> again =
        RunDurable(ReadFileBytes(rolled_path), example.pool, example.rules,
                   {.chunk_rows = 2});
    ASSERT_TRUE(again.ok()) << "rule=" << rule;
    EXPECT_EQ(again->csv, run->csv) << "rule=" << rule;
  }
}

TEST_F(RecoveryTest, RollbackRefusesWrongRulesEditedFilesAndBadIndices) {
  TravelExample example;
  const std::string wal = TempPath("refuse.wal");
  const std::string repaired_path = TempPath("refuse_repaired.csv");
  const std::string out_path = TempPath("refuse_out.csv");
  cleanup_.push_back(out_path + ".tmp");
  const StatusOr<DurableRun> run =
      RunDurable(ToCsv(example.dirty), example.pool, example.rules,
                 {.chunk_rows = 2, .wal_path = wal});
  ASSERT_TRUE(run.ok());
  std::ofstream(repaired_path) << run->csv;
  StatusOr<RecoveredRun> scanned = ScanWal(wal);
  ASSERT_TRUE(scanned.ok());

  // Different rule set: fingerprint gate.
  RuleSet other(example.schema, example.pool);
  other.Add(example.rules.rule(0));
  EXPECT_EQ(RollbackRule(scanned.value(), other, 0, repaired_path, out_path)
                .status()
                .code(),
            StatusCode::kMalformedInput);
  // Out-of-range rule index.
  EXPECT_EQ(RollbackRule(scanned.value(), example.rules,
                         example.rules.size(), repaired_path, out_path)
                .status()
                .code(),
            StatusCode::kMalformedInput);
  // A repaired file edited since the run: find the journaled cell and
  // clobber it, then expect a refusal instead of a silent clobber.
  StatusOr<WalAudit> audit = BuildAudit(scanned.value());
  ASSERT_TRUE(audit.ok());
  ASSERT_FALSE(audit->log.repairs.empty());
  const CellRepair& first = audit->log.repairs.front();
  auto pool = std::make_shared<ValuePool>();
  StatusOr<Table> table = ReadCsvFileLenient(repaired_path, "edit", pool);
  ASSERT_TRUE(table.ok());
  table->WriteCell(first.row, first.attr, pool->Intern("edited-by-hand"));
  ASSERT_TRUE(TryWriteCsvFile(table.value(), repaired_path).ok());
  const StatusOr<RollbackReport> refused =
      RollbackRule(scanned.value(), example.rules, first.rule_index,
                   repaired_path, out_path);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(refused.status().message().find("modified"), std::string::npos);
}

// ----------------------------------------------- interrupted-run property --

// The heart of the durability contract: a run that dies mid-stream —
// torn WAL tail and all — resumes to output byte-identical to an
// uninterrupted run, for every chunk size, engine width, and error
// policy, with the same quarantine diagnostics.
struct Dataset {
  std::string name;
  std::string csv;
  std::shared_ptr<ValuePool> pool;
  RuleSet rules;
  size_t max_chase_steps = 0;
  OnErrorPolicy policy = OnErrorPolicy::kAbort;
};

std::vector<Dataset> MakeDatasets() {
  std::vector<Dataset> datasets;
  {
    TravelExample example;
    datasets.push_back({"travel", ToCsv(example.dirty), example.pool,
                        example.rules});
  }
  {
    HospOptions options;
    options.rows = 240;
    options.num_hospitals = 30;
    options.num_measures = 6;
    const GeneratedData data = GenerateHosp(options);
    Table dirty = data.clean;
    InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
    RuleGenOptions rulegen;
    rulegen.max_rules = 100;
    RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
    datasets.push_back({"hosp", ToCsv(dirty), data.pool, std::move(rules)});
  }
  {
    UisOptions options;
    options.rows = 180;
    options.duplicate_ratio = 0.4;
    options.num_zips = 25;
    const GeneratedData data = GenerateUis(options);
    Table dirty = data.clean;
    InjectNoise(&dirty, ConstraintAttributes(*data.schema, data.fds), {});
    RuleGenOptions rulegen;
    rulegen.max_rules = 60;
    RuleSet rules = GenerateRules(data.clean, dirty, data.fds, rulegen);
    // Quarantine flavor: a one-pop budget fails some cascading tuples,
    // so resumed runs must also replay tuple diagnostics.
    Dataset dataset{"uis", ToCsv(dirty), data.pool, std::move(rules)};
    dataset.max_chase_steps = 1;
    dataset.policy = OnErrorPolicy::kQuarantine;
    datasets.push_back(std::move(dataset));
  }
  return datasets;
}

TEST_F(RecoveryTest, InterruptedRunsResumeByteIdentically) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  for (Dataset& dataset : MakeDatasets()) {
    for (const size_t chunk_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        const std::string context = dataset.name +
                                    " chunk_rows=" + std::to_string(chunk_rows) +
                                    " threads=" + std::to_string(threads);
        DurableConfig config;
        config.chunk_rows = chunk_rows;
        config.threads = threads;
        config.on_error = dataset.policy;
        config.max_chase_steps = dataset.max_chase_steps;

        // Reference: no WAL at all.
        const StatusOr<DurableRun> want =
            RunDurable(dataset.csv, dataset.pool, dataset.rules, config);
        ASSERT_TRUE(want.ok()) << context << ": " << want.status().message();

        // Uninterrupted durable run: journaling must not change a byte.
        const std::string wal = TempPath("prop.wal");
        config.wal_path = wal;
        const StatusOr<DurableRun> full =
            RunDurable(dataset.csv, dataset.pool, dataset.rules, config);
        ASSERT_TRUE(full.ok()) << context;
        ASSERT_EQ(full->csv, want->csv) << context;
        const StatusOr<RecoveredRun> scanned = ScanWal(wal);
        ASSERT_TRUE(scanned.ok()) << context;
        EXPECT_EQ(scanned->chunks.size(), full->report.chunks) << context;
        EXPECT_EQ(scanned->rows_durable(), full->report.rows) << context;
        EXPECT_FALSE(scanned->tail_discarded) << context;

        // Interrupt at a spread of commit points with both failure
        // flavors: a failed fsync (clean frames, no commit durability)
        // and a short write (genuinely torn frame bytes).
        const size_t chunks = full->report.chunks;
        std::vector<size_t> kill_points = {1, chunks / 2, chunks};
        for (const char* site : {"wal.fsync", "wal.append"}) {
          for (const size_t kill : kill_points) {
            if (kill == 0) continue;
            const std::string kill_context =
                context + " " + site + " kill=" + std::to_string(kill);
            // Hit 0 of each site is the header sync; skipping `kill`
            // hits dies at the kill-th chunk commit.
            FaultPlan plan;
            plan.skip_hits = kill;
            plan.max_fires = 1;
            FaultRegistry::Global().Arm(site, plan);
            config.resume = false;
            const StatusOr<DurableRun> crashed =
                RunDurable(dataset.csv, dataset.pool, dataset.rules, config);
            FaultRegistry::Global().DisarmAll();
            ASSERT_FALSE(crashed.ok()) << kill_context;
            EXPECT_EQ(crashed.status().code(), StatusCode::kIoError)
                << kill_context;

            // The durable prefix is a strict subset of the run...
            const StatusOr<RecoveredRun> partial = ScanWal(wal);
            ASSERT_TRUE(partial.ok()) << kill_context;
            EXPECT_LT(partial->chunks.size(), chunks + 1) << kill_context;

            // ...and resuming completes to the exact reference bytes
            // and diagnostics.
            config.resume = true;
            const StatusOr<DurableRun> resumed =
                RunDurable(dataset.csv, dataset.pool, dataset.rules, config);
            ASSERT_TRUE(resumed.ok())
                << kill_context << ": " << resumed.status().message();
            ASSERT_EQ(resumed->csv, want->csv) << kill_context;
            EXPECT_EQ(resumed->report.rows, want->report.rows)
                << kill_context;
            EXPECT_EQ(resumed->report.cells_changed,
                      want->report.cells_changed)
                << kill_context;
            EXPECT_EQ(resumed->report.tuples_quarantined,
                      want->report.tuples_quarantined)
                << kill_context;
            ExpectSameDiagnostics(resumed->tuple_diagnostics,
                                  want->tuple_diagnostics, kill_context);
          }
        }
        std::remove(wal.c_str());
      }
    }
  }
}

TEST_F(RecoveryTest, ResumeWithACompleteWalReplaysEverything) {
  TravelExample example;
  const std::string wal = TempPath("complete.wal");
  const std::string dirty_csv = ToCsv(example.dirty);
  DurableConfig config{.chunk_rows = 2, .wal_path = wal};
  const StatusOr<DurableRun> full =
      RunDurable(dirty_csv, example.pool, example.rules, config);
  ASSERT_TRUE(full.ok());
  // Crash after the last commit but before the output rename: resume
  // with a fully durable WAL re-emits every chunk from the log.
  config.resume = true;
  const StatusOr<DurableRun> resumed =
      RunDurable(dirty_csv, example.pool, example.rules, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed->csv, full->csv);
  EXPECT_EQ(resumed->report.chunks, full->report.chunks);
}

TEST_F(RecoveryTest, ResumeRefusesAMismatchedConfiguration) {
  TravelExample example;
  const std::string wal = TempPath("mismatch.wal");
  const std::string dirty_csv = ToCsv(example.dirty);
  const StatusOr<DurableRun> full = RunDurable(
      dirty_csv, example.pool, example.rules,
      {.chunk_rows = 2, .wal_path = wal});
  ASSERT_TRUE(full.ok());
  // Different chunk size: chunk boundaries no longer match the log.
  const StatusOr<DurableRun> wrong_chunks = RunDurable(
      dirty_csv, example.pool, example.rules,
      {.chunk_rows = 3, .wal_path = wal, .resume = true});
  ASSERT_FALSE(wrong_chunks.ok());
  EXPECT_EQ(wrong_chunks.status().code(), StatusCode::kMalformedInput);
  // Different rules: fingerprint gate.
  RuleSet other(example.schema, example.pool);
  other.Add(example.rules.rule(0));
  const StatusOr<DurableRun> wrong_rules = RunDurable(
      dirty_csv, example.pool, other,
      {.chunk_rows = 2, .wal_path = wal, .resume = true});
  ASSERT_FALSE(wrong_rules.ok());
  EXPECT_EQ(wrong_rules.status().code(), StatusCode::kMalformedInput);
}

TEST_F(RecoveryTest, ResumeDetectsADivergentInput) {
  TravelExample example;
  const std::string wal = TempPath("diverge.wal");
  const std::string dirty_csv = ToCsv(example.dirty);
  const StatusOr<DurableRun> full = RunDurable(
      dirty_csv, example.pool, example.rules,
      {.chunk_rows = 2, .wal_path = wal});
  ASSERT_TRUE(full.ok());
  // Same schema, fewer rows: the journaled chunks no longer line up
  // with what the reader re-reads.
  std::string truncated = dirty_csv;
  truncated.resize(truncated.find('\n', truncated.find('\n') + 1) + 1);
  const StatusOr<DurableRun> resumed = RunDurable(
      truncated, example.pool, example.rules,
      {.chunk_rows = 2, .wal_path = wal, .resume = true});
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(resumed.status().message().find("divergence"),
            std::string::npos);
}

// -------------------------------------- CSV-level quarantine journaling --

TEST_F(RecoveryTest, CsvQuarantineRoundTripsThroughTheJournal) {
  const std::string path = TempPath("csvq.wal");
  WalRunHeader header;
  header.attribute_names = {"a", "b"};
  header.chunk_rows = 4;
  Diagnostic csv_diag{3, StatusCode::kMalformedInput, "record has 1 field",
                      "bad"};
  Diagnostic tuple_diag{5, StatusCode::kBudgetExhausted, "chase budget",
                        "(x, y)"};
  {
    StatusOr<ChunkJournal> journal = ChunkJournal::Create(path, header);
    ASSERT_TRUE(journal.ok()) << journal.status().message();
    ASSERT_TRUE(journal->BeginChunk(1, 0, 4).ok());
    ASSERT_TRUE(journal->AddCsvQuarantine(csv_diag).ok());
    ASSERT_TRUE(journal->AddQuarantine(tuple_diag).ok());
    ASSERT_TRUE(journal->Commit(1, 4, 0, 1).ok());
    ASSERT_TRUE(journal->Close().ok());
  }
  StatusOr<RecoveredRun> run = ScanWal(path);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->header.version, kWalFormatVersion);
  ASSERT_EQ(run->chunks.size(), 1u);
  ASSERT_EQ(run->chunks[0].csv_quarantined.size(), 1u);
  EXPECT_EQ(run->chunks[0].csv_quarantined[0], csv_diag);
  ASSERT_EQ(run->chunks[0].quarantined.size(), 1u);
  EXPECT_EQ(run->chunks[0].quarantined[0], tuple_diag);
}

TEST_F(RecoveryTest, CsvQuarantineRecordIsRefusedInAVersion1Log) {
  const std::string path = TempPath("csvq_v1.wal");
  WalRunHeader header;
  header.version = 1;
  header.attribute_names = {"a", "b"};
  {
    StatusOr<ChunkJournal> journal = ChunkJournal::Create(path, header);
    ASSERT_TRUE(journal.ok()) << journal.status().message();
    ASSERT_TRUE(journal->BeginChunk(1, 0, 1).ok());
    ASSERT_TRUE(journal->AddCsvQuarantine(
                            Diagnostic{0, StatusCode::kMalformedInput,
                                       "bad", "bad"})
                    .ok());
    ASSERT_TRUE(journal->Commit(1, 1, 0, 0).ok());
    ASSERT_TRUE(journal->Close().ok());
  }
  StatusOr<RecoveredRun> run = ScanWal(path);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(run.status().message().find("csv_quarantine"),
            std::string::npos);
}

// RunDurable with the reader in quarantine mode, capturing the
// CSV-level diagnostics the reader (or, on resume, the log) delivers.
StatusOr<DurableRun> RunDurableCsvQuarantine(
    const std::string& csv_text, std::shared_ptr<ValuePool> pool,
    const RuleSet& rules, const DurableConfig& config,
    std::vector<Diagnostic>* csv_diagnostics) {
  VectorQuarantineSink csv_sink;
  VectorQuarantineSink tuple_sink;
  std::istringstream in(csv_text);
  CsvReadOptions csv_options;
  csv_options.on_error = config.on_error;
  csv_options.quarantine = &csv_sink;
  StatusOr<CsvChunkReader> reader =
      CsvChunkReader::Open(in, "stream", std::move(pool), csv_options);
  if (!reader.ok()) return reader.status();
  RepairConfig repair;
  repair.on_error = config.on_error;
  repair.quarantine = &tuple_sink;
  repair.chunk_rows = config.chunk_rows;
  repair.wal_path = config.wal_path;
  repair.resume = config.resume;
  RepairSession session(&rules, repair);
  std::ostringstream out;
  StatusOr<RepairReport> report = session.RepairStream(&reader.value(), out);
  if (!report.ok()) return report.status();
  *csv_diagnostics = csv_sink.diagnostics();
  DurableRun run;
  run.csv = out.str();
  run.report = report.value();
  run.tuple_diagnostics = tuple_sink.diagnostics();
  return run;
}

// A dirty travel CSV with one malformed (wrong-arity) record in the
// middle, so the reader quarantines exactly one CSV-level diagnostic.
std::string TravelCsvWithBadRecord(const TravelExample& example,
                                   const std::string& bad_record) {
  std::string csv = ToCsv(example.dirty);
  const size_t second_line = csv.find('\n', csv.find('\n') + 1) + 1;
  return csv.substr(0, second_line) + bad_record + "\n" +
         csv.substr(second_line);
}

TEST_F(RecoveryTest, ResumeForwardsJournaledCsvDiagnostics) {
  TravelExample example;
  const std::string wal = TempPath("csvq_resume.wal");
  const std::string dirty_csv = TravelCsvWithBadRecord(example, "bad");
  DurableConfig config{.chunk_rows = 2,
                       .on_error = OnErrorPolicy::kQuarantine,
                       .wal_path = wal};
  std::vector<Diagnostic> original_csv_diags;
  const StatusOr<DurableRun> full = RunDurableCsvQuarantine(
      dirty_csv, example.pool, example.rules, config, &original_csv_diags);
  ASSERT_TRUE(full.ok()) << full.status().message();
  ASSERT_EQ(original_csv_diags.size(), 1u);

  // The journal carries the reader diagnostics chunk by chunk.
  StatusOr<RecoveredRun> scanned = ScanWal(wal);
  ASSERT_TRUE(scanned.ok()) << scanned.status().message();
  size_t journaled = 0;
  for (const WalChunk& chunk : scanned->chunks) {
    journaled += chunk.csv_quarantined.size();
  }
  EXPECT_EQ(journaled, 1u);

  // Resuming the complete run forwards the journaled records to the
  // live sink and re-emits identical output.
  config.resume = true;
  std::vector<Diagnostic> resumed_csv_diags;
  const StatusOr<DurableRun> resumed = RunDurableCsvQuarantine(
      dirty_csv, example.pool, example.rules, config, &resumed_csv_diags);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed->csv, full->csv);
  ExpectSameDiagnostics(resumed_csv_diags, original_csv_diags, "csv resume");
}

TEST_F(RecoveryTest, ResumeRefusesWhenCsvDiagnosticsDiverge) {
  TravelExample example;
  const std::string wal = TempPath("csvq_diverge.wal");
  DurableConfig config{.chunk_rows = 2,
                       .on_error = OnErrorPolicy::kQuarantine,
                       .wal_path = wal};
  std::vector<Diagnostic> csv_diags;
  const StatusOr<DurableRun> full = RunDurableCsvQuarantine(
      TravelCsvWithBadRecord(example, "bad"), example.pool, example.rules,
      config, &csv_diags);
  ASSERT_TRUE(full.ok()) << full.status().message();

  // The malformed record's text changed but it is still malformed at
  // the same position: committed row counts line up, so only the
  // journaled CSV diagnostics expose that the input was modified.
  config.resume = true;
  const StatusOr<DurableRun> resumed = RunDurableCsvQuarantine(
      TravelCsvWithBadRecord(example, "bad,worse"), example.pool,
      example.rules, config, &csv_diags);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kMalformedInput);
  EXPECT_NE(resumed.status().message().find("CSV-level"), std::string::npos);
}

// ------------------------------------------------- kill-and-resume harness --

// The end-to-end version of the property above: a real fixrep_cli child
// is SIGKILLed at each WAL crash site via FIXREP_FAULT, then rerun with
// --resume, and the finished output must be byte-identical to an
// uninterrupted run's. Exercises the whole stack: env-armed faults,
// torn files on real descriptors, atomic output rename, CLI flag
// plumbing.
TEST_F(RecoveryTest, SigkilledChildResumesToIdenticalBytes) {
#ifndef FIXREP_CLI_PATH
  GTEST_SKIP() << "built without FIXREP_CLI_PATH";
#else
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without FIXREP_ENABLE_FAULT_INJECTION";
  }
  const std::string cli = FIXREP_CLI_PATH;
  if (!std::ifstream(cli).good()) {
    GTEST_SKIP() << "fixrep_cli not built at " << cli;
  }
  // Inputs: the travel example written to disk.
  TravelExample example;
  const std::string dirty_path = TempPath("e2e_dirty.csv");
  const std::string rules_path = TempPath("e2e_rules.txt");
  std::ofstream(dirty_path) << ToCsv(example.dirty);
  ASSERT_TRUE(TryWriteRulesFile(example.rules, rules_path).ok());

  const std::string ref_path = TempPath("e2e_ref.csv");
  const std::string out_path = TempPath("e2e_out.csv");
  const std::string wal_path = TempPath("e2e.wal");
  cleanup_.push_back(ref_path + ".tmp");
  cleanup_.push_back(out_path + ".tmp");

  const auto run_cli = [&](const std::string& env,
                           const std::string& flags) {
    const std::string command = env + " " + cli + " repair --rules " +
                                rules_path + " --in " + dirty_path +
                                " --stream --chunk-rows 1 " + flags +
                                " >/dev/null 2>&1";
    return std::system(command.c_str());
  };
  ASSERT_EQ(run_cli("", "--out " + ref_path), 0);
  const std::string reference = ReadFileBytes(ref_path);
  ASSERT_FALSE(reference.empty());

  for (const char* site : {"wal.crash_after_append", "wal.crash_before_commit",
                           "wal.crash_after_commit"}) {
    for (const int skip : {0, 1, 3}) {  // first, second, and last chunk
      const std::string context =
          std::string(site) + " skip=" + std::to_string(skip);
      std::remove(out_path.c_str());
      std::remove(wal_path.c_str());
      const int killed = run_cli("FIXREP_FAULT=" + std::string(site) +
                                     ":skip=" + std::to_string(skip) +
                                     ":max=1",
                                 "--out " + out_path + " --wal " + wal_path);
      ASSERT_TRUE(WIFSIGNALED(killed) ||
                  (WIFEXITED(killed) && WEXITSTATUS(killed) != 0))
          << context << ": child survived (" << killed << ")";
      // The atomic rename never ran: no partial output is visible.
      EXPECT_FALSE(std::ifstream(out_path).good())
          << context << ": partial output leaked";
      const int resumed = run_cli(
          "", "--out " + out_path + " --wal " + wal_path + " --resume");
      ASSERT_EQ(resumed, 0) << context;
      EXPECT_EQ(ReadFileBytes(out_path), reference) << context;
    }
  }
#endif
}

}  // namespace
}  // namespace fixrep
