#include "common/trace.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "testing_util.h"

namespace fixrep {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsEnabled) {
      GTEST_SKIP() << "built with FIXREP_DISABLE_METRICS";
    }
    TraceTimeline::Global().Reset();
    MetricsRegistry::Global().ResetAllForTest();
  }
};

// Spans recorded since the last Reset, in completion order.
std::vector<TraceTimeline::Span> Spans() {
  return TraceTimeline::Global().Snapshot();
}

TEST_F(TraceTest, SpanRecordsNameAndDuration) {
  { FIXREP_TRACE_SPAN("test.outer_only"); }
  const auto spans = Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.outer_only");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_GE(spans[0].duration_ns, 0u);
}

TEST_F(TraceTest, SpanFeedsLatencyHistogram) {
  { FIXREP_TRACE_SPAN("test.histo"); }
  { FIXREP_TRACE_SPAN("test.histo"); }
  const Histogram* histogram =
      MetricsRegistry::Global().FindHistogram("fixrep.span.test.histo_ns");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Count(), 2u);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndCloseInnerFirst) {
  {
    FIXREP_TRACE_SPAN("test.outer");
    {
      FIXREP_TRACE_SPAN("test.middle");
      { FIXREP_TRACE_SPAN("test.inner"); }
    }
  }
  const auto spans = Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: innermost destructs first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[1].name, "test.middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "test.outer");
  EXPECT_EQ(spans[2].depth, 0u);
  // Parents contain their children in time.
  EXPECT_LE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
}

TEST_F(TraceTest, SiblingSpansShareDepth) {
  {
    FIXREP_TRACE_SPAN("test.parent");
    { FIXREP_TRACE_SPAN("test.first_child"); }
    { FIXREP_TRACE_SPAN("test.second_child"); }
  }
  const auto spans = Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 0u);
}

TEST_F(TraceTest, ThreadsGetDistinctIndicesAndDepthZero) {
  std::thread other([]() { FIXREP_TRACE_SPAN("test.other_thread"); });
  other.join();
  { FIXREP_TRACE_SPAN("test.main_thread"); }
  const auto spans = Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Depth is per-thread: neither span nests in the other.
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
}

TEST_F(TraceTest, JsonDumpIsWellFormed) {
  {
    FIXREP_TRACE_SPAN("test.json \"quoted\"");  // name needing escaping
    { FIXREP_TRACE_SPAN("test.json_child"); }
  }
  std::ostringstream out;
  TraceTimeline::Global().WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(testing::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("test.json_child"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, EmptyTimelineJsonIsWellFormed) {
  std::ostringstream out;
  TraceTimeline::Global().WriteJson(out);
  EXPECT_TRUE(testing::JsonChecker::IsValid(out.str())) << out.str();
}

TEST_F(TraceTest, CombinedMetricsJsonIsWellFormed) {
  MetricsRegistry::Global().GetCounter("fixrep.test.combined")->Add(1);
  { FIXREP_TRACE_SPAN("test.combined"); }
  std::ostringstream out;
  WriteMetricsJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(testing::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline\""), std::string::npos);
}

TEST_F(TraceTest, TimelineIsBoundedAndCountsDrops) {
  TraceTimeline::Span span;
  span.name = "test.flood";
  for (size_t i = 0; i < TraceTimeline::kMaxSpans + 10; ++i) {
    TraceTimeline::Global().Record(span);
  }
  EXPECT_EQ(Spans().size(), TraceTimeline::kMaxSpans);
  EXPECT_EQ(TraceTimeline::Global().dropped(), 10u);
}

}  // namespace
}  // namespace fixrep
