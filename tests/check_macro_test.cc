#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace fixrep {
namespace {

// Regression tests for the FIXREP_CHECK dangling-else hazard: the macro
// used to expand to a bare `if (!(condition)) ...`, so in
//   if (a) FIXREP_CHECK(b); else Foo();
// the user's else silently bound to the macro's internal if. These are
// compile-level tests: the interesting assertion is that this file
// compiles with the else branches binding to the *outer* if.

TEST(CheckMacroTest, ElseBindsToOuterIf) {
  bool else_taken = false;
  if (false)
    FIXREP_CHECK(true) << "never evaluated";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

TEST(CheckMacroTest, ThenBranchRunsCheckNotElse) {
  bool else_taken = false;
  if (true)
    FIXREP_CHECK(2 + 2 == 4) << "passes, streams nothing";
  else
    else_taken = true;
  EXPECT_FALSE(else_taken);
}

TEST(CheckMacroTest, DcheckElseBindsToOuterIf) {
  bool else_taken = false;
  if (false)
    FIXREP_DCHECK(true) << "never evaluated";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

TEST(CheckMacroTest, ComparisonVariantsInIfElse) {
  int branch = 0;
  if (1 < 2)
    FIXREP_CHECK_EQ(1, 1);
  else
    branch = 1;
  EXPECT_EQ(branch, 0);
  if (1 > 2)
    FIXREP_CHECK_NE(1, 2);
  else
    branch = 2;
  EXPECT_EQ(branch, 2);
}

TEST(CheckMacroTest, PassingCheckDoesNotEvaluateStreamOperands) {
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "message";
  };
  FIXREP_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckMacroTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  FIXREP_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckMacroDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(FIXREP_CHECK(1 == 2) << "custom detail",
               "check failed: 1 == 2 custom detail");
}

TEST(LogLevelTest, TryParseAcceptsDocumentedNamesAndWarningAlias) {
  EXPECT_EQ(TryParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(TryParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(TryParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(TryParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(TryParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(TryParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(TryParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(TryParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kError), LogLevel::kError);
}

// The logger macro shares the no-dangling-else requirement (it expands
// to a single ternary expression).
TEST(CheckMacroTest, LogMacroElseBindsToOuterIf) {
  bool else_taken = false;
  if (false)
    FIXREP_LOG(Error) << "never emitted" << Kv("k", 1);
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

}  // namespace
}  // namespace fixrep
