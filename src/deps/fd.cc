#include "deps/fd.h"

#include <algorithm>
#include <fstream>
#include <istream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fixrep {

namespace {

std::vector<AttrId> ResolveAttrs(const Schema& schema,
                                 const std::vector<std::string>& names) {
  std::vector<AttrId> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    out.push_back(schema.AttributeIndex(name));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

FunctionalDependency MakeFd(const Schema& schema,
                            const std::vector<std::string>& lhs,
                            const std::vector<std::string>& rhs) {
  FunctionalDependency fd;
  fd.lhs = ResolveAttrs(schema, lhs);
  fd.rhs = ResolveAttrs(schema, rhs);
  FIXREP_CHECK(!fd.lhs.empty()) << "FD needs a non-empty LHS";
  FIXREP_CHECK(!fd.rhs.empty()) << "FD needs a non-empty RHS";
  for (const AttrId a : fd.rhs) {
    FIXREP_CHECK(!std::binary_search(fd.lhs.begin(), fd.lhs.end(), a))
        << "attribute '" << schema.attribute_name(a)
        << "' appears on both sides of an FD";
  }
  return fd;
}

FunctionalDependency ParseFd(const Schema& schema, const std::string& text) {
  const size_t arrow = text.find("->");
  FIXREP_CHECK_NE(arrow, std::string::npos)
      << "FD '" << text << "' has no '->'";
  auto parse_side = [](std::string_view side) {
    std::vector<std::string> names;
    for (const auto& part : Split(side, ',')) {
      const std::string name(Trim(part));
      if (!name.empty()) names.push_back(name);
    }
    return names;
  };
  return MakeFd(schema, parse_side(std::string_view(text).substr(0, arrow)),
                parse_side(std::string_view(text).substr(arrow + 2)));
}

std::vector<FunctionalDependency> ParseFdList(const Schema& schema,
                                              std::istream& in) {
  std::vector<FunctionalDependency> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    out.push_back(ParseFd(schema, std::string(trimmed)));
  }
  return out;
}

std::vector<FunctionalDependency> ParseFdListFile(const Schema& schema,
                                                  const std::string& path) {
  std::ifstream in(path);
  FIXREP_CHECK(in.good()) << "cannot open " << path;
  return ParseFdList(schema, in);
}

std::string FormatFd(const Schema& schema, const FunctionalDependency& fd) {
  auto render = [&schema](const std::vector<AttrId>& attrs) {
    std::string out;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ",";
      out += schema.attribute_name(attrs[i]);
    }
    return out;
  };
  return render(fd.lhs) + " -> " + render(fd.rhs);
}

std::vector<FunctionalDependency> NormalizeToSingleRhs(
    const FunctionalDependency& fd) {
  std::vector<FunctionalDependency> out;
  out.reserve(fd.rhs.size());
  for (const AttrId a : fd.rhs) {
    out.push_back(FunctionalDependency{fd.lhs, {a}});
  }
  return out;
}

std::vector<FunctionalDependency> NormalizeToSingleRhs(
    const std::vector<FunctionalDependency>& fds) {
  std::vector<FunctionalDependency> out;
  for (const auto& fd : fds) {
    auto singles = NormalizeToSingleRhs(fd);
    out.insert(out.end(), singles.begin(), singles.end());
  }
  return out;
}

}  // namespace fixrep
