#ifndef FIXREP_DEPS_FD_H_
#define FIXREP_DEPS_FD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relation/schema.h"

namespace fixrep {

// A functional dependency X -> Y over a schema. Attribute sets are stored
// as sorted AttrId vectors. FDs are the substrate both for the heuristic
// baselines (Heu, Csm) and for generating fixing rules (Section 7.1).
struct FunctionalDependency {
  std::vector<AttrId> lhs;
  std::vector<AttrId> rhs;

  bool operator==(const FunctionalDependency&) const = default;
};

// Builds an FD from attribute names; CHECK-fails on unknown attributes,
// empty sides, or overlap between lhs and rhs. Attribute ids are sorted
// and de-duplicated.
FunctionalDependency MakeFd(const Schema& schema,
                            const std::vector<std::string>& lhs,
                            const std::vector<std::string>& rhs);

// Parses "A, B -> C, D". Whitespace around names is ignored.
FunctionalDependency ParseFd(const Schema& schema, const std::string& text);

// Parses a newline-separated list of FDs; blank lines and '#' comment
// lines are skipped. Used by the CLI's --fds files.
std::vector<FunctionalDependency> ParseFdList(const Schema& schema,
                                              std::istream& in);
std::vector<FunctionalDependency> ParseFdListFile(const Schema& schema,
                                                  const std::string& path);

// Renders an FD as "A,B -> C,D" using the schema's attribute names.
std::string FormatFd(const Schema& schema, const FunctionalDependency& fd);

// Splits an FD with a multi-attribute right-hand side into one FD per RHS
// attribute (X -> A form), which is what the repair algorithms consume.
std::vector<FunctionalDependency> NormalizeToSingleRhs(
    const FunctionalDependency& fd);

// Convenience: normalizes a whole list.
std::vector<FunctionalDependency> NormalizeToSingleRhs(
    const std::vector<FunctionalDependency>& fds);

}  // namespace fixrep

#endif  // FIXREP_DEPS_FD_H_
