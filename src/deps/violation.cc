#include "deps/violation.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace fixrep {

LhsPartition PartitionBy(const Table& table,
                         const std::vector<AttrId>& attrs) {
  LhsPartition partition;
  partition.reserve(table.num_rows());
  std::vector<ValueId> key(attrs.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      key[i] = table.cell(r, attrs[i]);
    }
    partition[key].push_back(r);
  }
  return partition;
}

std::vector<ViolationGroup> DetectViolations(const Table& table,
                                             const FunctionalDependency& fd) {
  FIXREP_CHECK_EQ(fd.rhs.size(), 1u) << "normalize the FD to single RHS";
  const AttrId rhs = fd.rhs[0];
  std::vector<ViolationGroup> out;
  for (auto& [lhs_values, rows] : PartitionBy(table, fd.lhs)) {
    ValueId first = table.cell(rows[0], rhs);
    bool uniform = true;
    for (size_t i = 1; i < rows.size(); ++i) {
      if (table.cell(rows[i], rhs) != first) {
        uniform = false;
        break;
      }
    }
    if (uniform) continue;
    ViolationGroup group;
    group.lhs_values = lhs_values;
    group.rows = rows;
    std::unordered_set<ValueId> distinct;
    for (const size_t r : rows) {
      const ValueId v = table.cell(r, rhs);
      if (distinct.insert(v).second) group.rhs_values.push_back(v);
    }
    out.push_back(std::move(group));
  }
  return out;
}

bool Satisfies(const Table& table, const FunctionalDependency& fd) {
  for (const auto& single : NormalizeToSingleRhs(fd)) {
    const AttrId rhs = single.rhs[0];
    for (const auto& [lhs_values, rows] : PartitionBy(table, single.lhs)) {
      const ValueId first = table.cell(rows[0], rhs);
      for (size_t i = 1; i < rows.size(); ++i) {
        if (table.cell(rows[i], rhs) != first) return false;
      }
    }
  }
  return true;
}

size_t CountViolatingRows(const Table& table,
                          const std::vector<FunctionalDependency>& fds) {
  std::unordered_set<size_t> violating;
  for (const auto& fd : NormalizeToSingleRhs(fds)) {
    for (const auto& group : DetectViolations(table, fd)) {
      violating.insert(group.rows.begin(), group.rows.end());
    }
  }
  return violating.size();
}

}  // namespace fixrep
