#ifndef FIXREP_DEPS_VIOLATION_H_
#define FIXREP_DEPS_VIOLATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

// Hash for a projection of ValueIds (used to partition a table by the
// left-hand side of an FD).
struct ValueVectorHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const ValueId id : v) {
      h ^= static_cast<size_t>(id) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

// Partition of row indices by identical LHS projection.
using LhsPartition =
    std::unordered_map<std::vector<ValueId>, std::vector<size_t>,
                       ValueVectorHash>;

// Groups rows of `table` by their projection onto `attrs`.
LhsPartition PartitionBy(const Table& table, const std::vector<AttrId>& attrs);

// One violation group of an FD X -> A: rows agreeing on X but carrying
// more than one distinct A value.
struct ViolationGroup {
  std::vector<ValueId> lhs_values;   // shared X projection
  std::vector<size_t> rows;          // all rows in the X-group
  std::vector<ValueId> rhs_values;   // distinct A values (size >= 2)
};

// Finds all violation groups of a single-RHS FD. CHECK-fails if the FD has
// more than one RHS attribute (use NormalizeToSingleRhs first).
std::vector<ViolationGroup> DetectViolations(const Table& table,
                                             const FunctionalDependency& fd);

// True if `table` satisfies `fd` (any RHS arity).
bool Satisfies(const Table& table, const FunctionalDependency& fd);

// Number of rows participating in at least one violation group of any of
// `fds` (each FD normalized to single-RHS internally).
size_t CountViolatingRows(const Table& table,
                          const std::vector<FunctionalDependency>& fds);

}  // namespace fixrep

#endif  // FIXREP_DEPS_VIOLATION_H_
