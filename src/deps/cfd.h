#ifndef FIXREP_DEPS_CFD_H_
#define FIXREP_DEPS_CFD_H_

#include <string>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

// Wildcard marker in CFD pattern tableaux ('_' in the literature).
// Distinct from kNullValue, which marks a missing data value.
inline constexpr ValueId kCfdWildcard = -2;

// A conditional functional dependency (Fan et al., TODS'08), the
// dependency class the paper positions fixing rules against: an
// embedded FD X -> A plus a pattern tableau restricting where it holds.
// The RHS is kept single-attribute (normalize multi-RHS CFDs into one
// Cfd per RHS attribute, as with FDs).
//
// A tableau row assigns each X attribute and the A attribute either a
// constant or kCfdWildcard. Tuple t matches a row's LHS if every
// constant agrees with t. Semantics per row tp:
//  * constant RHS: every tuple matching tp[X] must carry tp[A]
//    (violated by single tuples);
//  * wildcard RHS: any two tuples matching tp[X] that agree on X must
//    agree on A (violated by tuple pairs, like a plain FD scoped to the
//    matching tuples).
struct CfdTableauRow {
  std::vector<ValueId> lhs;  // parallel to Cfd::embedded.lhs
  ValueId rhs = kCfdWildcard;
};

struct Cfd {
  FunctionalDependency embedded;  // single RHS attribute
  std::vector<CfdTableauRow> tableau;
};

// Builds a CFD from text:
//   "country -> capital :: (China | Beijing); (_ | _)"
// LHS constants are '|'-free, ','-separated in embedded-FD LHS order;
// '_' is the wildcard. CHECK-fails on malformed input.
Cfd ParseCfd(const Schema& schema, ValuePool* pool, const std::string& text);

// Renders a CFD in the ParseCfd syntax.
std::string FormatCfd(const Schema& schema, const ValuePool& pool,
                      const Cfd& cfd);

// A detected CFD violation.
struct CfdViolation {
  size_t tableau_row = 0;
  // Rows involved: one row for a constant-RHS violation; all rows of a
  // disagreeing X-group for a wildcard-RHS violation.
  std::vector<size_t> rows;
  bool constant_rhs = false;
};

// Finds all violations of `cfd` in `table`.
std::vector<CfdViolation> DetectCfdViolations(const Table& table,
                                              const Cfd& cfd);

// True if `table` satisfies `cfd`.
bool Satisfies(const Table& table, const Cfd& cfd);

}  // namespace fixrep

#endif  // FIXREP_DEPS_CFD_H_
