#include "deps/cfd.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "deps/violation.h"

namespace fixrep {

namespace {

bool MatchesLhs(const Table& table, size_t row, const Cfd& cfd,
                const CfdTableauRow& pattern) {
  for (size_t i = 0; i < cfd.embedded.lhs.size(); ++i) {
    if (pattern.lhs[i] == kCfdWildcard) continue;
    if (table.cell(row, cfd.embedded.lhs[i]) != pattern.lhs[i]) return false;
  }
  return true;
}

}  // namespace

Cfd ParseCfd(const Schema& schema, ValuePool* pool,
             const std::string& text) {
  const size_t sep = text.find("::");
  FIXREP_CHECK_NE(sep, std::string::npos)
      << "CFD '" << text << "' has no '::' tableau separator";
  Cfd cfd;
  cfd.embedded = ParseFd(schema, text.substr(0, sep));
  FIXREP_CHECK_EQ(cfd.embedded.rhs.size(), 1u)
      << "CFDs are single-RHS here; split multi-RHS dependencies";
  for (const auto& row_text : Split(text.substr(sep + 2), ';')) {
    const std::string_view trimmed = Trim(row_text);
    if (trimmed.empty()) continue;
    FIXREP_CHECK(trimmed.front() == '(' && trimmed.back() == ')')
        << "tableau row '" << std::string(trimmed)
        << "' must be parenthesized";
    const std::string_view body = trimmed.substr(1, trimmed.size() - 2);
    const size_t bar = body.rfind('|');
    FIXREP_CHECK_NE(bar, std::string_view::npos)
        << "tableau row '" << std::string(trimmed) << "' has no '|'";
    CfdTableauRow row;
    auto parse_value = [&pool](std::string_view field) {
      const std::string value(Trim(field));
      FIXREP_CHECK(!value.empty()) << "empty tableau field";
      return value == "_" ? kCfdWildcard : pool->Intern(value);
    };
    const auto lhs_fields = Split(body.substr(0, bar), ',');
    FIXREP_CHECK_EQ(lhs_fields.size(), cfd.embedded.lhs.size())
        << "tableau row arity mismatch";
    for (const auto& field : lhs_fields) row.lhs.push_back(parse_value(field));
    row.rhs = parse_value(body.substr(bar + 1));
    cfd.tableau.push_back(std::move(row));
  }
  FIXREP_CHECK(!cfd.tableau.empty()) << "CFD needs at least one tableau row";
  return cfd;
}

std::string FormatCfd(const Schema& schema, const ValuePool& pool,
                      const Cfd& cfd) {
  std::string out = FormatFd(schema, cfd.embedded) + " :: ";
  auto render = [&pool](ValueId v) {
    return v == kCfdWildcard ? std::string("_") : pool.GetString(v);
  };
  for (size_t r = 0; r < cfd.tableau.size(); ++r) {
    if (r > 0) out += "; ";
    out += "(";
    for (size_t i = 0; i < cfd.tableau[r].lhs.size(); ++i) {
      if (i > 0) out += ", ";
      out += render(cfd.tableau[r].lhs[i]);
    }
    out += " | " + render(cfd.tableau[r].rhs) + ")";
  }
  return out;
}

std::vector<CfdViolation> DetectCfdViolations(const Table& table,
                                              const Cfd& cfd) {
  FIXREP_CHECK_EQ(cfd.embedded.rhs.size(), 1u);
  const AttrId rhs = cfd.embedded.rhs[0];
  std::vector<CfdViolation> out;
  for (size_t p = 0; p < cfd.tableau.size(); ++p) {
    const CfdTableauRow& pattern = cfd.tableau[p];
    if (pattern.rhs != kCfdWildcard) {
      // Constant RHS: single-tuple check.
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (!MatchesLhs(table, r, cfd, pattern)) continue;
        if (table.cell(r, rhs) != pattern.rhs) {
          CfdViolation violation;
          violation.tableau_row = p;
          violation.rows = {r};
          violation.constant_rhs = true;
          out.push_back(std::move(violation));
        }
      }
      continue;
    }
    // Wildcard RHS: FD semantics over matching tuples.
    LhsPartition partition;
    std::vector<ValueId> key(cfd.embedded.lhs.size());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!MatchesLhs(table, r, cfd, pattern)) continue;
      for (size_t i = 0; i < cfd.embedded.lhs.size(); ++i) {
        key[i] = table.cell(r, cfd.embedded.lhs[i]);
      }
      partition[key].push_back(r);
    }
    for (const auto& [lhs_values, rows] : partition) {
      const ValueId first = table.cell(rows[0], rhs);
      bool uniform = true;
      for (size_t i = 1; i < rows.size(); ++i) {
        if (table.cell(rows[i], rhs) != first) {
          uniform = false;
          break;
        }
      }
      if (uniform) continue;
      CfdViolation violation;
      violation.tableau_row = p;
      violation.rows = rows;
      violation.constant_rhs = false;
      out.push_back(std::move(violation));
    }
  }
  return out;
}

bool Satisfies(const Table& table, const Cfd& cfd) {
  return DetectCfdViolations(table, cfd).empty();
}

}  // namespace fixrep
