#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

struct ThreadPool::Job {
  size_t n = 0;
  size_t grain = 1;
  size_t max_participants = 1;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  std::atomic<size_t> cursor{0};     // next unclaimed row
  std::atomic<size_t> next_slot{1};  // slot 0 is the calling thread
  std::atomic<uint64_t> chunks{0};
  size_t active_runners = 0;  // workers inside the job; guarded by pool mu_
};

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked like MetricsRegistry::Global(): worker threads must not be
  // joined during static destruction. One worker minimum so the
  // concurrent path is exercised even on single-core machines.
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(std::thread::hardware_concurrency(), 2) - 1);
  return *pool;
}

void ThreadPool::RunChunks(Job* job, size_t slot) {
  while (true) {
    const size_t begin =
        job->cursor.fetch_add(job->grain, std::memory_order_relaxed);
    if (begin >= job->n) return;
    const size_t end = std::min(begin + job->grain, job->n);
    (*job->body)(begin, end, slot);
    job->chunks.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  while (true) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || job_seq_ != seen_seq || !tasks_.empty();
      });
      if (stop_) return;
      if (job_seq_ != seen_seq) {
        // A job published since we last looked. It may already have been
        // retired (the caller drained the cursor alone) — then job_ is
        // null and there is nothing to join.
        seen_seq = job_seq_;
        job = job_;
        if (job != nullptr) ++job->active_runners;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (job != nullptr) {
      // Slots beyond the participant cap leave the job untouched — the
      // cursor-claiming loop guarantees full coverage with any subset of
      // the pool participating.
      const size_t slot =
          job->next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot < job->max_participants) RunChunks(job.get(), slot);
      std::lock_guard<std::mutex> lock(mu_);
      if (--job->active_runners == 0) done_cv_.notify_all();
    } else if (task) {
      task();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  // notify_all, not notify_one: a single woken worker prefers a pending
  // job over the task queue, which would strand the task until the next
  // wakeup.
  work_cv_.notify_all();
  if (kMetricsEnabled) {
    CurrentMetrics().GetCounter("fixrep.pool.submitted")->Add(1);
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain, size_t max_participants,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  max_participants = std::max<size_t>(max_participants, 1);

  if (max_participants == 1 || workers_.empty()) {
    body(0, n, 0);
    return;
  }

  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->max_participants = max_participants;
  job->body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  RunChunks(job.get(), /*slot=*/0);

  // The cursor is drained: any worker that joins from here on claims no
  // chunk and never dereferences `body`. Wait only for workers that
  // actually entered the job — a worker wedged in a Submit task (or one
  // running its own nested work) simply never joined and owes nothing.
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_.reset();  // late wakers see a retired job and skip it
    done_cv_.wait(lock, [&] { return job->active_runners == 0; });
  }

  if (kMetricsEnabled) {
    auto& registry = CurrentMetrics();
    registry.GetCounter("fixrep.pool.parallel_fors")->Add(1);
    registry.GetCounter("fixrep.pool.tasks")->Add(n);
    registry.GetCounter("fixrep.pool.chunks_claimed")
        ->Add(job->chunks.load(std::memory_order_relaxed));
    registry.GetGauge("fixrep.pool.workers")
        ->Set(static_cast<int64_t>(workers_.size()));
  }
}

}  // namespace fixrep
