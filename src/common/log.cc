#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fixrep {

namespace {

std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

LogLevel InitialLevel() {
  const char* raw = std::getenv("FIXREP_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') return LogLevel::kInfo;
  return ParseLogLevel(raw, LogLevel::kInfo);
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

char SeverityLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      break;
  }
  return '?';
}

// Basename keeps lines short; the full path is rarely useful in logs.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

std::optional<LogLevel> TryParseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel ParseLogLevel(const std::string& text, LogLevel fallback) {
  return TryParseLogLevel(text).value_or(fallback);
}

LogLevel GlobalLogLevel() {
  return static_cast<LogLevel>(
      LevelStore().load(std::memory_order_relaxed));
}

void SetGlobalLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogLevel level) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "%c %lld.%03d %s:%d] ",
                SeverityLetter(level),
                static_cast<long long>(millis / 1000),
                static_cast<int>(millis % 1000), Basename(file), line);
  stream_ << prefix;
}

LogMessage::~LogMessage() { EmitLogLine(stream_.str()); }

void EmitLogLine(const std::string& line) {
  const std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << line << '\n';
}

}  // namespace internal
}  // namespace fixrep
