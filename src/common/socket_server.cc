#include "common/socket_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fixrep::net {

SocketServer::SocketServer(Handler* handler, SocketServerOptions options)
    : handler_(handler), options_(std::move(options)) {}

StatusOr<std::unique_ptr<SocketServer>> SocketServer::Start(
    Handler* handler, SocketServerOptions options) {
  const bool want_unix = !options.unix_socket_path.empty();
  const bool want_tcp = options.tcp_port >= 0;
  if (want_unix == want_tcp) {
    return Status::MalformedInput(
        "socket server needs exactly one of unix_socket_path or tcp_port");
  }
  auto server = std::unique_ptr<SocketServer>(
      new SocketServer(handler, std::move(options)));
  const Status status = server->Bind();
  if (!status.ok()) return status;
  server->thread_ = std::thread([raw = server.get()]() { raw->Run(); });
  return server;
}

Status SocketServer::Bind() {
  if (pipe(wake_fds_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::MalformedInput("unix socket path too long: " +
                                    options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    // A stale socket file from a dead process blocks bind; remove it.
    unlink(options_.unix_socket_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IoError("bind " + options_.unix_socket_path + ": " +
                             std::strerror(errno));
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    const int enable = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local-first: loopback
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IoError("bind port " + std::to_string(options_.tcp_port) +
                             ": " + std::strerror(errno));
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void SocketServer::Wake() {
  const char byte = 'x';
  [[maybe_unused]] const ssize_t written = write(wake_fds_[1], &byte, 1);
}

void SocketServer::Resume(int fd) {
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    commands_.push_back({Command::kResume, fd});
  }
  Wake();
}

void SocketServer::CloseConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    commands_.push_back({Command::kClose, fd});
  }
  Wake();
}

void SocketServer::StopAccepting() {
  accepting_.store(false, std::memory_order_release);
  Wake();
}

void SocketServer::CloseFd(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  connections_.erase(it);
  handler_->OnClose(fd);
  close(fd);
}

void SocketServer::AcceptOne() {
  const int conn = accept(listen_fd_, nullptr, nullptr);
  if (conn < 0) return;
  if (!handler_->OnAccept(conn)) {
    close(conn);
    return;
  }
  connections_[conn] = /*suspended=*/false;
}

void SocketServer::HandleReadable(int fd) {
  switch (handler_->OnReadable(fd)) {
    case ReadResult::kKeepWatching:
      break;
    case ReadResult::kSuspend: {
      auto it = connections_.find(fd);
      if (it != connections_.end()) it->second = true;
      break;
    }
    case ReadResult::kClose:
      CloseFd(fd);
      break;
  }
}

void SocketServer::Run() {
  bool listener_open = true;
  std::vector<pollfd> fds;
  std::vector<Command> pending;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (listener_open && !accepting_.load(std::memory_order_acquire)) {
      // Drain phase: refuse new connects, keep serving established ones.
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }

    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (listener_open) fds.push_back({listen_fd_, POLLIN, 0});
    const size_t first_conn = fds.size();
    for (const auto& [fd, suspended] : connections_) {
      if (!suspended) fds.push_back({fd, POLLIN, 0});
    }

    const int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_fds_[0], buf, sizeof(buf)) == sizeof(buf)) {
      }
      {
        std::lock_guard<std::mutex> lock(command_mu_);
        pending.swap(commands_);
      }
      for (const Command& command : pending) {
        auto it = connections_.find(command.fd);
        if (it == connections_.end()) continue;  // already closed
        if (command.kind == Command::kClose) {
          CloseFd(command.fd);
        } else {
          // Re-deliver OnReadable so a frame the handler already has
          // buffered is processed even if the peer never sends another
          // byte.
          it->second = false;
          HandleReadable(command.fd);
        }
      }
      pending.clear();
    }

    if (listener_open && fds.size() > 1 && (fds[1].revents & POLLIN) != 0) {
      AcceptOne();
    }

    for (size_t i = first_conn; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // The connection set may have changed while handling an earlier
      // fd in this same poll round; skip entries that are gone.
      if (connections_.find(fds[i].fd) == connections_.end()) continue;
      HandleReadable(fds[i].fd);
    }
  }

  // Loop exit: close every remaining connection on the loop thread so
  // OnClose always runs in loop-thread context.
  while (!connections_.empty()) {
    CloseFd(connections_.begin()->first);
  }
}

void SocketServer::Stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  thread_.join();
}

SocketServer::~SocketServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  if (!options_.unix_socket_path.empty()) {
    unlink(options_.unix_socket_path.c_str());
  }
}

}  // namespace fixrep::net
