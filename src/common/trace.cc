#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "common/metric_scope.h"
#include "common/telemetry.h"

namespace fixrep {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Dense thread index: stable, compact, human-readable in dumps (unlike
// std::thread::id hashes).
uint32_t CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint32_t& ThreadSpanDepth() {
  thread_local uint32_t depth = 0;
  return depth;
}

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           TraceEpoch())
          .count());
}

void InitTraceClock() { TraceEpoch(); }

TraceTimeline& TraceTimeline::Global() {
  static TraceTimeline* timeline = new TraceTimeline;
  return *timeline;
}

void TraceTimeline::Record(Span span) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceTimeline::Span> TraceTimeline::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint64_t TraceTimeline::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceTimeline::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

void TraceTimeline::WriteJson(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"total_ns\": " << TraceNowNanos() << ", \"dropped\": " << dropped_
     << ", \"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \""
       << JsonEscape(span.name) << "\", \"thread\": " << span.thread
       << ", \"depth\": " << span.depth << ", \"start_ns\": " << span.start_ns
       << ", \"duration_ns\": " << span.duration_ns << "}";
  }
  os << (spans_.empty() ? "" : "\n") << "]}";
}

TraceSpan::TraceSpan(const char* name)
    : name_(name),
      start_ns_(TraceNowNanos()),
      depth_(ThreadSpanDepth()++) {
  if (TelemetryJournal* journal = GetGlobalJournal()) {
    journal->Append(TelemetryEvent("span_open")
                        .SetString("name", name_)
                        .Set("depth", static_cast<uint64_t>(depth_))
                        .Set("start_ns", start_ns_));
  }
}

TraceSpan::~TraceSpan() {
  const uint64_t duration = TraceNowNanos() - start_ns_;
  --ThreadSpanDepth();
  CurrentMetrics()
      .GetHistogram(std::string("fixrep.span.") + name_ + "_ns", "ns")
      ->Observe(duration);
  if (TelemetryJournal* journal = GetGlobalJournal()) {
    journal->Append(TelemetryEvent("span_close")
                        .SetString("name", name_)
                        .Set("depth", static_cast<uint64_t>(depth_))
                        .Set("duration_ns", duration));
  }
  TraceTimeline::Span span;
  span.name = name_;
  span.thread = CurrentThreadIndex();
  span.depth = depth_;
  span.start_ns = start_ns_;
  span.duration_ns = duration;
  TraceTimeline::Global().Record(std::move(span));
}

void WriteMetricsJson(std::ostream& os) {
  os << "{\n\"metrics\": ";
  MetricsRegistry::Global().WriteJson(os);
  os << ",\n\"timeline\": ";
  TraceTimeline::Global().WriteJson(os);
  os << "\n}\n";
}

}  // namespace fixrep
