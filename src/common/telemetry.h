#ifndef FIXREP_COMMON_TELEMETRY_H_
#define FIXREP_COMMON_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

// Live run telemetry: an append-only JSONL event journal plus a
// background heartbeat sampler. One JSON object per line, every line
// carrying {"event": <type>, "t_ms": <ms since journal open>}; the
// journal interleaves heartbeat samples with span_open/span_close and
// per-chunk events so a finished run replays offline into per-chunk
// rows/s and peak-resident curves (see docs/observability.md for the
// schema and bench/check_regression.py --journal for the checker).

namespace fixrep {

// One journal line under construction. Fields render in insertion
// order; values are JSON-encoded at Set time.
class TelemetryEvent {
 public:
  explicit TelemetryEvent(std::string type) : type_(std::move(type)) {}

  TelemetryEvent& Set(const std::string& key, uint64_t value);
  TelemetryEvent& Set(const std::string& key, int64_t value);
  TelemetryEvent& Set(const std::string& key, double value);  // %.3f
  TelemetryEvent& SetString(const std::string& key, const std::string& value);

  // {"event":"<type>","t_ms":<t_ms>, <fields...>} — no trailing newline.
  std::string ToJsonLine(uint64_t t_ms) const;

  const std::string& type() const { return type_; }

 private:
  std::string type_;
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> json
};

// Thread-safe append-only JSONL sink. Lines are flushed as written so a
// crashed run still leaves a readable journal prefix.
class TelemetryJournal {
 public:
  // Creates/truncates `path` and writes the journal_open event.
  // kIoError when the file cannot be opened.
  static StatusOr<std::unique_ptr<TelemetryJournal>> Open(
      const std::string& path);

  // Test/bench constructor: write to a caller-owned stream (not closed).
  explicit TelemetryJournal(std::ostream* out);

  ~TelemetryJournal();

  TelemetryJournal(const TelemetryJournal&) = delete;
  TelemetryJournal& operator=(const TelemetryJournal&) = delete;

  void Append(const TelemetryEvent& event);

  // Milliseconds since the journal was opened (the t_ms clock).
  uint64_t ElapsedMs() const;

 private:
  TelemetryJournal();  // Open() attaches the file sink before any write
  void WriteOpenEvent();

  std::mutex mu_;
  std::ofstream file_;     // empty when writing to an external stream
  std::ostream* out_;      // the active sink
  uint64_t open_ns_ = 0;   // TraceNowNanos at open
};

// Process-global journal slot, how decoupled emitters (trace spans, the
// streaming driver) find the run's journal without plumbing. Null by
// default; the CLI installs its journal for the duration of a run.
// Callers must clear the slot (SetGlobalJournal(nullptr)) while no other
// thread can still be emitting, before destroying the journal.
void SetGlobalJournal(TelemetryJournal* journal);
TelemetryJournal* GetGlobalJournal();

struct HeartbeatOptions {
  // Sampling period. The sampler is off unless explicitly started.
  uint64_t interval_ms = 1000;
  // Registry to sample. Defaults to the global registry (live progress
  // counters are published there unless the run scopes its metrics).
  MetricsRegistry* registry = nullptr;
  // Journal to append heartbeat events to; may be null (progress-only).
  TelemetryJournal* journal = nullptr;
  // Emit the human one-line progress display to `progress_out`
  // (defaults to stderr).
  bool progress = false;
  std::ostream* progress_out = nullptr;
};

// Background thread that wakes every interval_ms, snapshots the
// registry, getrusage peak RSS, rows/s, and RowStore residency (the
// fixrep.progress.* gauges published live by the streaming driver), and
// appends a heartbeat event and/or prints the --progress line. Stop()
// emits one final sample so short runs still journal at least one.
class HeartbeatSampler {
 public:
  explicit HeartbeatSampler(HeartbeatOptions options);
  ~HeartbeatSampler();  // stops and joins

  HeartbeatSampler(const HeartbeatSampler&) = delete;
  HeartbeatSampler& operator=(const HeartbeatSampler&) = delete;

  void Start();
  void Stop();

  bool running() const { return thread_.joinable(); }

 private:
  void Run();
  void Sample(bool final_sample);

  HeartbeatOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;

  // Previous-sample state for deltas (sampler thread only).
  uint64_t sample_index_ = 0;
  uint64_t last_sample_ns_ = 0;
  uint64_t last_rows_ = 0;
  std::map<std::string, uint64_t> last_counters_;
  bool progress_line_open_ = false;
};

// Peak resident set size of this process in bytes (getrusage ru_maxrss),
// 0 when unavailable.
uint64_t TelemetryPeakRssBytes();

}  // namespace fixrep

#endif  // FIXREP_COMMON_TELEMETRY_H_
