#ifndef FIXREP_COMMON_CRC32C_H_
#define FIXREP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) for the serve
// wire protocol's frame checksums. The serve frames carry whole CSV
// batches, so the checksum pass runs over megabytes per request and
// must not dominate the repair itself: on x86 with SSE 4.2 the hardware
// crc32 instruction does 8 bytes/cycle (runtime-dispatched like the
// probe-hash kernels in common/simd.h); everywhere else a slice-by-8
// table keeps it near memory speed. Both paths produce identical
// checksums.
//
// This is deliberately NOT the WAL's Crc32 (common/wal.h): the WAL and
// rule-dictionary file formats keep their historical CRC-32 polynomial
// for on-disk compatibility. CRC-32C exists for link-speed framing,
// where x86 hardware support makes it effectively free.

namespace fixrep {

// Checksum of [data, data+size). Chainable like the WAL CRC:
// Crc32c(b, n2, Crc32c(a, n1)) == Crc32c(ab, n1+n2).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

// The portable slice-by-8 path, bypassing dispatch — the reference the
// hardware kernel must reproduce bit-for-bit (tested in common_test).
uint32_t Crc32cSoftware(const void* data, size_t size, uint32_t seed = 0);

// True when the running CPU executes the hardware path.
bool Crc32cHardwareActive();

#if FIXREP_SIMD_X86
// Defined in crc32c_sse.cc (compiled with -msse4.2); callable only on
// CPUs that report SSE 4.2.
uint32_t Crc32cHardware(const void* data, size_t size, uint32_t seed);
#endif

}  // namespace fixrep

#endif  // FIXREP_COMMON_CRC32C_H_
