// SSE probe-hash kernel: SplitMix64 over two 64-bit keys per vector.
// This TU alone is compiled with -msse4.2 (see src/common/CMakeLists.txt)
// so the rest of the library keeps the baseline ISA; the dispatcher in
// simd.cc only calls in after __builtin_cpu_supports("sse4.2") passed.

#include "common/simd.h"

#if FIXREP_SIMD_X86

#include <emmintrin.h>

namespace fixrep {

namespace {

// 64x64->64 multiply from 32-bit halves (no 64-bit vector multiply below
// AVX-512): lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline __m128i Mul64(__m128i a, __m128i b) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(a_hi, b),
                                      _mm_mul_epu32(a, b_hi));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i XorShr33(__m128i x) {
  return _mm_xor_si128(x, _mm_srli_epi64(x, 33));
}

}  // namespace

void HashBatchSse(const uint64_t* keys, size_t n, uint64_t* hashes) {
  const __m128i c1 = _mm_set1_epi64x(
      static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m128i c2 = _mm_set1_epi64x(
      static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    x = Mul64(XorShr33(x), c1);
    x = Mul64(XorShr33(x), c2);
    x = XorShr33(x);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + i), x);
  }
  for (; i < n; ++i) hashes[i] = SplitMix64(keys[i]);
}

}  // namespace fixrep

#endif  // FIXREP_SIMD_X86
