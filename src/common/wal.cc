#include "common/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace fixrep {

namespace {

constexpr char kMagic[8] = {'F', 'X', 'R', 'E', 'P', 'W', 'A', 'L'};
constexpr size_t kMagicSize = sizeof(kMagic);
// Frame overhead: u32 length + u8 type + u32 crc.
constexpr size_t kFrameOverhead = 4 + 1 + 4;
// Buffered bytes before Append writes through to the descriptor.
constexpr size_t kWriteThroughBytes = size_t{256} * 1024;

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

// Writes all of `data` to fd, honoring the injected short-write fault
// (which truncates the write to half and reports an IO error, like a
// full disk mid-record).
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  if (FIXREP_FAULT("wal.append")) {
    const size_t half = size / 2;
    size_t off = 0;
    while (off < half) {
      const ssize_t n = ::write(fd, data + off, half - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    return Status::IoError("injected short write on WAL '" + path + "'");
  }
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed on WAL '" + path +
                             "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void WalPutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void WalPutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void WalPutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void WalPutString(std::string* out, std::string_view s) {
  WalPutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool WalCursor::GetU8(uint8_t* v) {
  if (!ok_ || pos_ + 1 > data_.size()) return ok_ = false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WalCursor::GetU32(uint32_t* v) {
  if (!ok_ || pos_ + 4 > data_.size()) return ok_ = false;
  *v = ReadU32(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool WalCursor::GetU64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!GetU32(&lo) || !GetU32(&hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool WalCursor::GetString(std::string* s) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (pos_ + size > data_.size()) return ok_ = false;
  s->assign(data_.data() + pos_, size);
  pos_ += size;
  return true;
}

bool WalCursor::GetStringView(std::string_view* s) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (pos_ + size > data_.size()) return ok_ = false;
  *s = std::string_view(data_.data() + pos_, size);
  pos_ += size;
  return true;
}

StatusOr<WalWriter> WalWriter::Create(const std::string& path) {
  if (FIXREP_FAULT("wal.open")) {
    return Status::IoError("injected open failure on WAL '" + path + "'");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create WAL '" + path +
                           "': " + std::strerror(errno));
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.buffer_.assign(kMagic, kMagicSize);
  writer.appended_bytes_ = kMagicSize;
  return writer;
}

StatusOr<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                             uint64_t durable_bytes) {
  if (FIXREP_FAULT("wal.open")) {
    return Status::IoError("injected open failure on WAL '" + path + "'");
  }
  if (durable_bytes < kMagicSize) {
    return Status::MalformedInput("WAL '" + path +
                                  "' durable prefix shorter than the magic");
  }
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  // Drop the torn tail, then make the truncation itself durable before
  // new records land after it.
  if (::ftruncate(fd, static_cast<off_t>(durable_bytes)) != 0 ||
      ::fsync(fd) != 0 ||
      ::lseek(fd, 0, SEEK_END) != static_cast<off_t>(durable_bytes)) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot truncate WAL '" + path + "' to " +
                           std::to_string(durable_bytes) +
                           " durable bytes: " + error);
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.appended_bytes_ = durable_bytes;
  return writer;
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    appended_bytes_ = other.appended_bytes_;
    fsync_count_ = other.fsync_count_;
    sticky_error_ = std::move(other.sticky_error_);
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(uint8_t type, std::string_view payload) {
  FIXREP_RETURN_IF_ERROR(sticky_error_);
  FIXREP_CHECK(fd_ >= 0) << "append on a closed WAL";
  std::string frame;
  frame.reserve(kFrameOverhead + payload.size());
  WalPutU32(&frame, static_cast<uint32_t>(payload.size()));
  WalPutU8(&frame, type);
  frame.append(payload.data(), payload.size());
  uint32_t crc = Crc32(&type, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  WalPutU32(&frame, crc);
  buffer_ += frame;
  appended_bytes_ += frame.size();
  if (buffer_.size() >= kWriteThroughBytes) {
    sticky_error_ = FlushNoSync();
    return sticky_error_;
  }
  return Status::Ok();
}

Status WalWriter::FlushNoSync() {
  FIXREP_RETURN_IF_ERROR(sticky_error_);
  if (buffer_.empty()) return Status::Ok();
  sticky_error_ = WriteAll(fd_, buffer_.data(), buffer_.size(), path_);
  if (sticky_error_.ok()) buffer_.clear();
  return sticky_error_;
}

void WalWriter::WriteTornBufferForCrash() {
  size_t off = 0;
  const size_t half = buffer_.size() / 2;
  while (off < half) {
    const ssize_t n = ::write(fd_, buffer_.data() + off, half - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

Status WalWriter::Sync() {
  FIXREP_RETURN_IF_ERROR(FlushNoSync());
  if (FIXREP_FAULT("wal.fsync")) {
    sticky_error_ =
        Status::IoError("injected fsync failure on WAL '" + path_ + "'");
    return sticky_error_;
  }
  if (::fsync(fd_) != 0) {
    sticky_error_ = Status::IoError("fsync failed on WAL '" + path_ +
                                    "': " + std::strerror(errno));
    return sticky_error_;
  }
  ++fsync_count_;
  MetricsRegistry::Global().GetCounter("fixrep.wal.fsyncs")->Add(1);
  return Status::Ok();
}

Status WalWriter::Close() {
  const Status flushed = Sync();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return flushed;
}

StatusOr<WalReader> WalReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open WAL '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  WalReader reader;
  reader.data_ = std::move(contents).str();
  if (reader.data_.size() < kMagicSize ||
      std::memcmp(reader.data_.data(), kMagic, kMagicSize) != 0) {
    return Status::MalformedInput("'" + path +
                                  "' is not a fixrep WAL (bad magic)");
  }
  reader.pos_ = kMagicSize;
  reader.durable_bytes_ = kMagicSize;
  return reader;
}

bool WalReader::Next(WalRecord* record) {
  if (tail_truncated_) return false;
  if (pos_ == data_.size()) return false;  // clean EOF
  // Anything from here on that does not parse as a whole, CRC-clean
  // frame is a torn tail: stop and report the durable prefix.
  if (pos_ + 4 + 1 > data_.size()) {
    tail_truncated_ = true;
    return false;
  }
  const uint32_t payload_size = ReadU32(data_.data() + pos_);
  const size_t frame_size = kFrameOverhead + payload_size;
  if (payload_size > data_.size() || pos_ + frame_size > data_.size()) {
    tail_truncated_ = true;
    return false;
  }
  const char* frame = data_.data() + pos_;
  const uint32_t stored_crc = ReadU32(frame + 4 + 1 + payload_size);
  const uint32_t crc = Crc32(frame + 4, 1 + payload_size);
  if (crc != stored_crc) {
    tail_truncated_ = true;
    return false;
  }
  record->type = static_cast<uint8_t>(frame[4]);
  record->payload.assign(frame + 5, payload_size);
  pos_ += frame_size;
  durable_bytes_ = pos_;
  return true;
}

}  // namespace fixrep
