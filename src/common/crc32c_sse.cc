// SSE 4.2 hardware kernel for CRC-32C (common/crc32c.h). This TU alone
// is compiled with -msse4.2 (see src/common/CMakeLists.txt); the
// dispatcher calls in only after __builtin_cpu_supports("sse4.2").

#include "common/crc32c.h"

#if FIXREP_SIMD_X86

#include <nmmintrin.h>

#include <cstring>

namespace fixrep {

uint32_t Crc32cHardware(const void* data, size_t size, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --size;
  }
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, sizeof(word));
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --size;
  }
  return ~crc;
}

}  // namespace fixrep

#endif  // FIXREP_SIMD_X86
