#ifndef FIXREP_COMMON_TIMER_H_
#define FIXREP_COMMON_TIMER_H_

#include <chrono>

namespace fixrep {

// Monotonic wall-clock stopwatch used by the experiment harness; benches
// that need statistical rigour use google-benchmark instead.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_TIMER_H_
