#ifndef FIXREP_COMMON_TIMER_H_
#define FIXREP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#include "common/metrics.h"

namespace fixrep {

// Monotonic wall-clock stopwatch used by the experiment harness; benches
// that need statistical rigour use google-benchmark instead.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Reports the elapsed nanoseconds of its scope into a latency histogram,
// composing Timer with the metrics registry:
//
//   ScopedTimer t(MetricsRegistry::Global().GetHistogram(
//       "fixrep.bench.lrepair_ns"));
//
// A null histogram disables reporting (useful when instrumentation is
// conditional at the call site).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(timer_.ElapsedNanos());
  }

  const Timer& timer() const { return timer_; }

 private:
  Histogram* histogram_;
  Timer timer_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_TIMER_H_
