#ifndef FIXREP_COMMON_SIMD_H_
#define FIXREP_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

// SIMD feature detection and kernel dispatch for the batched inverted-list
// probe (repair/rule_index.h LookupBatch).
//
// Everything here is about *how fast* a batch of hash probes runs, never
// about *what* it computes: every kernel produces bit-identical hashes
// (the same SplitMix64 finalizer the scalar path uses), so repair output
// is byte-identical whichever kernel is active.
//
// Selection, in priority order:
// 1. SetSimdKernel() — the CLI's --no-simd flag, tests, and benches.
// 2. FIXREP_SIMD=off|sse|avx2|auto — read once, at first use.
// 3. Runtime CPU detection (__builtin_cpu_supports), capped at what the
//    build supports.
//
// Builds for non-x86 targets (or with -DFIXREP_DISABLE_SIMD=ON) compile
// the kernels out entirely; kScalar is then the only supported kernel and
// the batch path degrades to the plain scalar probe loop.

// x86 kernels are compiled in only when the target is x86 and the build
// did not opt out. CMake mirrors this condition when deciding whether to
// compile the per-file -msse4.2/-mavx2 kernel TUs.
#if (defined(__x86_64__) || defined(__i386__)) && \
    !defined(FIXREP_DISABLE_SIMD)
#define FIXREP_SIMD_X86 1
#else
#define FIXREP_SIMD_X86 0
#endif

namespace fixrep {

// Probe kernels, ordered so that a larger value is a wider kernel.
enum class SimdKernel : int {
  kScalar = 0,  // portable fallback; also the FIXREP_SIMD=off path
  kSse = 1,     // 2 keys/lane-group (SSE2 ops, compiled as -msse4.2)
  kAvx2 = 2,    // 4 keys/lane-group
};

// "scalar" | "sse" | "avx2".
const char* SimdKernelName(SimdKernel kernel);

// True when both the build compiled the kernel in and the running CPU
// executes it. kScalar is always supported.
bool SimdKernelSupported(SimdKernel kernel);

// The widest supported kernel on this machine.
SimdKernel BestSupportedSimdKernel();

// Process-wide active kernel. First use parses FIXREP_SIMD; explicit
// SetSimdKernel overrides it (an unsupported request clamps to the best
// supported kernel). Thread-safe: plain atomic loads/stores.
SimdKernel ActiveSimdKernel();
void SetSimdKernel(SimdKernel kernel);

// The SplitMix64 finalizer: full avalanche, the hash of every probe path
// (and the reference every SIMD kernel must reproduce bit-for-bit).
inline uint64_t SplitMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// hashes[i] = SplitMix64(keys[i]) for i < n, computed with `kernel`.
// Bit-identical across kernels; only throughput differs.
void HashBatch(SimdKernel kernel, const uint64_t* keys, size_t n,
               uint64_t* hashes);

// Read-prefetch with high temporal locality; no-op where unsupported.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace fixrep

#endif  // FIXREP_COMMON_SIMD_H_
