#include "common/status.h"

namespace fixrep {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kMalformedInput:
      return "MALFORMED_INPUT";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kBudgetExhausted:
      return "BUDGET_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fixrep
