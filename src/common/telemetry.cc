#include "common/telemetry.h"

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common/log.h"
#include "common/trace.h"

namespace fixrep {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

std::atomic<TelemetryJournal*> g_journal{nullptr};

}  // namespace

TelemetryEvent& TelemetryEvent::Set(const std::string& key, uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

TelemetryEvent& TelemetryEvent::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

TelemetryEvent& TelemetryEvent::Set(const std::string& key, double value) {
  fields_.emplace_back(key, FormatDouble(value));
  return *this;
}

TelemetryEvent& TelemetryEvent::SetString(const std::string& key,
                                          const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

std::string TelemetryEvent::ToJsonLine(uint64_t t_ms) const {
  std::string line = "{\"event\":\"" + JsonEscape(type_) +
                     "\",\"t_ms\":" + std::to_string(t_ms);
  for (const auto& [key, json] : fields_) {
    line += ",\"";
    line += JsonEscape(key);
    line += "\":";
    line += json;
  }
  line += "}";
  return line;
}

StatusOr<std::unique_ptr<TelemetryJournal>> TelemetryJournal::Open(
    const std::string& path) {
  auto journal = std::unique_ptr<TelemetryJournal>(new TelemetryJournal);
  journal->file_.open(path, std::ios::out | std::ios::trunc);
  if (!journal->file_.is_open()) {
    return Status::IoError("cannot open telemetry journal: " + path);
  }
  journal->out_ = &journal->file_;
  journal->WriteOpenEvent();
  return journal;
}

TelemetryJournal::TelemetryJournal(std::ostream* out) : out_(out) {
  FIXREP_CHECK(out_ != nullptr);
  WriteOpenEvent();
}

// Private: Open() fills in the file sink before any write.
TelemetryJournal::TelemetryJournal() : out_(nullptr) {}

TelemetryJournal::~TelemetryJournal() {
  FIXREP_CHECK(GetGlobalJournal() != this)
      << "journal destroyed while still installed as the global journal";
}

void TelemetryJournal::WriteOpenEvent() {
  open_ns_ = TraceNowNanos();
  Append(TelemetryEvent("journal_open").Set("version", uint64_t{1}));
}

void TelemetryJournal::Append(const TelemetryEvent& event) {
  const std::string line = event.ToJsonLine(ElapsedMs());
  const std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
  out_->flush();
}

uint64_t TelemetryJournal::ElapsedMs() const {
  return (TraceNowNanos() - open_ns_) / 1000000;
}

void SetGlobalJournal(TelemetryJournal* journal) {
  g_journal.store(journal, std::memory_order_release);
}

TelemetryJournal* GetGlobalJournal() {
  return g_journal.load(std::memory_order_acquire);
}

uint64_t TelemetryPeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

HeartbeatSampler::HeartbeatSampler(HeartbeatOptions options)
    : options_(options) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
  if (options_.interval_ms == 0) options_.interval_ms = 1;
}

HeartbeatSampler::~HeartbeatSampler() { Stop(); }

void HeartbeatSampler::Start() {
  if (!kMetricsEnabled) return;  // nothing to sample
  FIXREP_CHECK(!thread_.joinable()) << "sampler already started";
  stop_requested_ = false;
  last_sample_ns_ = TraceNowNanos();
  thread_ = std::thread([this]() { Run(); });
}

void HeartbeatSampler::Stop() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  Sample(/*final_sample=*/true);
}

void HeartbeatSampler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.interval_ms);
    cv_.wait_until(lock, deadline, [this]() { return stop_requested_; });
    if (stop_requested_) break;  // the final sample comes from Stop()
    lock.unlock();
    Sample(/*final_sample=*/false);
    lock.lock();
  }
}

void HeartbeatSampler::Sample(bool final_sample) {
  MetricsRegistry& registry = *options_.registry;
  const uint64_t now_ns = TraceNowNanos();
  const double interval_s =
      static_cast<double>(now_ns - last_sample_ns_) / 1e9;
  last_sample_ns_ = now_ns;

  const auto counters = registry.SnapshotCounters();
  uint64_t rows = 0;
  for (const auto& [name, value] : counters) {
    if (name == "fixrep.progress.rows") rows = value;
  }
  const uint64_t row_delta = rows - last_rows_;
  const double rows_per_s =
      interval_s > 0 ? static_cast<double>(row_delta) / interval_s : 0.0;
  last_rows_ = rows;

  const auto gauge = [&registry](const char* name) -> int64_t {
    const Gauge* g = registry.FindGauge(name);
    return g == nullptr ? 0 : g->Value();
  };
  const int64_t chunk = gauge("fixrep.progress.chunk");
  const int64_t input_read = gauge("fixrep.progress.input_bytes_read");
  const int64_t input_total = gauge("fixrep.progress.input_bytes_total");
  const int64_t resident = gauge("fixrep.progress.resident_bytes");
  const int64_t peak_resident = gauge("fixrep.progress.peak_resident_bytes");
  const int64_t budget = gauge("fixrep.progress.budget_bytes");
  const int64_t spilled_blocks = gauge("fixrep.progress.spilled_blocks");
  const int64_t spill_file = gauge("fixrep.progress.spill_file_bytes");

  if (options_.journal != nullptr) {
    TelemetryEvent event("heartbeat");
    event.Set("seq", sample_index_)
        .Set("final", static_cast<uint64_t>(final_sample ? 1 : 0))
        .Set("rows", rows)
        .Set("rows_per_s", rows_per_s)
        .Set("rss_peak_bytes", TelemetryPeakRssBytes());
    if (chunk > 0) event.Set("chunk", chunk);
    if (input_read > 0) event.Set("input_bytes_read", input_read);
    if (input_total > 0) event.Set("input_bytes_total", input_total);
    if (budget > 0 || resident > 0) {
      event.Set("resident_bytes", resident)
          .Set("peak_resident_bytes", peak_resident)
          .Set("budget_bytes", budget)
          .Set("spilled_blocks", spilled_blocks)
          .Set("spill_file_bytes", spill_file);
    }
    // Registry delta: counters that moved since the previous heartbeat,
    // namespaced so replay tools can ignore or aggregate them.
    for (const auto& [name, value] : counters) {
      const uint64_t prev = last_counters_.count(name) != 0
                                ? last_counters_[name]
                                : uint64_t{0};
      if (value != prev) {
        event.Set("d." + name, value - prev);
      }
    }
    options_.journal->Append(event);
  }
  last_counters_.clear();
  for (const auto& [name, value] : counters) last_counters_[name] = value;

  if (options_.progress) {
    std::ostream& out =
        options_.progress_out != nullptr ? *options_.progress_out : std::cerr;
    char chunk_part[64] = "";
    if (chunk > 0) {
      if (input_total > 0 && input_read > 0) {
        std::snprintf(chunk_part, sizeof(chunk_part), "chunk %lld (%.0f%%)",
                      static_cast<long long>(chunk),
                      100.0 * static_cast<double>(input_read) /
                          static_cast<double>(input_total));
      } else {
        std::snprintf(chunk_part, sizeof(chunk_part), "chunk %lld",
                      static_cast<long long>(chunk));
      }
    }
    char residency[96] = "";
    if (budget > 0) {
      std::snprintf(residency, sizeof(residency),
                    " | resident %.1f/%.1f MB",
                    static_cast<double>(resident) / (1024.0 * 1024.0),
                    static_cast<double>(budget) / (1024.0 * 1024.0));
    }
    char line[256];
    std::snprintf(line, sizeof(line),
                  "\r[fixrep] %s | rows %llu (%.1fk rows/s)%s",
                  chunk_part[0] != '\0' ? chunk_part : "starting",
                  static_cast<unsigned long long>(rows), rows_per_s / 1000.0,
                  residency);
    out << line;
    progress_line_open_ = true;
    if (final_sample) {
      out << "\n";
      progress_line_open_ = false;
    }
    out.flush();
  }
  ++sample_index_;
}

}  // namespace fixrep
