#include "common/string_util.h"

#include <algorithm>
#include <cctype>

#include "common/random.h"

namespace fixrep {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

std::string MakeTypo(std::string_view s, Rng* rng) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  static constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;
  if (s.empty()) {
    return std::string(1, kAlphabet[rng->Uniform(kAlphabetSize)]);
  }
  std::string out(s);
  // Retry until the mutation actually changes the string (a substitution
  // can pick the same character; a transpose of equal characters is a
  // no-op).
  for (int attempt = 0; attempt < 16; ++attempt) {
    out.assign(s);
    switch (rng->Uniform(4)) {
      case 0: {  // substitute
        const size_t pos = rng->Uniform(out.size());
        out[pos] = kAlphabet[rng->Uniform(kAlphabetSize)];
        break;
      }
      case 1: {  // insert
        const size_t pos = rng->Uniform(out.size() + 1);
        out.insert(out.begin() + pos, kAlphabet[rng->Uniform(kAlphabetSize)]);
        break;
      }
      case 2: {  // delete
        const size_t pos = rng->Uniform(out.size());
        out.erase(out.begin() + pos);
        break;
      }
      default: {  // transpose
        if (out.size() >= 2) {
          const size_t pos = rng->Uniform(out.size() - 1);
          std::swap(out[pos], out[pos + 1]);
        }
        break;
      }
    }
    if (out != s) return out;
  }
  // Fall back to appending a character, which always differs.
  out.assign(s);
  out.push_back('x');
  return out;
}

}  // namespace fixrep
