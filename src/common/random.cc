#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace fixrep {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  FIXREP_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FIXREP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  FIXREP_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = UniformDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace fixrep
