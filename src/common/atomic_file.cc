#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"

namespace fixrep {

StatusOr<AtomicFile> AtomicFile::Create(const std::string& path) {
  AtomicFile file;
  file.path_ = path;
  file.tmp_path_ = path + ".tmp";
  file.stream_.open(file.tmp_path_,
                    std::ios::binary | std::ios::out | std::ios::trunc);
  if (!file.stream_.is_open() || FIXREP_FAULT("atomic_file.open")) {
    return Status::IoError("cannot open '" + file.tmp_path_ +
                           "' for writing");
  }
  file.active_ = true;
  return file;
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept {
  *this = std::move(other);
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Discard();
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
    stream_ = std::move(other.stream_);
    committed_ = other.committed_;
    active_ = std::exchange(other.active_, false);
  }
  return *this;
}

AtomicFile::~AtomicFile() { Discard(); }

void AtomicFile::Discard() {
  if (!active_ || committed_) return;
  if (stream_.is_open()) stream_.close();
  std::remove(tmp_path_.c_str());
  active_ = false;
}

Status AtomicFile::Commit() {
  FIXREP_CHECK(active_ && !committed_) << "Commit on an inactive AtomicFile";
  stream_.flush();
  const bool stream_ok = stream_.good() && !FIXREP_FAULT("atomic_file.write");
  stream_.close();
  if (!stream_ok) {
    std::remove(tmp_path_.c_str());
    active_ = false;
    return Status::IoError("write to '" + tmp_path_ + "' failed");
  }
  // fsync the data before the rename publishes it: otherwise the rename
  // can hit disk first and a power cut exposes an empty file under the
  // final name.
  const int fd = ::open(tmp_path_.c_str(), O_RDONLY);
  if (fd < 0 || ::fsync(fd) != 0 || FIXREP_FAULT("atomic_file.fsync")) {
    const std::string error =
        fd < 0 ? std::strerror(errno) : "fsync failed";
    if (fd >= 0) ::close(fd);
    std::remove(tmp_path_.c_str());
    active_ = false;
    return Status::IoError("cannot sync '" + tmp_path_ + "': " + error);
  }
  ::close(fd);
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const std::string error = std::strerror(errno);
    std::remove(tmp_path_.c_str());
    active_ = false;
    return Status::IoError("cannot rename '" + tmp_path_ + "' to '" + path_ +
                           "': " + error);
  }
  committed_ = true;
  return Status::Ok();
}

}  // namespace fixrep
