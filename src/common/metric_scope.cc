#include "common/metric_scope.h"

#include "common/logging.h"

namespace fixrep {

namespace {

// Innermost active scope's registry for this thread; nullptr = global.
thread_local MetricsRegistry* tls_current_registry = nullptr;

}  // namespace

MetricsRegistry& CurrentMetrics() {
  MetricsRegistry* current = tls_current_registry;
  return current != nullptr ? *current : MetricsRegistry::Global();
}

MetricScope::MetricScope(MetricsRegistry* parent)
    : parent_(parent), registry_(std::make_unique<MetricsRegistry>()) {
  FIXREP_CHECK(parent_ != nullptr);
  FIXREP_CHECK(parent_ != registry_.get());
}

MetricScope::~MetricScope() { Flush(); }

void MetricScope::Flush() { registry_->FlushInto(parent_); }

MetricScope::Activation::Activation(MetricScope* scope)
    : previous_(tls_current_registry) {
  FIXREP_CHECK(scope != nullptr);
  tls_current_registry = &scope->registry();
}

MetricScope::Activation::~Activation() { tls_current_registry = previous_; }

}  // namespace fixrep
