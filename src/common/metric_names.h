#ifndef FIXREP_COMMON_METRIC_NAMES_H_
#define FIXREP_COMMON_METRIC_NAMES_H_

#include <map>
#include <string>

#include "common/status.h"

// Registry names are dotted (fixrep.lrepair.index_builds); Prometheus
// exposition replaces the dots with underscores
// (fixrep_lrepair_index_builds). Because '_' is legal inside a segment,
// sanitization is not invertible in general — fixrep.index_builds and
// fixrep.index.builds collide — so exposition goes through a
// bidirectional map that rejects the second name of any colliding pair
// instead of silently aliasing two metrics into one series.

namespace fixrep {

// True when `name` can round-trip through exposition: one or more
// nonempty '.'-separated segments, each starting with a lowercase letter
// and containing only [a-z0-9_].
bool IsExposableMetricName(const std::string& name);

// Rewrites dots to underscores. kMalformedInput when the name is not
// exposable; `*out` is untouched on error.
Status SanitizeMetricName(const std::string& name, std::string* out);

// Bidirectional registry-name <-> exposition-name map with collision
// detection. Not thread-safe; MetricsRegistry holds one under its own
// lock.
class MetricNameMap {
 public:
  // Registers `name`. Idempotent per name; kMalformedInput when the name
  // is not exposable, or when its sanitized form already belongs to a
  // *different* registry name. Rejected names are remembered so lookups
  // stay O(log n) and repeated Adds return the same error.
  Status Add(const std::string& name);

  // The exposition name for a registry name, or nullptr when `name` was
  // never added or was rejected. The pointer stays valid across later
  // insertions (node-based map).
  const std::string* Sanitized(const std::string& name) const;

  // The registry name owning an exposition name, or nullptr.
  const std::string* Original(const std::string& sanitized) const;

 private:
  // Registry name -> sanitized ("" = rejected, kept to make Add
  // idempotent without re-validating).
  std::map<std::string, std::string> forward_;
  // Sanitized -> registry name, for Original() and collision detection.
  std::map<std::string, std::string> reverse_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_METRIC_NAMES_H_
