#ifndef FIXREP_COMMON_METRIC_SCOPE_H_
#define FIXREP_COMMON_METRIC_SCOPE_H_

#include <memory>

#include "common/metrics.h"

// Session-scoped metric domains. The library's instrumentation sites
// publish to CurrentMetrics(), which is the process-wide registry unless
// the calling thread has an active MetricScope — then it is that scope's
// private registry. A RepairSession configured with scoped_metrics
// activates its scope around every repair call, so two concurrent
// sessions accumulate into disjoint registries (attributable per-tenant
// metrics, the daemon prerequisite) and roll up into the global registry
// on flush.
//
// The publication discipline that makes a *thread-local* current
// registry sufficient: engines accumulate into plain structs and publish
// deltas from the calling thread only — pool workers never touch the
// registry (see ParallelRepairRows) — so activating a scope on the
// session's calling thread captures everything the session publishes.

namespace fixrep {

// The calling thread's publication registry: the innermost active
// MetricScope's, or MetricsRegistry::Global().
MetricsRegistry& CurrentMetrics();

class MetricScope {
 public:
  // Values flushed out of this scope roll up into `parent` (the global
  // registry by default).
  explicit MetricScope(MetricsRegistry* parent = &MetricsRegistry::Global());
  // Flushes whatever is still accumulated, so no counts are dropped.
  ~MetricScope();

  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

  // The scope's private registry — inspect it directly for per-session
  // values before they roll up.
  MetricsRegistry& registry() { return *registry_; }
  const MetricsRegistry& registry() const { return *registry_; }

  // Rolls accumulated values up into the parent and resets the local
  // ones; repeated flushes never double-count.
  void Flush();

  // While an Activation lives, CurrentMetrics() on its thread resolves
  // to the scope's registry. Nests (inner scope wins) and restores the
  // previous registry on destruction; must be destroyed on the thread
  // that created it.
  class Activation {
   public:
    explicit Activation(MetricScope* scope);
    ~Activation();

    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    MetricsRegistry* previous_;
  };

 private:
  MetricsRegistry* parent_;
  std::unique_ptr<MetricsRegistry> registry_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_METRIC_SCOPE_H_
