#ifndef FIXREP_COMMON_STRING_UTIL_H_
#define FIXREP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fixrep {

class Rng;

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Levenshtein edit distance; O(|a|*|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

// Produces a single-character typo of `s` (substitute, insert, delete, or
// transpose, chosen at random). Never returns `s` itself; for empty input
// returns a one-character string.
std::string MakeTypo(std::string_view s, Rng* rng);

}  // namespace fixrep

#endif  // FIXREP_COMMON_STRING_UTIL_H_
