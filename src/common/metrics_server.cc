#include "common/metrics_server.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

namespace fixrep {

namespace {

std::string FormatQuantile(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

}  // namespace

void ExportPrometheus(std::ostream& os, const MetricsRegistry& registry) {
  size_t skipped = 0;
  const auto exposition_name =
      [&registry, &skipped](const std::string& name) -> const std::string* {
    const std::string* sanitized = registry.PrometheusName(name);
    if (sanitized == nullptr) ++skipped;
    return sanitized;
  };

  for (const auto& [name, value] : registry.SnapshotCounters()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " counter\n" << *prom << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.SnapshotGauges()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " gauge\n" << *prom << " " << value << "\n";
  }
  for (const auto& [name, values] : registry.SnapshotCounterVectors()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " counter\n";
    for (size_t i = 0; i < values.size(); ++i) {
      os << *prom << "{index=\"" << i << "\"} " << values[i] << "\n";
    }
  }
  for (const auto& [name, snap] : registry.SnapshotHistograms()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    if (snap.unit[0] != '\0') {
      os << "# UNIT " << *prom << " " << snap.unit << "\n";
    }
    os << "# TYPE " << *prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      os << *prom << "_bucket{le=\"" << Histogram::BucketUpperBound(i)
         << "\"} " << cumulative << "\n";
    }
    os << *prom << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
       << *prom << "_sum " << snap.sum << "\n"
       << *prom << "_count " << snap.count << "\n";
    if (snap.count > 0) {
      os << "# TYPE " << *prom << "_p50 gauge\n"
         << *prom << "_p50 " << FormatQuantile(snap.P50()) << "\n"
         << "# TYPE " << *prom << "_p95 gauge\n"
         << *prom << "_p95 " << FormatQuantile(snap.P95()) << "\n"
         << "# TYPE " << *prom << "_p99 gauge\n"
         << *prom << "_p99 " << FormatQuantile(snap.P99()) << "\n";
    }
  }
  if (skipped > 0) {
    os << "# fixrep: " << skipped
       << " metric(s) hidden (non-exposable registry names)\n";
  }
}

MetricsServer::MetricsServer(MetricsServerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
}

StatusOr<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    MetricsServerOptions options) {
  const bool want_unix = !options.unix_socket_path.empty();
  const bool want_tcp = options.tcp_port >= 0;
  if (want_unix == want_tcp) {
    return Status::MalformedInput(
        "metrics server needs exactly one of unix_socket_path or tcp_port");
  }
  auto server = std::unique_ptr<MetricsServer>(
      new MetricsServer(std::move(options)));
  net::SocketServerOptions socket_options;
  socket_options.unix_socket_path = server->options_.unix_socket_path;
  socket_options.tcp_port = server->options_.tcp_port;
  socket_options.backlog = 4;
  auto inner = net::SocketServer::Start(server.get(), socket_options);
  if (!inner.ok()) return inner.status();
  server->server_ = std::move(inner).value();
  return server;
}

bool MetricsServer::OnAccept(int fd) {
  // One small read is enough for a scrape request line; a client that
  // dribbles bytes gets its response cut off by the send timeout rather
  // than wedging the loop.
  timeval timeout = {2, 0};
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  return true;
}

net::SocketServer::ReadResult MetricsServer::OnReadable(int fd) {
  char request[1024] = {};
  const ssize_t n = recv(fd, request, sizeof(request) - 1, MSG_DONTWAIT);
  if (n <= 0) return net::SocketServer::ReadResult::kClose;

  std::string body;
  std::string header;
  if (std::strncmp(request, "GET /metrics", 12) == 0) {
    std::ostringstream out;
    ExportPrometheus(out, *options_.registry);
    body = out.str();
    header =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Connection: close\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
  } else {
    body = "only GET /metrics is served\n";
    header =
        "HTTP/1.1 404 Not Found\r\n"
        "Content-Type: text/plain; charset=utf-8\r\n"
        "Connection: close\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
  }
  const std::string response = header + body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t w = send(fd, response.data() + sent, response.size() - sent,
                           MSG_NOSIGNAL);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  return net::SocketServer::ReadResult::kClose;
}

void MetricsServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

MetricsServer::~MetricsServer() { Stop(); }

}  // namespace fixrep
