#include "common/metrics_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

namespace fixrep {

namespace {

std::string FormatQuantile(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

}  // namespace

void ExportPrometheus(std::ostream& os, const MetricsRegistry& registry) {
  size_t skipped = 0;
  const auto exposition_name =
      [&registry, &skipped](const std::string& name) -> const std::string* {
    const std::string* sanitized = registry.PrometheusName(name);
    if (sanitized == nullptr) ++skipped;
    return sanitized;
  };

  for (const auto& [name, value] : registry.SnapshotCounters()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " counter\n" << *prom << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.SnapshotGauges()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " gauge\n" << *prom << " " << value << "\n";
  }
  for (const auto& [name, values] : registry.SnapshotCounterVectors()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    os << "# TYPE " << *prom << " counter\n";
    for (size_t i = 0; i < values.size(); ++i) {
      os << *prom << "{index=\"" << i << "\"} " << values[i] << "\n";
    }
  }
  for (const auto& [name, snap] : registry.SnapshotHistograms()) {
    const std::string* prom = exposition_name(name);
    if (prom == nullptr) continue;
    if (snap.unit[0] != '\0') {
      os << "# UNIT " << *prom << " " << snap.unit << "\n";
    }
    os << "# TYPE " << *prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      os << *prom << "_bucket{le=\"" << Histogram::BucketUpperBound(i)
         << "\"} " << cumulative << "\n";
    }
    os << *prom << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
       << *prom << "_sum " << snap.sum << "\n"
       << *prom << "_count " << snap.count << "\n";
    if (snap.count > 0) {
      os << "# TYPE " << *prom << "_p50 gauge\n"
         << *prom << "_p50 " << FormatQuantile(snap.P50()) << "\n"
         << "# TYPE " << *prom << "_p95 gauge\n"
         << *prom << "_p95 " << FormatQuantile(snap.P95()) << "\n"
         << "# TYPE " << *prom << "_p99 gauge\n"
         << *prom << "_p99 " << FormatQuantile(snap.P99()) << "\n";
    }
  }
  if (skipped > 0) {
    os << "# fixrep: " << skipped
       << " metric(s) hidden (non-exposable registry names)\n";
  }
}

MetricsServer::MetricsServer(MetricsServerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
}

StatusOr<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    MetricsServerOptions options) {
  const bool want_unix = !options.unix_socket_path.empty();
  const bool want_tcp = options.tcp_port >= 0;
  if (want_unix == want_tcp) {
    return Status::MalformedInput(
        "metrics server needs exactly one of unix_socket_path or tcp_port");
  }
  auto server = std::unique_ptr<MetricsServer>(
      new MetricsServer(std::move(options)));
  const Status status = server->Bind();
  if (!status.ok()) return status;
  server->thread_ = std::thread([raw = server.get()]() { raw->Run(); });
  return server;
}

Status MetricsServer::Bind() {
  if (pipe(wake_fds_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::MalformedInput("unix socket path too long: " +
                                    options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    // A stale socket file from a dead process blocks bind; remove it.
    unlink(options_.unix_socket_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IoError("bind " + options_.unix_socket_path + ": " +
                             std::strerror(errno));
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    const int enable = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // scrape-only: loopback
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IoError("bind port " +
                             std::to_string(options_.tcp_port) + ": " +
                             std::strerror(errno));
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (listen(listen_fd_, 4) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void MetricsServer::Run() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = poll(fds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    close(conn);
  }
}

void MetricsServer::ServeConnection(int fd) {
  // One small read is enough for a scrape request line; a client that
  // dribbles bytes gets cut off by the receive timeout rather than
  // wedging the accept loop.
  timeval timeout = {2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  char request[1024] = {};
  const ssize_t n = recv(fd, request, sizeof(request) - 1, 0);
  if (n <= 0) return;

  std::string body;
  std::string header;
  if (std::strncmp(request, "GET /metrics", 12) == 0) {
    std::ostringstream out;
    ExportPrometheus(out, *options_.registry);
    body = out.str();
    header =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Connection: close\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
  } else {
    body = "only GET /metrics is served\n";
    header =
        "HTTP/1.1 404 Not Found\r\n"
        "Content-Type: text/plain; charset=utf-8\r\n"
        "Connection: close\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
  }
  const std::string response = header + body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t w = send(fd, response.data() + sent, response.size() - sent,
                           MSG_NOSIGNAL);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
}

void MetricsServer::Stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 'x';
  [[maybe_unused]] const ssize_t written = write(wake_fds_[1], &byte, 1);
  thread_.join();
}

MetricsServer::~MetricsServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  if (!options_.unix_socket_path.empty()) {
    unlink(options_.unix_socket_path.c_str());
  }
}

}  // namespace fixrep
