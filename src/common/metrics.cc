#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace fixrep {

namespace {

// Relaxed CAS loop: good enough for min/max under contention — no
// ordering is needed, only that the final value is the true extremum.
void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(uint64_t value) {
#ifndef FIXREP_DISABLE_METRICS
  const size_t bucket =
      std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
#else
  (void)value;
#endif
}

uint64_t Histogram::Min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::Max() const {
  return max_.load(std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  // Bucket i holds values with bit_width == i, i.e. value < 2^i.
  return i >= 64 ? UINT64_MAX : (uint64_t{1} << i);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void CounterVector::Add(size_t index, uint64_t n) {
#ifndef FIXREP_DISABLE_METRICS
  const std::lock_guard<std::mutex> lock(mu_);
  if (index >= values_.size()) values_.resize(index + 1, 0);
  values_[index] += n;
#else
  (void)index;
  (void)n;
#endif
}

void CounterVector::AddAll(const std::vector<size_t>& deltas) {
#ifndef FIXREP_DISABLE_METRICS
  const std::lock_guard<std::mutex> lock(mu_);
  if (deltas.size() > values_.size()) values_.resize(deltas.size(), 0);
  for (size_t i = 0; i < deltas.size(); ++i) values_[i] += deltas[i];
#else
  (void)deltas;
#endif
}

std::vector<uint64_t> CounterVector::Values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t CounterVector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void CounterVector::Reset() {
  // Shrink back to empty rather than zero-filling: the vector grows on
  // demand, so a stale length would leak one run's cardinality into the
  // next (visible when several tests share a process).
  const std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

namespace {

// Find-or-create on a name-keyed map of unique_ptrs; the map node gives
// the returned pointer stability across rehashes and later insertions.
template <typename T>
T* FindOrCreate(std::mutex* mu,
                std::map<std::string, std::unique_ptr<T>>* map,
                const std::string& name) {
  const std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*map)[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return slot.get();
}

template <typename T>
const T* FindOnly(std::mutex* mu,
                  const std::map<std::string, std::unique_ptr<T>>& map,
                  const std::string& name) {
  const std::lock_guard<std::mutex> lock(*mu);
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(&mu_, &counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(&mu_, &gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(&mu_, &histograms_, name);
}

CounterVector* MetricsRegistry::GetCounterVector(const std::string& name) {
  return FindOrCreate(&mu_, &counter_vectors_, name);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  return FindOnly(&mu_, counters_, name);
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  return FindOnly(&mu_, gauges_, name);
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  return FindOnly(&mu_, histograms_, name);
}

const CounterVector* MetricsRegistry::FindCounterVector(
    const std::string& name) const {
  return FindOnly(&mu_, counter_vectors_, name);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << counter->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << gauge->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"counter_vectors\": {";
  first = true;
  for (const auto& [name, vec] : counter_vectors_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": [";
    const auto values = vec->Values();
    for (size_t i = 0; i < values.size(); ++i) {
      os << (i == 0 ? "" : ",") << values[i];
    }
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"count\": " << histogram->Count()
       << ", \"sum\": " << histogram->Sum()
       << ", \"min\": " << histogram->Min()
       << ", \"max\": " << histogram->Max() << ", \"buckets\": [";
    const auto buckets = histogram->BucketCounts();
    bool first_bucket = true;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      os << (first_bucket ? "" : ", ") << "{\"le\": "
         << Histogram::BucketUpperBound(i) << ", \"count\": " << buckets[i]
         << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
}

void MetricsRegistry::ResetAllForTest() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, vec] : counter_vectors_) vec->Reset();
}

}  // namespace fixrep
