#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/log.h"
#include "common/logging.h"

namespace fixrep {

namespace {

// Relaxed CAS loop: good enough for min/max under contention — no
// ordering is needed, only that the final value is the true extremum.
void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      // Bucket i spans [2^(i-1), 2^i); interpolate the rank's position.
      const double lo =
          i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double frac = std::max(target - cum, 0.0) / in_bucket;
      return std::clamp(lo + (hi - lo) * frac, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max);
}

void Histogram::Observe(uint64_t value) {
#ifndef FIXREP_DISABLE_METRICS
  const size_t bucket =
      std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
#else
  (void)value;
#endif
}

uint64_t Histogram::Min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::Max() const {
  return max_.load(std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  // Bucket i holds values with bit_width == i, i.e. value < 2^i.
  return i >= 64 ? UINT64_MAX : (uint64_t{1} << i);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = Count();
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  snap.unit = unit();
  snap.buckets = BucketCounts();
  return snap;
}

void Histogram::set_unit(const char* unit) {
  if (unit == nullptr || unit[0] == '\0') return;
  const char* expected = nullptr;
  unit_.compare_exchange_strong(expected, unit, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const HistogramSnapshot& snapshot) {
#ifndef FIXREP_DISABLE_METRICS
  set_unit(snapshot.unit);
  if (snapshot.count == 0) return;
  const size_t n = std::min<size_t>(snapshot.buckets.size(), kNumBuckets);
  for (size_t i = 0; i < n; ++i) {
    if (snapshot.buckets[i] != 0) {
      buckets_[i].fetch_add(snapshot.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  AtomicMin(&min_, snapshot.min);
  AtomicMax(&max_, snapshot.max);
#else
  (void)snapshot;
#endif
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void CounterVector::Add(size_t index, uint64_t n) {
#ifndef FIXREP_DISABLE_METRICS
  const std::lock_guard<std::mutex> lock(mu_);
  if (index >= values_.size()) values_.resize(index + 1, 0);
  values_[index] += n;
#else
  (void)index;
  (void)n;
#endif
}

void CounterVector::AddAll(const std::vector<size_t>& deltas) {
#ifndef FIXREP_DISABLE_METRICS
  const std::lock_guard<std::mutex> lock(mu_);
  if (deltas.size() > values_.size()) values_.resize(deltas.size(), 0);
  for (size_t i = 0; i < deltas.size(); ++i) values_[i] += deltas[i];
#else
  (void)deltas;
#endif
}

std::vector<uint64_t> CounterVector::Values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t CounterVector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void CounterVector::Reset() {
  // Shrink back to empty rather than zero-filling: the vector grows on
  // demand, so a stale length would leak one run's cardinality into the
  // next (visible when several tests share a process).
  const std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

namespace {

// Find-or-create on a name-keyed map of unique_ptrs; the map node gives
// the returned pointer stability across later insertions. Caller holds
// the registry lock; `*created` reports first-time registration so the
// registry can record the exposition mapping.
template <typename T>
T* FindOrCreate(std::map<std::string, std::unique_ptr<T>>* map,
                const std::string& name, bool* created) {
  auto& slot = (*map)[name];
  if (slot == nullptr) {
    slot = std::make_unique<T>();
    *created = true;
  }
  return slot.get();
}

template <typename T>
const T* FindOnly(std::mutex* mu,
                  const std::map<std::string, std::unique_ptr<T>>& map,
                  const std::string& name) {
  const std::lock_guard<std::mutex> lock(*mu);
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

void MetricsRegistry::RegisterNameLocked(const std::string& name) {
  const Status status = exposition_names_.Add(name);
  if (!status.ok()) {
    // Still registered — local use (JSON dump, tests) keeps working —
    // but ExportPrometheus will skip it.
    FIXREP_LOG(Warn) << "metric hidden from exposition"
                     << Kv("reason", status.message());
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  bool created = false;
  Counter* counter = FindOrCreate(&counters_, name, &created);
  if (created) RegisterNameLocked(name);
  return counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  bool created = false;
  Gauge* gauge = FindOrCreate(&gauges_, name, &created);
  if (created) RegisterNameLocked(name);
  return gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  bool created = false;
  Histogram* histogram = FindOrCreate(&histograms_, name, &created);
  if (created) RegisterNameLocked(name);
  return histogram;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const char* unit) {
  Histogram* histogram = GetHistogram(name);
  histogram->set_unit(unit);
  return histogram;
}

CounterVector* MetricsRegistry::GetCounterVector(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  bool created = false;
  CounterVector* vec = FindOrCreate(&counter_vectors_, name, &created);
  if (created) RegisterNameLocked(name);
  return vec;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  return FindOnly(&mu_, counters_, name);
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  return FindOnly(&mu_, gauges_, name);
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  return FindOnly(&mu_, histograms_, name);
}

const CounterVector* MetricsRegistry::FindCounterVector(
    const std::string& name) const {
  return FindOnly(&mu_, counter_vectors_, name);
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::SnapshotCounters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::SnapshotGauges()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::SnapshotHistograms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, std::vector<uint64_t>>>
MetricsRegistry::SnapshotCounterVectors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::vector<uint64_t>>> out;
  out.reserve(counter_vectors_.size());
  for (const auto& [name, vec] : counter_vectors_) {
    out.emplace_back(name, vec->Values());
  }
  return out;
}

void MetricsRegistry::MergeInto(MetricsRegistry* target) const {
  FIXREP_CHECK(target != nullptr && target != this);
  // Snapshot under this registry's lock, publish under the target's —
  // the locks are never held together.
  const auto counters = SnapshotCounters();
  const auto gauges = SnapshotGauges();
  const auto histograms = SnapshotHistograms();
  const auto vectors = SnapshotCounterVectors();
  for (const auto& [name, value] : counters) {
    if (value != 0) target->GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : gauges) {
    // Gauges are last-write-wins; a scope that never touched one (0)
    // must not clobber the parent's value.
    if (value != 0) target->GetGauge(name)->Set(value);
  }
  for (const auto& [name, snapshot] : histograms) {
    if (snapshot.count != 0 || snapshot.unit[0] != '\0') {
      target->GetHistogram(name)->MergeFrom(snapshot);
    }
  }
  for (const auto& [name, values] : vectors) {
    if (values.empty()) continue;
    target->GetCounterVector(name)->AddAll(
        std::vector<size_t>(values.begin(), values.end()));
  }
}

void MetricsRegistry::FlushInto(MetricsRegistry* target) {
  MergeInto(target);
  const std::lock_guard<std::mutex> lock(mu_);
  ResetAllLocked();
}

const std::string* MetricsRegistry::PrometheusName(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // The pointer targets a map node, stable across later registrations.
  return exposition_names_.Sanitized(name);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << counter->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << gauge->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"counter_vectors\": {";
  first = true;
  for (const auto& [name, vec] : counter_vectors_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": [";
    const auto values = vec->Values();
    for (size_t i = 0; i < values.size(); ++i) {
      os << (i == 0 ? "" : ",") << values[i];
    }
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"count\": " << snap.count << ", \"sum\": " << snap.sum
       << ", \"min\": " << snap.min << ", \"max\": " << snap.max;
    if (snap.unit[0] != '\0') {
      os << ", \"unit\": \"" << JsonEscape(snap.unit) << "\"";
    }
    if (snap.count > 0) {
      os << ", \"p50\": " << static_cast<uint64_t>(std::llround(snap.P50()))
         << ", \"p95\": " << static_cast<uint64_t>(std::llround(snap.P95()))
         << ", \"p99\": " << static_cast<uint64_t>(std::llround(snap.P99()));
    }
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      os << (first_bucket ? "" : ", ") << "{\"le\": "
         << Histogram::BucketUpperBound(i)
         << ", \"count\": " << snap.buckets[i] << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
}

void MetricsRegistry::ResetAllLocked() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, vec] : counter_vectors_) vec->Reset();
}

void MetricsRegistry::ResetAllForTest() {
  const std::lock_guard<std::mutex> lock(mu_);
  ResetAllLocked();
}

}  // namespace fixrep
