#ifndef FIXREP_COMMON_RANDOM_H_
#define FIXREP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fixrep {

// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
// Every randomized component in the library takes an explicit seed so that
// experiments are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound), bound > 0. Uses Lemire rejection to
  // avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Zipf-distributed rank in [0, n) with exponent s (s >= 0; s == 0 is
  // uniform). Uses an inverse-CDF table computed lazily per (n, s); callers
  // that sweep n/s should keep one Rng per configuration.
  uint64_t Zipf(uint64_t n, double s);

  // Picks one element of v uniformly at random. v must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    FIXREP_CHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Uniform(i + 1)]);
    }
  }

 private:
  uint64_t state_[4];

  // Cached Zipf CDF for the most recent (n, s) pair.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_RANDOM_H_
