#ifndef FIXREP_COMMON_QUARANTINE_H_
#define FIXREP_COMMON_QUARANTINE_H_

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// The dead-letter side of fault-tolerant ingestion and repair: instead of
// aborting on the first malformed record, lenient entry points capture a
// structured Diagnostic per failure and route it to a QuarantineSink
// while the rest of the batch proceeds. Quarantine volumes are exported
// as fixrep.quarantine.{rows,rules,tuples}. See docs/robustness.md for
// the on-disk format and policy.

namespace fixrep {

// What to do when one record (CSV row, rule block, tuple) fails.
enum class OnErrorPolicy {
  kAbort,       // fail the whole operation on the first error
  kSkip,        // drop the failing record silently (metrics still tick)
  kQuarantine,  // drop it and route a Diagnostic to the sink
};

// Parses "abort" | "skip" | "quarantine"; nullopt otherwise.
std::optional<OnErrorPolicy> TryParseOnErrorPolicy(std::string_view text);
const char* OnErrorPolicyName(OnErrorPolicy policy);

// One quarantined record. `line` is the 1-based source line (rule files)
// or record/row ordinal (CSV data records and repaired tuples, 0-based to
// match row indices); `raw_text` preserves the offending input verbatim
// so nothing is lost by quarantining.
struct Diagnostic {
  size_t line = 0;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  std::string raw_text;

  bool operator==(const Diagnostic&) const = default;
};

// Where quarantined records go. Implementations need not be thread-safe:
// the library only feeds sinks from the calling thread (parallel repair
// collects per-worker and forwards, ordered, after the join).
class QuarantineSink {
 public:
  virtual ~QuarantineSink() = default;
  virtual void Add(const Diagnostic& diagnostic) = 0;
};

// Collects diagnostics in memory.
class VectorQuarantineSink : public QuarantineSink {
 public:
  void Add(const Diagnostic& diagnostic) override {
    diagnostics_.push_back(diagnostic);
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }
  void Clear() { diagnostics_.clear(); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

// CSV rendering of the quarantine file: one header, then one record per
// diagnostic as  source,line,code,message,raw_text  with RFC-4180
// quoting. `source` tags the pipeline stage ("csv", "rules", "repair").
void WriteQuarantineHeader(std::ostream& out);
void WriteQuarantineRecord(std::ostream& out, std::string_view source,
                           const Diagnostic& diagnostic);

// Streams each Add straight to `out` with the given source tag; the
// caller writes the header (once, if concatenating several sources).
class StreamQuarantineSink : public QuarantineSink {
 public:
  StreamQuarantineSink(std::ostream* out, std::string source)
      : out_(out), source_(std::move(source)) {}

  void Add(const Diagnostic& diagnostic) override {
    WriteQuarantineRecord(*out_, source_, diagnostic);
  }

 private:
  std::ostream* out_;
  std::string source_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_QUARANTINE_H_
