// AVX2 probe-hash kernel: SplitMix64 over four 64-bit keys per vector.
// This TU alone is compiled with -mavx2 (see src/common/CMakeLists.txt);
// the dispatcher in simd.cc only calls in after
// __builtin_cpu_supports("avx2") passed.

#include "common/simd.h"

#if FIXREP_SIMD_X86

#include <immintrin.h>

namespace fixrep {

namespace {

// 64x64->64 multiply from 32-bit halves (AVX2 has no 64-bit multiply):
// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i XorShr33(__m256i x) {
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

}  // namespace

void HashBatchAvx2(const uint64_t* keys, size_t n, uint64_t* hashes) {
  const __m256i c1 = _mm256_set1_epi64x(
      static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = Mul64(XorShr33(x), c1);
    x = Mul64(XorShr33(x), c2);
    x = XorShr33(x);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), x);
  }
  for (; i < n; ++i) hashes[i] = SplitMix64(keys[i]);
}

}  // namespace fixrep

#endif  // FIXREP_SIMD_X86
