#include "common/quarantine.h"

namespace fixrep {

namespace {

void WriteCsvField(std::ostream& out, std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (const char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

std::optional<OnErrorPolicy> TryParseOnErrorPolicy(std::string_view text) {
  if (text == "abort") return OnErrorPolicy::kAbort;
  if (text == "skip") return OnErrorPolicy::kSkip;
  if (text == "quarantine") return OnErrorPolicy::kQuarantine;
  return std::nullopt;
}

const char* OnErrorPolicyName(OnErrorPolicy policy) {
  switch (policy) {
    case OnErrorPolicy::kAbort:
      return "abort";
    case OnErrorPolicy::kSkip:
      return "skip";
    case OnErrorPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

void WriteQuarantineHeader(std::ostream& out) {
  out << "source,line,code,message,raw_text\n";
}

void WriteQuarantineRecord(std::ostream& out, std::string_view source,
                           const Diagnostic& diagnostic) {
  WriteCsvField(out, source);
  out << ',' << diagnostic.line << ',' << StatusCodeName(diagnostic.code)
      << ',';
  WriteCsvField(out, diagnostic.message);
  out << ',';
  WriteCsvField(out, diagnostic.raw_text);
  out << '\n';
}

}  // namespace fixrep
