#ifndef FIXREP_COMMON_FAULT_H_
#define FIXREP_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"

// Deterministic fault injection. Production and test code mark
// failure-prone spots with FIXREP_FAULT("point.name"); tests arm a point
// with a FaultPlan and the site then reports failure exactly where a real
// fault (unreadable file, full disk, failed allocation, poisoned worker)
// would surface, driving the same recovery paths.
//
//   FaultRegistry::Global().Arm("csv.open_read", FaultPlan{});
//   ...  // next ReadCsvFileLenient call fails with kIoError
//   FaultRegistry::Global().DisarmAll();
//
// Determinism: plans are evaluated against a per-point hit counter and a
// per-point PRNG seeded at Arm time, so a single-threaded test sees the
// same fires on every run. Under concurrency the *set* of fires for a
// probability plan depends on hit interleaving; use nth-hit plans
// (skip_hits/max_fires) where exact placement matters.
//
// Sites compile to `false` (zero cost, dead branches eliminated) unless
// the build defines FIXREP_ENABLE_FAULT_INJECTION (CMake option of the
// same name, ON by default so the robustness suite is live; production
// builds can switch it off). When compiled in, an unarmed site costs one
// relaxed atomic load.
//
// Thread safety: all registry operations are safe to call concurrently;
// armed-site evaluation is mutex-guarded (fault sites sit on IO and
// error-isolation paths, never on the repair hot path).

namespace fixrep {

#ifdef FIXREP_ENABLE_FAULT_INJECTION
inline constexpr bool kFaultInjectionEnabled = true;
#else
inline constexpr bool kFaultInjectionEnabled = false;
#endif

struct FaultPlan {
  // Number of hits that pass through before the plan starts firing.
  uint64_t skip_hits = 0;
  // Once past skip_hits, each hit fires with this probability (1.0 =
  // always), drawn from the per-point PRNG.
  double probability = 1.0;
  // Stop firing after this many fires (UINT64_MAX = unlimited).
  uint64_t max_fires = UINT64_MAX;
  // Seed for the per-point PRNG (only consulted when probability < 1).
  uint64_t seed = 1;
};

class FaultRegistry {
 public:
  // The process-wide registry every FIXREP_FAULT site consults.
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // Arms (or re-arms, resetting counters) a fault point.
  void Arm(const std::string& point, const FaultPlan& plan);
  void Disarm(const std::string& point);
  void DisarmAll();

  // Evaluates one hit of `point`: counts it and returns true when the
  // armed plan says this hit fails. Called via FIXREP_FAULT. When no
  // point is armed anywhere this is one relaxed atomic load.
  bool ShouldFail(const char* point);

  // Hits/fires observed at `point` since it was last armed (counters are
  // only maintained while some point is armed; 0 for unknown points).
  uint64_t HitCount(const std::string& point) const;
  uint64_t FireCount(const std::string& point) const;

  // Every point name that has reported a hit while the registry was
  // active — coverage bookkeeping for the fault-injection suite.
  std::vector<std::string> SeenPoints() const;

 private:
  struct PointState {
    bool armed = false;
    FaultPlan plan;
    uint64_t hits = 0;
    uint64_t fires = 0;
    Rng rng{1};
  };

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  // Number of armed points; the unarmed fast path reads only this.
  std::atomic<uint64_t> armed_count_{0};
};

#ifdef FIXREP_ENABLE_FAULT_INJECTION
#define FIXREP_FAULT(point) \
  (::fixrep::FaultRegistry::Global().ShouldFail(point))
#else
#define FIXREP_FAULT(point) false
#endif

}  // namespace fixrep

#endif  // FIXREP_COMMON_FAULT_H_
