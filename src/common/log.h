#ifndef FIXREP_COMMON_LOG_H_
#define FIXREP_COMMON_LOG_H_

#include <optional>
#include <ostream>
#include <sstream>
#include <string>

// Leveled, thread-safe structured logging.
//
//   FIXREP_LOG(Info) << "repair done" << Kv("rows", n) << Kv("ms", elapsed);
//
// emits one line to stderr:
//
//   I 1754500000.123 lrepair.cc:98] repair done rows=115000 ms=41.2
//
// The threshold comes from FIXREP_LOG_LEVEL (debug|info|warn|error|off,
// default info), read once at first use; SetGlobalLogLevel overrides it at
// runtime. A disabled statement costs one branch and never evaluates its
// stream operands.

namespace fixrep {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Parses "debug"/"info"/"warn"/"warning"/"error"/"off"
// (case-sensitive); anything else is nullopt.
std::optional<LogLevel> TryParseLogLevel(const std::string& text);

// Like TryParseLogLevel, but unrecognized text returns `fallback`.
LogLevel ParseLogLevel(const std::string& text, LogLevel fallback);

// Current threshold; messages strictly below it are dropped.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

// Structured key=value field for log statements (streamed after the
// message). The value is formatted with operator<<.
template <typename T>
struct KvField {
  const char* key;
  const T& value;
};

template <typename T>
KvField<T> Kv(const char* key, const T& value) {
  return KvField<T>{key, value};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const KvField<T>& field) {
  return os << ' ' << field.key << '=' << field.value;
}

namespace internal {

// Formats "<severity-letter> <unix-seconds> <file>:<line>] " and, on
// destruction, writes the accumulated line to stderr under a global mutex
// so concurrent messages never interleave.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Writes one already-formatted line to stderr under the logging mutex.
// Shared with the FIXREP_CHECK failure path so aborts use the same sink.
void EmitLogLine(const std::string& line);

// Lets the FIXREP_LOG macro be a void expression so it nests anywhere a
// statement does, with no dangling-else hazard.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace fixrep

// Severity is one of Debug, Info, Warn, Error. The ternary keeps the
// macro a single expression: no dangling else, operands not evaluated
// when the level is disabled.
#define FIXREP_LOG(severity)                                             \
  (::fixrep::LogLevel::k##severity < ::fixrep::GlobalLogLevel())         \
      ? (void)0                                                          \
      : ::fixrep::internal::Voidify() &                                  \
            ::fixrep::internal::LogMessage(                              \
                __FILE__, __LINE__, ::fixrep::LogLevel::k##severity)     \
                .stream()

#define FIXREP_LOG_ENABLED(severity) \
  (::fixrep::LogLevel::k##severity >= ::fixrep::GlobalLogLevel())

#endif  // FIXREP_COMMON_LOG_H_
