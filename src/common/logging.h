#ifndef FIXREP_COMMON_LOGGING_H_
#define FIXREP_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/log.h"

// Lightweight CHECK/DCHECK macros in the spirit of glog. A failed check
// prints the failing condition with file/line context and aborts; these
// guard internal invariants, not user input (user input errors surface as
// error returns or documented exceptions at the I/O boundary).

namespace fixrep::internal {

// Accumulates a failure message and aborts on destruction. Used only via
// the FIXREP_CHECK family below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    EmitLogLine(stream_.str());
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace fixrep::internal

// The `switch (0) case 0: default:` wrapper makes the macro a single
// statement whose trailing `else` cannot rebind: without it,
//   if (x) FIXREP_CHECK(y); else Foo();
// would silently attach the user's `else` to the macro's internal `if`.
// The empty-brace then-branch keeps streamed operands unevaluated on the
// success path.
#define FIXREP_CHECK(condition)                                         \
  switch (0)                                                            \
  case 0:                                                               \
  default:                                                              \
    if (condition) {                                                    \
    } else                                                              \
      ::fixrep::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define FIXREP_CHECK_EQ(a, b) FIXREP_CHECK((a) == (b))
#define FIXREP_CHECK_NE(a, b) FIXREP_CHECK((a) != (b))
#define FIXREP_CHECK_LT(a, b) FIXREP_CHECK((a) < (b))
#define FIXREP_CHECK_LE(a, b) FIXREP_CHECK((a) <= (b))
#define FIXREP_CHECK_GT(a, b) FIXREP_CHECK((a) > (b))
#define FIXREP_CHECK_GE(a, b) FIXREP_CHECK((a) >= (b))

#ifndef NDEBUG
#define FIXREP_DCHECK(condition) FIXREP_CHECK(condition)
#else
// Release builds do not evaluate the condition (matching glog's DCHECK);
// the dead else-branch still type-checks the streamed operands.
#define FIXREP_DCHECK(condition)                                        \
  switch (0)                                                            \
  case 0:                                                               \
  default:                                                              \
    if (true) {                                                         \
    } else                                                              \
      ::fixrep::internal::CheckFailure(__FILE__, __LINE__, #condition)
#endif

#endif  // FIXREP_COMMON_LOGGING_H_
