#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace fixrep {

namespace {

// Slice-by-8: eight derived tables let the update loop fold one aligned
// 8-byte word per iteration instead of one byte, which keeps the
// software path within a small factor of memory bandwidth — fast enough
// that non-x86 builds see the protocol overhead, not a checksum wall.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

bool DetectHardware() {
#if FIXREP_SIMD_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

}  // namespace

uint32_t Crc32cSoftware(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Byte-align to 8 so the word loop reads aligned memory.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
    --size;
  }
  while (size >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, sizeof(word));  // little-endian hosts, like the WAL
    word ^= crc;
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
    --size;
  }
  return ~crc;
}

bool Crc32cHardwareActive() {
  static const bool active = DetectHardware();
  return active;
}

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
#if FIXREP_SIMD_X86
  if (Crc32cHardwareActive()) return Crc32cHardware(data, size, seed);
#endif
  return Crc32cSoftware(data, size, seed);
}

}  // namespace fixrep
