#include "common/fault.h"

#include <cstdlib>
#include <string>

namespace fixrep {

namespace {

// Arms points named in the FIXREP_FAULT environment variable:
//
//   FIXREP_FAULT=point[:skip=N][:max=N][:p=X][:seed=N][,point...]
//
// This is how a *child* process (the kill-and-resume harness spawning
// fixrep_cli) gets faults armed — it has no test code running inside it
// to call Arm(). Unparseable options are ignored rather than fatal: a
// stray env var must never take down a production run.
void ArmFromEnvironment(FaultRegistry& registry) {
  const char* spec = std::getenv("FIXREP_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  std::string entry;
  for (const char* p = spec;; ++p) {
    if (*p != ',' && *p != '\0') {
      entry.push_back(*p);
      if (*p != '\0') continue;
    }
    if (!entry.empty()) {
      FaultPlan plan;
      size_t colon = entry.find(':');
      const std::string point = entry.substr(0, colon);
      while (colon != std::string::npos) {
        const size_t start = colon + 1;
        colon = entry.find(':', start);
        const std::string opt = entry.substr(
            start, colon == std::string::npos ? colon : colon - start);
        const size_t eq = opt.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = opt.substr(0, eq);
        const std::string value = opt.substr(eq + 1);
        try {
          if (key == "skip") plan.skip_hits = std::stoull(value);
          else if (key == "max") plan.max_fires = std::stoull(value);
          else if (key == "p") plan.probability = std::stod(value);
          else if (key == "seed") plan.seed = std::stoull(value);
        } catch (...) {
          // Malformed number: leave the default.
        }
      }
      if (!point.empty()) registry.Arm(point, plan);
      entry.clear();
    }
    if (*p == '\0') break;
  }
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();  // never destroyed
    ArmFromEnvironment(*r);
    return r;
  }();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.plan = plan;
  state.hits = 0;
  state.fires = 0;
  state.rng = Rng(plan.seed);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) state.armed = false;
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultRegistry::ShouldFail(const char* point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  ++state.hits;
  if (!state.armed) return false;
  if (state.hits <= state.plan.skip_hits) return false;
  if (state.fires >= state.plan.max_fires) return false;
  if (state.plan.probability < 1.0 &&
      !state.rng.Bernoulli(state.plan.probability)) {
    return false;
  }
  ++state.fires;
  return true;
}

uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    if (state.hits > 0) names.push_back(name);
  }
  return names;
}

}  // namespace fixrep
