#include "common/fault.h"

namespace fixrep {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();  // never destroyed
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.plan = plan;
  state.hits = 0;
  state.fires = 0;
  state.rng = Rng(plan.seed);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) state.armed = false;
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultRegistry::ShouldFail(const char* point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  ++state.hits;
  if (!state.armed) return false;
  if (state.hits <= state.plan.skip_hits) return false;
  if (state.fires >= state.plan.max_fires) return false;
  if (state.plan.probability < 1.0 &&
      !state.rng.Bernoulli(state.plan.probability)) {
    return false;
  }
  ++state.fires;
  return true;
}

uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    if (state.hits > 0) names.push_back(name);
  }
  return names;
}

}  // namespace fixrep
