#ifndef FIXREP_COMMON_STATUS_H_
#define FIXREP_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"

// Recoverable-error layer. The division of labor with FIXREP_CHECK:
//
//   * FIXREP_CHECK guards *programmer invariants* — violations are bugs
//     and abort the process.
//   * Status/StatusOr report *input and environment* failures — malformed
//     records, unreadable files, exhausted budgets — which callers are
//     expected to handle (skip, quarantine, retry, surface to the user).
//
// The CHECK-ing IO entry points (ReadCsv, ParseRules, WriteCsvFile, ...)
// remain available as thin wrappers over the Status-returning variants
// for call sites whose inputs are trusted artifacts. See
// docs/robustness.md.

namespace fixrep {

enum class StatusCode {
  kOk = 0,
  kMalformedInput = 1,   // syntactically/structurally invalid input data
  kIoError = 2,          // file open/read/write/flush failure
  kBudgetExhausted = 3,  // a bounded computation hit its step budget
  kInternal = 4,         // unexpected internal failure (incl. injected)
  kUnavailable = 5,      // service overloaded or shutting down; retry later
};

// Stable upper-case token for a code, e.g. "MALFORMED_INPUT".
const char* StatusCodeName(StatusCode code);

// A success marker or an (error code, message) pair. Context accumulates
// outermost-first via WithContext, so a deep failure reads like
//   IO_ERROR: repair --in: record 17: cannot open /tmp/x.csv
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FIXREP_CHECK(code != StatusCode::kOk)
        << "error Status requires a non-ok code";
  }

  static Status Ok() { return Status(); }
  static Status MalformedInput(std::string message) {
    return Status(StatusCode::kMalformedInput, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status BudgetExhausted(std::string message) {
    return Status(StatusCode::kBudgetExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a copy with "context: " prepended to the message; ok
  // statuses pass through unchanged. Chainable.
  Status WithContext(std::string_view context) const {
    if (ok()) return *this;
    std::string message(context);
    message += ": ";
    message += message_;
    return Status(code_, std::move(message));
  }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Either a value or a non-ok Status. Accessing value() on an error
// CHECK-fails — callers must branch on ok() (or use the CHECK-ing entry
// point wrappers, which do exactly that).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    FIXREP_CHECK(!status_.ok())
        << "StatusOr constructed from an ok Status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    FIXREP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    FIXREP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FIXREP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;           // ok iff value_ holds a value
  std::optional<T> value_;
};

// Early-returns the enclosing function with the error when `expr`
// evaluates to a non-ok Status.
#define FIXREP_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::fixrep::Status fixrep_status_tmp_ = (expr);     \
    if (!fixrep_status_tmp_.ok()) {                   \
      return fixrep_status_tmp_;                      \
    }                                                 \
  } while (false)

}  // namespace fixrep

#endif  // FIXREP_COMMON_STATUS_H_
