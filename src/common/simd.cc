#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/log.h"

namespace fixrep {

#if FIXREP_SIMD_X86
// Defined in the per-file-flag TUs (simd_kernels_sse.cc / _avx2.cc);
// callable only on CPUs that pass SimdKernelSupported.
void HashBatchSse(const uint64_t* keys, size_t n, uint64_t* hashes);
void HashBatchAvx2(const uint64_t* keys, size_t n, uint64_t* hashes);
#endif

namespace {

void HashBatchScalar(const uint64_t* keys, size_t n, uint64_t* hashes) {
  for (size_t i = 0; i < n; ++i) hashes[i] = SplitMix64(keys[i]);
}

bool CpuSupports(SimdKernel kernel) {
#if FIXREP_SIMD_X86
  // __builtin_cpu_init is idempotent and cheap; glibc targets run it
  // before main anyway, but static-init-order callers should not rely on
  // that.
  __builtin_cpu_init();
  switch (kernel) {
    case SimdKernel::kScalar:
      return true;
    case SimdKernel::kSse:
      return __builtin_cpu_supports("sse4.2");
    case SimdKernel::kAvx2:
      return __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return kernel == SimdKernel::kScalar;
#endif
}

// -1 = not yet initialized from FIXREP_SIMD.
std::atomic<int> g_active_kernel{-1};

SimdKernel ParseEnvKernel() {
  const char* raw = std::getenv("FIXREP_SIMD");
  const std::string value = raw == nullptr ? "" : raw;
  SimdKernel requested = BestSupportedSimdKernel();
  if (value == "off" || value == "scalar") {
    requested = SimdKernel::kScalar;
  } else if (value == "sse") {
    requested = SimdKernel::kSse;
  } else if (value == "avx2") {
    requested = SimdKernel::kAvx2;
  } else if (!value.empty() && value != "auto") {
    FIXREP_LOG(Warn) << "unknown FIXREP_SIMD value, using auto"
                     << Kv("value", value);
  }
  if (!SimdKernelSupported(requested)) {
    const SimdKernel fallback = BestSupportedSimdKernel();
    FIXREP_LOG(Warn) << "requested SIMD kernel unsupported on this machine"
                     << Kv("requested", SimdKernelName(requested))
                     << Kv("using", SimdKernelName(fallback));
    requested = fallback;
  }
  return requested;
}

}  // namespace

const char* SimdKernelName(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kScalar:
      return "scalar";
    case SimdKernel::kSse:
      return "sse";
    case SimdKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdKernelSupported(SimdKernel kernel) { return CpuSupports(kernel); }

SimdKernel BestSupportedSimdKernel() {
  if (CpuSupports(SimdKernel::kAvx2)) return SimdKernel::kAvx2;
  if (CpuSupports(SimdKernel::kSse)) return SimdKernel::kSse;
  return SimdKernel::kScalar;
}

SimdKernel ActiveSimdKernel() {
  int kernel = g_active_kernel.load(std::memory_order_relaxed);
  if (kernel < 0) {
    // First use: adopt FIXREP_SIMD. A racing first use computes the same
    // value, so last-writer-wins is benign.
    kernel = static_cast<int>(ParseEnvKernel());
    g_active_kernel.store(kernel, std::memory_order_relaxed);
  }
  return static_cast<SimdKernel>(kernel);
}

void SetSimdKernel(SimdKernel kernel) {
  if (!SimdKernelSupported(kernel)) {
    const SimdKernel fallback = BestSupportedSimdKernel();
    FIXREP_LOG(Warn) << "requested SIMD kernel unsupported on this machine"
                     << Kv("requested", SimdKernelName(kernel))
                     << Kv("using", SimdKernelName(fallback));
    kernel = fallback;
  }
  g_active_kernel.store(static_cast<int>(kernel),
                        std::memory_order_relaxed);
}

void HashBatch(SimdKernel kernel, const uint64_t* keys, size_t n,
               uint64_t* hashes) {
  switch (kernel) {
    case SimdKernel::kScalar:
      HashBatchScalar(keys, n, hashes);
      return;
#if FIXREP_SIMD_X86
    case SimdKernel::kSse:
      HashBatchSse(keys, n, hashes);
      return;
    case SimdKernel::kAvx2:
      HashBatchAvx2(keys, n, hashes);
      return;
#else
    default:
      HashBatchScalar(keys, n, hashes);
      return;
#endif
  }
}

}  // namespace fixrep
