#ifndef FIXREP_COMMON_ATOMIC_FILE_H_
#define FIXREP_COMMON_ATOMIC_FILE_H_

#include <fstream>
#include <string>

#include "common/status.h"

// Crash-atomic file replacement. Output written in place becomes a
// truncated-but-valid-looking file if the process dies mid-write; an
// AtomicFile stages everything in `path.tmp` and only a successful
// Commit() — flush, fsync, rename(2) — makes it visible under the final
// name. A crash at any earlier point leaves the previous version of
// `path` (or its absence) untouched, and the destructor unlinks an
// uncommitted temp file.
//
//   auto out = AtomicFile::Create(path);
//   if (!out.ok()) return out.status();
//   out->stream() << header << rows;
//   FIXREP_RETURN_IF_ERROR(out->Commit());

namespace fixrep {

class AtomicFile {
 public:
  // Opens `path`.tmp for writing (truncating any stale temp file).
  static StatusOr<AtomicFile> Create(const std::string& path);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  // Unlinks the temp file if Commit was never (successfully) called.
  ~AtomicFile();

  std::ofstream& stream() { return stream_; }
  const std::string& path() const { return path_; }

  // Flushes, fsyncs, and renames the temp file onto `path`. After a
  // failed Commit the temp file is removed and `path` is unchanged.
  Status Commit();

 private:
  AtomicFile() = default;
  void Discard();

  std::string path_;
  std::string tmp_path_;
  std::ofstream stream_;
  bool committed_ = false;
  bool active_ = false;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_ATOMIC_FILE_H_
