#include "common/metric_names.h"

#include <utility>

namespace fixrep {

namespace {

bool IsLower(char c) { return c >= 'a' && c <= 'z'; }
bool IsSegmentChar(char c) {
  return IsLower(c) || (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

bool IsExposableMetricName(const std::string& name) {
  if (name.empty()) return false;
  bool segment_start = true;
  for (const char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment ("a..b", ".a")
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (!IsLower(c)) return false;  // segments start with a letter
      segment_start = false;
    } else if (!IsSegmentChar(c)) {
      return false;
    }
  }
  return !segment_start;  // trailing dot
}

Status SanitizeMetricName(const std::string& name, std::string* out) {
  if (!IsExposableMetricName(name)) {
    return Status::MalformedInput("metric name not exposable: \"" + name +
                                  "\"");
  }
  std::string sanitized = name;
  for (char& c : sanitized) {
    if (c == '.') c = '_';
  }
  *out = std::move(sanitized);
  return Status::Ok();
}

Status MetricNameMap::Add(const std::string& name) {
  const auto it = forward_.find(name);
  if (it != forward_.end()) {
    if (!it->second.empty()) return Status::Ok();
    return Status::MalformedInput("metric name rejected for exposition: \"" +
                                  name + "\"");
  }
  std::string sanitized;
  Status status = SanitizeMetricName(name, &sanitized);
  if (status.ok()) {
    const auto [owner, inserted] = reverse_.emplace(sanitized, name);
    if (!inserted) {
      status = Status::MalformedInput(
          "metric name \"" + name + "\" sanitizes to \"" + sanitized +
          "\", already owned by \"" + owner->second + "\"");
    }
  }
  forward_.emplace(name, status.ok() ? std::move(sanitized) : std::string());
  return status;
}

const std::string* MetricNameMap::Sanitized(const std::string& name) const {
  const auto it = forward_.find(name);
  if (it == forward_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

const std::string* MetricNameMap::Original(
    const std::string& sanitized) const {
  const auto it = reverse_.find(sanitized);
  return it == reverse_.end() ? nullptr : &it->second;
}

}  // namespace fixrep
