#ifndef FIXREP_COMMON_SOCKET_SERVER_H_
#define FIXREP_COMMON_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

// Reusable single-threaded poll + self-pipe accept loop, generalized out
// of the original MetricsServer so the `/metrics` endpoint and the
// repair daemon share one networking scaffold. One loop thread owns
// every file descriptor: it accepts, polls readable connections, and
// invokes a Handler's callbacks in loop-thread context. Handlers that
// process requests elsewhere (e.g. on the global ThreadPool) suspend a
// connection — the loop stops polling it — and later Resume() it from
// any thread; the loop re-delivers OnReadable so bytes already buffered
// by the handler (a pipelined second frame) are processed even when no
// new packet ever arrives.
//
// Listeners are deliberately modest: one unix-domain socket or one
// loopback TCP port, level-triggered poll(2), no TLS — local-first
// plumbing, not internet-grade.

namespace fixrep::net {

struct SocketServerOptions {
  // Exactly one of the two listeners: a unix-domain socket path, or a
  // loopback TCP port (0 = ephemeral, query the bound port with port()).
  std::string unix_socket_path;
  int tcp_port = -1;  // -1 = no TCP listener
  int backlog = 16;
};

class SocketServer {
 public:
  enum class ReadResult {
    kKeepWatching,  // keep polling this connection for more bytes
    kSuspend,       // stop polling until Resume(fd); fd stays open
    kClose,         // close the connection now (OnClose fires)
  };

  // All callbacks run on the server's loop thread. A connection that is
  // suspended is owned by the handler until it calls Resume() or
  // CloseConnection(); Stop() force-closes suspended fds too, so
  // handlers must drain any cross-thread work before stopping the
  // server.
  class Handler {
   public:
    virtual ~Handler() = default;
    // A new connection was accepted. Return false to reject (the fd is
    // closed immediately and OnClose does not fire).
    virtual bool OnAccept(int fd) {
      (void)fd;
      return true;
    }
    // The connection has bytes (or EOF) pending, or was just resumed.
    virtual ReadResult OnReadable(int fd) = 0;
    // The loop is about to close the fd (peer EOF, handler said kClose,
    // CloseConnection, or Stop). Last chance to drop per-fd state.
    virtual void OnClose(int fd) { (void)fd; }
  };

  // Binds, listens, and starts the loop thread. kIoError on any socket
  // failure, kMalformedInput unless exactly one listener is configured.
  // The handler must outlive the server.
  static StatusOr<std::unique_ptr<SocketServer>> Start(
      Handler* handler, SocketServerOptions options);

  ~SocketServer();  // Stop() + join + unlink unix socket

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Closes the listener so new connects are refused; established
  // connections keep being served. Idempotent, callable from any
  // thread. The drain half of graceful shutdown.
  void StopAccepting();

  // Stops the loop, closes every remaining connection (OnClose fires
  // for each), and joins the thread. Idempotent.
  void Stop();

  // Re-watches a connection previously suspended by OnReadable and
  // re-delivers OnReadable on the loop thread. Thread-safe; a stale fd
  // (already closed) is ignored.
  void Resume(int fd);

  // Asks the loop thread to close a connection (OnClose fires).
  // Thread-safe; a stale fd is ignored.
  void CloseConnection(int fd);

  // The bound TCP port (meaningful after Start with tcp_port >= 0).
  int port() const { return port_; }
  const std::string& socket_path() const { return options_.unix_socket_path; }

 private:
  struct Command {
    enum Kind { kResume, kClose } kind;
    int fd;
  };

  SocketServer(Handler* handler, SocketServerOptions options);
  Status Bind();
  void Run();
  void AcceptOne();
  void HandleReadable(int fd);
  void CloseFd(int fd);  // loop thread only
  void Wake();

  Handler* handler_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll
  int port_ = -1;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> accepting_{true};

  std::mutex command_mu_;
  std::vector<Command> commands_;

  // Loop-thread state: fd -> suspended?
  std::map<int, bool> connections_;

  std::thread thread_;
};

}  // namespace fixrep::net

#endif  // FIXREP_COMMON_SOCKET_SERVER_H_
