#ifndef FIXREP_COMMON_TRACE_H_
#define FIXREP_COMMON_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"

// RAII phase tracing.
//
//   void FastRepairer::RepairTable(Table* table) {
//     FIXREP_TRACE_SPAN("lrepair.chase");
//     ...
//   }
//
// Each span records its wall time twice: into the latency histogram
// fixrep.span.<name>_ns of the global MetricsRegistry (aggregate view)
// and as one event in the global TraceTimeline (per-run timeline view,
// dumpable as JSON). Spans nest; the per-thread depth is recorded so a
// timeline consumer can reconstruct the tree. Compiled out together with
// the metrics layer under -DFIXREP_DISABLE_METRICS=ON.

namespace fixrep {

// Nanoseconds since the process trace epoch (the first call in the
// process, or the explicit InitTraceClock below). Monotonic.
uint64_t TraceNowNanos();

// Pins the trace epoch to "now". Call early in main() so span start
// offsets — and TotalNanos() below — are measured from program start.
void InitTraceClock();

class TraceTimeline {
 public:
  struct Span {
    std::string name;
    uint32_t thread = 0;  // dense per-process thread index, 0 = first seen
    uint32_t depth = 0;   // 0 = no enclosing span on this thread
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
  };

  static TraceTimeline& Global();

  // Appends one finished span. Bounded: after kMaxSpans the event is
  // dropped and counted, so a long-running service cannot grow without
  // limit. Thread-safe.
  void Record(Span span);

  std::vector<Span> Snapshot() const;
  uint64_t dropped() const;
  void Reset();

  // Writes {"total_ns": ..., "dropped": N, "spans": [...]} with spans in
  // completion order. total_ns is TraceNowNanos() at dump time, i.e. wall
  // time since the trace epoch.
  void WriteJson(std::ostream& os) const;

  static constexpr size_t kMaxSpans = 1 << 16;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  uint64_t dropped_ = 0;
};

// The RAII guard behind FIXREP_TRACE_SPAN. `name` must outlive the span
// (string literals only).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;
  uint64_t start_ns_;
  uint32_t depth_;
};

// Writes the combined observability dump — the metrics registry plus the
// span timeline — as one JSON object. This is what --metrics-out and
// FIXREP_METRICS_OUT produce.
void WriteMetricsJson(std::ostream& os);

}  // namespace fixrep

#ifdef FIXREP_DISABLE_METRICS
#define FIXREP_TRACE_SPAN(name) static_cast<void>(0)
#else
#define FIXREP_TRACE_SPAN_CONCAT2(a, b) a##b
#define FIXREP_TRACE_SPAN_CONCAT(a, b) FIXREP_TRACE_SPAN_CONCAT2(a, b)
#define FIXREP_TRACE_SPAN(name) \
  ::fixrep::TraceSpan FIXREP_TRACE_SPAN_CONCAT(fixrep_trace_span_, \
                                               __LINE__)(name)
#endif

#endif  // FIXREP_COMMON_TRACE_H_
