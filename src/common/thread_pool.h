#ifndef FIXREP_COMMON_THREAD_POOL_H_
#define FIXREP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fixrep {

// Persistent worker pool with dynamic chunk claiming.
//
// The old parallel repair path spawned std::threads per call and sharded
// rows statically, so every table paid thread start-up and a straggler
// shard bounded the whole call. Here the workers are started once and
// parked on a condition variable; ParallelFor publishes one job whose
// row ranges are claimed chunk-by-chunk from a shared atomic cursor, so
// fast participants automatically absorb work that slow ones leave
// behind (the pooled analogue of work stealing, without per-worker
// deques — there is one global queue position).
//
// The calling thread always participates (slot 0), so a pool with zero
// workers degrades to an inline loop. One ParallelFor runs at a time;
// concurrent callers serialize on an internal mutex.
//
// Besides data-parallel jobs, the pool runs free-standing tasks
// (Submit): idle workers drain a FIFO task queue between jobs. A
// ParallelFor never waits on the full worker complement — completion is
// tracked per job by the workers that actually joined it — so a worker
// stuck inside a long Submit task (or a task that itself calls
// ParallelFor) only shrinks the effective participant count; it can
// never deadlock the barrier. Jobs take priority over queued tasks.
//
// Instrumented as fixrep.pool.{parallel_fors,chunks_claimed,tasks,
// submitted} and the fixrep.pool.workers gauge.
class ThreadPool {
 public:
  // Starts `num_workers` parked worker threads (0 is valid).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Process-wide pool, created on first use with
  // hardware_concurrency() - 1 workers (at least 1) and never destroyed.
  static ThreadPool& Global();

  // Runs body(begin, end, slot) over [0, n) in chunks of `grain` rows
  // claimed from an atomic cursor; blocks until every index is covered
  // exactly once. At most `max_participants` threads touch the job
  // (including the caller, which runs as slot 0); slot ids are dense in
  // [0, max_participants), so callers may pre-allocate per-slot scratch.
  // Chunk-to-slot assignment is nondeterministic — the body must make
  // per-index work independent of it.
  void ParallelFor(size_t n, size_t grain, size_t max_participants,
                   const std::function<void(size_t begin, size_t end,
                                            size_t slot)>& body);

  // Enqueues a free-standing task for any idle worker; returns
  // immediately. Tasks run in FIFO order relative to each other but
  // interleave arbitrarily with ParallelFor jobs (which take priority).
  // A zero-worker pool runs the task inline. Tasks must not throw.
  void Submit(std::function<void()> task);

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job* job, size_t slot);

  std::mutex dispatch_mu_;  // serializes ParallelFor calls

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t job_seq_ = 0;            // bumped per published job
  std::shared_ptr<Job> job_;        // non-null while a job is live
  std::deque<std::function<void()>> tasks_;  // Submit queue
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_THREAD_POOL_H_
