#ifndef FIXREP_COMMON_WAL_H_
#define FIXREP_COMMON_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Append-only write-ahead log file: the durability primitive under
// crash-recoverable streaming repair (repair/recovery.h, docs/durability.md).
//
// File layout:
//
//   magic (8 bytes "FXREPWAL") | record | record | ...
//
// and every record is a length-prefixed, CRC-protected frame:
//
//   u32 payload_length | u8 type | payload bytes | u32 crc32(type+payload)
//
// All integers are little-endian. Record types are owned by the layer
// above (recovery.h); this module only knows frames.
//
// Durability contract:
// * Append buffers a frame and writes it through to the file descriptor
//   once the buffer passes a watermark — write(2) only, no fsync, so an
//   appended-but-unsynced frame survives process death (page cache) but
//   not power loss.
// * Sync flushes the buffer and fsyncs: everything appended before a
//   successful Sync is durable. Callers group many Appends per Sync
//   (one fsync per committed chunk, not per record).
// * On replay, WalReader stops at the first frame that is incomplete or
//   fails its CRC — the torn tail a crash mid-write leaves behind — and
//   reports the byte offset of the last whole frame, which Truncate /
//   WalWriter::OpenForAppend uses to drop the tail before resuming.
//
// Fault-injection sites (docs/robustness.md): "wal.open", "wal.append"
// (short write), "wal.fsync" (failed fsync).

namespace fixrep {

// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
// Chain blocks by passing the previous return value as `seed`.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

// --- little-endian frame payload encoding helpers ---
void WalPutU8(std::string* out, uint8_t v);
void WalPutU32(std::string* out, uint32_t v);
void WalPutU64(std::string* out, uint64_t v);
// u32 length + raw bytes.
void WalPutString(std::string* out, std::string_view s);

// Sequential payload decoder. Get* return false on underflow, after
// which the cursor is poisoned (ok() stays false) so a parse can be
// validated once at the end.
class WalCursor {
 public:
  explicit WalCursor(std::string_view payload) : data_(payload) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetString(std::string* s);
  // Like GetString but yields a view into the cursor's payload — valid
  // only while the payload outlives the view. Lets a decoder of a
  // multi-MB field defer (or entirely avoid) the copy.
  bool GetStringView(std::string_view* s);

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// One decoded frame.
struct WalRecord {
  uint8_t type = 0;
  std::string payload;
};

// Appends frames to a WAL file. Move-only; the destructor closes (but
// does not sync) the descriptor.
class WalWriter {
 public:
  // Creates or truncates `path` and writes the magic. The file is not
  // synced until the first Sync().
  static StatusOr<WalWriter> Create(const std::string& path);

  // Opens an existing WAL for appending after replay: truncates the file
  // to `durable_bytes` (discarding any torn tail the reader found) and
  // positions at the end. `durable_bytes` must cover the magic.
  static StatusOr<WalWriter> OpenForAppend(const std::string& path,
                                           uint64_t durable_bytes);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  // Buffers one frame; spills the buffer to the descriptor past the
  // write-through watermark. Errors (including an injected short write)
  // are sticky: once Append or Sync fails, every later call fails.
  Status Append(uint8_t type, std::string_view payload);

  // Flushes buffered frames and fsyncs. The group-commit point.
  Status Sync();

  // Writes the buffer through to the descriptor WITHOUT fsync. Used by
  // crash-injection sites so a simulated kill leaves exactly the bytes a
  // real kill would leave in the page cache.
  Status FlushNoSync();

  // Crash-injection helper: writes only the FIRST HALF of the buffered
  // bytes through — the torn final frame an in-flight crash leaves. The
  // caller is expected to die immediately afterwards.
  void WriteTornBufferForCrash();

  // Bytes appended so far (magic included), counting buffered bytes.
  uint64_t appended_bytes() const { return appended_bytes_; }
  // Successful fsyncs so far (the per-chunk commit cost).
  uint64_t fsync_count() const { return fsync_count_; }

  Status Close();

 private:
  WalWriter() = default;

  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  uint64_t appended_bytes_ = 0;
  uint64_t fsync_count_ = 0;
  Status sticky_error_;
};

// Replays a WAL file front to back, stopping cleanly at a torn tail.
class WalReader {
 public:
  // Opens and validates the magic. A file shorter than the magic (or
  // with the wrong one) is kMalformedInput — there is nothing to replay.
  static StatusOr<WalReader> Open(const std::string& path);

  // Reads the next complete frame into *record. Returns:
  // * true          — a frame was read;
  // * false         — end of replay: clean EOF, or a torn/corrupt tail
  //                   (check tail_truncated()).
  bool Next(WalRecord* record);

  // Byte offset just past the last successfully read frame — the durable
  // prefix OpenForAppend should keep.
  uint64_t durable_bytes() const { return durable_bytes_; }

  // True once Next hit an incomplete or CRC-failing frame: the tail
  // [durable_bytes, file size) is garbage from an interrupted write and
  // must be discarded before appending.
  bool tail_truncated() const { return tail_truncated_; }

 private:
  WalReader() = default;

  std::string data_;  // whole file; WALs are delta-sized, not data-sized
  size_t pos_ = 0;
  uint64_t durable_bytes_ = 0;
  bool tail_truncated_ = false;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_WAL_H_
