#ifndef FIXREP_COMMON_METRICS_SERVER_H_
#define FIXREP_COMMON_METRICS_SERVER_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "common/metrics.h"
#include "common/socket_server.h"
#include "common/status.h"

// Prometheus text exposition (format 0.0.4) over a MetricsRegistry, and
// a minimal HTTP responder for `GET /metrics` on a unix socket or
// loopback TCP port. Originally the repo's first networking scaffold;
// its poll + self-pipe accept loop now lives in net::SocketServer
// (shared with the repair daemon) and MetricsServer is a thin
// connection handler on top: one request per connection, read-only, no
// TLS — scrape-grade, not internet-grade.

namespace fixrep {

// Writes every exposable metric of `registry` (defaults to the global
// registry). Registry names that were rejected at registration (see
// common/metric_names.h) are skipped and tallied in a trailing comment.
// Counters/gauges map 1:1; counter vectors become one series per index
// (name{index="i"}); histograms emit cumulative le-labeled buckets plus
// _sum/_count and p50/p95/p99 estimate gauges. Histogram unit tags
// surface as "# UNIT" comment lines.
void ExportPrometheus(std::ostream& os,
                      const MetricsRegistry& registry = MetricsRegistry::Global());

struct MetricsServerOptions {
  // Exactly one of the two listeners: a unix-domain socket path, or a
  // loopback TCP port (0 = ephemeral, query the bound port with port()).
  std::string unix_socket_path;
  int tcp_port = -1;  // -1 = no TCP listener
  // Registry to serve; the global registry when null.
  const MetricsRegistry* registry = nullptr;
};

class MetricsServer : private net::SocketServer::Handler {
 public:
  // Binds, listens, and starts the accept-loop thread. kIoError on any
  // socket failure (path too long, port in use, ...).
  static StatusOr<std::unique_ptr<MetricsServer>> Start(
      MetricsServerOptions options);

  ~MetricsServer();  // stops and joins

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  void Stop();

  // The bound TCP port (meaningful after Start with tcp_port >= 0).
  int port() const { return server_ != nullptr ? server_->port() : -1; }
  const std::string& socket_path() const {
    return options_.unix_socket_path;
  }

 private:
  explicit MetricsServer(MetricsServerOptions options);

  // net::SocketServer::Handler (loop-thread context).
  bool OnAccept(int fd) override;
  net::SocketServer::ReadResult OnReadable(int fd) override;

  MetricsServerOptions options_;
  std::unique_ptr<net::SocketServer> server_;
};

}  // namespace fixrep

#endif  // FIXREP_COMMON_METRICS_SERVER_H_
