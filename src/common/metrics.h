#ifndef FIXREP_COMMON_METRICS_H_
#define FIXREP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/metric_names.h"

// Process-wide metrics registry, cheap enough to stay enabled in release
// builds: counters and histograms are relaxed atomics, name lookup is a
// mutex-guarded map done once at instrumentation-site setup (the hot path
// holds the returned pointer). Configure -DFIXREP_DISABLE_METRICS=ON to
// compile every mutation into a no-op for overhead measurements.
//
// Naming convention: fixrep.<subsystem>.<name>, e.g.
// fixrep.lrepair.tuples_examined; span histograms are
// fixrep.span.<span-name>_ns. See docs/observability.md.

namespace fixrep {

#ifdef FIXREP_DISABLE_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef FIXREP_DISABLE_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (thread count, index size, ...).
class Gauge {
 public:
  void Set(int64_t v) {
#ifndef FIXREP_DISABLE_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// One consistent-enough read of a histogram (each field is loaded once;
// concurrent observations may straddle the reads). Quantiles are
// estimated by linear interpolation inside the power-of-two bucket that
// holds the requested rank, clamped to [min, max] — exact enough to make
// a latency distribution readable, which raw bucket counts are not.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  // Unit tag from registration ("" when untagged, "ns" for span/timer
  // histograms). Always a string literal.
  const char* unit = "";
  std::vector<uint64_t> buckets;

  // q in [0, 1]; 0 when the histogram is empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

// Fixed power-of-two-bucket histogram for latencies in nanoseconds (or
// any nonnegative value). Bucket i counts observations whose bit width is
// i, i.e. values in [2^(i-1), 2^i); the last bucket absorbs overflow.
class Histogram {
 public:
  // 2^47 ns is ~39 hours, far beyond any phase this library runs.
  static constexpr size_t kNumBuckets = 48;

  void Observe(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  // 0 when empty
  uint64_t Max() const;
  // Upper bound (exclusive) of bucket i.
  static uint64_t BucketUpperBound(size_t i);
  std::vector<uint64_t> BucketCounts() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

  // Unit tag ("ns", "bytes", ...). Must be a string literal — stored by
  // pointer so concurrent readers need no lock. Set once at registration
  // (MetricsRegistry::GetHistogram(name, unit)); later calls with a
  // different unit are ignored, first writer wins.
  const char* unit() const {
    const char* u = unit_.load(std::memory_order_relaxed);
    return u == nullptr ? "" : u;
  }
  void set_unit(const char* unit);

  // Folds a snapshot delta (cur - prev of the same histogram, or a whole
  // snapshot vs an empty prev) into this histogram — how scoped metric
  // domains roll up into their parent registry.
  void MergeFrom(const HistogramSnapshot& snapshot);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<const char*> unit_{nullptr};
};

// A fixed set of counters addressed by index — used for per-rule
// application counts where one name per rule would be absurd. Updates are
// mutex-guarded: repairers accumulate locally and publish once per table,
// so this is never on a per-tuple path.
class CounterVector {
 public:
  void Add(size_t index, uint64_t n);
  void AddAll(const std::vector<size_t>& deltas);
  std::vector<uint64_t> Values() const;
  size_t size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> values_;
};

class MetricsRegistry {
 public:
  // The process-wide registry every instrumentation site publishes to.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned pointers stay valid for the registry's
  // lifetime (the Global() registry is never destroyed). Names that are
  // not exposable (common/metric_names.h: bad charset, or a Prometheus
  // sanitization collision with an earlier registration) still register —
  // local use keeps working — but are skipped by ExportPrometheus and
  // logged once at registration.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  // Tags the histogram's value unit at registration; `unit` must be a
  // string literal ("ns", "bytes"). First writer wins.
  Histogram* GetHistogram(const std::string& name, const char* unit);
  CounterVector* GetCounterVector(const std::string& name);

  // nullptr when the name was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const CounterVector* FindCounterVector(const std::string& name) const;

  // Name-sorted value snapshots, for exposition and samplers. Each value
  // is read once; concurrent updates may or may not be seen.
  std::vector<std::pair<std::string, uint64_t>> SnapshotCounters() const;
  std::vector<std::pair<std::string, int64_t>> SnapshotGauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> SnapshotHistograms()
      const;
  std::vector<std::pair<std::string, std::vector<uint64_t>>>
  SnapshotCounterVectors() const;

  // Accumulates every value of this registry into `target` (counters and
  // counter vectors add, histograms merge bucket-wise with unit
  // propagation, nonzero gauges overwrite) without resetting this
  // registry. The roll-up primitive behind MetricScope::Flush. The two
  // locks are never held together (values are snapshotted first, then
  // published), so any merge topology is deadlock-free.
  void MergeInto(MetricsRegistry* target) const;

  // MergeInto followed by a reset of every local value (registrations
  // stay), so repeated flushes never double-count. Observations racing
  // with the flush may land after the merge and before the reset and be
  // lost — callers flush at quiescent points (session end, post-join).
  void FlushInto(MetricsRegistry* target);

  // Writes every metric as one JSON object: {"counters": {...},
  // "gauges": {...}, "counter_vectors": {...}, "histograms": {...}}.
  // Histograms list only their nonzero buckets. The output is a snapshot:
  // each value is read once, concurrent updates may or may not be seen.
  void WriteJson(std::ostream& os) const;

  // The Prometheus exposition name of a registered metric, or nullptr
  // when the name was rejected at registration (invalid charset, or its
  // sanitized form collides with an earlier registration — see
  // common/metric_names.h). ExportPrometheus skips rejected names.
  const std::string* PrometheusName(const std::string& name) const;

  // Zeroes every registered value, keeping registrations (and therefore
  // pointers held by instrumentation sites) intact. For tests.
  void ResetAllForTest();

 private:
  // Called under mu_ for every first-time registration: computes and
  // records the exposition mapping, logging rejected names once.
  void RegisterNameLocked(const std::string& name);
  void ResetAllLocked();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<CounterVector>> counter_vectors_;
  MetricNameMap exposition_names_;
};

// Minimal JSON string escaping for metric/span names and log text.
std::string JsonEscape(const std::string& text);

}  // namespace fixrep

#endif  // FIXREP_COMMON_METRICS_H_
