#include "rules/rule_dict.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/atomic_file.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/trace.h"
#include "common/wal.h"
#include "rules/fingerprint.h"

namespace fixrep {

namespace {

// The header is written and CRC'd as raw bytes, so its layout must be
// exactly its fields with no padding holes.
static_assert(sizeof(RuleDictHeader) ==
                  8 + 4 + 4 + 8 + 8 + 8 + 4 * 4 + 8 + 4 + 4 + 8 + 8 + 4 + 4 +
                      kNumDictSections * 8 * 2,
              "RuleDictHeader must be packed");

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvHash(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

size_t PowerOfTwoAtLeast(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

uint64_t AlignUp8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

// Everything CompileRuleDict lays out before any byte is written. All
// pattern values here are *dict* string ids (first-appearance order).
struct DictLayout {
  std::vector<std::string_view> strings;  // dict id -> bytes
  std::vector<RuleSlot> slots;
  std::vector<uint32_t> postings;
  std::vector<uint32_t> evidence_count;
  std::vector<AttrId> target;
  std::vector<uint32_t> fact_str;
  std::vector<uint64_t> assured_bits;
  std::vector<uint32_t> ev_offsets;
  std::vector<AttrId> ev_attrs;
  std::vector<ValueId> ev_values;
  std::vector<uint32_t> neg_offsets;
  std::vector<ValueId> neg_values;
  std::vector<uint32_t> empty_evidence;
  std::vector<AttrId> evidence_attr_list;
  std::vector<uint32_t> string_offsets;
  std::vector<uint32_t> string_hash;
  AttrSet mentioned_attrs;
};

Status BuildLayout(const RuleSet& rules, DictLayout* out) {
  const size_t n = rules.size();
  const size_t arity = rules.schema().arity();
  const ValuePool& pool = rules.pool();

  // Dict string ids, assigned in first-appearance order over the rule
  // scan (evidence values, then negatives, then fact, per rule) — the
  // source of the format's byte determinism.
  std::unordered_map<std::string_view, uint32_t> interned;
  auto dict_id = [&](ValueId live) {
    const std::string& s = pool.GetString(live);
    auto [it, fresh] =
        interned.emplace(s, static_cast<uint32_t>(out->strings.size()));
    if (fresh) out->strings.push_back(it->first);
    return static_cast<ValueId>(it->second);
  };

  out->evidence_count.resize(n);
  out->target.resize(n);
  out->fact_str.resize(n);
  out->assured_bits.resize(n);
  out->ev_offsets.reserve(n + 1);
  out->neg_offsets.reserve(n + 1);

  std::unordered_map<uint64_t, std::vector<uint32_t>> gathered;
  uint64_t total_postings = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const FixingRule& rule = rules.rule(i);
    out->evidence_count[i] =
        static_cast<uint32_t>(rule.evidence_attrs.size());
    out->target[i] = rule.target;
    out->assured_bits[i] = rule.AssuredSet().bits();
    out->mentioned_attrs.UnionWith(rule.AssuredSet());
    out->ev_offsets.push_back(static_cast<uint32_t>(out->ev_attrs.size()));
    out->neg_offsets.push_back(static_cast<uint32_t>(out->neg_values.size()));
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      const ValueId v = dict_id(rule.evidence_values[e]);
      out->ev_attrs.push_back(rule.evidence_attrs[e]);
      out->ev_values.push_back(v);
      gathered[RuleSource::PackKey(rule.evidence_attrs[e], v)].push_back(i);
      ++total_postings;
    }
    // negative_patterns is sorted by live id; the dict-space slice must
    // sort by dict id so MatchesFlat can binary-search it.
    const size_t neg_begin = out->neg_values.size();
    for (const ValueId v : rule.negative_patterns) {
      out->neg_values.push_back(dict_id(v));
    }
    std::sort(out->neg_values.begin() + neg_begin, out->neg_values.end());
    out->fact_str[i] = static_cast<uint32_t>(dict_id(rule.fact));
    if (rule.evidence_attrs.empty()) out->empty_evidence.push_back(i);
  }
  out->ev_offsets.push_back(static_cast<uint32_t>(out->ev_attrs.size()));
  out->neg_offsets.push_back(static_cast<uint32_t>(out->neg_values.size()));
  if (total_postings > UINT32_MAX || out->strings.size() >= UINT32_MAX) {
    return Status::MalformedInput(
        "rule set exceeds the dictionary format's 32-bit capacity");
  }

  uint64_t ev_attr_mask = 0;
  for (const AttrId a : out->ev_attrs) ev_attr_mask |= uint64_t{1} << a;
  for (AttrId a = 0; a < static_cast<AttrId>(arity); ++a) {
    if (ev_attr_mask & (uint64_t{1} << a)) {
      out->evidence_attr_list.push_back(a);
    }
  }

  // Slot table, filled in sorted-key order (the gather map's iteration
  // order is not deterministic; the file's bytes must be).
  std::vector<uint64_t> keys;
  keys.reserve(gathered.size());
  for (const auto& [key, ids] : gathered) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const size_t capacity = PowerOfTwoAtLeast(gathered.size() * 2);
  const size_t mask = capacity - 1;
  out->slots.assign(capacity, RuleSlot{});
  out->postings.reserve(total_postings);
  for (const uint64_t key : keys) {
    size_t slot = SplitMix64(key) & mask;
    while (out->slots[slot].key != kEmptyRuleKey) slot = (slot + 1) & mask;
    out->slots[slot].key = key;
    out->slots[slot].begin = static_cast<uint32_t>(out->postings.size());
    const std::vector<uint32_t>& ids = gathered[key];
    out->postings.insert(out->postings.end(), ids.begin(), ids.end());
    out->slots[slot].end = static_cast<uint32_t>(out->postings.size());
  }

  // String pool + hash, in dict-id order (already deterministic).
  out->string_offsets.reserve(out->strings.size() + 1);
  uint32_t byte_offset = 0;
  for (const std::string_view s : out->strings) {
    out->string_offsets.push_back(byte_offset);
    byte_offset += static_cast<uint32_t>(s.size());
  }
  out->string_offsets.push_back(byte_offset);
  const size_t hash_capacity = PowerOfTwoAtLeast(out->strings.size() * 2);
  const size_t hash_mask = hash_capacity - 1;
  out->string_hash.assign(hash_capacity, UINT32_MAX);
  for (uint32_t id = 0; id < out->strings.size(); ++id) {
    size_t slot = FnvHash(out->strings[id]) & hash_mask;
    while (out->string_hash[slot] != UINT32_MAX) {
      slot = (slot + 1) & hash_mask;
    }
    out->string_hash[slot] = id;
  }
  return Status::Ok();
}

}  // namespace

const char* DictSectionName(DictSection section) {
  switch (section) {
    case DictSection::kAttrNames: return "attr_names";
    case DictSection::kSlots: return "slots";
    case DictSection::kPostings: return "postings";
    case DictSection::kEvidenceCount: return "evidence_count";
    case DictSection::kTarget: return "target";
    case DictSection::kFactStr: return "fact_str";
    case DictSection::kAssuredBits: return "assured_bits";
    case DictSection::kEvOffsets: return "ev_offsets";
    case DictSection::kEvAttrs: return "ev_attrs";
    case DictSection::kEvValues: return "ev_values";
    case DictSection::kNegOffsets: return "neg_offsets";
    case DictSection::kNegValues: return "neg_values";
    case DictSection::kEmptyEvidence: return "empty_evidence";
    case DictSection::kEvidenceAttrList: return "evidence_attr_list";
    case DictSection::kStringOffsets: return "string_offsets";
    case DictSection::kStringBytes: return "string_bytes";
    case DictSection::kStringHash: return "string_hash";
  }
  return "unknown";
}

Status CompileRuleDict(const RuleSet& rules, const std::string& path) {
  FIXREP_TRACE_SPAN("ruledict.compile");
  FIXREP_CHECK_LT(rules.size(), size_t{1} << 31);
  FIXREP_CHECK_LE(rules.schema().arity(), size_t{64});

  DictLayout layout;
  FIXREP_RETURN_IF_ERROR(BuildLayout(rules, &layout));

  // Attribute-name blob: u32 count, then u32 length + bytes per name.
  std::vector<char> attr_blob;
  {
    auto put_u32 = [&](uint32_t v) {
      const char* p = reinterpret_cast<const char*>(&v);
      attr_blob.insert(attr_blob.end(), p, p + sizeof v);
    };
    const std::vector<std::string>& names =
        rules.schema().attribute_names();
    put_u32(static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) {
      put_u32(static_cast<uint32_t>(name.size()));
      attr_blob.insert(attr_blob.end(), name.begin(), name.end());
    }
  }

  std::string string_bytes_blob;
  for (const std::string_view s : layout.strings) string_bytes_blob += s;

  struct SectionData {
    const void* data;
    uint64_t bytes;
  };
  auto vec_bytes = [](const auto& v) {
    return SectionData{v.data(),
                       v.size() * sizeof(typename std::decay_t<
                                         decltype(v)>::value_type)};
  };
  const SectionData sections[kNumDictSections] = {
      {attr_blob.data(), attr_blob.size()},
      vec_bytes(layout.slots),
      vec_bytes(layout.postings),
      vec_bytes(layout.evidence_count),
      vec_bytes(layout.target),
      vec_bytes(layout.fact_str),
      vec_bytes(layout.assured_bits),
      vec_bytes(layout.ev_offsets),
      vec_bytes(layout.ev_attrs),
      vec_bytes(layout.ev_values),
      vec_bytes(layout.neg_offsets),
      vec_bytes(layout.neg_values),
      vec_bytes(layout.empty_evidence),
      vec_bytes(layout.evidence_attr_list),
      vec_bytes(layout.string_offsets),
      {string_bytes_blob.data(), string_bytes_blob.size()},
      vec_bytes(layout.string_hash),
  };

  RuleDictHeader header{};
  std::memcpy(header.magic, kRuleDictMagic, sizeof header.magic);
  header.version = kRuleDictFormatVersion;
  header.fingerprint = RuleSetFingerprint(rules);
  header.mentioned_bits = layout.mentioned_attrs.bits();
  header.num_rules = static_cast<uint32_t>(rules.size());
  header.arity = static_cast<uint32_t>(rules.schema().arity());
  header.slot_count = static_cast<uint32_t>(layout.slots.size());
  header.num_keys = static_cast<uint32_t>(
      std::count_if(layout.slots.begin(), layout.slots.end(),
                    [](const RuleSlot& s) { return s.key != kEmptyRuleKey; }));
  header.num_postings = layout.postings.size();
  header.num_strings = static_cast<uint32_t>(layout.strings.size());
  header.string_hash_count = static_cast<uint32_t>(layout.string_hash.size());
  header.num_ev_pairs = layout.ev_attrs.size();
  header.num_neg_values = layout.neg_values.size();
  header.num_empty_evidence =
      static_cast<uint32_t>(layout.empty_evidence.size());
  header.num_evidence_attrs =
      static_cast<uint32_t>(layout.evidence_attr_list.size());

  uint64_t offset = sizeof(RuleDictHeader);
  for (size_t i = 0; i < kNumDictSections; ++i) {
    header.section_offset[i] = offset;
    header.section_bytes[i] = sections[i].bytes;
    offset = AlignUp8(offset + sections[i].bytes);
  }
  header.file_size = offset;
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof header);

  auto out = AtomicFile::Create(path);
  if (!out.ok()) return out.status();
  std::ofstream& stream = out->stream();
  stream.write(reinterpret_cast<const char*>(&header), sizeof header);
  static constexpr char kPad[8] = {};
  for (size_t i = 0; i < kNumDictSections; ++i) {
    stream.write(static_cast<const char*>(sections[i].data),
                 static_cast<std::streamsize>(sections[i].bytes));
    const uint64_t pad = AlignUp8(sections[i].bytes) - sections[i].bytes;
    stream.write(kPad, static_cast<std::streamsize>(pad));
  }
  if (!stream.good()) {
    return Status::IoError("short write compiling rule dictionary to " +
                           path);
  }
  return out->Commit();
}

ValueId DictTranslator::Resolve(ValueId live) {
  return dict_->FindString(dict_->pool_->GetString(live));
}

RuleDictHandle::RuleDictHandle(const RuleDict* dict, size_t cache_capacity)
    : RuleSourceHandle(RuleSource()),  // wired below, once the scratch exists
      translator_(dict),
      cache_(cache_capacity) {
  RuleSource::Init init = dict->BaseInit();
  init.translator = &translator_;
  init.cache = &cache_;
  source_ = RuleSource(init);
}

RuleDict::~RuleDict() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

StatusOr<std::unique_ptr<RuleDict>> RuleDict::Open(const std::string& path) {
  FIXREP_TRACE_SPAN("ruledict.open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open rule dictionary " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat rule dictionary " + path);
  }
  const auto file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < sizeof(RuleDictHeader)) {
    ::close(fd);
    return Status::MalformedInput(
        path + " is not a rule dictionary: " + std::to_string(file_size) +
        " bytes is smaller than the header");
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IoError("cannot mmap rule dictionary " + path);
  }

  std::unique_ptr<RuleDict> dict(new RuleDict());
  dict->path_ = path;
  dict->map_ = map;
  dict->map_size_ = file_size;
  dict->header_ = static_cast<const RuleDictHeader*>(map);
  const Status status = dict->ValidateAndWire();
  if (!status.ok()) return status.WithContext(path);

  auto& registry = CurrentMetrics();
  registry.GetCounter("fixrep.ruledict.opens")->Add(1);
  registry.GetGauge("fixrep.ruledict.bytes")
      ->Set(static_cast<int64_t>(file_size));
  registry.GetGauge("fixrep.ruledict.rules")
      ->Set(static_cast<int64_t>(dict->header_->num_rules));
  return dict;
}

Status RuleDict::ValidateAndWire() {
  const RuleDictHeader& h = *header_;
  if (std::memcmp(h.magic, kRuleDictMagic, sizeof h.magic) != 0) {
    return Status::MalformedInput("bad magic: not a rule dictionary");
  }
  if (h.version != kRuleDictFormatVersion) {
    return Status::MalformedInput(
        "unsupported dictionary format version " + std::to_string(h.version) +
        " (this build reads version " +
        std::to_string(kRuleDictFormatVersion) + ")");
  }
  RuleDictHeader crc_copy;
  std::memcpy(&crc_copy, &h, sizeof crc_copy);
  crc_copy.header_crc = 0;
  const uint32_t crc = Crc32(&crc_copy, sizeof crc_copy);
  if (crc != h.header_crc) {
    return Status::MalformedInput("header CRC mismatch: dictionary corrupt");
  }
  if (h.file_size != map_size_) {
    return Status::MalformedInput(
        "file is " + std::to_string(map_size_) + " bytes but the header " +
        "records " + std::to_string(h.file_size) + " — truncated or padded");
  }
  if (h.arity > 64 || h.num_rules >= (uint32_t{1} << 31)) {
    return Status::MalformedInput("header counts out of range");
  }
  if (h.slot_count < 16 || (h.slot_count & (h.slot_count - 1)) != 0 ||
      h.string_hash_count < 16 ||
      (h.string_hash_count & (h.string_hash_count - 1)) != 0) {
    return Status::MalformedInput("hash table sizes must be powers of two");
  }

  // Per-section structural checks: 8-aligned, in file order, inside the
  // file, and exactly the size the header's counts imply. The CRC above
  // vouches for the header; these bounds make every later section read
  // safe without touching (and so faulting in) the sections themselves.
  const uint64_t n = h.num_rules;
  const uint64_t expected_bytes[kNumDictSections] = {
      h.section_bytes[0],  // attr_names is self-delimiting; parsed below
      uint64_t{h.slot_count} * sizeof(RuleSlot),
      h.num_postings * sizeof(uint32_t),
      n * sizeof(uint32_t),
      n * sizeof(AttrId),
      n * sizeof(uint32_t),
      n * sizeof(uint64_t),
      (n + 1) * sizeof(uint32_t),
      h.num_ev_pairs * sizeof(AttrId),
      h.num_ev_pairs * sizeof(ValueId),
      (n + 1) * sizeof(uint32_t),
      h.num_neg_values * sizeof(ValueId),
      uint64_t{h.num_empty_evidence} * sizeof(uint32_t),
      uint64_t{h.num_evidence_attrs} * sizeof(AttrId),
      (uint64_t{h.num_strings} + 1) * sizeof(uint32_t),
      h.section_bytes[15],  // string_bytes; cross-checked via offsets below
      uint64_t{h.string_hash_count} * sizeof(uint32_t),
  };
  uint64_t prev_end = sizeof(RuleDictHeader);
  for (size_t i = 0; i < kNumDictSections; ++i) {
    const uint64_t off = h.section_offset[i];
    const uint64_t bytes = h.section_bytes[i];
    if (off % 8 != 0 || off < prev_end || bytes > map_size_ ||
        off > map_size_ - bytes) {
      return Status::MalformedInput(
          std::string("section ") +
          DictSectionName(static_cast<DictSection>(i)) +
          " lies outside the file");
    }
    if (bytes != expected_bytes[i]) {
      return Status::MalformedInput(
          std::string("section ") +
          DictSectionName(static_cast<DictSection>(i)) +
          " size disagrees with the header counts");
    }
    prev_end = off + bytes;
  }

  slots_ = reinterpret_cast<const RuleSlot*>(SectionPtr(DictSection::kSlots));
  postings_ =
      reinterpret_cast<const uint32_t*>(SectionPtr(DictSection::kPostings));
  evidence_count_ = reinterpret_cast<const uint32_t*>(
      SectionPtr(DictSection::kEvidenceCount));
  target_ = reinterpret_cast<const AttrId*>(SectionPtr(DictSection::kTarget));
  fact_str_ =
      reinterpret_cast<const uint32_t*>(SectionPtr(DictSection::kFactStr));
  assured_bits_ = reinterpret_cast<const uint64_t*>(
      SectionPtr(DictSection::kAssuredBits));
  ev_offsets_ =
      reinterpret_cast<const uint32_t*>(SectionPtr(DictSection::kEvOffsets));
  ev_attrs_ =
      reinterpret_cast<const AttrId*>(SectionPtr(DictSection::kEvAttrs));
  ev_values_ =
      reinterpret_cast<const ValueId*>(SectionPtr(DictSection::kEvValues));
  neg_offsets_ =
      reinterpret_cast<const uint32_t*>(SectionPtr(DictSection::kNegOffsets));
  neg_values_ =
      reinterpret_cast<const ValueId*>(SectionPtr(DictSection::kNegValues));
  empty_evidence_ = reinterpret_cast<const uint32_t*>(
      SectionPtr(DictSection::kEmptyEvidence));
  evidence_attr_list_ = reinterpret_cast<const AttrId*>(
      SectionPtr(DictSection::kEvidenceAttrList));
  string_offsets_ = reinterpret_cast<const uint32_t*>(
      SectionPtr(DictSection::kStringOffsets));
  string_bytes_ =
      reinterpret_cast<const char*>(SectionPtr(DictSection::kStringBytes));
  string_hash_ = reinterpret_cast<const uint32_t*>(
      SectionPtr(DictSection::kStringHash));

  // CSR terminators must agree with the header so every per-rule slice
  // the chase derives stays inside its section.
  if (n > 0 || h.num_ev_pairs > 0) {
    if (ev_offsets_[0] != 0 || ev_offsets_[n] != h.num_ev_pairs ||
        neg_offsets_[0] != 0 || neg_offsets_[n] != h.num_neg_values) {
      return Status::MalformedInput("CSR offsets disagree with the header");
    }
  }
  const uint64_t string_bytes_size = h.section_bytes[15];
  if (string_offsets_[0] != 0 ||
      string_offsets_[h.num_strings] != string_bytes_size) {
    return Status::MalformedInput(
        "string pool offsets disagree with the header");
  }

  // The attribute-name blob is the one variable-format section: parse it
  // fully now, bounds-checked against its recorded size.
  {
    const uint8_t* p = SectionPtr(DictSection::kAttrNames);
    const uint8_t* end = p + h.section_bytes[0];
    auto read_u32 = [&](uint32_t* v) {
      if (end - p < static_cast<ptrdiff_t>(sizeof *v)) return false;
      std::memcpy(v, p, sizeof *v);
      p += sizeof *v;
      return true;
    };
    uint32_t count = 0;
    if (!read_u32(&count) || count != h.arity) {
      return Status::MalformedInput("attribute-name section corrupt");
    }
    attribute_names_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t len = 0;
      if (!read_u32(&len) || end - p < static_cast<ptrdiff_t>(len)) {
        return Status::MalformedInput("attribute-name section corrupt");
      }
      attribute_names_.emplace_back(reinterpret_cast<const char*>(p), len);
      p += len;
    }
  }
  return Status::Ok();
}

Status RuleDict::Bind(const Schema& schema, std::shared_ptr<ValuePool> pool) {
  FIXREP_TRACE_SPAN("ruledict.bind");
  FIXREP_CHECK(pool != nullptr);
  if (schema.attribute_names() != attribute_names_) {
    return Status::MalformedInput(
        "schema does not match the rule dictionary " + path_ +
        " (compiled for relation with " +
        std::to_string(attribute_names_.size()) + " attributes)");
  }
  if (pool_ == pool) return Status::Ok();
  // Serial by contract (ValuePool interning is single-writer): every
  // distinct fact gets a live id now, so fact() never interns on the
  // chase's hot path — or from a worker thread.
  std::vector<ValueId> live_fact(header_->num_rules);
  for (uint32_t i = 0; i < header_->num_rules; ++i) {
    live_fact[i] = pool->Intern(DictString(fact_str_[i]));
  }
  pool_ = std::move(pool);
  live_fact_ = std::move(live_fact);
  return Status::Ok();
}

std::unique_ptr<RuleSourceHandle> RuleDict::MakeHandle() const {
  FIXREP_CHECK(bound())
      << "RuleDict::MakeHandle requires a successful Bind()";
  return std::make_unique<RuleDictHandle>(this, cache_capacity_);
}

RuleSource::Init RuleDict::BaseInit() const {
  RuleSource::Init init;
  init.slots = slots_;
  init.slot_mask = header_->slot_count - 1;
  init.postings = postings_;
  init.evidence_count = evidence_count_;
  init.target = target_;
  init.fact = live_fact_.data();  // live space, built by Bind
  init.assured_bits = assured_bits_;
  init.ev_offsets = ev_offsets_;
  init.ev_attrs = ev_attrs_;
  init.ev_values = ev_values_;
  init.neg_offsets = neg_offsets_;
  init.neg_values = neg_values_;
  init.empty_evidence_rules = empty_evidence_;
  init.num_empty_evidence_rules = header_->num_empty_evidence;
  init.evidence_attr_list = evidence_attr_list_;
  init.num_evidence_attrs = header_->num_evidence_attrs;
  init.mentioned_attrs = mentioned_attrs();
  init.num_rules = header_->num_rules;
  init.arity = header_->arity;
  return init;
}

std::string_view RuleDict::DictString(uint32_t id) const {
  FIXREP_CHECK_LT(id, header_->num_strings);
  return {string_bytes_ + string_offsets_[id],
          string_offsets_[id + 1] - string_offsets_[id]};
}

ValueId RuleDict::FindString(std::string_view s) const {
  const size_t mask = header_->string_hash_count - 1;
  size_t slot = FnvHash(s) & mask;
  while (true) {
    const uint32_t id = string_hash_[slot];
    if (id == UINT32_MAX) return kAbsentValue;
    if (DictString(id) == s) return static_cast<ValueId>(id);
    slot = (slot + 1) & mask;
  }
}

}  // namespace fixrep
