#include "rules/resolution.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace fixrep {

namespace {

// Removes `value` from `rule`'s negative patterns. Returns true if the
// rule is still usable (non-empty negative set).
bool EraseNegative(FixingRule* rule, ValueId value, size_t* removed) {
  const auto it = std::lower_bound(rule->negative_patterns.begin(),
                                   rule->negative_patterns.end(), value);
  if (it != rule->negative_patterns.end() && *it == value) {
    rule->negative_patterns.erase(it);
    ++*removed;
  }
  return !rule->negative_patterns.empty();
}

// Erases the given current indices from both the rule set and the
// original-index map, recording the original indices as dropped.
void ApplyDrops(const std::unordered_set<size_t>& to_drop, RuleSet* rules,
                std::vector<size_t>* original_index,
                ResolutionReport* report) {
  if (to_drop.empty()) return;
  std::vector<size_t> indices(to_drop.begin(), to_drop.end());
  std::sort(indices.begin(), indices.end());
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    report->dropped_rules.push_back((*original_index)[*it]);
    original_index->erase(original_index->begin() +
                          static_cast<ptrdiff_t>(*it));
  }
  rules->Remove(indices);
}

}  // namespace

ResolutionReport ResolveByDropping(RuleSet* rules) {
  ResolutionReport report;
  std::vector<size_t> original_index(rules->size());
  std::iota(original_index.begin(), original_index.end(), 0);
  while (true) {
    std::vector<Conflict> conflicts;
    if (IsConsistentStrict(*rules, &conflicts, /*find_all=*/true)) break;
    ++report.rounds;
    std::unordered_set<size_t> to_drop;
    for (const auto& conflict : conflicts) {
      to_drop.insert(conflict.rule_i);
      to_drop.insert(conflict.rule_j);
    }
    ApplyDrops(to_drop, rules, &original_index, &report);
  }
  std::sort(report.dropped_rules.begin(), report.dropped_rules.end());
  return report;
}

ResolutionReport ResolveByPruning(RuleSet* rules) {
  ResolutionReport report;
  std::vector<size_t> original_index(rules->size());
  std::iota(original_index.begin(), original_index.end(), 0);
  const size_t arity = rules->schema().arity();
  while (true) {
    std::vector<Conflict> conflicts;
    if (IsConsistentStrict(*rules, &conflicts, /*find_all=*/true)) break;
    ++report.rounds;
    std::unordered_set<size_t> to_drop;
    for (const auto& stale : conflicts) {
      if (to_drop.count(stale.rule_i) || to_drop.count(stale.rule_j)) {
        continue;
      }
      // An earlier fix this round may already have resolved this pair;
      // re-derive the conflict from the rules' current state.
      Conflict conflict;
      if (PairConsistentStrictChar(rules->rule(stale.rule_i),
                                   rules->rule(stale.rule_j), arity,
                                   &conflict)) {
        continue;
      }
      FixingRule& rule_i = rules->mutable_rule(stale.rule_i);
      FixingRule& rule_j = rules->mutable_rule(stale.rule_j);
      switch (conflict.kind) {
        case ConflictKind::kSameTargetDivergentFacts:
        case ConflictKind::kSameTargetDivergentAssured: {
          // Remove the overlap from the rule with the larger negative
          // set (it loses the smaller fraction of its patterns).
          FixingRule& victim =
              rule_i.negative_patterns.size() >= rule_j.negative_patterns.size()
                  ? rule_i
                  : rule_j;
          const FixingRule& other = (&victim == &rule_i) ? rule_j : rule_i;
          std::vector<ValueId> overlap;
          std::set_intersection(victim.negative_patterns.begin(),
                                victim.negative_patterns.end(),
                                other.negative_patterns.begin(),
                                other.negative_patterns.end(),
                                std::back_inserter(overlap));
          bool alive = true;
          for (const ValueId v : overlap) {
            alive = EraseNegative(&victim, v, &report.patterns_removed);
          }
          if (!alive) {
            to_drop.insert(&victim == &rule_i ? stale.rule_i : stale.rule_j);
          }
          break;
        }
        case ConflictKind::kTargetInEvidenceIj: {
          // The value of rule_j's evidence at rule_i's target is what
          // lets a tuple match both rules; forget that it is "wrong"
          // (the Example 10 expert fix: drop Tokyo from phi_1').
          const ValueId enabling = rule_j.EvidenceValueFor(rule_i.target);
          FIXREP_CHECK_NE(enabling, kNullValue);
          if (!EraseNegative(&rule_i, enabling, &report.patterns_removed)) {
            to_drop.insert(stale.rule_i);
          }
          break;
        }
        case ConflictKind::kMutualTargetInEvidence: {
          // Either direction's enabling value can be forgotten; prune the
          // rule with the larger negative set so that, when possible,
          // both rules survive (on the Example 8 pair this removes Tokyo
          // from phi_1' whichever order the rules were added in).
          const bool prune_i = rule_i.negative_patterns.size() >=
                               rule_j.negative_patterns.size();
          FixingRule& victim = prune_i ? rule_i : rule_j;
          const FixingRule& other = prune_i ? rule_j : rule_i;
          const ValueId enabling = other.EvidenceValueFor(victim.target);
          FIXREP_CHECK_NE(enabling, kNullValue);
          if (!EraseNegative(&victim, enabling, &report.patterns_removed)) {
            to_drop.insert(prune_i ? stale.rule_i : stale.rule_j);
          }
          break;
        }
        case ConflictKind::kTargetInEvidenceJi: {
          const ValueId enabling = rule_i.EvidenceValueFor(rule_j.target);
          FIXREP_CHECK_NE(enabling, kNullValue);
          if (!EraseNegative(&rule_j, enabling, &report.patterns_removed)) {
            to_drop.insert(stale.rule_j);
          }
          break;
        }
        case ConflictKind::kDivergentFix:
          // The characterization checker never reports this kind.
          FIXREP_CHECK(false) << "unexpected conflict kind";
      }
    }
    ApplyDrops(to_drop, rules, &original_index, &report);
  }
  std::sort(report.dropped_rules.begin(), report.dropped_rules.end());
  return report;
}

}  // namespace fixrep
