#ifndef FIXREP_RULES_FINGERPRINT_H_
#define FIXREP_RULES_FINGERPRINT_H_

#include <cstdint>

#include "rules/rule_set.h"

namespace fixrep {

// Stable identity of a rule set: FNV-1a 64 over a canonical rendering.
// Pool-independent: negative patterns are ordered by *string*, not by
// ValueId (a rule's negative_patterns vector is ValueId-sorted, and ids
// depend on what the pool interned before the rules), so the same rule
// file fingerprints identically no matter which pool parsed it.
//
// This is the identity that ties a rule set to its derived artifacts:
// WAL headers (repair/recovery.h) refuse resume under a different rule
// set, and a compiled rule dictionary (rules/rule_dict.h) carries the
// fingerprint of the set it was compiled from, so a dictionary-backed
// run journals the same identity an in-memory run does.
uint64_t RuleSetFingerprint(const RuleSet& rules);

}  // namespace fixrep

#endif  // FIXREP_RULES_FINGERPRINT_H_
