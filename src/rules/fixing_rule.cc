#include "rules/fixing_rule.h"

#include <algorithm>

#include "common/logging.h"

namespace fixrep {

bool FixingRule::IsNegative(ValueId v) const {
  return std::binary_search(negative_patterns.begin(),
                            negative_patterns.end(), v);
}

ValueId FixingRule::EvidenceValueFor(AttrId attr) const {
  const auto it = std::lower_bound(evidence_attrs.begin(),
                                   evidence_attrs.end(), attr);
  if (it == evidence_attrs.end() || *it != attr) return kNullValue;
  return evidence_values[static_cast<size_t>(it - evidence_attrs.begin())];
}

void FixingRule::Validate(const Schema& schema) const {
  const auto arity = static_cast<AttrId>(schema.arity());
  FIXREP_CHECK_LE(schema.arity(), 64u) << "schemas are limited to 64 attrs";
  FIXREP_CHECK_EQ(evidence_attrs.size(), evidence_values.size());
  FIXREP_CHECK(std::is_sorted(evidence_attrs.begin(), evidence_attrs.end()));
  FIXREP_CHECK(std::adjacent_find(evidence_attrs.begin(),
                                  evidence_attrs.end()) ==
               evidence_attrs.end())
      << "duplicate evidence attribute";
  for (const AttrId a : evidence_attrs) {
    FIXREP_CHECK_GE(a, 0);
    FIXREP_CHECK_LT(a, arity);
    FIXREP_CHECK_NE(a, target) << "target B must not appear in X";
  }
  for (const ValueId v : evidence_values) FIXREP_CHECK_NE(v, kNullValue);
  FIXREP_CHECK_GE(target, 0);
  FIXREP_CHECK_LT(target, arity);
  FIXREP_CHECK(!negative_patterns.empty())
      << "a fixing rule needs at least one negative pattern";
  FIXREP_CHECK(std::is_sorted(negative_patterns.begin(),
                              negative_patterns.end()));
  FIXREP_CHECK(std::adjacent_find(negative_patterns.begin(),
                                  negative_patterns.end()) ==
               negative_patterns.end())
      << "duplicate negative pattern";
  for (const ValueId v : negative_patterns) FIXREP_CHECK_NE(v, kNullValue);
  FIXREP_CHECK_NE(fact, kNullValue);
  FIXREP_CHECK(!IsNegative(fact))
      << "the fact must not be one of the negative patterns";
}

std::string FixingRule::Format(const Schema& schema,
                               const ValuePool& pool) const {
  std::string out = "((";
  for (size_t i = 0; i < evidence_attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute_name(evidence_attrs[i]);
    out += "=";
    out += pool.GetString(evidence_values[i]);
  }
  out += "), (";
  out += schema.attribute_name(target);
  out += ", {";
  for (size_t i = 0; i < negative_patterns.size(); ++i) {
    if (i > 0) out += ", ";
    out += pool.GetString(negative_patterns[i]);
  }
  out += "})) -> ";
  out += pool.GetString(fact);
  return out;
}

FixingRule MakeRule(
    const Schema& schema, ValuePool* pool,
    const std::vector<std::pair<std::string, std::string>>& evidence,
    const std::string& target_attribute,
    const std::vector<std::string>& negative_values,
    const std::string& fact_value) {
  FixingRule rule;
  std::vector<std::pair<AttrId, ValueId>> ev;
  ev.reserve(evidence.size());
  for (const auto& [attr_name, value] : evidence) {
    ev.emplace_back(schema.AttributeIndex(attr_name), pool->Intern(value));
  }
  std::sort(ev.begin(), ev.end());
  for (const auto& [attr, value] : ev) {
    rule.evidence_attrs.push_back(attr);
    rule.evidence_values.push_back(value);
  }
  rule.target = schema.AttributeIndex(target_attribute);
  for (const auto& v : negative_values) {
    rule.negative_patterns.push_back(pool->Intern(v));
  }
  std::sort(rule.negative_patterns.begin(), rule.negative_patterns.end());
  rule.negative_patterns.erase(std::unique(rule.negative_patterns.begin(),
                                           rule.negative_patterns.end()),
                               rule.negative_patterns.end());
  rule.fact = pool->Intern(fact_value);
  rule.Validate(schema);
  return rule;
}

}  // namespace fixrep
