#include "rules/consistency.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

namespace {

// True if the evidence patterns agree on X_a ∩ X_b (both empty overlap
// and equal constants count as compatible) — the precondition for any
// tuple to match both rules (line 2 of Fig. 4).
bool EvidenceCompatible(const FixingRule& a, const FixingRule& b) {
  // Merge-walk the two sorted attribute lists.
  size_t i = 0;
  size_t j = 0;
  while (i < a.evidence_attrs.size() && j < b.evidence_attrs.size()) {
    if (a.evidence_attrs[i] < b.evidence_attrs[j]) {
      ++i;
    } else if (a.evidence_attrs[i] > b.evidence_attrs[j]) {
      ++j;
    } else {
      if (a.evidence_values[i] != b.evidence_values[j]) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

// First value in Tp_a[B] ∩ Tp_b[B], or kNullValue if disjoint.
ValueId FirstNegativeOverlap(const FixingRule& a, const FixingRule& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.negative_patterns.size() && j < b.negative_patterns.size()) {
    if (a.negative_patterns[i] < b.negative_patterns[j]) {
      ++i;
    } else if (a.negative_patterns[i] > b.negative_patterns[j]) {
      ++j;
    } else {
      return a.negative_patterns[i];
    }
  }
  return kNullValue;
}

// Builds a minimal tuple matching both rules; attributes not constrained
// by either rule stay kNullValue. `target_a`/`target_b` choose the values
// for the rules' target attributes when they are not pinned by the other
// rule's evidence.
Tuple BuildWitness(const FixingRule& a, const FixingRule& b, size_t arity,
                   ValueId target_a, ValueId target_b) {
  Tuple t(arity, kNullValue);
  for (size_t i = 0; i < a.evidence_attrs.size(); ++i) {
    t[a.evidence_attrs[i]] = a.evidence_values[i];
  }
  for (size_t i = 0; i < b.evidence_attrs.size(); ++i) {
    t[b.evidence_attrs[i]] = b.evidence_values[i];
  }
  // Targets last: if a target is in the other rule's evidence the
  // evidence constant is the value that makes both match, so only set it
  // when still unpinned.
  if (t[a.target] == kNullValue) t[a.target] = target_a;
  if (t[b.target] == kNullValue) t[b.target] = target_b;
  return t;
}

}  // namespace

std::string Conflict::Describe(const RuleSet& rules) const {
  std::string out = "conflict between rule #" + std::to_string(rule_i) +
                    " and rule #" + std::to_string(rule_j) + " (";
  switch (kind) {
    case ConflictKind::kSameTargetDivergentFacts:
      out += "same target, overlapping negative patterns, different facts";
      break;
    case ConflictKind::kTargetInEvidenceIj:
      out += "rule #" + std::to_string(rule_i) +
             "'s target is evidence of rule #" + std::to_string(rule_j);
      break;
    case ConflictKind::kTargetInEvidenceJi:
      out += "rule #" + std::to_string(rule_j) +
             "'s target is evidence of rule #" + std::to_string(rule_i);
      break;
    case ConflictKind::kMutualTargetInEvidence:
      out += "each rule's target is evidence of the other";
      break;
    case ConflictKind::kDivergentFix:
      out += "two application orders yield different fixes";
      break;
    case ConflictKind::kSameTargetDivergentAssured:
      out += "same target and fact from different evidence patterns "
             "(divergent assured sets; strict mode)";
      break;
  }
  out += ")\n  phi_i: " +
         rules.rule(rule_i).Format(rules.schema(), rules.pool());
  out += "\n  phi_j: " +
         rules.rule(rule_j).Format(rules.schema(), rules.pool());
  if (!witness.empty()) {
    out += "\n  witness: (";
    for (size_t a = 0; a < witness.size(); ++a) {
      if (a > 0) out += ", ";
      out += witness[a] == kNullValue ? std::string("_")
                                      : rules.pool().GetString(witness[a]);
    }
    out += ")";
  }
  return out;
}

bool PairConsistentChar(const FixingRule& a, const FixingRule& b,
                        size_t arity, Conflict* conflict) {
  if (!EvidenceCompatible(a, b)) return true;

  auto report = [&](ConflictKind kind, ValueId target_a, ValueId target_b) {
    if (conflict != nullptr) {
      conflict->kind = kind;
      conflict->witness = BuildWitness(a, b, arity, target_a, target_b);
    }
    return false;
  };

  if (a.target == b.target) {
    // Case 1: a tuple with t[B] in both negative-pattern sets gets two
    // different facts depending on which rule fires first.
    const ValueId overlap = FirstNegativeOverlap(a, b);
    if (overlap != kNullValue && a.fact != b.fact) {
      return report(ConflictKind::kSameTargetDivergentFacts, overlap,
                    overlap);
    }
    return true;
  }

  // Case 2: different targets. a's target inside b's evidence means
  // whichever rule fires first freezes or rewrites the shared attribute.
  const ValueId b_evidence_at_a_target = b.EvidenceValueFor(a.target);
  const ValueId a_evidence_at_b_target = a.EvidenceValueFor(b.target);
  const bool a_target_in_b =
      b_evidence_at_a_target != kNullValue &&
      a.IsNegative(b_evidence_at_a_target);
  const bool b_target_in_a =
      a_evidence_at_b_target != kNullValue &&
      b.IsNegative(a_evidence_at_b_target);
  const bool bi_in_xj = b_evidence_at_a_target != kNullValue;
  const bool bj_in_xi = a_evidence_at_b_target != kNullValue;

  if (bi_in_xj && !bj_in_xi) {
    if (a_target_in_b) {
      return report(ConflictKind::kTargetInEvidenceIj, kNullValue,
                    b.negative_patterns.front());
    }
    return true;
  }
  if (bj_in_xi && !bi_in_xj) {
    if (b_target_in_a) {
      return report(ConflictKind::kTargetInEvidenceJi,
                    a.negative_patterns.front(), kNullValue);
    }
    return true;
  }
  if (bi_in_xj && bj_in_xi) {
    if (a_target_in_b && b_target_in_a) {
      return report(ConflictKind::kMutualTargetInEvidence, kNullValue,
                    kNullValue);
    }
    return true;
  }
  // Case 2(d): targets are independent of both evidence patterns; the
  // updates commute.
  return true;
}

bool PairConsistentStrictChar(const FixingRule& a, const FixingRule& b,
                              size_t arity, Conflict* conflict) {
  if (!PairConsistentChar(a, b, arity, conflict)) return false;
  if (a.target != b.target || a.fact != b.fact ||
      !EvidenceCompatible(a, b)) {
    return true;
  }
  const ValueId overlap = FirstNegativeOverlap(a, b);
  if (overlap == kNullValue) return true;
  // Identical evidence patterns assure the same set, so the firing order
  // is immaterial; only genuinely different patterns are flagged.
  if (a.evidence_attrs == b.evidence_attrs &&
      a.evidence_values == b.evidence_values) {
    return true;
  }
  if (conflict != nullptr) {
    conflict->kind = ConflictKind::kSameTargetDivergentAssured;
    conflict->witness = BuildWitness(a, b, arity, overlap, overlap);
  }
  return false;
}

void ChaseWithPriority(const std::vector<const FixingRule*>& priority,
                       Tuple* t) {
  AttrSet assured;
  std::vector<bool> applied(priority.size(), false);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < priority.size(); ++i) {
      if (applied[i]) continue;
      const FixingRule& rule = *priority[i];
      if (assured.Contains(rule.target) || !rule.Matches(*t)) continue;
      rule.Apply(*t);
      assured.UnionWith(rule.AssuredSet());
      applied[i] = true;
      progressed = true;
      break;  // restart the scan so the chase order is deterministic
    }
  }
}

bool PairConsistentEnum(const FixingRule& a, const FixingRule& b,
                        size_t arity, Conflict* conflict) {
  // Per-attribute candidate values drawn from both rules' evidence and
  // negative patterns (Section 5.2.1); every attribute not involved in
  // either rule keeps the out-of-domain placeholder kNullValue.
  std::vector<AttrId> attrs;
  std::vector<std::vector<ValueId>> values;
  auto add_value = [&](AttrId attr, ValueId v) {
    const auto it = std::find(attrs.begin(), attrs.end(), attr);
    size_t idx;
    if (it == attrs.end()) {
      attrs.push_back(attr);
      values.emplace_back();
      idx = attrs.size() - 1;
    } else {
      idx = static_cast<size_t>(it - attrs.begin());
    }
    if (std::find(values[idx].begin(), values[idx].end(), v) ==
        values[idx].end()) {
      values[idx].push_back(v);
    }
  };
  for (const FixingRule* rule : {&a, &b}) {
    for (size_t i = 0; i < rule->evidence_attrs.size(); ++i) {
      add_value(rule->evidence_attrs[i], rule->evidence_values[i]);
    }
    for (const ValueId v : rule->negative_patterns) {
      add_value(rule->target, v);
    }
  }

  uint64_t total = 1;
  for (const auto& vs : values) {
    total *= vs.size();
    FIXREP_CHECK_LE(total, uint64_t{1} << 24)
        << "tuple enumeration blow-up; use isConsist_r for such rules";
  }

  const std::vector<const FixingRule*> order_ab = {&a, &b};
  const std::vector<const FixingRule*> order_ba = {&b, &a};
  std::vector<size_t> counters(attrs.size(), 0);
  Tuple t(arity, kNullValue);
  for (uint64_t n = 0; n < total; ++n) {
    uint64_t rest = n;
    for (size_t i = 0; i < attrs.size(); ++i) {
      const size_t k = rest % values[i].size();
      rest /= values[i].size();
      t[attrs[i]] = values[i][k];
    }
    Tuple fix_ab = t;
    ChaseWithPriority(order_ab, &fix_ab);
    Tuple fix_ba = t;
    ChaseWithPriority(order_ba, &fix_ba);
    if (fix_ab != fix_ba) {
      if (conflict != nullptr) {
        conflict->kind = ConflictKind::kDivergentFix;
        conflict->witness = t;
      }
      return false;
    }
  }
  return true;
}

namespace {

using PairChecker = bool (*)(const FixingRule&, const FixingRule&, size_t,
                             Conflict*);

bool CheckAllPairs(const RuleSet& rules, std::vector<Conflict>* conflicts,
                   bool find_all, PairChecker checker) {
  FIXREP_TRACE_SPAN("consistency.check");
  const size_t arity = rules.schema().arity();
  bool consistent = true;
  size_t pairs_checked = 0;
  size_t conflicts_detected = 0;
  // Publish once on every exit path, including the early return.
  const auto publish = [&]() {
    auto& registry = CurrentMetrics();
    registry.GetCounter("fixrep.consistency.pairs_checked")
        ->Add(pairs_checked);
    registry.GetCounter("fixrep.consistency.conflicts_detected")
        ->Add(conflicts_detected);
  };
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      ++pairs_checked;
      Conflict conflict;
      if (checker(rules.rule(i), rules.rule(j), arity, &conflict)) continue;
      consistent = false;
      ++conflicts_detected;
      conflict.rule_i = i;
      conflict.rule_j = j;
      if (conflicts != nullptr) conflicts->push_back(std::move(conflict));
      if (!find_all) {
        publish();
        return false;
      }
    }
  }
  publish();
  return consistent;
}

}  // namespace

bool IsConsistentChar(const RuleSet& rules, std::vector<Conflict>* conflicts,
                      bool find_all) {
  return CheckAllPairs(rules, conflicts, find_all, &PairConsistentChar);
}

bool IsConsistentEnum(const RuleSet& rules, std::vector<Conflict>* conflicts,
                      bool find_all) {
  return CheckAllPairs(rules, conflicts, find_all, &PairConsistentEnum);
}

bool IsConsistentStrict(const RuleSet& rules,
                        std::vector<Conflict>* conflicts, bool find_all) {
  return CheckAllPairs(rules, conflicts, find_all,
                       &PairConsistentStrictChar);
}

}  // namespace fixrep
