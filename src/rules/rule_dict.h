#ifndef FIXREP_RULES_RULE_DICT_H_
#define FIXREP_RULES_RULE_DICT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"
#include "relation/value_pool.h"
#include "rules/rule_set.h"
#include "rules/rule_source.h"

namespace fixrep {

// A compiled rule set as one memory-mapped file (docs/rules.md): the
// same flat structures CompiledRuleIndex builds in RAM — open-addressing
// slot table, CSR postings, per-rule side arrays, CSR evidence/negative
// patterns — serialized next to a private interned string pool and a
// string hash table, behind a CRC-checked header. `fixrep_cli rules
// compile` produces the artifact offline; OpenRuleDict maps it O(1)
// (magic/version/CRC/size validation only — no section is read until a
// probe faults its pages in), so a million-rule corpus costs open-time
// milliseconds and only the pages the workload actually touches.
//
// Value spaces. The dictionary's pattern values are ids into its own
// string pool, fixed at compile time — a run's live ValuePool knows
// nothing about them. Each worker handle carries a translator (live id
// -> dict id, resolved through the mapped string hash and memoized) and
// a direct-mapped PostingCache, so dup-heavy workloads probe the mapped
// sections about once per distinct (attr, value) pair. Facts flow the
// other way: Bind() pre-interns every distinct fact string into the
// live pool — serially, respecting the pool's single-writer rule — so
// RuleSource::fact() hands the chase live ids it can write into tuples.
//
// Integrity: Open refuses a wrong magic, an unknown version, a header
// CRC mismatch, a file whose size differs from the header's recorded
// size (truncation at any section boundary), or section bounds that
// fall outside the file — always with Status, never UB. Bind refuses a
// schema whose attribute names differ from the compiled ones. The
// header carries RuleSetFingerprint of the compiled set, so WAL resume
// validation works identically for dictionary-backed runs.

inline constexpr uint32_t kRuleDictFormatVersion = 1;
inline constexpr char kRuleDictMagic[8] = {'F', 'X', 'R', 'D',
                                           'I', 'C', 'T', '\0'};

// Section order inside the file. Every section is 8-byte aligned.
enum class DictSection : uint32_t {
  kAttrNames = 0,      // u32 count, then per name u32 length + bytes
  kSlots,              // RuleSlot[slot_count], keys in dict value space
  kPostings,           // u32[num_postings], ascending rule ids per key
  kEvidenceCount,      // u32[num_rules]
  kTarget,             // i32[num_rules]
  kFactStr,            // u32[num_rules], dict string ids
  kAssuredBits,        // u64[num_rules]
  kEvOffsets,          // u32[num_rules + 1]
  kEvAttrs,            // i32[num_ev_pairs]
  kEvValues,           // i32[num_ev_pairs], dict string ids
  kNegOffsets,         // u32[num_rules + 1]
  kNegValues,          // i32[num_neg_values], sorted per rule by dict id
  kEmptyEvidence,      // u32[num_empty_evidence]
  kEvidenceAttrList,   // i32[num_evidence_attrs]
  kStringOffsets,      // u32[num_strings + 1], byte offsets into kStringBytes
  kStringBytes,        // concatenated string bytes
  kStringHash,         // u32[string_hash_count], dict id or UINT32_MAX
};
inline constexpr size_t kNumDictSections = 17;

const char* DictSectionName(DictSection section);

// The fixed-size on-disk header. Plain bytes at offset 0; `header_crc`
// is Crc32 over the struct with that field zeroed.
struct RuleDictHeader {
  char magic[8];
  uint32_t version = 0;
  uint32_t header_crc = 0;
  uint64_t file_size = 0;
  uint64_t fingerprint = 0;
  uint64_t mentioned_bits = 0;
  uint32_t num_rules = 0;
  uint32_t arity = 0;
  uint32_t slot_count = 0;  // power of two
  uint32_t num_keys = 0;
  uint64_t num_postings = 0;
  uint32_t num_strings = 0;
  uint32_t string_hash_count = 0;  // power of two
  uint64_t num_ev_pairs = 0;
  uint64_t num_neg_values = 0;
  uint32_t num_empty_evidence = 0;
  uint32_t num_evidence_attrs = 0;
  uint64_t section_offset[kNumDictSections] = {};
  uint64_t section_bytes[kNumDictSections] = {};
};

// Compiles `rules` into a dictionary file at `path`. Deterministic: the
// same rule set produces the same bytes (dict string ids are assigned
// in first-appearance order over the rule scan; slot and hash tables
// are filled in sorted key order). Crash-atomic via AtomicFile.
Status CompileRuleDict(const RuleSet& rules, const std::string& path);

class RuleDict;

// Per-handle scratch: resolves live ids through the mapped string hash.
class DictTranslator : public ValueTranslator {
 public:
  explicit DictTranslator(const RuleDict* dict) : dict_(dict) {}

 protected:
  ValueId Resolve(ValueId live) override;

 private:
  const RuleDict* dict_;
};

// One worker's binding: translator memo + hot posting cache + the view.
class RuleDictHandle : public RuleSourceHandle {
 public:
  RuleDictHandle(const RuleDict* dict, size_t cache_capacity);

  const PostingCache& cache() const { return cache_; }

 private:
  DictTranslator translator_;
  PostingCache cache_;
};

class RuleDict : public RuleRepository {
 public:
  // Maps the file and validates its header; O(1) in corpus size. The
  // mapping lives until destruction.
  static StatusOr<std::unique_ptr<RuleDict>> Open(const std::string& path);

  ~RuleDict() override;
  RuleDict(const RuleDict&) = delete;
  RuleDict& operator=(const RuleDict&) = delete;

  // Attaches the dictionary to a live run: validates `schema` against
  // the compiled attribute names and pre-interns every distinct fact
  // string into `pool` (serial — call before any worker exists; the
  // pool's single-writer interning rule is why this is not lazy).
  // Idempotent for the same pool; rebinding to a different pool redoes
  // the fact interning.
  Status Bind(const Schema& schema, std::shared_ptr<ValuePool> pool);
  bool bound() const { return pool_ != nullptr; }

  // RuleRepository. MakeHandle requires a successful Bind.
  size_t num_rules() const override { return header_->num_rules; }
  size_t arity() const override { return header_->arity; }
  AttrSet mentioned_attrs() const override {
    return AttrSet::FromBits(header_->mentioned_bits);
  }
  uint64_t fingerprint() const override { return header_->fingerprint; }
  std::unique_ptr<RuleSourceHandle> MakeHandle() const override;

  // Hot-entry cache capacity for handles made after the call (entries,
  // rounded up to a power of two).
  void set_hot_cache_capacity(size_t entries) { cache_capacity_ = entries; }
  size_t hot_cache_capacity() const { return cache_capacity_; }

  // Introspection (rules inspect, benches).
  const RuleDictHeader& header() const { return *header_; }
  const std::string& path() const { return path_; }
  size_t file_bytes() const { return map_size_; }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  // The dictionary string for a dict id (a view into the mapping).
  std::string_view DictString(uint32_t id) const;
  // Probes the mapped string hash: dict id of `s`, or kAbsentValue.
  ValueId FindString(std::string_view s) const;

 private:
  friend class DictTranslator;
  friend class RuleDictHandle;

  RuleDict() = default;

  Status ValidateAndWire();
  const uint8_t* SectionPtr(DictSection section) const {
    return static_cast<const uint8_t*>(map_) +
           header_->section_offset[static_cast<size_t>(section)];
  }
  RuleSource::Init BaseInit() const;

  std::string path_;
  void* map_ = nullptr;
  size_t map_size_ = 0;
  const RuleDictHeader* header_ = nullptr;

  // Wired section pointers (into the mapping).
  const RuleSlot* slots_ = nullptr;
  const uint32_t* postings_ = nullptr;
  const uint32_t* evidence_count_ = nullptr;
  const AttrId* target_ = nullptr;
  const uint32_t* fact_str_ = nullptr;
  const uint64_t* assured_bits_ = nullptr;
  const uint32_t* ev_offsets_ = nullptr;
  const AttrId* ev_attrs_ = nullptr;
  const ValueId* ev_values_ = nullptr;
  const uint32_t* neg_offsets_ = nullptr;
  const ValueId* neg_values_ = nullptr;
  const uint32_t* empty_evidence_ = nullptr;
  const AttrId* evidence_attr_list_ = nullptr;
  const uint32_t* string_offsets_ = nullptr;
  const char* string_bytes_ = nullptr;
  const uint32_t* string_hash_ = nullptr;

  std::vector<std::string> attribute_names_;

  // Bind products.
  std::shared_ptr<ValuePool> pool_;
  std::vector<ValueId> live_fact_;  // per rule, live value space

  size_t cache_capacity_ = PostingCache::kDefaultCapacity;
};

}  // namespace fixrep

#endif  // FIXREP_RULES_RULE_DICT_H_
