#include "rules/rule_set.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fixrep {

RuleSet::RuleSet(std::shared_ptr<const Schema> schema,
                 std::shared_ptr<ValuePool> pool)
    : schema_(std::move(schema)), pool_(std::move(pool)) {
  FIXREP_CHECK(schema_ != nullptr);
  FIXREP_CHECK(pool_ != nullptr);
  FIXREP_CHECK_LE(schema_->arity(), 64u);
}

size_t RuleSet::Add(FixingRule rule) {
  rule.Validate(*schema_);
  rules_.push_back(std::move(rule));
  return rules_.size() - 1;
}

void RuleSet::Remove(std::vector<size_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    FIXREP_CHECK_LT(*it, rules_.size());
    rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(*it));
  }
}

size_t RuleSet::TotalSize() const {
  size_t total = 0;
  for (const auto& rule : rules_) total += rule.size();
  return total;
}

RuleSet RuleSet::Prefix(size_t n) const {
  RuleSet out(schema_, pool_);
  const size_t count = std::min(n, rules_.size());
  for (size_t i = 0; i < count; ++i) out.Add(rules_[i]);
  return out;
}

}  // namespace fixrep
