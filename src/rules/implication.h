#ifndef FIXREP_RULES_IMPLICATION_H_
#define FIXREP_RULES_IMPLICATION_H_

#include <cstdint>
#include <string>

#include "rules/rule_set.h"

namespace fixrep {

// Outcome of an implication test Σ |= phi (Section 4.3).
struct ImplicationResult {
  bool implied = false;
  // True if the verdict was established by exhaustive small-model
  // enumeration; false if the tuple space exceeded `enumeration_cap` and
  // the checker fell back to random sampling (a "not implied" answer is
  // then still certain — it carries a counterexample — but an "implied"
  // answer is only probabilistic).
  bool exhaustive = true;
  std::string reason;
  Tuple counterexample;  // non-empty iff a differing tuple was found
};

struct ImplicationOptions {
  // Maximum number of small-model tuples to enumerate exhaustively. The
  // implication problem is coNP-complete in general; for a fixed schema
  // the small model is polynomial (Theorem 2) and this cap is generous.
  uint64_t enumeration_cap = uint64_t{1} << 22;
  // Number of sampled tuples when the cap is exceeded.
  uint64_t sample_count = 200000;
  uint64_t seed = 0x5eed;
};

// Decides whether `sigma` (which must be consistent) implies `phi`:
// (i) sigma ∪ {phi} is consistent, and (ii) every tuple over the small
// model reaches the same fix under sigma and sigma ∪ {phi}.
ImplicationResult Implies(const RuleSet& sigma, const FixingRule& phi,
                          const ImplicationOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_RULES_IMPLICATION_H_
