#include "rules/fingerprint.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

namespace fixrep {

uint64_t RuleSetFingerprint(const RuleSet& rules) {
  // Canonical text, NOT SerializeRules: negative_patterns is sorted by
  // ValueId, and ids depend on the pool's interning history, so the
  // serialized order of a rule's negatives varies with which pool
  // parsed the file. Render negatives sorted by string instead so the
  // fingerprint is a property of the rules alone. '\x1f'/'\x1e' unit
  // separators keep adjacent fields from aliasing each other.
  const Schema& schema = rules.schema();
  const ValuePool& pool = rules.pool();
  std::string text;
  std::vector<std::string_view> negatives;
  for (size_t i = 0; i < rules.size(); ++i) {
    const FixingRule& rule = rules.rule(i);
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      text += schema.attribute_name(rule.evidence_attrs[e]);
      text += '\x1f';
      text += pool.GetString(rule.evidence_values[e]);
      text += '\x1f';
    }
    text += schema.attribute_name(rule.target);
    text += '\x1f';
    negatives.clear();
    for (const ValueId v : rule.negative_patterns) {
      negatives.push_back(pool.GetString(v));
    }
    std::sort(negatives.begin(), negatives.end());
    for (const std::string_view v : negatives) {
      text += v;
      text += '\x1f';
    }
    text += pool.GetString(rule.fact);
    text += '\x1e';
  }
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace fixrep
