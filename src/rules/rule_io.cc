#include "rules/rule_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace fixrep {

namespace {

struct PendingRule {
  std::vector<std::pair<std::string, std::string>> evidence;
  std::string target;
  std::vector<std::string> negatives;
  std::string fact;
  bool has_wrong = false;
  bool has_then = false;
};

// Splits "attr = value" at the first '='.
std::pair<std::string, std::string> SplitAssignment(std::string_view body,
                                                    int line_no) {
  const size_t eq = body.find('=');
  FIXREP_CHECK_NE(eq, std::string_view::npos)
      << "line " << line_no << ": expected 'attr = value'";
  return {std::string(Trim(body.substr(0, eq))),
          std::string(Trim(body.substr(eq + 1)))};
}

}  // namespace

RuleSet ParseRules(std::istream& in, std::shared_ptr<const Schema> schema,
                   std::shared_ptr<ValuePool> pool) {
  RuleSet rules(schema, std::move(pool));
  PendingRule pending;
  bool in_rule = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line == "RULE") {
      FIXREP_CHECK(!in_rule) << "line " << line_no << ": nested RULE";
      pending = PendingRule{};
      in_rule = true;
      continue;
    }
    FIXREP_CHECK(in_rule) << "line " << line_no
                          << ": directive outside RULE...END";
    if (line == "END") {
      FIXREP_CHECK(pending.has_wrong)
          << "line " << line_no << ": rule without WRONG";
      FIXREP_CHECK(pending.has_then)
          << "line " << line_no << ": rule without THEN";
      rules.Add(MakeRule(*schema, &rules.pool(), pending.evidence,
                         pending.target, pending.negatives, pending.fact));
      in_rule = false;
    } else if (StartsWith(line, "IF ")) {
      pending.evidence.push_back(SplitAssignment(line.substr(3), line_no));
    } else if (StartsWith(line, "WRONG ")) {
      FIXREP_CHECK(!pending.has_wrong)
          << "line " << line_no << ": duplicate WRONG";
      const std::string_view body = line.substr(6);
      const size_t in_pos = body.find(" IN ");
      FIXREP_CHECK_NE(in_pos, std::string_view::npos)
          << "line " << line_no << ": expected 'WRONG attr IN v1 | v2'";
      pending.target = std::string(Trim(body.substr(0, in_pos)));
      for (const auto& part : Split(body.substr(in_pos + 4), '|')) {
        const std::string value(Trim(part));
        FIXREP_CHECK(!value.empty())
            << "line " << line_no << ": empty negative pattern";
        pending.negatives.push_back(value);
      }
      pending.has_wrong = true;
    } else if (StartsWith(line, "THEN ")) {
      FIXREP_CHECK(!pending.has_then)
          << "line " << line_no << ": duplicate THEN";
      auto [attr, value] = SplitAssignment(line.substr(5), line_no);
      FIXREP_CHECK(pending.has_wrong)
          << "line " << line_no << ": THEN before WRONG";
      FIXREP_CHECK_EQ(attr, pending.target)
          << "line " << line_no
          << ": THEN attribute must match the WRONG attribute";
      pending.fact = std::move(value);
      pending.has_then = true;
    } else {
      FIXREP_CHECK(false) << "line " << line_no << ": unknown directive '"
                          << std::string(line) << "'";
    }
  }
  FIXREP_CHECK(!in_rule) << "unterminated RULE at end of input";
  return rules;
}

RuleSet ParseRulesFromString(const std::string& text,
                             std::shared_ptr<const Schema> schema,
                             std::shared_ptr<ValuePool> pool) {
  std::istringstream in(text);
  return ParseRules(in, std::move(schema), std::move(pool));
}

RuleSet ParseRulesFile(const std::string& path,
                       std::shared_ptr<const Schema> schema,
                       std::shared_ptr<ValuePool> pool) {
  std::ifstream in(path);
  FIXREP_CHECK(in.good()) << "cannot open " << path;
  return ParseRules(in, std::move(schema), std::move(pool));
}

void WriteRules(const RuleSet& rules, std::ostream& out) {
  const Schema& schema = rules.schema();
  const ValuePool& pool = rules.pool();
  for (size_t i = 0; i < rules.size(); ++i) {
    const FixingRule& rule = rules.rule(i);
    out << "RULE\n";
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      out << "  IF " << schema.attribute_name(rule.evidence_attrs[e])
          << " = " << pool.GetString(rule.evidence_values[e]) << "\n";
    }
    out << "  WRONG " << schema.attribute_name(rule.target) << " IN ";
    for (size_t n = 0; n < rule.negative_patterns.size(); ++n) {
      if (n > 0) out << " | ";
      out << pool.GetString(rule.negative_patterns[n]);
    }
    out << "\n  THEN " << schema.attribute_name(rule.target) << " = "
        << pool.GetString(rule.fact) << "\nEND\n";
    if (i + 1 < rules.size()) out << "\n";
  }
}

std::string SerializeRules(const RuleSet& rules) {
  std::ostringstream out;
  WriteRules(rules, out);
  return out.str();
}

void WriteRulesFile(const RuleSet& rules, const std::string& path) {
  std::ofstream out(path);
  FIXREP_CHECK(out.good()) << "cannot open " << path << " for writing";
  WriteRules(rules, out);
}

}  // namespace fixrep
