#include "rules/rule_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace fixrep {

namespace {

struct PendingRule {
  std::vector<std::pair<std::string, std::string>> evidence;
  std::string target;
  std::vector<std::string> negatives;
  std::string fact;
  bool has_wrong = false;
  bool has_then = false;
};

Status LineError(int line_no, const std::string& message) {
  return Status::MalformedInput("line " + std::to_string(line_no) + ": " +
                                message);
}

// Splits "attr = value" at the first '='.
Status SplitAssignment(std::string_view body, int line_no,
                       std::pair<std::string, std::string>* out) {
  const size_t eq = body.find('=');
  if (eq == std::string_view::npos) {
    return LineError(line_no, "expected 'attr = value'");
  }
  *out = {std::string(Trim(body.substr(0, eq))),
          std::string(Trim(body.substr(eq + 1)))};
  return Status::Ok();
}

Status CheckKnownAttribute(const Schema& schema, const std::string& attr,
                           int line_no) {
  if (schema.FindAttribute(attr) == kInvalidAttr) {
    return LineError(line_no, "schema '" + schema.name() +
                                  "' has no attribute '" + attr + "'");
  }
  return Status::Ok();
}

// Parses one directive line into `pending`; returns a non-ok Status with
// line context on any malformation (including schema-level problems that
// MakeRule would otherwise CHECK-fail on, so lenient callers can recover).
Status ParseDirective(std::string_view line, int line_no,
                      const Schema& schema, PendingRule* pending) {
  if (StartsWith(line, "IF ")) {
    std::pair<std::string, std::string> assignment;
    FIXREP_RETURN_IF_ERROR(
        SplitAssignment(line.substr(3), line_no, &assignment));
    FIXREP_RETURN_IF_ERROR(
        CheckKnownAttribute(schema, assignment.first, line_no));
    for (const auto& [attr, value] : pending->evidence) {
      if (attr == assignment.first) {
        return LineError(line_no,
                         "duplicate evidence attribute '" + attr + "'");
      }
    }
    if (pending->has_wrong && assignment.first == pending->target) {
      return LineError(line_no, "target B must not appear in X");
    }
    pending->evidence.push_back(std::move(assignment));
    return Status::Ok();
  }
  if (StartsWith(line, "WRONG ")) {
    if (pending->has_wrong) return LineError(line_no, "duplicate WRONG");
    const std::string_view body = line.substr(6);
    const size_t in_pos = body.find(" IN ");
    if (in_pos == std::string_view::npos) {
      return LineError(line_no, "expected 'WRONG attr IN v1 | v2'");
    }
    const std::string target(Trim(body.substr(0, in_pos)));
    FIXREP_RETURN_IF_ERROR(CheckKnownAttribute(schema, target, line_no));
    for (const auto& [attr, value] : pending->evidence) {
      if (attr == target) {
        return LineError(line_no, "target B must not appear in X");
      }
    }
    std::vector<std::string> negatives;
    for (const auto& part : Split(body.substr(in_pos + 4), '|')) {
      const std::string value(Trim(part));
      if (value.empty()) {
        return LineError(line_no, "empty negative pattern");
      }
      negatives.push_back(value);
    }
    pending->target = target;
    pending->negatives = std::move(negatives);
    pending->has_wrong = true;
    return Status::Ok();
  }
  if (StartsWith(line, "THEN ")) {
    if (pending->has_then) return LineError(line_no, "duplicate THEN");
    std::pair<std::string, std::string> assignment;
    FIXREP_RETURN_IF_ERROR(
        SplitAssignment(line.substr(5), line_no, &assignment));
    if (!pending->has_wrong) {
      return LineError(line_no, "THEN before WRONG");
    }
    if (assignment.first != pending->target) {
      return LineError(line_no,
                       "THEN attribute must match the WRONG attribute");
    }
    for (const std::string& negative : pending->negatives) {
      if (assignment.second == negative) {
        return LineError(
            line_no, "the fact must not be one of the negative patterns");
      }
    }
    pending->fact = std::move(assignment.second);
    pending->has_then = true;
    return Status::Ok();
  }
  return LineError(line_no,
                   "unknown directive '" + std::string(line) + "'");
}

}  // namespace

StatusOr<RuleSet> ParseRulesLenient(std::istream& in,
                                    std::shared_ptr<const Schema> schema,
                                    std::shared_ptr<ValuePool> pool,
                                    const RuleParseOptions& options) {
  RuleSet rules(schema, std::move(pool));
  const bool lenient = options.on_error != OnErrorPolicy::kAbort;
  Counter* quarantined_rules =
      CurrentMetrics().GetCounter("fixrep.quarantine.rules");

  PendingRule pending;
  bool in_rule = false;
  bool block_failed = false;
  Status block_error = Status::Ok();
  size_t block_error_line = 0;
  std::string block_raw;
  std::string raw;
  int line_no = 0;

  // Drops one quarantined unit (a whole block, or a stray top-level
  // line) with the first error observed in it.
  const auto quarantine = [&](size_t error_line, const Status& error,
                              const std::string& raw_text) {
    quarantined_rules->Add(1);
    if (options.on_error == OnErrorPolicy::kQuarantine &&
        options.quarantine != nullptr) {
      options.quarantine->Add(
          Diagnostic{error_line, error.code(), error.message(), raw_text});
    }
  };
  const auto fail_block = [&](const Status& error) {
    if (block_failed) return;  // keep the first error
    block_failed = true;
    block_error = error;
    block_error_line = static_cast<size_t>(line_no);
  };

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = Trim(raw);
    if (in_rule) {
      block_raw += raw;
      block_raw += '\n';
    }
    if (line.empty() || line.front() == '#') continue;

    if (line == "RULE") {
      if (!in_rule) {
        pending = PendingRule{};
        in_rule = true;
        block_failed = false;
        block_raw = raw + "\n";
        continue;
      }
      const Status error = LineError(line_no, "nested RULE");
      if (!lenient) return error;
      fail_block(error);
      // The RULE line opens a fresh block; the dead one is quarantined
      // without its trailing RULE line.
      block_raw.resize(block_raw.size() - raw.size() - 1);
      quarantine(block_error_line, block_error, block_raw);
      pending = PendingRule{};
      block_failed = false;
      block_raw = raw + "\n";
      continue;
    }
    if (!in_rule) {
      const Status error = LineError(line_no, "directive outside RULE...END");
      if (!lenient) return error;
      quarantine(static_cast<size_t>(line_no), error, raw);
      continue;
    }
    if (line == "END") {
      in_rule = false;
      if (!block_failed) {
        if (!pending.has_wrong) {
          fail_block(LineError(line_no, "rule without WRONG"));
        } else if (!pending.has_then) {
          fail_block(LineError(line_no, "rule without THEN"));
        }
      }
      if (block_failed) {
        if (!lenient) return block_error;
        quarantine(block_error_line, block_error, block_raw);
        continue;
      }
      rules.Add(MakeRule(*schema, &rules.pool(), pending.evidence,
                         pending.target, pending.negatives, pending.fact));
      continue;
    }
    if (block_failed) continue;  // skip to END once the block is dead
    const Status error =
        ParseDirective(line, line_no, *schema, &pending);
    if (!error.ok()) {
      if (!lenient) return error;
      fail_block(error);
    }
  }
  if (in_rule) {
    const Status error =
        Status::MalformedInput("unterminated RULE at end of input");
    if (!lenient) return error;
    if (!block_failed) fail_block(error);
    quarantine(block_error_line, block_error, block_raw);
  }
  return rules;
}

StatusOr<RuleSet> ParseRulesFileLenient(const std::string& path,
                                        std::shared_ptr<const Schema> schema,
                                        std::shared_ptr<ValuePool> pool,
                                        const RuleParseOptions& options) {
  std::ifstream in(path);
  if (FIXREP_FAULT("rules.open_read") || !in.good()) {
    return Status::IoError("cannot open " + path);
  }
  return ParseRulesLenient(in, std::move(schema), std::move(pool), options);
}

RuleSet ParseRules(std::istream& in, std::shared_ptr<const Schema> schema,
                   std::shared_ptr<ValuePool> pool) {
  StatusOr<RuleSet> result =
      ParseRulesLenient(in, std::move(schema), std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

RuleSet ParseRulesFromString(const std::string& text,
                             std::shared_ptr<const Schema> schema,
                             std::shared_ptr<ValuePool> pool) {
  std::istringstream in(text);
  return ParseRules(in, std::move(schema), std::move(pool));
}

RuleSet ParseRulesFile(const std::string& path,
                       std::shared_ptr<const Schema> schema,
                       std::shared_ptr<ValuePool> pool) {
  StatusOr<RuleSet> result =
      ParseRulesFileLenient(path, std::move(schema), std::move(pool));
  FIXREP_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

void WriteRules(const RuleSet& rules, std::ostream& out) {
  const Schema& schema = rules.schema();
  const ValuePool& pool = rules.pool();
  for (size_t i = 0; i < rules.size(); ++i) {
    const FixingRule& rule = rules.rule(i);
    out << "RULE\n";
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      out << "  IF " << schema.attribute_name(rule.evidence_attrs[e])
          << " = " << pool.GetString(rule.evidence_values[e]) << "\n";
    }
    out << "  WRONG " << schema.attribute_name(rule.target) << " IN ";
    for (size_t n = 0; n < rule.negative_patterns.size(); ++n) {
      if (n > 0) out << " | ";
      out << pool.GetString(rule.negative_patterns[n]);
    }
    out << "\n  THEN " << schema.attribute_name(rule.target) << " = "
        << pool.GetString(rule.fact) << "\nEND\n";
    if (i + 1 < rules.size()) out << "\n";
  }
}

std::string SerializeRules(const RuleSet& rules) {
  std::ostringstream out;
  WriteRules(rules, out);
  return out.str();
}

Status TryWriteRulesFile(const RuleSet& rules, const std::string& path) {
  std::ofstream out(path);
  if (FIXREP_FAULT("rules.open_write") || !out.good()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  WriteRules(rules, out);
  if (FIXREP_FAULT("rules.write_flush")) out.setstate(std::ios::badbit);
  out.flush();
  if (!out.good()) {
    return Status::IoError("write failed for " + path +
                           " (disk full or stream error)");
  }
  return Status::Ok();
}

void WriteRulesFile(const RuleSet& rules, const std::string& path) {
  const Status status = TryWriteRulesFile(rules, path);
  FIXREP_CHECK(status.ok()) << status.message();
}

}  // namespace fixrep
