#ifndef FIXREP_RULES_MINIMIZE_H_
#define FIXREP_RULES_MINIMIZE_H_

#include <cstddef>
#include <vector>

#include "rules/implication.h"
#include "rules/rule_set.h"

namespace fixrep {

// Result of a minimization pass.
struct MinimizeReport {
  // Indices (into the original set) of rules removed as implied.
  std::vector<size_t> removed_rules;
  // True if every implication verdict came from an exhaustive
  // small-model check; false if any used the sampled fallback (the
  // minimized set is then equivalent only with high probability).
  bool exhaustive = true;
};

// Removes redundant rules from a consistent set: a rule is dropped when
// the remaining rules imply it (Section 4.3 — "the implication analysis
// helps us find and remove redundant rules to improve performance").
// Rules are tried in reverse order so earlier (typically higher-support)
// rules win ties between mutually redundant rules. The surviving set
// computes the same fix for every tuple.
MinimizeReport MinimizeRules(RuleSet* rules,
                             const ImplicationOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_RULES_MINIMIZE_H_
