#include "rules/implication.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "rules/consistency.h"

namespace fixrep {

namespace {

// Collects, for every attribute, the constants appearing anywhere in the
// rules (evidence, negative patterns, and facts — a superset of the
// paper's small model, which is safe).
std::vector<std::vector<ValueId>> SmallModelValues(const RuleSet& rules,
                                                   const FixingRule& phi) {
  std::vector<std::vector<ValueId>> values(rules.schema().arity());
  auto add = [&values](AttrId attr, ValueId v) {
    auto& vs = values[static_cast<size_t>(attr)];
    if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
  };
  auto add_rule = [&add](const FixingRule& rule) {
    for (size_t i = 0; i < rule.evidence_attrs.size(); ++i) {
      add(rule.evidence_attrs[i], rule.evidence_values[i]);
    }
    for (const ValueId v : rule.negative_patterns) add(rule.target, v);
    add(rule.target, rule.fact);
  };
  for (const auto& rule : rules.rules()) add_rule(rule);
  add_rule(phi);
  return values;
}

}  // namespace

ImplicationResult Implies(const RuleSet& sigma, const FixingRule& phi,
                          const ImplicationOptions& options) {
  ImplicationResult result;
  if (!IsConsistentChar(sigma)) {
    result.reason = "precondition failed: sigma itself is inconsistent";
    return result;
  }

  RuleSet with_phi = sigma;
  with_phi.Add(phi);
  std::vector<Conflict> conflicts;
  if (!IsConsistentChar(with_phi, &conflicts)) {
    result.reason =
        "sigma ∪ {phi} is inconsistent: " + conflicts[0].Describe(with_phi);
    return result;
  }

  std::vector<const FixingRule*> sigma_order;
  sigma_order.reserve(sigma.size());
  for (const auto& rule : sigma.rules()) sigma_order.push_back(&rule);
  std::vector<const FixingRule*> with_phi_order = sigma_order;
  with_phi_order.push_back(&phi);

  // Small model: per-attribute constants + the out-of-model placeholder
  // kNullValue (standing for "any value not mentioned by the rules").
  const auto values = SmallModelValues(sigma, phi);
  std::vector<size_t> involved;  // attributes with at least one constant
  uint64_t total = 1;
  bool overflow = false;
  for (size_t a = 0; a < values.size(); ++a) {
    if (values[a].empty()) continue;
    involved.push_back(a);
    const uint64_t options_here = values[a].size() + 1;  // + placeholder
    if (total > options.enumeration_cap / options_here) overflow = true;
    total *= options_here;
  }

  auto tuple_at = [&](uint64_t n) {
    Tuple t(values.size(), kNullValue);
    for (const size_t a : involved) {
      const uint64_t base = values[a].size() + 1;
      const uint64_t k = n % base;
      n /= base;
      t[a] = (k == 0) ? kNullValue : values[a][k - 1];
    }
    return t;
  };

  auto check_tuple = [&](const Tuple& t) {
    Tuple fix_sigma = t;
    ChaseWithPriority(sigma_order, &fix_sigma);
    Tuple fix_with_phi = t;
    ChaseWithPriority(with_phi_order, &fix_with_phi);
    return fix_sigma == fix_with_phi;
  };

  if (!overflow && total <= options.enumeration_cap) {
    for (uint64_t n = 0; n < total; ++n) {
      const Tuple t = tuple_at(n);
      if (!check_tuple(t)) {
        result.reason = "found a tuple whose fix changes when phi is added";
        result.counterexample = t;
        return result;
      }
    }
    result.implied = true;
    result.exhaustive = true;
    result.reason = "exhaustive small-model check passed";
    return result;
  }

  // Sampled fallback; a negative answer is exact, a positive one is
  // probabilistic (documented in ImplicationResult::exhaustive).
  Rng rng(options.seed);
  result.exhaustive = false;
  for (uint64_t i = 0; i < options.sample_count; ++i) {
    Tuple t(values.size(), kNullValue);
    for (const size_t a : involved) {
      const uint64_t base = values[a].size() + 1;
      const uint64_t k = rng.Uniform(base);
      t[a] = (k == 0) ? kNullValue : values[a][k - 1];
    }
    if (!check_tuple(t)) {
      result.reason = "found a tuple whose fix changes when phi is added";
      result.counterexample = t;
      return result;
    }
  }
  result.implied = true;
  result.reason = "sampled small-model check passed (probabilistic)";
  return result;
}

}  // namespace fixrep
