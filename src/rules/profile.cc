#include "rules/profile.h"

#include <algorithm>

namespace fixrep {

RuleSetProfile ProfileRules(const RuleSet& rules) {
  RuleSetProfile profile;
  profile.num_rules = rules.size();
  size_t total_negatives = 0;
  for (const auto& rule : rules.rules()) {
    profile.total_size += rule.size();
    ++profile.rules_per_target[rule.target];
    ++profile.negative_pattern_histogram[rule.negative_patterns.size()];
    ++profile.evidence_arity_histogram[rule.evidence_attrs.size()];
    profile.max_negative_patterns = std::max(
        profile.max_negative_patterns, rule.negative_patterns.size());
    total_negatives += rule.negative_patterns.size();
  }
  profile.mean_negative_patterns =
      profile.num_rules == 0
          ? 0.0
          : static_cast<double>(total_negatives) /
                static_cast<double>(profile.num_rules);
  return profile;
}

std::string RuleSetProfile::Format(const Schema& schema) const {
  std::string out = "rules: " + std::to_string(num_rules) +
                    ", size(Sigma): " + std::to_string(total_size) + "\n";
  out += "targets:";
  for (const auto& [attr, count] : rules_per_target) {
    out += " " + schema.attribute_name(attr) + "=" + std::to_string(count);
  }
  out += "\nevidence arity:";
  for (const auto& [arity, count] : evidence_arity_histogram) {
    out += " |X|=" + std::to_string(arity) + ":" + std::to_string(count);
  }
  out += "\nnegative patterns:";
  for (const auto& [patterns, count] : negative_pattern_histogram) {
    out += " " + std::to_string(patterns) + ":" + std::to_string(count);
  }
  out += "\nmax negatives: " + std::to_string(max_negative_patterns) +
         ", mean negatives: ";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", mean_negative_patterns);
  out += buffer;
  out += "\n";
  return out;
}

}  // namespace fixrep
