#ifndef FIXREP_RULES_CONSISTENCY_H_
#define FIXREP_RULES_CONSISTENCY_H_

#include <string>
#include <vector>

#include "rules/rule_set.h"

namespace fixrep {

// Why a pair of rules conflicts, following the case analysis of Fig. 4.
enum class ConflictKind {
  // Case 1: B_i = B_j, Tp_i ∩ Tp_j != {}, and the facts differ.
  kSameTargetDivergentFacts,
  // Case 2(a): B_i in X_j, B_j not in X_i, and tp_j[B_i] in Tp_i[B_i].
  kTargetInEvidenceIj,
  // Case 2(b): symmetric to 2(a).
  kTargetInEvidenceJi,
  // Case 2(c): both directions hold.
  kMutualTargetInEvidence,
  // Found by tuple enumeration: two application orders reach different
  // fixpoints on the witness tuple.
  kDivergentFix,
  // Strict-mode only (see PairConsistentStrictChar): B_i = B_j with the
  // SAME fact but different evidence patterns, and a tuple can match
  // both. The pair alone is confluent, but whichever rule fires first
  // assures a different attribute set, which can divert a third rule —
  // the counterexample this library found to the paper's Proposition 3.
  kSameTargetDivergentAssured,
};

// A detected conflict between two rules of a set, with a witness tuple
// that has two different fixes (built by both checkers).
struct Conflict {
  size_t rule_i = 0;
  size_t rule_j = 0;
  ConflictKind kind = ConflictKind::kDivergentFix;
  Tuple witness;  // attributes not pinned by the conflict are kNullValue

  // Renders the conflict for diagnostics (rules + kind + witness).
  std::string Describe(const RuleSet& rules) const;
};

// --- Pairwise checks (Proposition 3 reduces set consistency to pairs) ---

// Rule characterization (algorithm isConsist_r, Fig. 4). O(size per pair)
// expected time using hashing / sorted-set intersection. If inconsistent
// and `conflict` is non-null, fills kind and a witness tuple.
bool PairConsistentChar(const FixingRule& a, const FixingRule& b,
                        size_t arity, Conflict* conflict);

// Tuple enumeration (algorithm isConsist_t, Section 5.2.1): enumerates the
// product of per-attribute constants drawn from the two rules' evidence
// and negative patterns, chases both application orders on each tuple and
// compares the fixpoints. Exponential in the number of involved
// attributes; exact, used to cross-validate the characterization.
bool PairConsistentEnum(const FixingRule& a, const FixingRule& b,
                        size_t arity, Conflict* conflict);

// Strict pairwise check: everything PairConsistentChar flags, plus
// kSameTargetDivergentAssured pairs.
//
// Why this exists: the paper's Proposition 3 claims a set is consistent
// iff all pairs are, but randomized testing of this library produced a
// counterexample — three rules, pairwise consistent under Fig. 4, where
// two rules write the SAME fact to the same target from different
// evidence sets; the order in which they fire assures different
// attributes, and a third rule targeting an attribute in that difference
// fires in one order but not the other, yielding two distinct fixpoints.
// Pairwise *strict* consistency provably restores the Church-Rosser
// property: by the Fig. 4 case analysis extended with the equal-fact
// case, no two strictly-consistent rules that are simultaneously
// properly applicable can lead to different (tuple, assured-set) states
// up to joinability, so local confluence plus termination (Newman's
// lemma) gives unique fixes.
bool PairConsistentStrictChar(const FixingRule& a, const FixingRule& b,
                              size_t arity, Conflict* conflict);

// --- Whole-set checks ---

// isConsist_r over all pairs. Early-exits on the first conflict unless
// `find_all` is set. `conflicts` may be null.
bool IsConsistentChar(const RuleSet& rules,
                      std::vector<Conflict>* conflicts = nullptr,
                      bool find_all = false);

// isConsist_t over all pairs.
bool IsConsistentEnum(const RuleSet& rules,
                      std::vector<Conflict>* conflicts = nullptr,
                      bool find_all = false);

// Strict variant of IsConsistentChar; a set passing this check has
// provably unique fixes for every tuple. Used by rule generation and the
// resolution workflow so the repaired data is deterministic even in the
// Proposition-3 corner case.
bool IsConsistentStrict(const RuleSet& rules,
                        std::vector<Conflict>* conflicts = nullptr,
                        bool find_all = false);

// Chases `t` to a fixpoint: repeatedly applies the first properly
// applicable rule in `priority` order (restarting the scan after each
// application). For a consistent set the result is the unique fix of t
// regardless of the order (Church-Rosser); for checkers, running two
// different priority orders exposes divergent fixes.
void ChaseWithPriority(const std::vector<const FixingRule*>& priority,
                       Tuple* t);

}  // namespace fixrep

#endif  // FIXREP_RULES_CONSISTENCY_H_
