#ifndef FIXREP_RULES_PROFILE_H_
#define FIXREP_RULES_PROFILE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "rules/rule_set.h"

namespace fixrep {

// Descriptive statistics about a rule set, for curators and for the
// authoring tooling: which attributes the rules target, how big their
// evidence and negative-pattern sets are, and how much total pattern
// material the set carries (size(Σ), the paper's complexity parameter).
struct RuleSetProfile {
  size_t num_rules = 0;
  size_t total_size = 0;  // size(Σ)
  // target attribute -> number of rules targeting it
  std::map<AttrId, size_t> rules_per_target;
  // #negative patterns -> number of rules with that many
  std::map<size_t, size_t> negative_pattern_histogram;
  // |X| -> number of rules with that evidence arity
  std::map<size_t, size_t> evidence_arity_histogram;
  size_t max_negative_patterns = 0;
  double mean_negative_patterns = 0.0;

  // Multi-line human-readable rendering.
  std::string Format(const Schema& schema) const;
};

// Computes the profile of `rules`.
RuleSetProfile ProfileRules(const RuleSet& rules);

}  // namespace fixrep

#endif  // FIXREP_RULES_PROFILE_H_
