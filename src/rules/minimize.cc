#include "rules/minimize.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace fixrep {

MinimizeReport MinimizeRules(RuleSet* rules,
                             const ImplicationOptions& options) {
  FIXREP_CHECK(rules != nullptr);
  MinimizeReport report;
  std::vector<size_t> original_index(rules->size());
  std::iota(original_index.begin(), original_index.end(), 0);
  for (size_t i = rules->size(); i-- > 0;) {
    RuleSet rest(rules->schema_ptr(), rules->pool_ptr());
    for (size_t j = 0; j < rules->size(); ++j) {
      if (j != i) rest.Add(rules->rule(j));
    }
    const ImplicationResult result = Implies(rest, rules->rule(i), options);
    if (!result.implied) continue;
    report.exhaustive &= result.exhaustive;
    report.removed_rules.push_back(original_index[i]);
    original_index.erase(original_index.begin() +
                         static_cast<ptrdiff_t>(i));
    *rules = std::move(rest);
  }
  std::reverse(report.removed_rules.begin(), report.removed_rules.end());
  return report;
}

}  // namespace fixrep
