#ifndef FIXREP_RULES_RULE_SET_H_
#define FIXREP_RULES_RULE_SET_H_

#include <memory>
#include <vector>

#include "relation/schema.h"
#include "relation/value_pool.h"
#include "rules/fixing_rule.h"

namespace fixrep {

// A set Σ of fixing rules over one schema, sharing one value pool with
// the data they repair. Owns the rules; the schema and pool are shared.
class RuleSet {
 public:
  RuleSet(std::shared_ptr<const Schema> schema,
          std::shared_ptr<ValuePool> pool);

  RuleSet(const RuleSet&) = default;
  RuleSet& operator=(const RuleSet&) = default;
  RuleSet(RuleSet&&) = default;
  RuleSet& operator=(RuleSet&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }
  ValuePool& pool() { return *pool_; }
  const ValuePool& pool() const { return *pool_; }
  const std::shared_ptr<ValuePool>& pool_ptr() const { return pool_; }

  // Validates the rule against the schema and appends it. Returns the
  // rule's index in the set.
  size_t Add(FixingRule rule);

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const FixingRule& rule(size_t i) const { return rules_[i]; }
  FixingRule& mutable_rule(size_t i) { return rules_[i]; }
  const std::vector<FixingRule>& rules() const { return rules_; }

  // Removes the rules at the given indices (need not be sorted).
  void Remove(std::vector<size_t> indices);

  // size(Σ): total number of constants across all rules, the quantity the
  // paper's complexity bounds are stated in.
  size_t TotalSize() const;

  // A copy restricted to the first `n` rules (for rule-count sweeps).
  RuleSet Prefix(size_t n) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValuePool> pool_;
  std::vector<FixingRule> rules_;
};

}  // namespace fixrep

#endif  // FIXREP_RULES_RULE_SET_H_
