#ifndef FIXREP_RULES_RESOLUTION_H_
#define FIXREP_RULES_RESOLUTION_H_

#include <cstddef>
#include <vector>

#include "rules/consistency.h"
#include "rules/rule_set.h"

namespace fixrep {

// What a resolution pass did to make a rule set consistent (Section 5.3).
// Both resolvers target *strict* consistency (IsConsistentStrict), which
// unlike the paper's Proposition-3 pairwise notion provably guarantees a
// unique fix for every tuple — see PairConsistentStrictChar.
// Both strategies are guaranteed to terminate because each round strictly
// decreases the total number of constants in the set, and neither ever
// adds values (the paper's termination requirement for expert edits).
struct ResolutionReport {
  // Rules dropped, identified by their index in the *original* set.
  std::vector<size_t> dropped_rules;
  // Negative-pattern values removed across all surviving rules.
  size_t patterns_removed = 0;
  // Number of check-fix rounds until the set became consistent.
  size_t rounds = 0;
};

// Conservative strategy: drop every rule involved in any conflict, repeat
// until consistent. Simple, loses useful rules (the paper's motivation
// for the expert-guided alternative below).
ResolutionReport ResolveByDropping(RuleSet* rules);

// Pattern-pruning strategy, mimicking the expert fix of Example 10:
// for a target-in-evidence conflict, remove the negative-pattern value
// that enables the conflict (e.g., remove Tokyo from phi_1'); for a
// same-target conflict, remove the overlapping negative patterns from the
// rule with the larger negative set. A rule whose negative set would
// become empty is dropped instead.
ResolutionReport ResolveByPruning(RuleSet* rules);

}  // namespace fixrep

#endif  // FIXREP_RULES_RESOLUTION_H_
