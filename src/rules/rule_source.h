#ifndef FIXREP_RULES_RULE_SOURCE_H_
#define FIXREP_RULES_RULE_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/simd.h"
#include "relation/table.h"

namespace fixrep {

// The read-side contract of a compiled rule set (docs/rules.md).
//
// Every repair engine (lrepair, crepair, parallel, sharded, streaming,
// incremental) chases tuples against the same flat structures: an
// open-addressing hash over packed (attribute, value) keys into
// CSR-packed inverted lists, per-rule side arrays (|X_phi|, target,
// fact, assured bitmask), and CSR evidence/negative patterns. RuleSource
// is that contract as a concrete view: a struct of spans plus inline
// probe methods, so the chase pays zero per-probe virtual dispatch no
// matter which backing store produced the spans.
//
// Two backends exist:
//  * CompiledRuleIndex (repair/rule_index.h) — the in-RAM compilation;
//    its view has no translator and no cache, so every accessor reduces
//    to exactly the loads the pre-seam code performed.
//  * RuleDict (rules/rule_dict.h) — a memory-mapped on-disk dictionary
//    whose pattern values live in the dictionary's own interned string
//    space. Its view carries a ValueTranslator (live ValueId -> dict
//    ValueId, memoized per worker) and a PostingCache (direct-mapped
//    hot-entry cache over resolved posting ranges, the MemoCache
//    pattern) so duplicate-heavy workloads probe mmap pages once.
//
// Value spaces. Tuple cells hold *live* ValueIds (the run's ValuePool).
// The spans' pattern values (ev_values, neg_values, slot keys) are in
// the *backend* space; `fact` is always live (a dictionary pre-interns
// its facts at bind time, rules/rule_dict.h). Accessors taking a tuple
// value translate internally — a live value with no backend equivalent
// translates to kAbsentValue, which matches nothing and probes to an
// empty range, exactly the semantics the in-RAM index gives a value no
// rule mentions. Byte-identical repair output across backends follows:
// same postings in the same (ascending rule id) order, same match
// verdicts, same facts written.
//
// Thread model: spans are immutable and shared; translator/cache are
// worker-private mutable scratch. Engines obtain one RuleSourceHandle
// per worker from a RuleRepository (serially, before the workers run)
// and hand each worker its handle's source.

// Contiguous slice of a CSR postings array: the indices of every rule
// whose evidence pattern contains one (attribute, value) cell.
struct PostingRange {
  const uint32_t* begin = nullptr;
  const uint32_t* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
  bool empty() const { return begin == end; }
};

// One open-addressing hash slot: packed key -> [begin, end) posting
// offsets. Shared by both backends (and the on-disk slot section is an
// array of exactly this struct).
struct RuleSlot {
  uint64_t key = UINT64_MAX;
  uint32_t begin = 0;
  uint32_t end = 0;
};

inline constexpr uint64_t kEmptyRuleKey = UINT64_MAX;

// A live ValueId with no equivalent in the backend value space. Never a
// valid interned id; compares unequal to every pattern value and packs
// to a key no slot holds.
inline constexpr ValueId kAbsentValue = -2;

// Per-worker live->backend value translation, memoized per live id so
// the steady-state cost is one bounds check and one array load. The
// virtual slow path runs once per distinct live value a worker sees,
// not per probe.
class ValueTranslator {
 public:
  virtual ~ValueTranslator() = default;

  ValueId Translate(ValueId live) {
    if (live < 0) return live;  // kNullValue passes through
    const auto i = static_cast<size_t>(live);
    if (i >= memo_.size()) memo_.resize(i + 1024, kUnresolved);
    ValueId mapped = memo_[i];
    if (mapped == kUnresolved) mapped = memo_[i] = Resolve(live);
    return mapped;
  }

 protected:
  // Maps one live id to its backend id, or kAbsentValue. Must be pure:
  // the result is memoized forever.
  virtual ValueId Resolve(ValueId live) = 0;

 private:
  static constexpr ValueId kUnresolved = INT32_MIN;
  std::vector<ValueId> memo_;
};

// Direct-mapped cache of resolved posting ranges (the MemoCache
// eviction discipline: power-of-two slots, overwrite on collision, full
// key compare on hit). Caches backend-space packed keys, including
// empty resolutions — for a demand-paged dictionary a hit skips the
// slot-table probe entirely, so hot (attr, value) pairs stop touching
// the mapped file at all.
class PostingCache {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 14;

  explicit PostingCache(size_t capacity = kDefaultCapacity) {
    size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    entries_.assign(cap, Entry{});
  }

  bool Find(uint64_t key, uint64_t hash, PostingRange* out) {
    const Entry& e = entries_[hash & mask_];
    if (!e.used || e.key != key) {
      ++misses_;
      return false;
    }
    ++hits_;
    *out = {e.begin, e.end};
    return true;
  }

  void Insert(uint64_t key, uint64_t hash, PostingRange range) {
    Entry& e = entries_[hash & mask_];
    e.used = true;
    e.key = key;
    e.begin = range.begin;
    e.end = range.end;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t capacity() const { return mask_ + 1; }

 private:
  struct Entry {
    bool used = false;
    uint64_t key = 0;
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
  };

  size_t mask_ = 0;
  std::vector<Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// The flat view. Copyable and cheap (a handful of pointers); the backing
// store and scratch must outlive every copy.
class RuleSource {
 public:
  RuleSource() = default;

  // The packed probe key for one backend-space cell. attr < 64 (schemas
  // are bounded to 64 attributes) and interned values are non-negative,
  // so every valid key has its top bits clear and UINT64_MAX can mark an
  // empty slot. kAbsentValue packs to a value-field no real key carries.
  static uint64_t PackKey(AttrId attr, ValueId value) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(attr)) << 32) |
           static_cast<uint32_t>(value);
  }

  // The probe key for a *live* cell: translates into the backend value
  // space first. This is the only place engines pack keys.
  uint64_t ProbeKey(AttrId attr, ValueId live_value) const {
    const ValueId v = translator_ == nullptr
                          ? live_value
                          : translator_->Translate(live_value);
    return PackKey(attr, v);
  }

  // Rules phi with attr in X_phi and tp_phi[attr] == value, ascending.
  // Empty range when no rule mentions the cell (or the value has no
  // backend equivalent).
  PostingRange Lookup(AttrId attr, ValueId live_value) const {
    const uint64_t key = ProbeKey(attr, live_value);
    return CachedResolve(key, SplitMix64(key));
  }

  // Batched probe over pre-packed keys (from ProbeKey): hashes `n` keys
  // with `kernel`, prefetches every probed slot cacheline, resolves the
  // probes, and prefetches each hit's posting range. out[i] is exactly
  // what a scalar resolve of key i returns, for every kernel — batching
  // buys memory-level parallelism, never different results.
  void LookupBatch(SimdKernel kernel, const uint64_t* keys, size_t n,
                   PostingRange* out) const {
    // Sub-batch of 16: big enough to fill the load buffers with
    // independent slot fetches, small enough that the hash scratch stays
    // in registers / L1 and the prefetched lines are still resident when
    // resolved.
    constexpr size_t kSubBatch = 16;
    uint64_t hashes[kSubBatch];
    for (size_t base = 0; base < n; base += kSubBatch) {
      const size_t m = std::min(kSubBatch, n - base);
      HashBatch(kernel, keys + base, m, hashes);
      if (cache_ == nullptr) {
        // Issue all home-slot prefetches before any probe resolves: the
        // independent cache misses overlap instead of serializing.
        for (size_t i = 0; i < m; ++i) {
          PrefetchRead(&slots_[hashes[i] & slot_mask_]);
        }
        for (size_t i = 0; i < m; ++i) {
          const PostingRange r = Resolve(keys[base + i], hashes[i]);
          out[base + i] = r;
          // A hit's postings are consumed by the caller's bump loop
          // right after this returns — start those lines now.
          if (r.begin != r.end) PrefetchRead(r.begin);
        }
      } else {
        for (size_t i = 0; i < m; ++i) {
          out[base + i] = CachedResolve(keys[base + i], hashes[i]);
        }
      }
    }
  }
  void LookupBatch(const uint64_t* keys, size_t n, PostingRange* out) const {
    LookupBatch(ActiveSimdKernel(), keys, n, out);
  }

  // |X_phi| — the evidence counter threshold for rule i.
  uint32_t evidence_count(uint32_t rule) const {
    return evidence_count_[rule];
  }
  AttrId target(uint32_t rule) const { return target_[rule]; }
  // Live value space: safe to write into a tuple.
  ValueId fact(uint32_t rule) const { return fact_[rule]; }
  AttrSet assured(uint32_t rule) const {
    return AttrSet::FromBits(assured_bits_[rule]);
  }

  // v in Tp[B_phi] — the negative-pattern clause of Matches alone,
  // evaluated by binary search of rule i's flat sorted slice. `v` is a
  // live tuple value; translated before the search.
  bool NegativeMatch(uint32_t rule, ValueId v) const {
    if (translator_ != nullptr) v = translator_->Translate(v);
    const ValueId* neg_begin = neg_values_ + neg_offsets_[rule];
    const ValueId* neg_end = neg_values_ + neg_offsets_[rule + 1];
    return std::binary_search(neg_begin, neg_end, v);
  }

  // t |- phi, evaluated over the CSR side arrays: t[B] in Tp[B] (binary
  // search of the flat sorted slice) and t[X] = tp[X] (flat pair walk).
  // Semantically identical to FixingRule::Matches(t) on the rule the
  // backend compiled.
  bool MatchesFlat(uint32_t rule, TupleRef t) const {
    if (!NegativeMatch(rule, t[target_[rule]])) return false;
    const uint32_t ev_end = ev_offsets_[rule + 1];
    if (translator_ == nullptr) {
      for (uint32_t e = ev_offsets_[rule]; e < ev_end; ++e) {
        if (t[ev_attrs_[e]] != ev_values_[e]) return false;
      }
    } else {
      for (uint32_t e = ev_offsets_[rule]; e < ev_end; ++e) {
        if (translator_->Translate(t[ev_attrs_[e]]) != ev_values_[e]) {
          return false;
        }
      }
    }
    return true;
  }

  // Iterable view of a flat array (the spans below are backed by either
  // heap vectors or mapped file sections).
  template <typename T>
  struct Span {
    const T* data = nullptr;
    size_t count = 0;
    const T* begin() const { return data; }
    const T* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const T& operator[](size_t i) const { return data[i]; }
  };

  // Rules with empty evidence (always candidates), ascending.
  Span<uint32_t> empty_evidence_rules() const {
    return {empty_evidence_rules_, num_empty_evidence_rules_};
  }

  // The distinct attributes appearing in any rule's evidence pattern,
  // ascending. Cells of any other attribute can never hit a posting
  // list, so batched gathers probe only these columns.
  Span<AttrId> evidence_attrs() const {
    return {evidence_attr_list_, num_evidence_attrs_};
  }

  // Union of every rule's evidence and target attributes — the attribute
  // closure the chase can ever read or write (streaming column pruning,
  // shard routing).
  AttrSet mentioned_attrs() const { return mentioned_attrs_; }

  size_t num_rules() const { return num_rules_; }
  size_t arity() const { return arity_; }

  ValueTranslator* translator() const { return translator_; }
  PostingCache* posting_cache() const { return cache_; }

  // Span wiring, used by the backends only.
  struct Init {
    const RuleSlot* slots = nullptr;
    size_t slot_mask = 0;
    const uint32_t* postings = nullptr;
    const uint32_t* evidence_count = nullptr;
    const AttrId* target = nullptr;
    const ValueId* fact = nullptr;
    const uint64_t* assured_bits = nullptr;
    const uint32_t* ev_offsets = nullptr;
    const AttrId* ev_attrs = nullptr;
    const ValueId* ev_values = nullptr;
    const uint32_t* neg_offsets = nullptr;
    const ValueId* neg_values = nullptr;
    const uint32_t* empty_evidence_rules = nullptr;
    size_t num_empty_evidence_rules = 0;
    const AttrId* evidence_attr_list = nullptr;
    size_t num_evidence_attrs = 0;
    AttrSet mentioned_attrs;
    size_t num_rules = 0;
    size_t arity = 0;
    ValueTranslator* translator = nullptr;
    PostingCache* cache = nullptr;
  };
  explicit RuleSource(const Init& init)
      : slots_(init.slots),
        slot_mask_(init.slot_mask),
        postings_(init.postings),
        evidence_count_(init.evidence_count),
        target_(init.target),
        fact_(init.fact),
        assured_bits_(init.assured_bits),
        ev_offsets_(init.ev_offsets),
        ev_attrs_(init.ev_attrs),
        ev_values_(init.ev_values),
        neg_offsets_(init.neg_offsets),
        neg_values_(init.neg_values),
        empty_evidence_rules_(init.empty_evidence_rules),
        num_empty_evidence_rules_(init.num_empty_evidence_rules),
        evidence_attr_list_(init.evidence_attr_list),
        num_evidence_attrs_(init.num_evidence_attrs),
        mentioned_attrs_(init.mentioned_attrs),
        num_rules_(init.num_rules),
        arity_(init.arity),
        translator_(init.translator),
        cache_(init.cache) {}

 private:
  // The shared probe tail: walk from the hashed home slot to the key's
  // slot or the first empty one.
  PostingRange Resolve(uint64_t key, uint64_t hash) const {
    size_t slot = hash & slot_mask_;
    while (true) {
      const RuleSlot& s = slots_[slot];
      if (s.key == key) {
        return {postings_ + s.begin, postings_ + s.end};
      }
      if (s.key == kEmptyRuleKey) return {};
      slot = (slot + 1) & slot_mask_;
    }
  }

  PostingRange CachedResolve(uint64_t key, uint64_t hash) const {
    if (cache_ == nullptr) return Resolve(key, hash);
    PostingRange range;
    if (cache_->Find(key, hash, &range)) return range;
    range = Resolve(key, hash);
    cache_->Insert(key, hash, range);
    return range;
  }

  const RuleSlot* slots_ = nullptr;
  size_t slot_mask_ = 0;
  const uint32_t* postings_ = nullptr;
  const uint32_t* evidence_count_ = nullptr;
  const AttrId* target_ = nullptr;
  const ValueId* fact_ = nullptr;
  const uint64_t* assured_bits_ = nullptr;
  const uint32_t* ev_offsets_ = nullptr;
  const AttrId* ev_attrs_ = nullptr;
  const ValueId* ev_values_ = nullptr;
  const uint32_t* neg_offsets_ = nullptr;
  const ValueId* neg_values_ = nullptr;
  const uint32_t* empty_evidence_rules_ = nullptr;
  size_t num_empty_evidence_rules_ = 0;
  const AttrId* evidence_attr_list_ = nullptr;
  size_t num_evidence_attrs_ = 0;
  AttrSet mentioned_attrs_;
  size_t num_rules_ = 0;
  size_t arity_ = 0;
  ValueTranslator* translator_ = nullptr;
  PostingCache* cache_ = nullptr;
};

// One worker's binding to a rule backend: the view plus whatever
// private scratch (translator memo, posting cache) the backend needs.
// Obtained serially via RuleRepository::MakeHandle before workers run;
// each worker uses its own handle's source for the whole run.
class RuleSourceHandle {
 public:
  explicit RuleSourceHandle(RuleSource source) : source_(source) {}
  virtual ~RuleSourceHandle() = default;

  RuleSourceHandle(const RuleSourceHandle&) = delete;
  RuleSourceHandle& operator=(const RuleSourceHandle&) = delete;

  const RuleSource& source() const { return source_; }

 protected:
  RuleSource source_;
};

// A compiled rule set viewed as a handle factory. Virtual dispatch
// happens once per worker (MakeHandle), never per probe. Both backends
// implement this; engines that need whole-set facts before any worker
// exists (scratch sizing, shard routing, WAL headers) read them here.
class RuleRepository {
 public:
  virtual ~RuleRepository() = default;

  virtual size_t num_rules() const = 0;
  virtual size_t arity() const = 0;
  virtual AttrSet mentioned_attrs() const = 0;
  // RuleSetFingerprint of the set this repository compiled
  // (rules/fingerprint.h) — the identity WAL headers journal.
  virtual uint64_t fingerprint() const = 0;
  // One worker's view + scratch. Call serially; the repository must
  // outlive every handle.
  virtual std::unique_ptr<RuleSourceHandle> MakeHandle() const = 0;
};

}  // namespace fixrep

#endif  // FIXREP_RULES_RULE_SOURCE_H_
