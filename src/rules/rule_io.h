#ifndef FIXREP_RULES_RULE_IO_H_
#define FIXREP_RULES_RULE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/quarantine.h"
#include "common/status.h"
#include "rules/rule_set.h"

namespace fixrep {

// Line-oriented text format for fixing rules:
//
//   # phi_1 from the paper's Example 3
//   RULE
//     IF country = China
//     WRONG capital IN Shanghai | Hongkong
//     THEN capital = Beijing
//   END
//
// * Zero or more IF lines give the evidence pattern.
// * Exactly one WRONG line gives the target attribute and its negative
//   patterns, '|'-separated.
// * Exactly one THEN line gives the fact; its attribute must equal the
//   WRONG attribute.
// * '#' starts a comment line; blank lines are ignored.
// * Values are trimmed of surrounding whitespace and must not contain
//   '|' or newlines (attribute names additionally must not contain '=').
//
// Two tiers of entry points:
//  * ParseRules / ParseRulesFromString / ParseRulesFile / WriteRulesFile
//    CHECK-fail with a line number on malformed input — for
//    developer-authored rule files.
//  * The *Lenient / Try* variants return Status and, per
//    RuleParseOptions::on_error, recover at RULE...END granularity: a
//    malformed block (bad directive, unknown attribute, missing
//    WRONG/THEN, ...) is skipped or quarantined whole — raw text
//    preserved — and parsing resumes at the next block.

struct RuleParseOptions {
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives one Diagnostic per dropped block (or stray top-level line)
  // when on_error is kQuarantine. Diagnostic::line is the 1-based line
  // of the first error in the block; raw_text is the whole block.
  QuarantineSink* quarantine = nullptr;
};

// Every dropped block ticks fixrep.quarantine.rules (kSkip and
// kQuarantine).
StatusOr<RuleSet> ParseRulesLenient(std::istream& in,
                                    std::shared_ptr<const Schema> schema,
                                    std::shared_ptr<ValuePool> pool,
                                    const RuleParseOptions& options = {});

StatusOr<RuleSet> ParseRulesFileLenient(const std::string& path,
                                        std::shared_ptr<const Schema> schema,
                                        std::shared_ptr<ValuePool> pool,
                                        const RuleParseOptions& options = {});

// Writes, flushes, and verifies the stream so short writes surface as
// kIoError instead of silently truncating.
Status TryWriteRulesFile(const RuleSet& rules, const std::string& path);

// CHECK-ing wrappers over the lenient/Try variants above.
RuleSet ParseRules(std::istream& in, std::shared_ptr<const Schema> schema,
                   std::shared_ptr<ValuePool> pool);

RuleSet ParseRulesFromString(const std::string& text,
                             std::shared_ptr<const Schema> schema,
                             std::shared_ptr<ValuePool> pool);

RuleSet ParseRulesFile(const std::string& path,
                       std::shared_ptr<const Schema> schema,
                       std::shared_ptr<ValuePool> pool);

void WriteRules(const RuleSet& rules, std::ostream& out);

std::string SerializeRules(const RuleSet& rules);

void WriteRulesFile(const RuleSet& rules, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RULES_RULE_IO_H_
