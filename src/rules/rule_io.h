#ifndef FIXREP_RULES_RULE_IO_H_
#define FIXREP_RULES_RULE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "rules/rule_set.h"

namespace fixrep {

// Line-oriented text format for fixing rules:
//
//   # phi_1 from the paper's Example 3
//   RULE
//     IF country = China
//     WRONG capital IN Shanghai | Hongkong
//     THEN capital = Beijing
//   END
//
// * Zero or more IF lines give the evidence pattern.
// * Exactly one WRONG line gives the target attribute and its negative
//   patterns, '|'-separated.
// * Exactly one THEN line gives the fact; its attribute must equal the
//   WRONG attribute.
// * '#' starts a comment line; blank lines are ignored.
// * Values are trimmed of surrounding whitespace and must not contain
//   '|' or newlines (attribute names additionally must not contain '=').
//
// Parsing CHECK-fails with a line number on malformed input — rule files
// are developer-authored artifacts, not untrusted user data.

RuleSet ParseRules(std::istream& in, std::shared_ptr<const Schema> schema,
                   std::shared_ptr<ValuePool> pool);

RuleSet ParseRulesFromString(const std::string& text,
                             std::shared_ptr<const Schema> schema,
                             std::shared_ptr<ValuePool> pool);

RuleSet ParseRulesFile(const std::string& path,
                       std::shared_ptr<const Schema> schema,
                       std::shared_ptr<ValuePool> pool);

void WriteRules(const RuleSet& rules, std::ostream& out);

std::string SerializeRules(const RuleSet& rules);

void WriteRulesFile(const RuleSet& rules, const std::string& path);

}  // namespace fixrep

#endif  // FIXREP_RULES_RULE_IO_H_
