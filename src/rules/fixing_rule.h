#ifndef FIXREP_RULES_FIXING_RULE_H_
#define FIXREP_RULES_FIXING_RULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value_pool.h"

namespace fixrep {

// AttrSet (the bitmask attribute-set type) lives in relation/schema.h
// next to AttrId; it is re-exported here because every rules/ consumer
// historically included it from this header.

// A fixing rule (Section 3.1):
//
//   phi : ((X, tp[X]), (B, Tp[B])) -> tp+[B]
//
// * `evidence_attrs`/`evidence_values`: the evidence pattern tp[X],
//   stored as parallel vectors sorted by attribute id.
// * `target`: the attribute B (never in X).
// * `negative_patterns`: Tp[B], a sorted, de-duplicated, non-empty set of
//   known-wrong values.
// * `fact`: tp+[B], the correct value; never a member of Tp[B].
//
// A tuple t *matches* phi iff t[X] = tp[X] and t[B] in Tp[B]. Applying a
// matched rule sets t[B] := fact and (in the chase) marks X ∪ {B} assured.
struct FixingRule {
  std::vector<AttrId> evidence_attrs;
  std::vector<ValueId> evidence_values;
  AttrId target = kInvalidAttr;
  std::vector<ValueId> negative_patterns;
  ValueId fact = kNullValue;

  // size(phi) as used in the paper's complexity bounds: number of
  // constants in the rule.
  size_t size() const {
    return evidence_attrs.size() + negative_patterns.size() + 1;
  }

  // t[X] = tp[X]?
  bool MatchesEvidence(TupleRef t) const {
    for (size_t i = 0; i < evidence_attrs.size(); ++i) {
      if (t[evidence_attrs[i]] != evidence_values[i]) return false;
    }
    return true;
  }

  // v in Tp[B]? (binary search; negative_patterns is sorted)
  bool IsNegative(ValueId v) const;

  // t |- phi : full match (evidence and negative pattern).
  bool Matches(TupleRef t) const {
    return IsNegative(t[target]) && MatchesEvidence(t);
  }

  // tp[A] for A in X, or kNullValue if A not in X.
  ValueId EvidenceValueFor(AttrId attr) const;

  // X as an AttrSet; X ∪ {B} is the set assured by an application.
  AttrSet EvidenceSet() const { return AttrSet::Of(evidence_attrs); }
  AttrSet AssuredSet() const {
    AttrSet s = EvidenceSet();
    s.Add(target);
    return s;
  }

  // Applies the rule unconditionally: t[B] := fact. The caller is
  // responsible for having checked Matches() and the assured set.
  void Apply(TupleSpan t) const { t[target] = fact; }

  // Structural validity w.r.t. a schema: attribute ids in range and
  // sorted, target not in X, patterns sorted/deduped/non-empty, fact not
  // a negative pattern. CHECK-fails with a description on violation.
  void Validate(const Schema& schema) const;

  // Human-readable rendering, e.g.
  //   ((country=China), (capital, {Hongkong, Shanghai})) -> Beijing
  std::string Format(const Schema& schema, const ValuePool& pool) const;

  bool operator==(const FixingRule&) const = default;
};

// Convenience constructor from strings; interns all constants into `pool`
// and validates the result. `evidence` maps attribute name -> constant.
FixingRule MakeRule(const Schema& schema, ValuePool* pool,
                    const std::vector<std::pair<std::string, std::string>>&
                        evidence,
                    const std::string& target_attribute,
                    const std::vector<std::string>& negative_values,
                    const std::string& fact_value);

}  // namespace fixrep

#endif  // FIXREP_RULES_FIXING_RULE_H_
