#include "datagen/hosp.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace fixrep {

namespace {

constexpr const char* kStates[] = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"};

constexpr const char* kCityNames[] = {
    "Springfield", "Riverside",  "Franklin",   "Greenville", "Bristol",
    "Clinton",     "Fairview",   "Salem",      "Madison",    "Georgetown",
    "Arlington",   "Ashland",    "Burlington", "Manchester", "Oxford",
    "Clayton",     "Jackson",    "Milton",     "Auburn",     "Dayton",
    "Lexington",   "Milford",    "Newport",    "Kingston",   "Dover",
    "Hudson",      "Centerville", "Winchester", "Lebanon",   "Florence"};

constexpr const char* kCounties[] = {
    "Adams",  "Brown",   "Clark",  "Douglas", "Franklin", "Grant",
    "Henry",  "Jackson", "Lake",   "Lincoln", "Marion",   "Monroe",
    "Morgan", "Perry",   "Pike",   "Polk",    "Scott",    "Union",
    "Warren", "Wayne"};

constexpr const char* kStreets[] = {
    "Main St",   "Oak Ave",    "Elm St",     "Maple Dr",  "Cedar Ln",
    "Pine St",   "Park Ave",   "Lake Rd",    "Hill St",   "River Rd",
    "Church St", "Center St",  "Walnut St",  "Spring St", "Mill Rd"};

constexpr const char* kHospitalKinds[] = {"General", "Memorial", "Regional",
                                          "Community", "University"};

constexpr const char* kHospitalTypes[] = {"Acute Care Hospitals",
                                          "Critical Access Hospitals",
                                          "Childrens Hospitals"};

constexpr const char* kOwners[] = {
    "Voluntary non-profit - Private", "Government - State",
    "Government - Local",             "Proprietary",
    "Government - Federal",           "Voluntary non-profit - Church"};

struct MeasureFamily {
  const char* prefix;
  const char* condition;
  const char* description;
};

constexpr MeasureFamily kFamilies[] = {
    {"AMI", "Heart Attack", "aspirin at arrival"},
    {"HF", "Heart Failure", "discharge instructions"},
    {"PN", "Pneumonia", "initial antibiotic timing"},
    {"SCIP", "Surgical Infection Prevention", "prophylactic antibiotic"}};

std::string PadNumber(uint64_t n, int width) {
  std::string digits = std::to_string(n);
  if (digits.size() < static_cast<size_t>(width)) {
    digits.insert(0, static_cast<size_t>(width) - digits.size(), '0');
  }
  return digits;
}

struct Hospital {
  ValueId pn, hn, address1, address2, address3, city, state, zip, county,
      phn, ht, ho, es;
};

struct Measure {
  ValueId mc, mn, condition;
  size_t index;  // used to derive the deterministic stateAvg
};

}  // namespace

GeneratedData GenerateHosp(const HospOptions& options) {
  FIXREP_CHECK_GT(options.num_hospitals, 0u);
  FIXREP_CHECK_GT(options.num_measures, 0u);
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "hosp",
      std::vector<std::string>{"PN", "HN", "address1", "address2",
                               "address3", "city", "state", "zip", "county",
                               "phn", "ht", "ho", "es", "MC", "MN",
                               "condition", "stateAvg"});
  GeneratedData data(pool, schema);
  data.fds = {
      ParseFd(*schema,
              "PN -> HN,address1,address2,address3,city,state,zip,county,"
              "phn,ht,ho,es"),
      ParseFd(*schema, "phn -> zip,city,state,address1,address2,address3"),
      ParseFd(*schema, "MC -> MN,condition"),
      ParseFd(*schema, "PN,MC -> stateAvg"),
      ParseFd(*schema, "state,MC -> stateAvg"),
  };

  Rng rng(options.seed);
  constexpr size_t kNumStates = std::size(kStates);
  constexpr size_t kNumCities = std::size(kCityNames);

  std::vector<Hospital> hospitals;
  hospitals.reserve(options.num_hospitals);
  for (size_t h = 0; h < options.num_hospitals; ++h) {
    Hospital hospital;
    const size_t state_index = rng.Uniform(kNumStates);
    const std::string state = kStates[state_index];
    // City pool is shared across states (value repetition), but each
    // city-in-state gets one zip so phn -> zip,city,state is honest.
    const size_t city_index = rng.Uniform(kNumCities);
    const std::string city = kCityNames[city_index];
    const uint64_t zip_number =
        10000 + (state_index * kNumCities + city_index) * 37 % 89999;
    hospital.pn = pool->Intern("PN" + PadNumber(h, 6));
    hospital.hn = pool->Intern(
        city + " " + kHospitalKinds[h % std::size(kHospitalKinds)] +
        " Hospital " + std::to_string(h));
    hospital.address1 = pool->Intern(
        std::to_string(100 + rng.Uniform(9900)) + " " +
        kStreets[rng.Uniform(std::size(kStreets))]);
    hospital.address2 =
        pool->Intern("Bldg " + std::string(1, 'A' + char(rng.Uniform(6))));
    hospital.address3 =
        pool->Intern("Floor " + std::to_string(1 + rng.Uniform(9)));
    hospital.city = pool->Intern(city);
    hospital.state = pool->Intern(state);
    hospital.zip = pool->Intern(PadNumber(zip_number, 5));
    hospital.county = pool->Intern(kCounties[rng.Uniform(std::size(kCounties))]);
    hospital.phn = pool->Intern("555" + PadNumber(1000000 + h * 17, 7));
    hospital.ht =
        pool->Intern(kHospitalTypes[rng.Uniform(std::size(kHospitalTypes))]);
    hospital.ho = pool->Intern(kOwners[rng.Uniform(std::size(kOwners))]);
    hospital.es = pool->Intern(rng.Bernoulli(0.8) ? "Yes" : "No");
    hospitals.push_back(hospital);
  }

  std::vector<Measure> measures;
  measures.reserve(options.num_measures);
  for (size_t m = 0; m < options.num_measures; ++m) {
    const MeasureFamily& family = kFamilies[m % std::size(kFamilies)];
    Measure measure;
    const std::string code =
        std::string(family.prefix) + "-" + PadNumber(m, 2);
    measure.mc = pool->Intern(code);
    measure.mn = pool->Intern(std::string(family.description) + " (" + code +
                              ")");
    measure.condition = pool->Intern(family.condition);
    measure.index = m;
    measures.push_back(measure);
  }

  data.clean.Reserve(options.rows);
  Tuple row(schema->arity());
  for (size_t r = 0; r < options.rows; ++r) {
    const Hospital& h =
        hospitals[rng.Zipf(options.num_hospitals, options.hospital_skew)];
    const Measure& m = measures[rng.Uniform(options.num_measures)];
    // stateAvg is a pure function of (state, MC), which also satisfies
    // PN,MC -> stateAvg because PN determines state.
    const std::string& state = pool->GetString(h.state);
    const ValueId state_avg = pool->Intern(
        state + "_" + pool->GetString(m.mc) + "_" +
        std::to_string(50 + (state.size() * 31 + m.index * 7) % 50) + "%");
    size_t i = 0;
    row[i++] = h.pn;
    row[i++] = h.hn;
    row[i++] = h.address1;
    row[i++] = h.address2;
    row[i++] = h.address3;
    row[i++] = h.city;
    row[i++] = h.state;
    row[i++] = h.zip;
    row[i++] = h.county;
    row[i++] = h.phn;
    row[i++] = h.ht;
    row[i++] = h.ho;
    row[i++] = h.es;
    row[i++] = m.mc;
    row[i++] = m.mn;
    row[i++] = m.condition;
    row[i++] = state_avg;
    data.clean.AppendRow(row);
  }
  return data;
}

}  // namespace fixrep
