#ifndef FIXREP_DATAGEN_GENERATED_DATA_H_
#define FIXREP_DATAGEN_GENERATED_DATA_H_

#include <memory>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

// A generated clean dataset: schema, FD-conformant rows, and the FDs the
// evaluation section defines for it. The pool is shared with any dirty
// copies, rules, and master data derived from it.
struct GeneratedData {
  std::shared_ptr<ValuePool> pool;
  std::shared_ptr<const Schema> schema;
  Table clean;
  std::vector<FunctionalDependency> fds;

  GeneratedData(std::shared_ptr<ValuePool> p,
                std::shared_ptr<const Schema> s)
      : pool(std::move(p)), schema(s), clean(s, pool) {}
};

}  // namespace fixrep

#endif  // FIXREP_DATAGEN_GENERATED_DATA_H_
