#ifndef FIXREP_DATAGEN_TRAVEL_H_
#define FIXREP_DATAGEN_TRAVEL_H_

#include <memory>

#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// The paper's running example, reconstructed exactly:
// * `dirty`  — the Travel instance of Fig. 1 (r1 clean; r2[capital],
//   r2[city], r3[country], r4[capital] wrong);
// * `clean`  — the corrected instance (bracketed values of Fig. 1);
// * `master` — the Cap(country, capital) master data of Fig. 2;
// * `rules`  — phi_1..phi_4 (Examples 3 and the lRepair walkthrough of
//   Fig. 8), a consistent set whose unique fixes turn `dirty` into
//   `clean`.
struct TravelExample {
  std::shared_ptr<ValuePool> pool;
  std::shared_ptr<const Schema> schema;  // Travel(name,country,capital,city,conf)
  Table dirty;
  Table clean;
  Table master;  // Cap(country, capital)
  RuleSet rules;

  TravelExample();
};

// phi_1' of Example 8: phi_1 with Tokyo added to the negative patterns;
// inconsistent with phi_3 (the Example 8/10 conflict). Constants are
// interned into the example's pool.
FixingRule MakeTravelPhi1Prime(TravelExample* example);

}  // namespace fixrep

#endif  // FIXREP_DATAGEN_TRAVEL_H_
