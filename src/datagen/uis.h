#ifndef FIXREP_DATAGEN_UIS_H_
#define FIXREP_DATAGEN_UIS_H_

#include <cstdint>

#include "datagen/generated_data.h"

namespace fixrep {

// Synthetic stand-in for the UT Austin "UIS DBGen" mailing-list data
// (15K records, 11 attributes). People are mostly unique — only
// duplicate_ratio of the rows re-emit an existing person under a new
// RecordID — which reproduces the paper's key property for uis: few
// repeated patterns per FD, hence very low repair recall for every
// method (Fig. 10(f)).
struct UisOptions {
  size_t rows = 15000;
  // Probability that a row duplicates an already-emitted person rather
  // than introducing a new one.
  double duplicate_ratio = 0.06;
  size_t num_zips = 8000;
  uint64_t seed = 0x0715;
};

// Generates clean uis data; GeneratedData::fds carries the paper's FDs:
//   ssn -> fname,minit,lname,stnum,stadd,apt,city,state,zip
//   fname,minit,lname -> ssn,stnum,stadd,apt,city,state,zip
//   zip -> state,city
GeneratedData GenerateUis(const UisOptions& options);

}  // namespace fixrep

#endif  // FIXREP_DATAGEN_UIS_H_
