#ifndef FIXREP_DATAGEN_HOSP_H_
#define FIXREP_DATAGEN_HOSP_H_

#include <cstdint>

#include "datagen/generated_data.h"

namespace fixrep {

// Synthetic stand-in for the US HHS "Hospital Compare" dataset used in
// the paper (115K records, 17 attributes). The generator preserves the
// properties the experiments rely on: the paper's five FDs hold exactly
// on the clean data, values repeat heavily (hospitals are drawn with a
// Zipf skew, cities/counties/zips come from shared pools), and every
// record is a (hospital, measure) pairing as in the original feed.
struct HospOptions {
  size_t rows = 115000;
  size_t num_hospitals = 4000;
  size_t num_measures = 60;
  // Zipf exponent for how often each hospital appears; >0 gives the
  // repeated patterns that make fixing rules applicable.
  double hospital_skew = 1.05;
  uint64_t seed = 0x4051;
};

// Generates clean hosp data; GeneratedData::fds carries the paper's FDs:
//   PN  -> HN,address1,address2,address3,city,state,zip,county,phn,ht,ho,es
//   phn -> zip,city,state,address1,address2,address3
//   MC  -> MN,condition
//   PN,MC -> stateAvg
//   state,MC -> stateAvg
GeneratedData GenerateHosp(const HospOptions& options);

}  // namespace fixrep

#endif  // FIXREP_DATAGEN_HOSP_H_
