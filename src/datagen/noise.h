#ifndef FIXREP_DATAGEN_NOISE_H_
#define FIXREP_DATAGEN_NOISE_H_

#include <cstdint>
#include <vector>

#include "deps/fd.h"
#include "relation/table.h"

namespace fixrep {

// Controls dirty-data generation (Section 7.1): noise is added only to
// attributes related to some integrity constraint, at `noise_rate`, and
// each error is either a typo or a substitution from the attribute's
// active domain.
struct NoiseOptions {
  // Fraction of rows that receive exactly one corrupted cell.
  double noise_rate = 0.10;
  // Among corrupted cells, the fraction mutated by a typo; the rest are
  // replaced with a different value from the attribute's active domain.
  double typo_share = 0.5;
  uint64_t seed = 0xd1e7;
};

struct NoiseReport {
  size_t rows_corrupted = 0;
  size_t typos = 0;
  size_t active_domain_errors = 0;
};

// The attributes mentioned by any FD (LHS or RHS), sorted — the paper
// corrupts only these.
std::vector<AttrId> ConstraintAttributes(
    const Schema& schema, const std::vector<FunctionalDependency>& fds);

// Corrupts `table` in place: each row independently receives one error
// with probability noise_rate, in a uniformly chosen target attribute.
// Returns what was injected. Deterministic given options.seed.
NoiseReport InjectNoise(Table* table,
                        const std::vector<AttrId>& target_attrs,
                        const NoiseOptions& options);

}  // namespace fixrep

#endif  // FIXREP_DATAGEN_NOISE_H_
