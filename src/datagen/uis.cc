#include "datagen/uis.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "deps/violation.h"

namespace fixrep {

namespace {

constexpr const char* kFirstNames[] = {
    "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
    "Michael", "Linda",   "David",   "Elizabeth", "William", "Barbara",
    "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
    "Charles", "Karen",   "Daniel",  "Lisa",     "Matthew", "Nancy",
    "Anthony", "Betty",   "Mark",    "Margaret", "Donald",  "Sandra",
    "Steven",  "Ashley",  "Paul",    "Kimberly", "Andrew",  "Emily",
    "Joshua",  "Donna",   "Kenneth", "Michelle", "Kevin",   "Carol",
    "Brian",   "Amanda",  "George",  "Dorothy",  "Timothy", "Melissa",
    "Ronald",  "Deborah", "Edward",  "Stephanie", "Jason",   "Rebecca",
    "Jeffrey", "Sharon",  "Ryan",    "Laura",    "Jacob",   "Cynthia"};

constexpr const char* kLastNames[] = {
    "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
    "Miller",   "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",   "Moore",
    "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
    "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
    "Walker",   "Young",    "Allen",    "King",     "Wright",   "Scott",
    "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
    "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
    "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",    "Turner",
    "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes"};

constexpr const char* kStates[] = {
    "AL", "AZ", "CA", "CO", "CT", "FL", "GA", "IL", "IN", "IA",
    "KS", "KY", "LA", "MA", "MI", "MN", "MO", "NE", "NV", "NJ",
    "NM", "NY", "NC", "OH", "OK", "OR", "PA", "SC", "TN", "TX",
    "UT", "VA", "WA", "WI"};

constexpr const char* kCities[] = {
    "Austin",   "Dallas",   "Houston",  "Denver",   "Miami",   "Atlanta",
    "Chicago",  "Boston",   "Detroit",  "Memphis",  "Phoenix", "Portland",
    "Seattle",  "Omaha",    "Tulsa",    "Newark",   "Albany",  "Raleigh",
    "Columbus", "Norfolk",  "Tacoma",   "Madison",  "Lincoln", "Wichita",
    "Toledo",   "Dayton",   "Mobile",   "Tucson",   "Fresno",  "Oakland"};

constexpr const char* kStreets[] = {
    "Oak St",    "Main St",   "Pecan Dr",  "Cedar Ave", "Elm St",
    "Lamar Blvd", "Guadalupe St", "Congress Ave", "Red River St",
    "Duval Rd",  "Burnet Rd", "Manor Rd",  "Koenig Ln", "Airport Blvd"};

std::string PadNumber(uint64_t n, int width) {
  std::string digits = std::to_string(n);
  if (digits.size() < static_cast<size_t>(width)) {
    digits.insert(0, static_cast<size_t>(width) - digits.size(), '0');
  }
  return digits;
}

struct Person {
  ValueId ssn, fname, minit, lname, stnum, stadd, apt, city, state, zip;
};

}  // namespace

GeneratedData GenerateUis(const UisOptions& options) {
  FIXREP_CHECK_GT(options.num_zips, 0u);
  auto pool = std::make_shared<ValuePool>();
  auto schema = std::make_shared<Schema>(
      "uis", std::vector<std::string>{"RecordID", "ssn", "fname", "minit",
                                      "lname", "stnum", "stadd", "apt",
                                      "city", "state", "zip"});
  GeneratedData data(pool, schema);
  data.fds = {
      ParseFd(*schema,
              "ssn -> fname,minit,lname,stnum,stadd,apt,city,state,zip"),
      ParseFd(*schema,
              "fname,minit,lname -> ssn,stnum,stadd,apt,city,state,zip"),
      ParseFd(*schema, "zip -> state,city"),
  };

  Rng rng(options.seed);

  // Zip pool: each zip code maps to one (state, city) pair so that
  // zip -> state,city holds by construction.
  struct ZipEntry {
    ValueId zip, state, city;
  };
  std::vector<ZipEntry> zips;
  zips.reserve(options.num_zips);
  for (size_t z = 0; z < options.num_zips; ++z) {
    ZipEntry entry;
    entry.zip = pool->Intern(PadNumber(10000 + z * 113 % 89999, 5));
    entry.state = pool->Intern(kStates[rng.Uniform(std::size(kStates))]);
    entry.city = pool->Intern(kCities[rng.Uniform(std::size(kCities))]);
    zips.push_back(entry);
  }

  std::vector<Person> persons;
  std::unordered_set<std::string> used_names;
  size_t next_ssn = 0;
  auto new_person = [&]() {
    Person p;
    std::string full_name;
    ValueId fname = kNullValue;
    ValueId minit = kNullValue;
    ValueId lname = kNullValue;
    // (fname, minit, lname) must be unique so the name FD holds.
    for (int attempt = 0;; ++attempt) {
      FIXREP_CHECK_LT(attempt, 1000) << "name pool exhausted";
      const char* first = kFirstNames[rng.Uniform(std::size(kFirstNames))];
      const char mi = static_cast<char>('A' + rng.Uniform(26));
      const char* last = kLastNames[rng.Uniform(std::size(kLastNames))];
      full_name = std::string(first) + "|" + mi + "|" + last;
      if (used_names.insert(full_name).second) {
        fname = pool->Intern(first);
        minit = pool->Intern(std::string(1, mi));
        lname = pool->Intern(last);
        break;
      }
    }
    p.fname = fname;
    p.minit = minit;
    p.lname = lname;
    p.ssn = pool->Intern(PadNumber(100000000 + (next_ssn++) * 13, 9));
    p.stnum = pool->Intern(std::to_string(1 + rng.Uniform(9999)));
    p.stadd = pool->Intern(kStreets[rng.Uniform(std::size(kStreets))]);
    p.apt = pool->Intern("Apt " + std::to_string(1 + rng.Uniform(400)));
    const ZipEntry& zip = zips[rng.Uniform(zips.size())];
    p.zip = zip.zip;
    p.state = zip.state;
    p.city = zip.city;
    return p;
  };

  data.clean.Reserve(options.rows);
  Tuple row(schema->arity());
  for (size_t r = 0; r < options.rows; ++r) {
    const bool duplicate =
        !persons.empty() && rng.Bernoulli(options.duplicate_ratio);
    if (!duplicate) persons.push_back(new_person());
    const Person& p =
        duplicate ? persons[rng.Uniform(persons.size())] : persons.back();
    size_t i = 0;
    row[i++] = pool->Intern("R" + PadNumber(r, 6));
    row[i++] = p.ssn;
    row[i++] = p.fname;
    row[i++] = p.minit;
    row[i++] = p.lname;
    row[i++] = p.stnum;
    row[i++] = p.stadd;
    row[i++] = p.apt;
    row[i++] = p.city;
    row[i++] = p.state;
    row[i++] = p.zip;
    data.clean.AppendRow(row);
  }
  return data;
}

}  // namespace fixrep
