#include "datagen/travel.h"

#include <string>
#include <vector>

namespace fixrep {

namespace {

std::shared_ptr<const Schema> TravelSchema() {
  return std::make_shared<Schema>(
      "Travel", std::vector<std::string>{"name", "country", "capital",
                                         "city", "conf"});
}

std::shared_ptr<const Schema> CapSchema() {
  return std::make_shared<Schema>(
      "Cap", std::vector<std::string>{"country", "capital"});
}

}  // namespace

TravelExample::TravelExample()
    : pool(std::make_shared<ValuePool>()),
      schema(TravelSchema()),
      dirty(schema, pool),
      clean(schema, pool),
      master(CapSchema(), pool),
      rules(schema, pool) {
  // Fig. 1 (errors highlighted in the paper, corrections in brackets).
  dirty.AppendRowStrings({"George", "China", "Beijing", "Shanghai", "SIGMOD"});
  dirty.AppendRowStrings({"Ian", "China", "Shanghai", "Hongkong", "ICDE"});
  dirty.AppendRowStrings({"Peter", "China", "Tokyo", "Tokyo", "ICDE"});
  dirty.AppendRowStrings({"Mike", "Canada", "Toronto", "Toronto", "ICDE"});

  clean.AppendRowStrings({"George", "China", "Beijing", "Shanghai", "SIGMOD"});
  clean.AppendRowStrings({"Ian", "China", "Beijing", "Shanghai", "ICDE"});
  clean.AppendRowStrings({"Peter", "Japan", "Tokyo", "Tokyo", "ICDE"});
  clean.AppendRowStrings({"Mike", "Canada", "Ottawa", "Toronto", "ICDE"});

  // Fig. 2: master data Dm of schema Cap.
  master.AppendRowStrings({"China", "Beijing"});
  master.AppendRowStrings({"Canada", "Ottawa"});
  master.AppendRowStrings({"Japan", "Tokyo"});

  // phi_1, phi_2 (Example 3).
  rules.Add(MakeRule(*schema, pool.get(), {{"country", "China"}}, "capital",
                     {"Shanghai", "Hongkong"}, "Beijing"));
  rules.Add(MakeRule(*schema, pool.get(), {{"country", "Canada"}}, "capital",
                     {"Toronto"}, "Ottawa"));
  // phi_3 (Example 8): ICDE held in Tokyo with capital Tokyo means the
  // country must be Japan, not China.
  rules.Add(MakeRule(
      *schema, pool.get(),
      {{"capital", "Tokyo"}, {"city", "Tokyo"}, {"conf", "ICDE"}}, "country",
      {"China"}, "Japan"));
  // phi_4 (Section 6.2): ICDE in a country with capital Beijing was held
  // in Shanghai, never Hongkong.
  rules.Add(MakeRule(*schema, pool.get(),
                     {{"capital", "Beijing"}, {"conf", "ICDE"}}, "city",
                     {"Hongkong"}, "Shanghai"));
}

FixingRule MakeTravelPhi1Prime(TravelExample* example) {
  return MakeRule(*example->schema, example->pool.get(),
                  {{"country", "China"}}, "capital",
                  {"Shanghai", "Hongkong", "Tokyo"}, "Beijing");
}

}  // namespace fixrep
