#include "datagen/noise.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "relation/active_domain.h"

namespace fixrep {

std::vector<AttrId> ConstraintAttributes(
    const Schema& schema, const std::vector<FunctionalDependency>& fds) {
  std::unordered_set<AttrId> attrs;
  for (const auto& fd : fds) {
    attrs.insert(fd.lhs.begin(), fd.lhs.end());
    attrs.insert(fd.rhs.begin(), fd.rhs.end());
  }
  std::vector<AttrId> out(attrs.begin(), attrs.end());
  std::sort(out.begin(), out.end());
  for (const AttrId a : out) {
    FIXREP_CHECK_LT(static_cast<size_t>(a), schema.arity());
  }
  return out;
}

NoiseReport InjectNoise(Table* table,
                        const std::vector<AttrId>& target_attrs,
                        const NoiseOptions& options) {
  FIXREP_CHECK(!target_attrs.empty());
  NoiseReport report;
  Rng rng(options.seed);
  // Active domains are captured before corruption so that substituted
  // values are genuine clean-domain values, as in the paper.
  const auto domains = ActiveDomains(*table);

  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.Bernoulli(options.noise_rate)) continue;
    const AttrId attr = target_attrs[rng.Uniform(target_attrs.size())];
    const ValueId current = table->cell(r, attr);
    if (current == kNullValue) continue;
    ++report.rows_corrupted;
    if (rng.Bernoulli(options.typo_share)) {
      const std::string typo =
          MakeTypo(table->pool().GetString(current), &rng);
      table->WriteCell(r, attr, table->pool().Intern(typo));
      ++report.typos;
    } else {
      const auto& domain = domains[static_cast<size_t>(attr)];
      if (domain.size() < 2) {
        // Attribute has a single value overall; fall back to a typo so
        // the row still carries an error.
        const std::string typo =
            MakeTypo(table->pool().GetString(current), &rng);
        table->WriteCell(r, attr, table->pool().Intern(typo));
        ++report.typos;
        continue;
      }
      ValueId replacement = current;
      while (replacement == current) {
        replacement = domain[rng.Uniform(domain.size())];
      }
      table->WriteCell(r, attr, replacement);
      ++report.active_domain_errors;
    }
  }
  return report;
}

}  // namespace fixrep
