#ifndef FIXREP_EVAL_EXPERIMENT_H_
#define FIXREP_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fixrep {

// Environment-variable helpers for the benches. Every figure bench runs
// at a reduced default scale so `for b in build/bench/*; do $b; done`
// finishes in minutes; set FIXREP_FULL_SCALE=1 to reproduce the paper's
// sizes (hosp 115K rows / 1000 rules, uis 15K rows / 100 rules).
size_t EnvSizeT(const char* name, size_t default_value);
double EnvDouble(const char* name, double default_value);
bool EnvBool(const char* name, bool default_value);

// The per-dataset scale an experiment should run at.
struct ExperimentScale {
  size_t hosp_rows;
  size_t hosp_rules;
  size_t uis_rows;
  size_t uis_rules;
  bool full;
};

// Reads FIXREP_FULL_SCALE (and the FIXREP_HOSP_ROWS / FIXREP_UIS_ROWS /
// FIXREP_HOSP_RULES / FIXREP_UIS_RULES overrides).
ExperimentScale GetExperimentScale();

// One-line banner describing the scale, printed by each bench.
std::string DescribeScale(const ExperimentScale& scale);

// One-line summary of the key repair counters accumulated so far in the
// global MetricsRegistry; benches print it so their reports are
// self-describing ("" when nothing was recorded).
std::string DescribeMetrics();

// If FIXREP_METRICS_OUT is set, writes the combined metrics + span
// timeline JSON (WriteMetricsJson) to that path; returns true when a
// file was written. Benches call this last so any run can be mined.
bool MaybeDumpMetrics();

// Process-lifetime memo hit rate from the fixrep.memo.{hits,misses}
// counters; -1.0 when the memo was never consulted.
double MemoHitRate();

// Repair-engine knobs shared by the benches: --threads=N and --no-memo
// command-line flags, with FIXREP_THREADS / FIXREP_NO_MEMO env-var
// fallbacks (flags win).
struct BenchRepairConfig {
  size_t threads = 0;    // 0 = pool width
  bool use_memo = true;
};
BenchRepairConfig ParseBenchRepairConfig(int argc, char** argv);

}  // namespace fixrep

#endif  // FIXREP_EVAL_EXPERIMENT_H_
