#ifndef FIXREP_EVAL_METRICS_H_
#define FIXREP_EVAL_METRICS_H_

#include <cstddef>

#include "relation/table.h"

namespace fixrep {

// Cell-level repair accuracy, using the paper's definitions (Section 7.1):
// precision = corrected cells / changed cells,
// recall    = corrected cells / erroneous cells.
struct Accuracy {
  size_t cells_changed = 0;     // repaired != dirty
  size_t cells_corrected = 0;   // repaired != dirty and repaired == truth
  size_t cells_erroneous = 0;   // dirty != truth
  size_t cells_broken = 0;      // dirty == truth and repaired != truth

  double precision() const {
    return cells_changed == 0
               ? 1.0
               : static_cast<double>(cells_corrected) / cells_changed;
  }
  double recall() const {
    return cells_erroneous == 0
               ? 1.0
               : static_cast<double>(cells_corrected) / cells_erroneous;
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

// Compares a repair against the ground truth. All three tables must have
// the same schema, row count, and value pool.
Accuracy EvaluateRepair(const Table& truth, const Table& dirty,
                        const Table& repaired);

}  // namespace fixrep

#endif  // FIXREP_EVAL_METRICS_H_
