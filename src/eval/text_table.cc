#include "eval/text_table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/logging.h"

namespace fixrep {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FIXREP_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  FIXREP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace fixrep
