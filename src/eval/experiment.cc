#include "eval/experiment.h"

#include <cstdlib>
#include <fstream>
#include <string>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

size_t EnvSizeT(const char* name, size_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return static_cast<size_t>(std::strtoull(raw, nullptr, 10));
}

double EnvDouble(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return std::strtod(raw, nullptr);
}

bool EnvBool(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  const std::string value(raw);
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

ExperimentScale GetExperimentScale() {
  ExperimentScale scale;
  scale.full = EnvBool("FIXREP_FULL_SCALE", false);
  scale.hosp_rows =
      EnvSizeT("FIXREP_HOSP_ROWS", scale.full ? 115000 : 20000);
  scale.hosp_rules = EnvSizeT("FIXREP_HOSP_RULES", scale.full ? 1000 : 1000);
  scale.uis_rows = EnvSizeT("FIXREP_UIS_ROWS", scale.full ? 15000 : 15000);
  scale.uis_rules = EnvSizeT("FIXREP_UIS_RULES", scale.full ? 100 : 100);
  return scale;
}

std::string DescribeScale(const ExperimentScale& scale) {
  return std::string("scale: ") + (scale.full ? "FULL" : "reduced") +
         " (hosp " + std::to_string(scale.hosp_rows) + " rows / " +
         std::to_string(scale.hosp_rules) + " rules, uis " +
         std::to_string(scale.uis_rows) + " rows / " +
         std::to_string(scale.uis_rules) +
         " rules; set FIXREP_FULL_SCALE=1 for the paper's sizes)";
}

std::string DescribeMetrics() {
  const auto& registry = MetricsRegistry::Global();
  std::string out;
  const auto append = [&](const char* name) {
    const Counter* counter = registry.FindCounter(name);
    if (counter == nullptr || counter->Value() == 0) return;
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(counter->Value());
  };
  append("fixrep.lrepair.tuples_examined");
  append("fixrep.lrepair.cells_changed");
  append("fixrep.crepair.tuples_examined");
  append("fixrep.crepair.cells_changed");
  append("fixrep.consistency.pairs_checked");
  append("fixrep.discovery.rules_emitted");
  return out.empty() ? out : "metrics: " + out;
}

bool MaybeDumpMetrics() {
  const char* path = std::getenv("FIXREP_METRICS_OUT");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path);
  if (!out) {
    FIXREP_LOG(Error) << "cannot open metrics output" << Kv("path", path);
    return false;
  }
  WriteMetricsJson(out);
  FIXREP_LOG(Info) << "wrote metrics snapshot" << Kv("path", path);
  return true;
}

}  // namespace fixrep
