#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

size_t EnvSizeT(const char* name, size_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return static_cast<size_t>(std::strtoull(raw, nullptr, 10));
}

double EnvDouble(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return std::strtod(raw, nullptr);
}

bool EnvBool(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  const std::string value(raw);
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

ExperimentScale GetExperimentScale() {
  ExperimentScale scale;
  scale.full = EnvBool("FIXREP_FULL_SCALE", false);
  scale.hosp_rows =
      EnvSizeT("FIXREP_HOSP_ROWS", scale.full ? 115000 : 20000);
  scale.hosp_rules = EnvSizeT("FIXREP_HOSP_RULES", scale.full ? 1000 : 1000);
  scale.uis_rows = EnvSizeT("FIXREP_UIS_ROWS", scale.full ? 15000 : 15000);
  scale.uis_rules = EnvSizeT("FIXREP_UIS_RULES", scale.full ? 100 : 100);
  return scale;
}

std::string DescribeScale(const ExperimentScale& scale) {
  return std::string("scale: ") + (scale.full ? "FULL" : "reduced") +
         " (hosp " + std::to_string(scale.hosp_rows) + " rows / " +
         std::to_string(scale.hosp_rules) + " rules, uis " +
         std::to_string(scale.uis_rows) + " rows / " +
         std::to_string(scale.uis_rules) +
         " rules; set FIXREP_FULL_SCALE=1 for the paper's sizes)";
}

std::string DescribeMetrics() {
  const auto& registry = MetricsRegistry::Global();
  std::string out;
  const auto append = [&](const char* name) {
    const Counter* counter = registry.FindCounter(name);
    if (counter == nullptr || counter->Value() == 0) return;
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(counter->Value());
  };
  append("fixrep.lrepair.tuples_examined");
  append("fixrep.lrepair.cells_changed");
  append("fixrep.lrepair.index_builds");
  append("fixrep.lrepair.batch_probes");
  append("fixrep.lrepair.batch_keys");
  append("fixrep.crepair.tuples_examined");
  append("fixrep.crepair.cells_changed");
  append("fixrep.consistency.pairs_checked");
  append("fixrep.discovery.rules_emitted");
  append("fixrep.memo.hits");
  append("fixrep.memo.misses");
  append("fixrep.pool.chunks_claimed");
  const double hit_rate = MemoHitRate();
  if (hit_rate >= 0.0) {
    if (!out.empty()) out += ' ';
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "fixrep.memo.hit_rate=%.3f",
                  hit_rate);
    out += buffer;
  }
  // Phase latency distributions: quantile estimates with the unit tagged
  // at registration, instead of the raw power-of-two buckets.
  const auto append_histogram = [&](const char* name) {
    const Histogram* histogram = registry.FindHistogram(name);
    if (histogram == nullptr || histogram->Count() == 0) return;
    const HistogramSnapshot snap = histogram->Snapshot();
    if (!out.empty()) out += ' ';
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{count=%llu p50=%.0f%s p95=%.0f%s p99=%.0f%s}", name,
                  static_cast<unsigned long long>(snap.count), snap.P50(),
                  snap.unit, snap.P95(), snap.unit, snap.P99(), snap.unit);
    out += buffer;
  };
  append_histogram("fixrep.span.lrepair.chase_ns");
  append_histogram("fixrep.span.streaming.run_ns");
  append_histogram("fixrep.span.parallel.repair_table_ns");
  return out.empty() ? out : "metrics: " + out;
}

double MemoHitRate() {
  const auto& registry = MetricsRegistry::Global();
  const Counter* hits = registry.FindCounter("fixrep.memo.hits");
  const Counter* misses = registry.FindCounter("fixrep.memo.misses");
  const uint64_t h = hits == nullptr ? 0 : hits->Value();
  const uint64_t m = misses == nullptr ? 0 : misses->Value();
  if (h + m == 0) return -1.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

BenchRepairConfig ParseBenchRepairConfig(int argc, char** argv) {
  BenchRepairConfig config;
  config.threads = EnvSizeT("FIXREP_THREADS", 0);
  config.use_memo = !EnvBool("FIXREP_NO_MEMO", false);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      config.threads = static_cast<size_t>(
          std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--no-memo") {
      config.use_memo = false;
    }
  }
  return config;
}

bool MaybeDumpMetrics() {
  const char* path = std::getenv("FIXREP_METRICS_OUT");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path);
  if (!out) {
    FIXREP_LOG(Error) << "cannot open metrics output" << Kv("path", path);
    return false;
  }
  WriteMetricsJson(out);
  FIXREP_LOG(Info) << "wrote metrics snapshot" << Kv("path", path);
  return true;
}

}  // namespace fixrep
