#include "eval/experiment.h"

#include <cstdlib>
#include <string>

namespace fixrep {

size_t EnvSizeT(const char* name, size_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return static_cast<size_t>(std::strtoull(raw, nullptr, 10));
}

double EnvDouble(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return std::strtod(raw, nullptr);
}

bool EnvBool(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  const std::string value(raw);
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

ExperimentScale GetExperimentScale() {
  ExperimentScale scale;
  scale.full = EnvBool("FIXREP_FULL_SCALE", false);
  scale.hosp_rows =
      EnvSizeT("FIXREP_HOSP_ROWS", scale.full ? 115000 : 20000);
  scale.hosp_rules = EnvSizeT("FIXREP_HOSP_RULES", scale.full ? 1000 : 1000);
  scale.uis_rows = EnvSizeT("FIXREP_UIS_ROWS", scale.full ? 15000 : 15000);
  scale.uis_rules = EnvSizeT("FIXREP_UIS_RULES", scale.full ? 100 : 100);
  return scale;
}

std::string DescribeScale(const ExperimentScale& scale) {
  return std::string("scale: ") + (scale.full ? "FULL" : "reduced") +
         " (hosp " + std::to_string(scale.hosp_rows) + " rows / " +
         std::to_string(scale.hosp_rules) + " rules, uis " +
         std::to_string(scale.uis_rows) + " rows / " +
         std::to_string(scale.uis_rules) +
         " rules; set FIXREP_FULL_SCALE=1 for the paper's sizes)";
}

}  // namespace fixrep
