#ifndef FIXREP_EVAL_TEXT_TABLE_H_
#define FIXREP_EVAL_TEXT_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace fixrep {

// Column-aligned plain-text table used by the figure/table benches so
// their output reads like the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Writes the header, a separator, and the rows with aligned columns.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("0.973").
std::string FormatDouble(double value, int digits = 3);

}  // namespace fixrep

#endif  // FIXREP_EVAL_TEXT_TABLE_H_
