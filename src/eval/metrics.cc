#include "eval/metrics.h"

#include "common/logging.h"

namespace fixrep {

Accuracy EvaluateRepair(const Table& truth, const Table& dirty,
                        const Table& repaired) {
  FIXREP_CHECK_EQ(truth.num_rows(), dirty.num_rows());
  FIXREP_CHECK_EQ(truth.num_rows(), repaired.num_rows());
  FIXREP_CHECK_EQ(truth.num_columns(), dirty.num_columns());
  FIXREP_CHECK_EQ(truth.num_columns(), repaired.num_columns());
  FIXREP_CHECK(truth.pool_ptr() == dirty.pool_ptr() &&
               truth.pool_ptr() == repaired.pool_ptr())
      << "tables must share a value pool for cell comparison";

  Accuracy accuracy;
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    for (size_t a = 0; a < truth.num_columns(); ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      const ValueId t = truth.cell(r, attr);
      const ValueId d = dirty.cell(r, attr);
      const ValueId x = repaired.cell(r, attr);
      if (d != t) ++accuracy.cells_erroneous;
      if (x != d) {
        ++accuracy.cells_changed;
        if (x == t) ++accuracy.cells_corrected;
      }
      if (d == t && x != t) ++accuracy.cells_broken;
    }
  }
  return accuracy;
}

}  // namespace fixrep
