#include "serve/daemon.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/thread_pool.h"
#include "relation/csv.h"
#include "repair/config.h"
#include "repair/session.h"

namespace fixrep::serve {

namespace {

void TickServeCounter(const char* name, uint64_t n = 1) {
  if (kMetricsEnabled) {
    MetricsRegistry::Global().GetCounter(name)->Add(n);
  }
}

// Read-only streambuf over a request's CSV bytes: ReadCsvLenient takes
// an istream, and an istringstream would copy the multi-MB batch first.
class ViewBuf : public std::streambuf {
 public:
  explicit ViewBuf(const std::string& s) {
    char* p = const_cast<char*>(s.data());
    setg(p, p, p + s.size());
  }
};

}  // namespace

RepairDaemon::RepairDaemon(TenantRegistry* registry, DaemonOptions options)
    : registry_(registry), options_(std::move(options)) {}

StatusOr<std::unique_ptr<RepairDaemon>> RepairDaemon::Start(
    TenantRegistry* registry, DaemonOptions options) {
  if (registry == nullptr || registry->size() == 0) {
    return Status::MalformedInput(
        "the daemon needs at least one loaded rule set");
  }
  auto daemon = std::unique_ptr<RepairDaemon>(
      new RepairDaemon(registry, std::move(options)));
  if (pipe(daemon->shutdown_pipe_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  net::SocketServerOptions socket_options;
  socket_options.unix_socket_path = daemon->options_.unix_socket_path;
  socket_options.tcp_port = daemon->options_.tcp_port;
  auto server = net::SocketServer::Start(daemon.get(), socket_options);
  if (!server.ok()) return server.status();
  daemon->server_ = std::move(server).value();
  return daemon;
}

RepairDaemon::~RepairDaemon() {
  Shutdown();
  if (shutdown_pipe_[0] >= 0) close(shutdown_pipe_[0]);
  if (shutdown_pipe_[1] >= 0) close(shutdown_pipe_[1]);
}

void RepairDaemon::RequestShutdown() {
  const char byte = 's';
  [[maybe_unused]] const ssize_t written =
      write(shutdown_pipe_[1], &byte, 1);
}

void RepairDaemon::WaitForShutdownRequest() {
  char byte = 0;
  while (read(shutdown_pipe_[0], &byte, 1) < 0 && errno == EINTR) {
  }
}

void RepairDaemon::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
    draining_ = true;  // no further admissions from here on
  }
  // Refuse new connections; established ones get kUnavailable per frame.
  server_->StopAccepting();
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock,
                   [&] { return in_flight_ == 0 && busy_workers_ == 0; });
  }
  // Every admitted request has written its response; now the loop (and
  // any idle connections) can go.
  server_->Stop();
  RequestShutdown();  // unblock WaitForShutdownRequest, if parked
}

bool RepairDaemon::OnAccept(int fd) {
  timeval timeout = {options_.send_timeout_ms / 1000,
                     (options_.send_timeout_ms % 1000) * 1000};
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  connections_[fd];  // fresh buffer
  TickServeCounter("fixrep.serve.connections");
  return true;
}

void RepairDaemon::OnClose(int fd) { connections_.erase(fd); }

net::SocketServer::ReadResult RepairDaemon::OnReadable(int fd) {
  Connection& conn = connections_[fd];
  // Drain what the socket has right now (level-triggered poll re-arms
  // if the client keeps sending). Received straight into the buffer
  // tail — a multi-MB request would otherwise pay a second copy out of
  // a bounce buffer per chunk.
  constexpr size_t kReadChunk = 256 * 1024;
  while (true) {
    const size_t filled = conn.buffer.size();
    conn.buffer.resize(filled + kReadChunk);
    const ssize_t n =
        recv(fd, conn.buffer.data() + filled, kReadChunk, MSG_DONTWAIT);
    conn.buffer.resize(filled + (n > 0 ? static_cast<size_t>(n) : 0));
    if (n > 0) {
      if (static_cast<size_t>(n) < kReadChunk) break;
      continue;
    }
    if (n == 0) {
      // Peer EOF. Anything still buffered is an incomplete frame.
      return net::SocketServer::ReadResult::kClose;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    return net::SocketServer::ReadResult::kClose;
  }

  while (true) {
    std::string payload;
    uint32_t crc = 0;
    switch (ExtractFrame(&conn.buffer, &payload, &crc)) {
      case FrameParse::kNeedMore:
        return net::SocketServer::ReadResult::kKeepWatching;
      case FrameParse::kBadMagic:
      case FrameParse::kTooLarge:
        // Garbage stream: no way to resynchronize a length-prefixed
        // protocol, drop the connection.
        return net::SocketServer::ReadResult::kClose;
      case FrameParse::kFrame:
        break;
    }

    // Admission control: the gate is checked here, on the loop thread,
    // so a full queue answers immediately — the request never blocks
    // behind the pool.
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_ && in_flight_ < options_.max_pending) {
        ++in_flight_;
        ++busy_workers_;
        admitted = true;
      }
    }
    if (!admitted) {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      TickServeCounter("fixrep.serve.rejected");
      bool draining;
      {
        std::lock_guard<std::mutex> lock(mu_);
        draining = draining_;
      }
      SendResponse(fd, ErrorResponse(
          Verb::kPing,
          Status::Unavailable(draining
                                  ? "daemon is draining for shutdown"
                                  : "request queue is full; retry later")));
      continue;  // the connection survives rejection
    }

    // Suspend until the pool task writes the response and resumes us;
    // one outstanding request per connection keeps responses ordered.
    ThreadPool::Global().Submit(
        [this, fd, payload = std::move(payload), crc]() mutable {
          HandleFrame(fd, std::move(payload), crc);
        });
    return net::SocketServer::ReadResult::kSuspend;
  }
}

void RepairDaemon::HandleFrame(int fd, std::string payload, uint32_t crc) {
  if (options_.request_stall_for_test) options_.request_stall_for_test();

  Response response;
  const Status frame_ok = VerifyFrame(payload, crc);
  if (!frame_ok.ok()) {
    response = ErrorResponse(Verb::kPing, frame_ok);
  } else {
    StatusOr<Request> request = DecodeRequest(std::move(payload));
    if (!request.ok()) {
      response = ErrorResponse(Verb::kPing, request.status());
    } else {
      response = HandleRequest(request.value());
    }
  }
  // Count and free the admission slot before the write lands: a client
  // that has its response in hand must already see itself in
  // requests_served() and must find the slot free — its next request
  // (or another client's) cannot bounce off a queue this one no longer
  // occupies. The slot bounds concurrent repair work; the response
  // write that follows is covered by busy_workers_, so the shutdown
  // drain still waits for it.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  TickServeCounter("fixrep.serve.requests");
  {
    // Notify under the lock: the drain waiter may destroy this object
    // the moment it observes the predicate, and a notify outside the
    // lock could still be touching drain_cv_ at that point.
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    drain_cv_.notify_all();
  }
  SendResponse(fd, response);
  // Re-deliver any pipelined frame the connection already buffered.
  // Last touch of server_: busy_workers_ stays held across it so the
  // drain cannot tear the server down underneath this call.
  server_->Resume(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --busy_workers_;
    drain_cv_.notify_all();  // under the lock — see the note above
  }
}

Response RepairDaemon::HandleRequest(const Request& request) {
  switch (request.verb) {
    case Verb::kPing: {
      Response response;
      response.verb = Verb::kPing;
      response.ping.rule_sets = registry_->size();
      response.ping.requests_served =
          requests_served_.load(std::memory_order_relaxed);
      response.ping.requests_rejected =
          requests_rejected_.load(std::memory_order_relaxed);
      return response;
    }
    case Verb::kList: {
      Response response;
      response.verb = Verb::kList;
      response.rule_sets = registry_->List();
      return response;
    }
    case Verb::kRepair:
      return HandleRepair(request.repair);
    case Verb::kReload:
      return HandleReload(request.reload);
  }
  return ErrorResponse(Verb::kPing,
                       Status::MalformedInput("unhandled request verb"));
}

Response RepairDaemon::HandleRepair(const RepairRequest& request) {
  const std::shared_ptr<const TenantSnapshot> snapshot =
      registry_->Find(request.tenant);
  if (snapshot == nullptr) {
    return ErrorResponse(
        Verb::kRepair,
        Status::MalformedInput("unknown rule set '" + request.tenant + "'"));
  }

  RepairConfig config;
  for (const auto& [key, value] : request.config) {
    if (RepairConfigKeyIsSessionLocal(key)) {
      return ErrorResponse(
          Verb::kRepair,
          Status::MalformedInput("config key '" + key +
                                 "' is session-local and not accepted "
                                 "over the wire"));
    }
    const Status parsed = ParseRepairConfig(key, value, &config);
    if (!parsed.ok()) return ErrorResponse(Verb::kRepair, parsed);
  }

  // Attribute this request's engine metrics to the tenant.
  MetricScope* scope = registry_->Scope(request.tenant);
  std::unique_ptr<MetricScope::Activation> active;
  if (scope != nullptr) {
    active = std::make_unique<MetricScope::Activation>(scope);
  }

  const bool quarantining = config.on_error == OnErrorPolicy::kQuarantine;
  VectorQuarantineSink row_sink;
  VectorQuarantineSink tuple_sink;
  if (quarantining) config.quarantine = &tuple_sink;

  // Parse the request batch into the tenant's pool. Interning mutates
  // the pool (single-writer rule), so parsing takes the writer side
  // while concurrent chases hold the reader side.
  ViewBuf csv_buf(request.csv);
  std::istream csv_in(&csv_buf);
  CsvReadOptions csv_options;
  csv_options.on_error = config.on_error;
  csv_options.quarantine = quarantining ? &row_sink : nullptr;
  StatusOr<Table> table_or = [&] {
    std::unique_lock<std::shared_mutex> writer(snapshot->pool_mutex());
    return ReadCsvLenient(csv_in, "data", snapshot->pool(), csv_options);
  }();
  if (!table_or.ok()) {
    return ErrorResponse(Verb::kRepair,
                         table_or.status().WithContext("request csv"));
  }
  Table table = std::move(table_or).value();
  if (table.schema().attribute_names() !=
      snapshot->schema()->attribute_names()) {
    return ErrorResponse(
        Verb::kRepair,
        Status::MalformedInput("request csv header does not match rule set '" +
                               request.tenant + "' schema"));
  }

  RepairReport report;
  {
    std::shared_lock<std::shared_mutex> reader(snapshot->pool_mutex());
    RepairSession session(snapshot->repository(), config);
    StatusOr<RepairReport> report_or = session.Repair(&table);
    if (!report_or.ok()) return ErrorResponse(Verb::kRepair,
                                              report_or.status());
    report = report_or.value();
  }

  Response response;
  response.verb = Verb::kRepair;
  response.repair.rows = report.rows;
  response.repair.cells_changed = report.cells_changed;
  response.repair.tuples_quarantined = report.tuples_quarantined;
  std::ostringstream out;
  WriteCsv(table, out);
  response.repair.csv = std::move(out).str();
  if (quarantining &&
      (!row_sink.diagnostics().empty() || !tuple_sink.diagnostics().empty())) {
    std::ostringstream quarantine;
    WriteQuarantineHeader(quarantine);
    for (const Diagnostic& d : row_sink.diagnostics()) {
      WriteQuarantineRecord(quarantine, "csv", d);
    }
    for (const Diagnostic& d : tuple_sink.diagnostics()) {
      WriteQuarantineRecord(quarantine, "repair", d);
    }
    response.repair.quarantine = quarantine.str();
  }
  return response;
}

Response RepairDaemon::HandleReload(const ReloadRequest& request) {
  const Status loaded = registry_->Load(request.tenant, request.spec);
  if (!loaded.ok()) return ErrorResponse(Verb::kReload, loaded);
  TickServeCounter("fixrep.serve.reloads");
  const std::shared_ptr<const TenantSnapshot> snapshot =
      registry_->Find(request.tenant);
  Response response;
  response.verb = Verb::kReload;
  response.reload.generation = snapshot->generation();
  response.reload.num_rules = snapshot->num_rules();
  return response;
}

Response RepairDaemon::ErrorResponse(Verb verb, Status status) const {
  Response response;
  response.verb = verb;
  response.status = std::move(status);
  return response;
}

void RepairDaemon::SendResponse(int fd, const Response& response) {
  // Best-effort gathered writes; on failure (peer gone, send timeout)
  // the poll loop reaps the fd. A successful repair response carries
  // the multi-MB batch, so it goes out part-wise without ever being
  // staged as one contiguous payload.
  if (response.verb == Verb::kRepair && response.status.ok()) {
    (void)WriteRepairResponseTo(fd, response.repair);
  } else {
    (void)WriteFrameTo(fd, EncodeResponse(response));
  }
}

}  // namespace fixrep::serve
