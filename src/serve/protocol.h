#ifndef FIXREP_SERVE_PROTOCOL_H_
#define FIXREP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

// The daemon's wire protocol (docs/serving.md): a versioned
// length-prefixed binary framing grown out of the WAL's primitives
// (common/wal.h supplies the little-endian integer/string codecs),
// deliberately no heavyweight framework. Frames are protected by
// CRC-32C (common/crc32c.h — hardware-accelerated where the CPU has
// it; this is a link checksum, distinct from the WAL's on-disk CRC-32).
// Every frame is
//
//   u32 magic "FXRP" | u32 payload_len | payload | u32 crc32c(payload)
//
// and a payload starts with `u8 version`, then `u8 verb` (requests) or
// `u8 status_code` (responses), then the verb-specific body. The CRC
// covers the payload only — magic and length are checked structurally —
// so a frame can be routed (admission control) before it is verified
// and decoded on a worker thread.

namespace fixrep::serve {

inline constexpr char kFrameMagic[4] = {'F', 'X', 'R', 'P'};
inline constexpr uint8_t kProtocolVersion = 1;
// Caps a frame's payload; anything larger is treated as a garbage
// length prefix and the connection is dropped rather than buffered.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class Verb : uint8_t {
  kPing = 0,    // liveness + server totals
  kRepair = 1,  // repair one CSV batch against a named rule set
  kReload = 2,  // atomically swap a tenant's rule repository
  kList = 3,    // enumerate hosted rule sets
};

struct RepairRequest {
  std::string tenant;
  // RepairConfig settings as (key, value) pairs — the same grammar as
  // ParseRepairConfig (repair/config.h); the daemon rejects
  // session-local keys (rules-dict, wal, ...).
  std::vector<std::pair<std::string, std::string>> config;
  // The dirty batch, as CSV with a header row (the tenant's schema).
  std::string csv;
};

struct ReloadRequest {
  std::string tenant;
  // Rule-set spec, same grammar as `serve --ruleset NAME=SPEC` minus
  // the name: a compiled-dictionary path, or "path@attr1,attr2,..."
  // for a text rules file with its schema.
  std::string spec;
};

struct Request {
  Verb verb = Verb::kPing;
  RepairRequest repair;  // meaningful iff verb == kRepair
  ReloadRequest reload;  // meaningful iff verb == kReload
};

struct PingInfo {
  uint64_t rule_sets = 0;
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;
};

struct RepairResult {
  uint64_t rows = 0;
  uint64_t cells_changed = 0;
  uint64_t tuples_quarantined = 0;
  std::string csv;  // repaired batch, header + rows
  // One quarantine-format line per captured diagnostic (empty unless
  // the request asked for on-error=quarantine).
  std::string quarantine;
};

struct ReloadResult {
  uint64_t generation = 0;  // tenant generation after the swap
  uint64_t num_rules = 0;
};

struct RuleSetInfo {
  std::string name;
  uint64_t num_rules = 0;
  uint64_t generation = 0;
  bool dict_backed = false;  // mmap FXRDICT vs in-RAM CompiledRuleIndex
};

struct Response {
  Status status;  // non-ok ⇒ the result fields are empty
  Verb verb = Verb::kPing;
  PingInfo ping;
  RepairResult repair;
  ReloadResult reload;
  std::vector<RuleSetInfo> rule_sets;
};

// --- framing ---

// Appends `payload` to `out` as one complete frame (magic, length,
// payload, CRC).
void AppendFrame(std::string* out, const std::string& payload);

enum class FrameParse {
  kNeedMore,  // no complete frame buffered yet
  kFrame,     // one frame extracted and consumed from the buffer
  kBadMagic,  // stream does not start with "FXRP" — drop the connection
  kTooLarge,  // length prefix exceeds kMaxFramePayload — drop
};

// Extracts the first complete frame from `buffer`, consuming its bytes.
// On kFrame, `payload` and `crc` are set; the CRC is NOT verified here
// (VerifyFrame does that, typically on a worker thread).
FrameParse ExtractFrame(std::string* buffer, std::string* payload,
                        uint32_t* crc);

// kMalformedInput when crc does not match the payload.
Status VerifyFrame(const std::string& payload, uint32_t crc);

// Writes `payload` to `fd` as one complete frame with a gathered write
// (header | payload | trailer as an iovec) — the multi-MB payload is
// never copied into a staging frame. kIoError when the peer is gone or
// the send times out.
Status WriteFrameTo(int fd, const std::string& payload);
// Same, for a payload given as up to four concatenated parts: the CRC
// is chained across them and each part becomes its own iovec entry, so
// a frame around a multi-MB CSV needs no contiguous payload at all.
Status WriteFrameTo(int fd, std::initializer_list<std::string_view> parts);

// Gathered-write encoders for the two frames that carry the CSV batch.
// The bytes on the wire are identical to framing EncodeRequest /
// EncodeResponse output, but the CSV is never copied into (or
// allocated as part of) a staging payload.
Status WriteRepairRequestTo(
    int fd, const std::string& tenant,
    const std::vector<std::pair<std::string, std::string>>& config,
    std::string_view csv);
// Success responses only — errors have no bulk and go through
// EncodeResponse.
Status WriteRepairResponseTo(int fd, const RepairResult& result);

// --- payload codecs ---

std::string EncodeRequest(const Request& request);
// Encodes a kRepair request straight from the caller's CSV buffer,
// skipping the Request staging struct (and its multi-MB csv copy).
std::string EncodeRepairRequest(
    const std::string& tenant,
    const std::vector<std::pair<std::string, std::string>>& config,
    std::string_view csv);
StatusOr<Request> DecodeRequest(const std::string& payload);
// Reclaims `payload` for the repair CSV: the bytes are slid in place
// (memmove) instead of copied into a fresh multi-MB allocation.
StatusOr<Request> DecodeRequest(std::string&& payload);

std::string EncodeResponse(const Response& response);
StatusOr<Response> DecodeResponse(const std::string& payload);
// Same reclaim as DecodeRequest(&&), for the repaired CSV.
StatusOr<Response> DecodeResponse(std::string&& payload);

}  // namespace fixrep::serve

#endif  // FIXREP_SERVE_PROTOCOL_H_
