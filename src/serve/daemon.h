#ifndef FIXREP_SERVE_DAEMON_H_
#define FIXREP_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/socket_server.h"
#include "common/status.h"
#include "serve/protocol.h"
#include "serve/registry.h"

// The multi-tenant repair daemon (docs/serving.md): one
// net::SocketServer accept loop feeding repair requests onto the global
// ThreadPool through a bounded admission gate. The loop thread only
// buffers bytes and extracts frames; CRC verification, decoding, CSV
// parsing, the chase, and the response write all happen on a pool
// worker while the connection is suspended (one outstanding request per
// connection, so per-connection ordering holds). When `max_pending`
// requests are already in flight — or the daemon is draining — a frame
// is answered kUnavailable immediately from the loop thread instead of
// queueing without bound: overload degrades to fast rejection, never a
// hang. Shutdown() (and SIGTERM via RequestShutdown) stops accepting,
// lets every in-flight request finish and flush its response, then
// tears the loop down.

namespace fixrep::serve {

struct DaemonOptions {
  // Exactly one listener, as net::SocketServerOptions.
  std::string unix_socket_path;
  int tcp_port = -1;
  // Admission bound: repair/reload requests admitted but not yet
  // answered. The gate, not the ThreadPool, is the queue limit.
  size_t max_pending = 128;
  // Send timeout for response writes (loop and worker threads alike).
  int send_timeout_ms = 30000;
  // Test hook: runs at the start of every admitted request's pool task.
  // Lets tests hold requests in flight deterministically (admission
  // rejection, drain) by blocking here.
  std::function<void()> request_stall_for_test;
};

class RepairDaemon : private net::SocketServer::Handler {
 public:
  // Binds and starts serving `registry`'s tenants. The registry must
  // outlive the daemon and may keep being Load()ed while serving (hot
  // reload).
  static StatusOr<std::unique_ptr<RepairDaemon>> Start(
      TenantRegistry* registry, DaemonOptions options);

  ~RepairDaemon();  // Shutdown()

  // Graceful drain: refuse new connections, answer kUnavailable to new
  // frames, wait until every admitted request has written its response,
  // then stop the loop. Idempotent; safe from any thread (not a signal
  // handler — use RequestShutdown there).
  void Shutdown();

  // Async-signal-safe shutdown trigger (one pipe write): unblocks
  // WaitForShutdownRequest. Does not itself drain.
  void RequestShutdown();

  // Blocks until RequestShutdown (or Shutdown) is called. The serve
  // verb parks its main thread here, then runs Shutdown().
  void WaitForShutdownRequest();

  int port() const { return server_ != nullptr ? server_->port() : -1; }
  const std::string& socket_path() const { return options_.unix_socket_path; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }

  // Admitted requests whose repair work has not finished — includes
  // tasks still queued behind busy pool workers. Test/ops visibility;
  // stale the instant it returns.
  size_t in_flight() {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

 private:
  struct Connection {
    std::string buffer;  // bytes read but not yet framed (loop thread)
  };

  RepairDaemon(TenantRegistry* registry, DaemonOptions options);

  // net::SocketServer::Handler (loop thread).
  bool OnAccept(int fd) override;
  net::SocketServer::ReadResult OnReadable(int fd) override;
  void OnClose(int fd) override;

  // Pool-worker request path.
  void HandleFrame(int fd, std::string payload, uint32_t crc);
  Response HandleRequest(const Request& request);
  Response HandleRepair(const RepairRequest& request);
  Response HandleReload(const ReloadRequest& request);

  // Frames and writes `response` to fd (blocking, send-timeout-bounded,
  // MSG_NOSIGNAL). Any thread.
  void SendResponse(int fd, const Response& response);
  Response ErrorResponse(Verb verb, Status status) const;

  TenantRegistry* registry_;
  DaemonOptions options_;
  std::unique_ptr<net::SocketServer> server_;

  std::mutex mu_;
  std::condition_variable drain_cv_;
  size_t in_flight_ = 0;    // admitted, repair work not yet finished
  // Admitted pool tasks that may still touch server_: the slot above is
  // released once the response is built (so a client holding its
  // response never bounces off a queue it no longer occupies), but the
  // worker still has the response write and the final Resume() ahead of
  // it — the drain must outwait this count separately or Shutdown frees
  // the server under a worker's last call.
  size_t busy_workers_ = 0;
  bool draining_ = false;   // set by Shutdown under mu_
  bool shutdown_done_ = false;

  std::map<int, Connection> connections_;  // loop thread only

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_rejected_{0};

  int shutdown_pipe_[2] = {-1, -1};
};

}  // namespace fixrep::serve

#endif  // FIXREP_SERVE_DAEMON_H_
