#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fixrep::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<Client> Client::Connect(const ClientOptions& options) {
  const bool want_unix = !options.unix_socket_path.empty();
  const bool want_tcp = options.tcp_port >= 0;
  if (want_unix == want_tcp) {
    return Status::MalformedInput(
        "client needs exactly one of unix_socket_path or tcp_port");
  }
  int fd = -1;
  if (want_unix) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::MalformedInput("unix socket path too long: " +
                                    options.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status status = Errno("connect " + options.unix_socket_path);
      close(fd);
      return status;
    }
  } else {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status status =
          Errno("connect port " + std::to_string(options.tcp_port));
      close(fd);
      return status;
    }
  }
  timeval timeout = {options.io_timeout_ms / 1000,
                     (options.io_timeout_ms % 1000) * 1000};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

StatusOr<Response> Client::RoundTrip(const Request& request) {
  if (fd_ < 0) return Status::Internal("client not connected");
  FIXREP_RETURN_IF_ERROR(WriteFrameTo(fd_, EncodeRequest(request)));
  return ReceiveResponse();
}

StatusOr<Response> Client::ReceiveResponse() {
  std::string buffer;
  constexpr size_t kReadChunk = 256 * 1024;
  while (true) {
    std::string payload;
    uint32_t crc = 0;
    switch (ExtractFrame(&buffer, &payload, &crc)) {
      case FrameParse::kFrame: {
        FIXREP_RETURN_IF_ERROR(VerifyFrame(payload, crc));
        return DecodeResponse(std::move(payload));
      }
      case FrameParse::kBadMagic:
        return Status::MalformedInput("response stream is not FXRP framed");
      case FrameParse::kTooLarge:
        return Status::MalformedInput("response frame exceeds protocol cap");
      case FrameParse::kNeedMore:
        break;
    }
    // Receive straight into the buffer tail: a multi-MB response would
    // otherwise pay a second copy out of a bounce buffer per chunk.
    const size_t filled = buffer.size();
    buffer.resize(filled + kReadChunk);
    const ssize_t n = recv(fd_, buffer.data() + filled, kReadChunk, 0);
    buffer.resize(filled + (n > 0 ? static_cast<size_t>(n) : 0));
    if (n == 0) {
      return Status::IoError("daemon closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("timed out waiting for the daemon's response");
      }
      return Errno("recv");
    }
  }
}

StatusOr<PingInfo> Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  StatusOr<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (!response->status.ok()) return response->status;
  return response->ping;
}

StatusOr<RepairResult> Client::Submit(
    const std::string& tenant,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::string& csv) {
  if (fd_ < 0) return Status::Internal("client not connected");
  FIXREP_RETURN_IF_ERROR(WriteRepairRequestTo(fd_, tenant, config, csv));
  StatusOr<Response> response = ReceiveResponse();
  if (!response.ok()) return response.status();
  if (!response->status.ok()) return response->status;
  return std::move(response->repair);
}

StatusOr<ReloadResult> Client::Reload(const std::string& tenant,
                                      const std::string& spec) {
  Request request;
  request.verb = Verb::kReload;
  request.reload.tenant = tenant;
  request.reload.spec = spec;
  StatusOr<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (!response->status.ok()) return response->status;
  return response->reload;
}

StatusOr<std::vector<RuleSetInfo>> Client::List() {
  Request request;
  request.verb = Verb::kList;
  StatusOr<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (!response->status.ok()) return response->status;
  return std::move(response->rule_sets);
}

}  // namespace fixrep::serve
