#include "serve/registry.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "rules/rule_io.h"

namespace fixrep::serve {

namespace {

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : text) {
    if (c == ',') {
      out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  out.push_back(token);
  return out;
}

// True when the file leads with the FXRDICT magic — then it must load
// as a dictionary (a corrupt dictionary is an error, never "fall back
// to text rules").
StatusOr<bool> HasDictMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IoError("cannot open rule set file " + path);
  }
  char magic[sizeof(kRuleDictMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) return false;  // too short for a dict
  return std::memcmp(magic, kRuleDictMagic, sizeof(magic)) == 0;
}

}  // namespace

StatusOr<TenantSpec> ParseTenantSpec(const std::string& spec) {
  TenantSpec parsed;
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    parsed.path = spec;
  } else {
    parsed.path = spec.substr(0, at);
    parsed.attrs = SplitCommaList(spec.substr(at + 1));
    for (const std::string& attr : parsed.attrs) {
      if (attr.empty()) {
        return Status::MalformedInput("empty attribute name in rule set spec '" +
                                      spec + "'");
      }
    }
  }
  if (parsed.path.empty()) {
    return Status::MalformedInput("empty path in rule set spec '" + spec +
                                  "'");
  }
  return parsed;
}

StatusOr<std::shared_ptr<TenantSnapshot>> TenantSnapshot::Load(
    const std::string& name, const TenantSpec& spec, uint64_t generation) {
  StatusOr<bool> is_dict = HasDictMagic(spec.path);
  if (!is_dict.ok()) {
    return is_dict.status().WithContext("rule set " + name);
  }

  auto snapshot = std::shared_ptr<TenantSnapshot>(new TenantSnapshot());
  snapshot->name_ = name;
  snapshot->generation_ = generation;
  snapshot->pool_ = std::make_shared<ValuePool>();

  if (is_dict.value()) {
    if (!spec.attrs.empty()) {
      return Status::MalformedInput(
          "rule set " + name + ": a compiled dictionary (" + spec.path +
          ") is schema-self-describing; drop the @attrs suffix");
    }
    StatusOr<std::unique_ptr<RuleDict>> dict = RuleDict::Open(spec.path);
    if (!dict.ok()) {
      return dict.status().WithContext("rule set " + name);
    }
    snapshot->dict_ = std::move(dict).value();
    snapshot->schema_ = std::make_shared<const Schema>(
        "data", snapshot->dict_->attribute_names());
    const Status bound =
        snapshot->dict_->Bind(*snapshot->schema_, snapshot->pool_);
    if (!bound.ok()) return bound.WithContext("rule set " + name);
    return snapshot;
  }

  if (spec.attrs.empty()) {
    return Status::MalformedInput(
        "rule set " + name + ": a text rules file needs its schema — use " +
        spec.path + "@attr1,attr2,...");
  }
  snapshot->schema_ = std::make_shared<const Schema>("data", spec.attrs);
  StatusOr<RuleSet> rules = ParseRulesFileLenient(
      spec.path, snapshot->schema_, snapshot->pool_, RuleParseOptions{});
  if (!rules.ok()) {
    return rules.status().WithContext("rule set " + name);
  }
  snapshot->rules_.emplace(std::move(rules).value());
  snapshot->index_ =
      std::make_unique<const CompiledRuleIndex>(&*snapshot->rules_);
  return snapshot;
}

Status TenantRegistry::Load(const std::string& name, const std::string& spec) {
  if (name.empty()) {
    return Status::MalformedInput("rule set name must be non-empty");
  }
  StatusOr<TenantSpec> parsed = ParseTenantSpec(spec);
  if (!parsed.ok()) return parsed.status();

  // Compile outside the lock — a corpus-scale load must not stall
  // lookups — then swap inside it. The generation is read first so a
  // replacement publishes old+1.
  uint64_t generation = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(name);
    if (it != tenants_.end()) {
      generation = it->second.snapshot->generation() + 1;
    }
  }
  StatusOr<std::shared_ptr<TenantSnapshot>> snapshot =
      TenantSnapshot::Load(name, parsed.value(), generation);
  if (!snapshot.ok()) return snapshot.status();

  std::lock_guard<std::mutex> lock(mu_);
  Tenant& tenant = tenants_[name];
  if (tenant.scope == nullptr) {
    tenant.scope = std::make_unique<MetricScope>();
  }
  // In-flight requests keep their pinned shared_ptr; this just redirects
  // future Find() calls.
  tenant.snapshot = std::move(snapshot).value();
  return Status::Ok();
}

std::shared_ptr<const TenantSnapshot> TenantRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.snapshot;
}

MetricScope* TenantRegistry::Scope(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.scope.get();
}

std::vector<RuleSetInfo> TenantRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RuleSetInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    RuleSetInfo info;
    info.name = name;
    info.num_rules = tenant.snapshot->num_rules();
    info.generation = tenant.snapshot->generation();
    info.dict_backed = tenant.snapshot->dict_backed();
    out.push_back(std::move(info));
  }
  return out;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace fixrep::serve
