#ifndef FIXREP_SERVE_REGISTRY_H_
#define FIXREP_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metric_scope.h"
#include "common/status.h"
#include "relation/schema.h"
#include "relation/value_pool.h"
#include "repair/rule_index.h"
#include "rules/rule_dict.h"
#include "rules/rule_set.h"
#include "serve/protocol.h"

// The daemon's named rule sets (docs/serving.md). Each tenant is an
// immutable TenantSnapshot — value pool, schema, and a RuleRepository
// compiled exactly once (in-RAM CompiledRuleIndex for text rule files,
// mmap RuleDict for FXRDICT artifacts; the file's magic decides) —
// published behind a shared_ptr. Requests pin the snapshot they start
// on; `reload` builds a fresh snapshot off to the side and atomically
// swaps the pointer, so in-flight repairs finish on the old rules and
// nothing is dropped. Per-tenant MetricScopes live in the registry, not
// the snapshot, so a tenant's counters accumulate across reloads.

namespace fixrep::serve {

// A `--ruleset NAME=SPEC` / reload spec, minus the name:
//   path               compiled dictionary (FXRDICT magic) — the file
//                      is schema-self-describing
//   path@a,b,c         text rules file + its schema attribute names
struct TenantSpec {
  std::string path;
  std::vector<std::string> attrs;
};

StatusOr<TenantSpec> ParseTenantSpec(const std::string& spec);

class TenantSnapshot {
 public:
  // Compiles the spec into an immutable snapshot: text rules are parsed
  // (strict — a malformed rule fails the load) and indexed; a
  // dictionary is mapped and bound to a fresh pool built from its own
  // attribute names. kMalformedInput / kIoError on any failure.
  static StatusOr<std::shared_ptr<TenantSnapshot>> Load(
      const std::string& name, const TenantSpec& spec, uint64_t generation);

  const std::string& name() const { return name_; }
  uint64_t generation() const { return generation_; }
  bool dict_backed() const { return dict_ != nullptr; }
  size_t num_rules() const { return repository()->num_rules(); }
  const RuleRepository* repository() const {
    return dict_ != nullptr
               ? static_cast<const RuleRepository*>(dict_.get())
               : static_cast<const RuleRepository*>(index_.get());
  }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

  // The snapshot's pool keeps interning request values for as long as
  // the snapshot serves: CSV parsing takes the writer side (the pool's
  // single-writer rule), concurrent chases take the reader side.
  std::shared_mutex& pool_mutex() const { return pool_mutex_; }

 private:
  TenantSnapshot() = default;

  std::string name_;
  uint64_t generation_ = 0;
  std::shared_ptr<ValuePool> pool_;
  std::shared_ptr<const Schema> schema_;
  std::optional<RuleSet> rules_;  // keeps index_'s borrowed set alive
  std::unique_ptr<const CompiledRuleIndex> index_;
  std::unique_ptr<RuleDict> dict_;
  mutable std::shared_mutex pool_mutex_;
};

class TenantRegistry {
 public:
  // Creates or hot-replaces the named tenant (generation bumps on
  // replace). Existing snapshot stays published if the load fails.
  Status Load(const std::string& name, const std::string& spec);

  // The current snapshot, pinned: stays valid (and its rules stay
  // mapped/compiled) for as long as the caller holds the pointer, even
  // across reloads. Null for an unknown tenant.
  std::shared_ptr<const TenantSnapshot> Find(const std::string& name) const;

  // The tenant's metric scope (created on first Load, survives
  // reloads). Null for an unknown tenant. Scopes flush into the global
  // registry when the registry is destroyed.
  MetricScope* Scope(const std::string& name) const;

  std::vector<RuleSetInfo> List() const;
  size_t size() const;

 private:
  struct Tenant {
    std::shared_ptr<const TenantSnapshot> snapshot;
    std::unique_ptr<MetricScope> scope;
  };

  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
};

}  // namespace fixrep::serve

#endif  // FIXREP_SERVE_REGISTRY_H_
