#ifndef FIXREP_SERVE_CLIENT_H_
#define FIXREP_SERVE_CLIENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

// Thin blocking client for the repair daemon — the API behind the
// `fixrep_cli submit|ping|reload` verbs and the daemon tests. One
// connection, one request at a time; every call frames a request,
// writes it, and blocks for the response frame (bounded by
// io_timeout_ms). StatusOr carries both transport failures (kIoError)
// and server-side statuses (kUnavailable from admission control,
// kMalformedInput from bad configs, ...) unchanged.

namespace fixrep::serve {

struct ClientOptions {
  // Exactly one endpoint: the daemon's unix socket, or its loopback
  // TCP port.
  std::string unix_socket_path;
  int tcp_port = -1;
  // Per-call send/receive timeout. A server that stalls longer than
  // this yields kIoError.
  int io_timeout_ms = 120000;
};

class Client {
 public:
  // Connects (kIoError when the daemon is not there).
  static StatusOr<Client> Connect(const ClientOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  StatusOr<PingInfo> Ping();

  // Repairs one CSV batch (header + rows) against the named rule set.
  // `config` uses the ParseRepairConfig key grammar (repair/config.h).
  StatusOr<RepairResult> Submit(
      const std::string& tenant,
      const std::vector<std::pair<std::string, std::string>>& config,
      const std::string& csv);

  // Hot-swaps the named rule set to `spec` (see ParseTenantSpec).
  StatusOr<ReloadResult> Reload(const std::string& tenant,
                                const std::string& spec);

  StatusOr<std::vector<RuleSetInfo>> List();

 private:
  explicit Client(int fd) : fd_(fd) {}

  StatusOr<Response> RoundTrip(const Request& request);
  // Blocks for one response frame. Submit writes its request as a
  // gathered frame straight from the caller's CSV buffer
  // (WriteRepairRequestTo — no staging copy), then comes here.
  StatusOr<Response> ReceiveResponse();

  int fd_ = -1;
};

}  // namespace fixrep::serve

#endif  // FIXREP_SERVE_CLIENT_H_
