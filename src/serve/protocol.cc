#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/crc32c.h"
#include "common/wal.h"

namespace fixrep::serve {

namespace {

constexpr size_t kHeaderBytes = 8;   // magic + payload_len
constexpr size_t kTrailerBytes = 4;  // crc32

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, like the WAL
}

Status Truncated(const char* what) {
  return Status::MalformedInput(std::string("truncated ") + what +
                                " payload");
}

}  // namespace

void AppendFrame(std::string* out, const std::string& payload) {
  out->reserve(out->size() + kHeaderBytes + payload.size() + kTrailerBytes);
  out->append(kFrameMagic, sizeof(kFrameMagic));
  WalPutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  WalPutU32(out, Crc32c(payload.data(), payload.size()));
}

FrameParse ExtractFrame(std::string* buffer, std::string* payload,
                        uint32_t* crc) {
  if (buffer->size() < sizeof(kFrameMagic)) {
    // Reject a wrong prefix as soon as the bytes we do have disagree.
    if (std::memcmp(buffer->data(), kFrameMagic, buffer->size()) != 0) {
      return FrameParse::kBadMagic;
    }
    return FrameParse::kNeedMore;
  }
  if (std::memcmp(buffer->data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return FrameParse::kBadMagic;
  }
  if (buffer->size() < kHeaderBytes) return FrameParse::kNeedMore;
  const uint32_t payload_len = ReadU32(buffer->data() + sizeof(kFrameMagic));
  if (payload_len > kMaxFramePayload) return FrameParse::kTooLarge;
  const size_t total = kHeaderBytes + payload_len + kTrailerBytes;
  if (buffer->size() < total) return FrameParse::kNeedMore;
  *crc = ReadU32(buffer->data() + kHeaderBytes + payload_len);
  if (buffer->size() == total) {
    // Common case — the buffer holds exactly one frame (a multi-MB CSV
    // batch, usually): strip it in place instead of copying the payload
    // into a second multi-MB allocation.
    *payload = std::move(*buffer);
    payload->resize(kHeaderBytes + payload_len);
    payload->erase(0, kHeaderBytes);
    buffer->clear();
  } else {
    payload->assign(buffer->data() + kHeaderBytes, payload_len);
    buffer->erase(0, total);
  }
  return FrameParse::kFrame;
}

Status VerifyFrame(const std::string& payload, uint32_t crc) {
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::MalformedInput("frame CRC mismatch");
  }
  return Status::Ok();
}

Status WriteFrameTo(int fd, std::initializer_list<std::string_view> parts) {
  // Header, up to four payload parts, trailer.
  constexpr size_t kMaxParts = 4;
  if (parts.size() > kMaxParts) {
    return Status::Internal("too many frame parts");
  }
  size_t payload_len = 0;
  uint32_t crc = 0;
  for (const std::string_view part : parts) {
    payload_len += part.size();
    crc = Crc32c(part.data(), part.size(), crc);
  }
  char header[kHeaderBytes];
  std::memcpy(header, kFrameMagic, sizeof(kFrameMagic));
  std::string prefix;  // u32 length, little-endian like the rest
  WalPutU32(&prefix, static_cast<uint32_t>(payload_len));
  std::memcpy(header + sizeof(kFrameMagic), prefix.data(), prefix.size());
  std::string trailer;
  WalPutU32(&trailer, crc);

  iovec iov[kMaxParts + 2];
  size_t chunks = 0;
  iov[chunks++] = {header, kHeaderBytes};
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    iov[chunks++] = {const_cast<char*>(part.data()), part.size()};
  }
  iov[chunks++] = {const_cast<char*>(trailer.data()), trailer.size()};

  size_t idx = 0;
  while (idx < chunks) {
    msghdr msg = {};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = chunks - idx;
    const ssize_t w = sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::IoError("frame send timed out");
      }
      return Status::IoError(std::string("sendmsg: ") +
                             (w == 0 ? "connection closed"
                                     : std::strerror(errno)));
    }
    // Advance the iovec past the bytes the kernel took.
    size_t taken = static_cast<size_t>(w);
    while (idx < chunks && taken >= iov[idx].iov_len) {
      taken -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < chunks && taken > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + taken;
      iov[idx].iov_len -= taken;
    }
  }
  return Status::Ok();
}

Status WriteFrameTo(int fd, const std::string& payload) {
  return WriteFrameTo(fd, {std::string_view(payload)});
}

Status WriteRepairRequestTo(
    int fd, const std::string& tenant,
    const std::vector<std::pair<std::string, std::string>>& config,
    std::string_view csv) {
  // Everything up to (and including) the CSV's length prefix; the CSV
  // bytes themselves ride as their own iovec part.
  std::string head;
  WalPutU8(&head, kProtocolVersion);
  WalPutU8(&head, static_cast<uint8_t>(Verb::kRepair));
  WalPutString(&head, tenant);
  WalPutU32(&head, static_cast<uint32_t>(config.size()));
  for (const auto& [key, value] : config) {
    WalPutString(&head, key);
    WalPutString(&head, value);
  }
  WalPutU32(&head, static_cast<uint32_t>(csv.size()));
  return WriteFrameTo(fd, {head, csv});
}

Status WriteRepairResponseTo(int fd, const RepairResult& result) {
  std::string head;
  WalPutU8(&head, kProtocolVersion);
  WalPutU8(&head, static_cast<uint8_t>(StatusCode::kOk));
  WalPutString(&head, "");  // ok status carries no message
  WalPutU8(&head, static_cast<uint8_t>(Verb::kRepair));
  WalPutU64(&head, result.rows);
  WalPutU64(&head, result.cells_changed);
  WalPutU64(&head, result.tuples_quarantined);
  WalPutU32(&head, static_cast<uint32_t>(result.csv.size()));
  std::string tail;
  WalPutU32(&tail, static_cast<uint32_t>(result.quarantine.size()));
  tail += result.quarantine;
  return WriteFrameTo(fd, {head, result.csv, tail});
}

std::string EncodeRepairRequest(
    const std::string& tenant,
    const std::vector<std::pair<std::string, std::string>>& config,
    std::string_view csv) {
  std::string out;
  out.reserve(csv.size() + 256);
  WalPutU8(&out, kProtocolVersion);
  WalPutU8(&out, static_cast<uint8_t>(Verb::kRepair));
  WalPutString(&out, tenant);
  WalPutU32(&out, static_cast<uint32_t>(config.size()));
  for (const auto& [key, value] : config) {
    WalPutString(&out, key);
    WalPutString(&out, value);
  }
  WalPutString(&out, csv);
  return out;
}

std::string EncodeRequest(const Request& request) {
  if (request.verb == Verb::kRepair) {
    return EncodeRepairRequest(request.repair.tenant, request.repair.config,
                               request.repair.csv);
  }
  std::string out;
  WalPutU8(&out, kProtocolVersion);
  WalPutU8(&out, static_cast<uint8_t>(request.verb));
  switch (request.verb) {
    case Verb::kPing:
    case Verb::kList:
    case Verb::kRepair:  // handled above
      break;
    case Verb::kReload:
      WalPutString(&out, request.reload.tenant);
      WalPutString(&out, request.reload.spec);
      break;
  }
  return out;
}

namespace {

// Shared parse core. The repair CSV — the payload's final, often
// multi-MB field — comes back as a view into `payload`; each public
// overload decides whether to copy it or reclaim the buffer in place.
StatusOr<Request> DecodeRequestCore(std::string_view payload,
                                    std::string_view* csv) {
  WalCursor cursor(payload);
  uint8_t version = 0;
  uint8_t verb = 0;
  if (!cursor.GetU8(&version)) return Truncated("request");
  if (version != kProtocolVersion) {
    return Status::MalformedInput("unsupported protocol version " +
                                  std::to_string(version) + " (speak " +
                                  std::to_string(kProtocolVersion) + ")");
  }
  if (!cursor.GetU8(&verb)) return Truncated("request");
  Request request;
  switch (verb) {
    case static_cast<uint8_t>(Verb::kPing):
    case static_cast<uint8_t>(Verb::kList):
      request.verb = static_cast<Verb>(verb);
      break;
    case static_cast<uint8_t>(Verb::kRepair): {
      request.verb = Verb::kRepair;
      uint32_t pairs = 0;
      if (!cursor.GetString(&request.repair.tenant) ||
          !cursor.GetU32(&pairs)) {
        return Truncated("repair request");
      }
      request.repair.config.reserve(pairs);
      for (uint32_t i = 0; i < pairs; ++i) {
        std::string key;
        std::string value;
        if (!cursor.GetString(&key) || !cursor.GetString(&value)) {
          return Truncated("repair request config");
        }
        request.repair.config.emplace_back(std::move(key), std::move(value));
      }
      if (!cursor.GetStringView(csv)) {
        return Truncated("repair request");
      }
      break;
    }
    case static_cast<uint8_t>(Verb::kReload):
      request.verb = Verb::kReload;
      if (!cursor.GetString(&request.reload.tenant) ||
          !cursor.GetString(&request.reload.spec)) {
        return Truncated("reload request");
      }
      break;
    default:
      return Status::MalformedInput("unknown request verb " +
                                    std::to_string(verb));
  }
  if (!cursor.at_end()) {
    return Status::MalformedInput("trailing bytes after request payload");
  }
  return request;
}

}  // namespace

StatusOr<Request> DecodeRequest(const std::string& payload) {
  std::string_view csv;
  StatusOr<Request> request = DecodeRequestCore(payload, &csv);
  if (request.ok() && request->verb == Verb::kRepair) {
    request->repair.csv.assign(csv.data(), csv.size());
  }
  return request;
}

StatusOr<Request> DecodeRequest(std::string&& payload) {
  std::string_view csv;
  StatusOr<Request> request = DecodeRequestCore(payload, &csv);
  if (request.ok() && request->verb == Verb::kRepair) {
    // The CSV is the payload's last field (at_end() above proved it):
    // slide it to the front and shrink — a memmove, not a second
    // multi-MB allocation — then hand the buffer itself to the request.
    payload.erase(0, static_cast<size_t>(csv.data() - payload.data()));
    payload.resize(csv.size());
    request->repair.csv = std::move(payload);
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  WalPutU8(&out, kProtocolVersion);
  WalPutU8(&out, static_cast<uint8_t>(response.status.code()));
  WalPutString(&out, response.status.message());
  WalPutU8(&out, static_cast<uint8_t>(response.verb));
  if (!response.status.ok()) return out;
  switch (response.verb) {
    case Verb::kPing:
      WalPutU64(&out, response.ping.rule_sets);
      WalPutU64(&out, response.ping.requests_served);
      WalPutU64(&out, response.ping.requests_rejected);
      break;
    case Verb::kRepair:
      out.reserve(out.size() + response.repair.csv.size() +
                  response.repair.quarantine.size() + 64);
      WalPutU64(&out, response.repair.rows);
      WalPutU64(&out, response.repair.cells_changed);
      WalPutU64(&out, response.repair.tuples_quarantined);
      WalPutString(&out, response.repair.csv);
      WalPutString(&out, response.repair.quarantine);
      break;
    case Verb::kReload:
      WalPutU64(&out, response.reload.generation);
      WalPutU64(&out, response.reload.num_rules);
      break;
    case Verb::kList:
      WalPutU32(&out, static_cast<uint32_t>(response.rule_sets.size()));
      for (const RuleSetInfo& info : response.rule_sets) {
        WalPutString(&out, info.name);
        WalPutU64(&out, info.num_rules);
        WalPutU64(&out, info.generation);
        WalPutU8(&out, info.dict_backed ? 1 : 0);
      }
      break;
  }
  return out;
}

namespace {

// Shared parse core, mirroring DecodeRequestCore: the repaired CSV is
// returned as a view into `payload`. The quarantine text that follows
// it is copied eagerly — it is empty unless the request opted into
// on-error=quarantine, and small next to the batch when it is not.
StatusOr<Response> DecodeResponseCore(std::string_view payload,
                                      std::string_view* csv) {
  WalCursor cursor(payload);
  uint8_t version = 0;
  if (!cursor.GetU8(&version)) return Truncated("response");
  if (version != kProtocolVersion) {
    return Status::MalformedInput("unsupported protocol version " +
                                  std::to_string(version));
  }
  uint8_t code = 0;
  std::string message;
  uint8_t verb = 0;
  if (!cursor.GetU8(&code) || !cursor.GetString(&message) ||
      !cursor.GetU8(&verb)) {
    return Truncated("response");
  }
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::MalformedInput("unknown response status code " +
                                  std::to_string(code));
  }
  Response response;
  if (code != 0) {
    response.status = Status(static_cast<StatusCode>(code),
                             std::move(message));
  }
  switch (verb) {
    case static_cast<uint8_t>(Verb::kPing):
    case static_cast<uint8_t>(Verb::kRepair):
    case static_cast<uint8_t>(Verb::kReload):
    case static_cast<uint8_t>(Verb::kList):
      response.verb = static_cast<Verb>(verb);
      break;
    default:
      return Status::MalformedInput("unknown response verb " +
                                    std::to_string(verb));
  }
  if (!response.status.ok()) {
    if (!cursor.at_end()) {
      return Status::MalformedInput("trailing bytes after error response");
    }
    return response;
  }
  switch (response.verb) {
    case Verb::kPing:
      if (!cursor.GetU64(&response.ping.rule_sets) ||
          !cursor.GetU64(&response.ping.requests_served) ||
          !cursor.GetU64(&response.ping.requests_rejected)) {
        return Truncated("ping response");
      }
      break;
    case Verb::kRepair:
      if (!cursor.GetU64(&response.repair.rows) ||
          !cursor.GetU64(&response.repair.cells_changed) ||
          !cursor.GetU64(&response.repair.tuples_quarantined) ||
          !cursor.GetStringView(csv) ||
          !cursor.GetString(&response.repair.quarantine)) {
        return Truncated("repair response");
      }
      break;
    case Verb::kReload:
      if (!cursor.GetU64(&response.reload.generation) ||
          !cursor.GetU64(&response.reload.num_rules)) {
        return Truncated("reload response");
      }
      break;
    case Verb::kList: {
      uint32_t count = 0;
      if (!cursor.GetU32(&count)) return Truncated("list response");
      response.rule_sets.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        RuleSetInfo info;
        uint8_t dict_backed = 0;
        if (!cursor.GetString(&info.name) || !cursor.GetU64(&info.num_rules) ||
            !cursor.GetU64(&info.generation) || !cursor.GetU8(&dict_backed)) {
          return Truncated("list response");
        }
        info.dict_backed = dict_backed != 0;
        response.rule_sets.push_back(std::move(info));
      }
      break;
    }
  }
  if (!cursor.at_end()) {
    return Status::MalformedInput("trailing bytes after response payload");
  }
  return response;
}

}  // namespace

StatusOr<Response> DecodeResponse(const std::string& payload) {
  std::string_view csv;
  StatusOr<Response> response = DecodeResponseCore(payload, &csv);
  if (response.ok() && response->verb == Verb::kRepair &&
      response->status.ok()) {
    response->repair.csv.assign(csv.data(), csv.size());
  }
  return response;
}

StatusOr<Response> DecodeResponse(std::string&& payload) {
  std::string_view csv;
  StatusOr<Response> response = DecodeResponseCore(payload, &csv);
  if (response.ok() && response->verb == Verb::kRepair &&
      response->status.ok()) {
    // The quarantine tail was already copied out by the core, so the
    // buffer is free to become the CSV: slide and shrink in place.
    payload.erase(0, static_cast<size_t>(csv.data() - payload.data()));
    payload.resize(csv.size());
    response->repair.csv = std::move(payload);
  }
  return response;
}

}  // namespace fixrep::serve
