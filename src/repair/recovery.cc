#include "repair/recovery.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "rules/rule_io.h"

namespace fixrep {

namespace {

// The crash half of a crash site: flush what a real kill would leave in
// the file, then die the way the kill-and-resume harness's SIGKILL
// does — no atexit handlers, no stack unwinding, no buffered IO flush.
[[noreturn]] void CrashForFaultInjection() {
  std::raise(SIGKILL);
  std::abort();  // unreachable unless SIGKILL is somehow masked
}

std::string EncodeHeader(const WalRunHeader& header) {
  std::string payload;
  WalPutU32(&payload, header.version);
  WalPutU64(&payload, header.rule_fingerprint);
  WalPutU32(&payload, static_cast<uint32_t>(header.attribute_names.size()));
  for (const std::string& name : header.attribute_names) {
    WalPutString(&payload, name);
  }
  WalPutU64(&payload, header.chunk_rows);
  WalPutU8(&payload, header.on_error);
  return payload;
}

bool DecodeHeader(std::string_view payload, WalRunHeader* header) {
  WalCursor cursor(payload);
  uint32_t num_attrs = 0;
  if (!cursor.GetU32(&header->version) ||
      !cursor.GetU64(&header->rule_fingerprint) ||
      !cursor.GetU32(&num_attrs)) {
    return false;
  }
  header->attribute_names.resize(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    if (!cursor.GetString(&header->attribute_names[a])) return false;
  }
  if (!cursor.GetU64(&header->chunk_rows)) return false;
  if (!cursor.GetU8(&header->on_error)) return false;
  return cursor.at_end();
}

std::string EncodeDelta(const WalCellDelta& delta) {
  std::string payload;
  WalPutU64(&payload, delta.row);
  WalPutU32(&payload, delta.attr);
  WalPutU8(&payload, delta.old_is_null ? 1 : 0);
  WalPutString(&payload, delta.old_value);
  WalPutString(&payload, delta.new_value);
  WalPutU64(&payload, delta.rule_index);
  return payload;
}

bool DecodeDelta(std::string_view payload, WalCellDelta* delta) {
  WalCursor cursor(payload);
  uint8_t old_is_null = 0;
  if (!cursor.GetU64(&delta->row) || !cursor.GetU32(&delta->attr) ||
      !cursor.GetU8(&old_is_null) || !cursor.GetString(&delta->old_value) ||
      !cursor.GetString(&delta->new_value) ||
      !cursor.GetU64(&delta->rule_index)) {
    return false;
  }
  delta->old_is_null = old_is_null != 0;
  return cursor.at_end();
}

std::string EncodeQuarantine(const Diagnostic& diagnostic) {
  std::string payload;
  WalPutU64(&payload, static_cast<uint64_t>(diagnostic.line));
  WalPutU8(&payload, static_cast<uint8_t>(diagnostic.code));
  WalPutString(&payload, diagnostic.message);
  WalPutString(&payload, diagnostic.raw_text);
  return payload;
}

bool DecodeQuarantine(std::string_view payload, Diagnostic* diagnostic) {
  WalCursor cursor(payload);
  uint64_t line = 0;
  uint8_t code = 0;
  if (!cursor.GetU64(&line) || !cursor.GetU8(&code) ||
      !cursor.GetString(&diagnostic->message) ||
      !cursor.GetString(&diagnostic->raw_text)) {
    return false;
  }
  diagnostic->line = static_cast<size_t>(line);
  diagnostic->code = static_cast<StatusCode>(code);
  return cursor.at_end();
}

std::string EncodeChunkMeta(uint64_t chunk_index, uint64_t a, uint64_t b,
                            uint64_t c) {
  std::string payload;
  WalPutU64(&payload, chunk_index);
  WalPutU64(&payload, a);
  WalPutU64(&payload, b);
  WalPutU64(&payload, c);
  return payload;
}

bool DecodeChunkMeta(std::string_view payload, uint64_t* chunk_index,
                     uint64_t* a, uint64_t* b, uint64_t* c) {
  WalCursor cursor(payload);
  return cursor.GetU64(chunk_index) && cursor.GetU64(a) && cursor.GetU64(b) &&
         cursor.GetU64(c) && cursor.at_end();
}

Status MalformedWal(const std::string& path, const std::string& detail) {
  return Status::MalformedInput("WAL '" + path + "': " + detail);
}

}  // namespace

StatusOr<ChunkJournal> ChunkJournal::Create(const std::string& path,
                                            const WalRunHeader& header) {
  StatusOr<WalWriter> writer = WalWriter::Create(path);
  if (!writer.ok()) return writer.status();
  ChunkJournal journal(std::move(writer).value());
  FIXREP_RETURN_IF_ERROR(journal.writer_.Append(
      static_cast<uint8_t>(WalRec::kHeader), EncodeHeader(header)));
  // Sync now: a run killed inside its first chunk must still leave a
  // scannable (zero-chunk) log behind.
  FIXREP_RETURN_IF_ERROR(journal.writer_.Sync());
  return journal;
}

StatusOr<ChunkJournal> ChunkJournal::Resume(const std::string& path,
                                            uint64_t durable_bytes) {
  StatusOr<WalWriter> writer = WalWriter::OpenForAppend(path, durable_bytes);
  if (!writer.ok()) return writer.status();
  return ChunkJournal(std::move(writer).value());
}

Status ChunkJournal::BeginChunk(uint64_t chunk_index, uint64_t base_row,
                                uint64_t rows) {
  return writer_.Append(static_cast<uint8_t>(WalRec::kChunkBegin),
                        EncodeChunkMeta(chunk_index, base_row, rows, 0));
}

Status ChunkJournal::AddDelta(const WalCellDelta& delta) {
  return writer_.Append(static_cast<uint8_t>(WalRec::kCellDelta),
                        EncodeDelta(delta));
}

Status ChunkJournal::AddQuarantine(const Diagnostic& diagnostic) {
  return writer_.Append(static_cast<uint8_t>(WalRec::kQuarantine),
                        EncodeQuarantine(diagnostic));
}

Status ChunkJournal::AddCsvQuarantine(const Diagnostic& diagnostic) {
  return writer_.Append(static_cast<uint8_t>(WalRec::kCsvQuarantine),
                        EncodeQuarantine(diagnostic));
}

Status ChunkJournal::Commit(uint64_t chunk_index, uint64_t rows,
                            uint64_t cells_changed,
                            uint64_t tuples_quarantined) {
  if (FIXREP_FAULT("wal.crash_after_append")) {
    // Die with the chunk's records written but no commit record: replay
    // must discard them as an uncommitted tail.
    (void)writer_.FlushNoSync();
    CrashForFaultInjection();
  }
  const std::string payload =
      EncodeChunkMeta(chunk_index, rows, cells_changed, tuples_quarantined);
  if (FIXREP_FAULT("wal.crash_before_commit")) {
    // Die mid-write of the commit record itself: everything before it
    // lands whole, then half a frame — the CRC/torn-frame replay case.
    (void)writer_.FlushNoSync();
    (void)writer_.Append(static_cast<uint8_t>(WalRec::kChunkCommit),
                         payload);
    writer_.WriteTornBufferForCrash();
    CrashForFaultInjection();
  }
  FIXREP_RETURN_IF_ERROR(writer_.Append(
      static_cast<uint8_t>(WalRec::kChunkCommit), payload));
  FIXREP_RETURN_IF_ERROR(writer_.Sync());
  if (FIXREP_FAULT("wal.crash_after_commit")) {
    // Die with the chunk durable but its rows never emitted: resume
    // must re-emit them from the log.
    CrashForFaultInjection();
  }
  return Status::Ok();
}

StatusOr<RecoveredRun> ScanWal(const std::string& path) {
  StatusOr<WalReader> opened = WalReader::Open(path);
  if (!opened.ok()) return opened.status();
  WalReader& reader = opened.value();

  RecoveredRun run;
  bool have_header = false;
  std::optional<WalChunk> pending;
  WalRecord record;
  while (reader.Next(&record)) {
    switch (static_cast<WalRec>(record.type)) {
      case WalRec::kHeader: {
        if (have_header) return MalformedWal(path, "duplicate header record");
        if (!DecodeHeader(record.payload, &run.header)) {
          return MalformedWal(path, "undecodable header record");
        }
        if (run.header.version < kMinWalFormatVersion ||
            run.header.version > kWalFormatVersion) {
          return MalformedWal(
              path, "format version " + std::to_string(run.header.version) +
                        " (this build reads versions " +
                        std::to_string(kMinWalFormatVersion) + ".." +
                        std::to_string(kWalFormatVersion) + ")");
        }
        have_header = true;
        run.durable_bytes = reader.durable_bytes();
        break;
      }
      case WalRec::kChunkBegin: {
        if (!have_header) return MalformedWal(path, "chunk before header");
        if (pending.has_value()) {
          // A begin can only follow a commit in the durable prefix; an
          // interrupted chunk is always the LAST thing in the file.
          return MalformedWal(path, "chunk_begin inside an open chunk");
        }
        WalChunk chunk;
        uint64_t zero = 0;
        if (!DecodeChunkMeta(record.payload, &chunk.chunk_index,
                             &chunk.base_row, &chunk.rows, &zero)) {
          return MalformedWal(path, "undecodable chunk_begin record");
        }
        pending = std::move(chunk);
        break;
      }
      case WalRec::kCellDelta: {
        if (!pending.has_value()) {
          return MalformedWal(path, "cell_delta outside a chunk");
        }
        WalCellDelta delta;
        if (!DecodeDelta(record.payload, &delta)) {
          return MalformedWal(path, "undecodable cell_delta record");
        }
        pending->deltas.push_back(std::move(delta));
        break;
      }
      case WalRec::kQuarantine: {
        if (!pending.has_value()) {
          return MalformedWal(path, "quarantine outside a chunk");
        }
        Diagnostic diagnostic;
        if (!DecodeQuarantine(record.payload, &diagnostic)) {
          return MalformedWal(path, "undecodable quarantine record");
        }
        pending->quarantined.push_back(std::move(diagnostic));
        break;
      }
      case WalRec::kCsvQuarantine: {
        if (run.header.version < kCsvQuarantineWalVersion) {
          return MalformedWal(path,
                              "csv_quarantine record in a version-" +
                                  std::to_string(run.header.version) + " log");
        }
        if (!pending.has_value()) {
          return MalformedWal(path, "csv_quarantine outside a chunk");
        }
        Diagnostic diagnostic;
        if (!DecodeQuarantine(record.payload, &diagnostic)) {
          return MalformedWal(path, "undecodable csv_quarantine record");
        }
        pending->csv_quarantined.push_back(std::move(diagnostic));
        break;
      }
      case WalRec::kChunkCommit: {
        if (!pending.has_value()) {
          return MalformedWal(path, "chunk_commit outside a chunk");
        }
        uint64_t chunk_index = 0;
        uint64_t rows = 0;
        if (!DecodeChunkMeta(record.payload, &chunk_index, &rows,
                             &pending->cells_changed,
                             &pending->tuples_quarantined)) {
          return MalformedWal(path, "undecodable chunk_commit record");
        }
        if (chunk_index != pending->chunk_index || rows != pending->rows) {
          return MalformedWal(
              path, "chunk_commit #" + std::to_string(chunk_index) +
                        " does not match open chunk #" +
                        std::to_string(pending->chunk_index));
        }
        run.chunks.push_back(std::move(pending).value());
        pending.reset();
        run.durable_bytes = reader.durable_bytes();
        break;
      }
      default:
        return MalformedWal(path, "unknown record type " +
                                      std::to_string(record.type));
    }
  }
  if (!have_header) {
    return MalformedWal(path, "no header record in the durable prefix");
  }
  // Anything past the last commit — a torn frame, or whole records of a
  // chunk that never committed — is the crash residue resume truncates.
  run.tail_discarded = reader.tail_truncated() || pending.has_value() ||
                       reader.durable_bytes() != run.durable_bytes;
  return run;
}

Status ValidateWalHeader(const WalRunHeader& header,
                         uint64_t rule_fingerprint,
                         const std::vector<std::string>& attribute_names,
                         uint64_t chunk_rows, OnErrorPolicy on_error) {
  if (header.rule_fingerprint != rule_fingerprint) {
    return Status::MalformedInput(
        "WAL was written under a different rule set (fingerprint mismatch); "
        "resume requires the original rules");
  }
  if (header.attribute_names != attribute_names) {
    return Status::MalformedInput(
        "WAL was written for a different schema (" +
        std::to_string(header.arity()) + " attributes vs " +
        std::to_string(attribute_names.size()) + " in the input)");
  }
  if (header.chunk_rows != chunk_rows) {
    return Status::MalformedInput(
        "WAL was written with chunk_rows=" +
        std::to_string(header.chunk_rows) + ", this run uses " +
        std::to_string(chunk_rows) +
        "; chunk boundaries must match to resume");
  }
  if (header.on_error != static_cast<uint8_t>(on_error)) {
    return Status::MalformedInput(
        "WAL was written under a different --on-error policy; resume "
        "requires the original policy");
  }
  return Status::Ok();
}

Status ValidateWalFingerprint(const WalRunHeader& header,
                              const RuleSet& rules) {
  if (header.rule_fingerprint != RuleSetFingerprint(rules)) {
    return Status::MalformedInput(
        "rule set does not match the WAL (fingerprint mismatch): rule "
        "indices in the log would be misattributed — load the rule file "
        "the run was journaled under");
  }
  return Status::Ok();
}

StatusOr<WalAudit> BuildAudit(const RecoveredRun& run) {
  if (run.header.arity() == 0) {
    return Status::MalformedInput(
        "WAL header carries no attribute names; nothing to audit");
  }
  WalAudit audit;
  audit.schema = std::make_shared<const Schema>(
      "wal", std::vector<std::string>(run.header.attribute_names));
  audit.pool = std::make_shared<ValuePool>();
  for (const WalChunk& chunk : run.chunks) {
    for (const WalCellDelta& delta : chunk.deltas) {
      CellRepair repair;
      repair.row = static_cast<size_t>(chunk.base_row + delta.row);
      repair.attr = static_cast<AttrId>(delta.attr);
      repair.old_value =
          delta.old_is_null ? kNullValue : audit.pool->Intern(delta.old_value);
      repair.new_value = audit.pool->Intern(delta.new_value);
      repair.rule_index = static_cast<size_t>(delta.rule_index);
      audit.log.repairs.push_back(repair);
    }
  }
  return audit;
}

StatusOr<RollbackReport> RollbackRule(const RecoveredRun& run,
                                      const RuleSet& rules,
                                      size_t rule_index,
                                      const std::string& repaired_csv,
                                      const std::string& out_csv) {
  FIXREP_RETURN_IF_ERROR(ValidateWalFingerprint(run.header, rules));
  if (rule_index >= rules.size()) {
    return Status::MalformedInput(
        "rule index " + std::to_string(rule_index) +
        " out of range: the rule set has " + std::to_string(rules.size()) +
        " rules");
  }
  auto pool = std::make_shared<ValuePool>();
  StatusOr<Table> loaded = ReadCsvFileLenient(repaired_csv, "rollback", pool);
  if (!loaded.ok()) return loaded.status();
  Table& table = loaded.value();
  if (table.num_columns() != run.header.arity()) {
    return Status::MalformedInput(
        "'" + repaired_csv + "' has " + std::to_string(table.num_columns()) +
        " columns but the WAL was written for " +
        std::to_string(run.header.arity()));
  }

  RollbackReport report;
  size_t last_row_touched = SIZE_MAX;
  for (const WalChunk& chunk : run.chunks) {
    for (const WalCellDelta& delta : chunk.deltas) {
      if (delta.rule_index != rule_index) continue;
      const size_t row = static_cast<size_t>(chunk.base_row + delta.row);
      const AttrId attr = static_cast<AttrId>(delta.attr);
      if (row >= table.num_rows()) {
        return Status::MalformedInput(
            "WAL delta at row " + std::to_string(row) + " but '" +
            repaired_csv + "' has only " + std::to_string(table.num_rows()) +
            " rows — not the output of the journaled run?");
      }
      // The chase writes each cell at most once, so the journaled new
      // value is the final value: anything else means the file was
      // modified since the repair, and restoring the old value would
      // clobber that edit.
      if (table.CellString(row, attr) != delta.new_value) {
        return Status::MalformedInput(
            "row " + std::to_string(row) + " " +
            run.header.attribute_names[delta.attr] + " holds '" +
            table.CellString(row, attr) + "', expected '" + delta.new_value +
            "' — '" + repaired_csv +
            "' was modified since the journaled repair; refusing rollback");
      }
      table.WriteCell(row, attr,
                      delta.old_is_null ? kNullValue
                                        : pool->Intern(delta.old_value));
      ++report.cells_restored;
      if (row != last_row_touched) {
        ++report.rows_touched;
        last_row_touched = row;
      }
    }
  }
  FIXREP_RETURN_IF_ERROR(TryWriteCsvFile(table, out_csv));
  return report;
}

}  // namespace fixrep
