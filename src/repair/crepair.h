#ifndef FIXREP_REPAIR_CREPAIR_H_
#define FIXREP_REPAIR_CREPAIR_H_

#include "relation/table.h"
#include "repair/repair_stats.h"
#include "rules/rule_set.h"

namespace fixrep {

// cRepair (Fig. 6): the chase-based repair algorithm. Per tuple it scans
// the remaining rules, applies any that is properly applicable, and
// repeats until a fixpoint — O(size(Σ)·|R|) per tuple. Correctness for a
// consistent Σ follows from the Church-Rosser property: any maximal
// sequence of proper applications reaches the unique fix.
//
// The repairer borrows the rule set; the rule set must outlive it and
// must not be mutated while repairing.
class ChaseRepairer {
 public:
  explicit ChaseRepairer(const RuleSet* rules);

  // Chases one tuple to its fix in place. Returns the number of cells
  // changed.
  size_t RepairTuple(Tuple* t);

  // Repairs every row of `table` in place.
  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset(rules_->size());
    published_.Reset(rules_->size());
  }

  // Publishes stats accumulated since the last flush into the global
  // MetricsRegistry (fixrep.crepair.*). RepairTable flushes automatically.
  void FlushMetrics();

 private:
  const RuleSet* rules_;
  RepairStats stats_;
  RepairStats published_;  // snapshot of stats_ at the last FlushMetrics
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_CREPAIR_H_
