#ifndef FIXREP_REPAIR_CREPAIR_H_
#define FIXREP_REPAIR_CREPAIR_H_

#include <memory>

#include "common/status.h"
#include "relation/table.h"
#include "repair/repair_stats.h"
#include "repair/rule_index.h"
#include "rules/rule_set.h"
#include "rules/rule_source.h"

namespace fixrep {

// cRepair (Fig. 6): the chase-based repair algorithm. Per tuple it scans
// the remaining rules, applies any that is properly applicable, and
// repeats until a fixpoint — O(size(Σ)·|R|) per tuple. Correctness for a
// consistent Σ follows from the Church-Rosser property: any maximal
// sequence of proper applications reaches the unique fix.
//
// The scan reads rules through the RuleSource seam (MatchesFlat is
// FixingRule::Matches over the compiled CSR patterns), so the reference
// chase runs against either backend — in-RAM index or mmap dictionary —
// and stays the cross-validation oracle for both.
class ChaseRepairer {
 public:
  // Compiles a private index for `rules`. The rule set must outlive the
  // repairer and must not be mutated afterwards.
  explicit ChaseRepairer(const RuleSet* rules);

  // Chases against an arbitrary source view (see FastRepairer). The
  // view's backing store and scratch must outlive the repairer.
  explicit ChaseRepairer(const RuleSource& source);

  // Chases one tuple to its fix in place through the view. Returns the
  // number of cells changed. Accepts a Table::WriteRow span or
  // (implicitly) an owning Tuple.
  size_t RepairTuple(TupleSpan t);

  // Per-tuple failure-isolating variant: reports a wrong-arity tuple as
  // kMalformedInput and a chase exceeding the step budget (see
  // set_max_chase_steps) as kBudgetExhausted instead of CHECK-failing or
  // spinning. On any error the tuple is restored to its original values
  // and no changes are recorded (tuples_examined and the chase-internal
  // work counters still record the attempt).
  Status TryRepairTuple(TupleSpan t, size_t* cells_changed);

  // Caps the number of rule examinations one TryRepairTuple chase may
  // spend before giving up with kBudgetExhausted; 0 (default) means
  // unlimited. A consistent rule set needs at most |Σ| applications per
  // tuple, so a budget of a few multiples of |Σ|² rule scans only trips
  // on pathological rule interaction. RepairTuple ignores the budget.
  void set_max_chase_steps(size_t max_steps) { max_chase_steps_ = max_steps; }
  size_t max_chase_steps() const { return max_chase_steps_; }

  // Repairs every row of `table` in place.
  void RepairTable(Table* table);

  const RepairStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset(source_.num_rules());
    published_.Reset(source_.num_rules());
  }

  // Publishes stats accumulated since the last flush into the global
  // MetricsRegistry (fixrep.crepair.*). RepairTable flushes automatically.
  void FlushMetrics();

 private:
  // The chase proper; `max_steps` of 0 disables the budget.
  Status ChaseWithBudget(TupleSpan t, size_t max_steps,
                         size_t* cells_changed);

  std::unique_ptr<const CompiledRuleIndex> owned_index_;
  RuleSource source_;
  size_t max_chase_steps_ = 0;
  RepairStats stats_;
  RepairStats published_;  // snapshot of stats_ at the last FlushMetrics
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_CREPAIR_H_
