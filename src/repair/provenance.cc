#include "repair/provenance.h"

#include "common/logging.h"
#include "common/trace.h"
#include "repair/lrepair.h"

namespace fixrep {

std::string RepairLog::Describe(const CellRepair& repair,
                                const Schema& schema,
                                const ValuePool& pool) const {
  auto value_string = [&pool](ValueId v) {
    return v == kNullValue ? std::string("_") : pool.GetString(v);
  };
  return "row " + std::to_string(repair.row) + " " +
         schema.attribute_name(repair.attr) + ": '" +
         value_string(repair.old_value) + "' -> '" +
         value_string(repair.new_value) + "' by rule #" +
         std::to_string(repair.rule_index);
}

std::vector<size_t> RepairLog::PerRuleCounts(size_t num_rules) const {
  // A log can outlive the rule set that produced it (a WAL audited
  // against a reloaded, possibly smaller rule file), so out-of-range
  // indices are left unattributed instead of CHECK-crashing the caller.
  // Attribution that must be exact validates the rule-set fingerprint
  // first (repair/recovery.h) and refuses on mismatch.
  std::vector<size_t> counts(num_rules, 0);
  for (const auto& repair : repairs) {
    if (repair.rule_index >= num_rules) continue;
    ++counts[repair.rule_index];
  }
  return counts;
}

RepairLog RepairWithProvenance(const RuleSet& rules, Table* table) {
  FIXREP_CHECK(table != nullptr);
  FIXREP_TRACE_SPAN("provenance.chase");
  RepairLog log;
  // Chase each tuple exactly as cRepair does (for a consistent set the
  // fix is unique, so this matches what FastRepairer writes), recording
  // the before/after of every application.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const TupleSpan tuple = table->WriteRow(r);
    AttrSet assured;
    std::vector<bool> applied(rules.size(), false);
    bool updated = true;
    while (updated) {
      updated = false;
      for (size_t i = 0; i < rules.size(); ++i) {
        if (applied[i]) continue;
        const FixingRule& rule = rules.rule(i);
        if (assured.Contains(rule.target) || !rule.Matches(tuple)) continue;
        CellRepair repair;
        repair.row = r;
        repair.attr = rule.target;
        repair.old_value = tuple[rule.target];
        repair.new_value = rule.fact;
        repair.rule_index = i;
        log.repairs.push_back(repair);
        rule.Apply(tuple);
        assured.UnionWith(rule.AssuredSet());
        applied[i] = true;
        updated = true;
      }
    }
  }
  return log;
}

}  // namespace fixrep
