#ifndef FIXREP_REPAIR_PROVENANCE_H_
#define FIXREP_REPAIR_PROVENANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "rules/rule_set.h"

namespace fixrep {

// One recorded cell repair: which rule rewrote which cell, from what to
// what. Collected by RepairWithProvenance so that a curator can audit
// every change a rule set made — the "dependable" in dependable
// repairing includes being able to say why each cell changed.
struct CellRepair {
  size_t row = 0;
  AttrId attr = kInvalidAttr;
  ValueId old_value = kNullValue;
  ValueId new_value = kNullValue;
  size_t rule_index = 0;

  bool operator==(const CellRepair&) const = default;
};

// A full audit log of one table repair.
struct RepairLog {
  std::vector<CellRepair> repairs;

  // Renders one entry like:
  //   row 12 capital: 'Shanghai' -> 'Beijing' by rule #3
  std::string Describe(const CellRepair& repair, const Schema& schema,
                       const ValuePool& pool) const;

  // Repairs grouped per rule (index -> how many cells it fixed).
  std::vector<size_t> PerRuleCounts(size_t num_rules) const;
};

// Repairs `table` in place with the lRepair engine, recording every cell
// change. Returns the audit log.
RepairLog RepairWithProvenance(const RuleSet& rules, Table* table);

}  // namespace fixrep

#endif  // FIXREP_REPAIR_PROVENANCE_H_
