#include "repair/repair_stats.h"

#include <string>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

void RepairStats::MergeFrom(const RepairStats& other) {
  tuples_examined += other.tuples_examined;
  tuples_changed += other.tuples_changed;
  cells_changed += other.cells_changed;
  rule_applications += other.rule_applications;
  index_hits += other.index_hits;
  counter_bumps += other.counter_bumps;
  candidates_enqueued += other.candidates_enqueued;
  candidates_rejected += other.candidates_rejected;
  batch_probes += other.batch_probes;
  batch_keys += other.batch_keys;
  chase_iterations += other.chase_iterations;
  if (per_rule_applications.size() < other.per_rule_applications.size()) {
    per_rule_applications.resize(other.per_rule_applications.size(), 0);
  }
  for (size_t i = 0; i < other.per_rule_applications.size(); ++i) {
    per_rule_applications[i] += other.per_rule_applications[i];
  }
}

void RepairStats::PublishDelta(const RepairStats& prev,
                               const char* engine) const {
  if (!kMetricsEnabled) return;
  auto& registry = CurrentMetrics();
  const std::string prefix = std::string("fixrep.") + engine + ".";
  const auto publish = [&](const char* name, size_t cur, size_t old) {
    FIXREP_DCHECK(cur >= old);
    if (cur > old) registry.GetCounter(prefix + name)->Add(cur - old);
  };
  publish("tuples_examined", tuples_examined, prev.tuples_examined);
  publish("tuples_changed", tuples_changed, prev.tuples_changed);
  publish("cells_changed", cells_changed, prev.cells_changed);
  publish("rule_applications", rule_applications, prev.rule_applications);
  publish("index_hits", index_hits, prev.index_hits);
  publish("counter_bumps", counter_bumps, prev.counter_bumps);
  publish("candidates_enqueued", candidates_enqueued,
          prev.candidates_enqueued);
  publish("candidates_rejected", candidates_rejected,
          prev.candidates_rejected);
  publish("batch_probes", batch_probes, prev.batch_probes);
  publish("batch_keys", batch_keys, prev.batch_keys);
  publish("chase_iterations", chase_iterations, prev.chase_iterations);

  std::vector<size_t> deltas(per_rule_applications.size(), 0);
  bool any = false;
  for (size_t i = 0; i < per_rule_applications.size(); ++i) {
    const size_t old = i < prev.per_rule_applications.size()
                           ? prev.per_rule_applications[i]
                           : 0;
    FIXREP_DCHECK(per_rule_applications[i] >= old);
    deltas[i] = per_rule_applications[i] - old;
    any |= deltas[i] > 0;
  }
  if (any) {
    registry.GetCounterVector(prefix + "per_rule_applications")
        ->AddAll(deltas);
  }
}

}  // namespace fixrep
