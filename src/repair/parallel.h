#ifndef FIXREP_REPAIR_PARALLEL_H_
#define FIXREP_REPAIR_PARALLEL_H_

#include <cstddef>

#include "relation/table.h"
#include "repair/repair_stats.h"
#include "rules/rule_set.h"

namespace fixrep {

// Multi-threaded whole-table repair.
//
// Fixing-rule repair is embarrassingly parallel: each tuple is chased
// independently (Section 6 repairs one tuple at a time), so the table is
// split into contiguous shards, one FastRepairer per worker (the
// inverted lists are shared-immutable; the hash counters are per-worker
// scratch). The result is bit-identical to the serial engine.
//
// `threads` == 0 picks std::thread::hardware_concurrency(). Returns the
// merged stats of all workers.
RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads = 0);

}  // namespace fixrep

#endif  // FIXREP_REPAIR_PARALLEL_H_
