#ifndef FIXREP_REPAIR_PARALLEL_H_
#define FIXREP_REPAIR_PARALLEL_H_

#include <cstddef>

#include <vector>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/provenance.h"
#include "repair/repair_stats.h"
#include "repair/rule_index.h"
#include "rules/rule_set.h"

namespace fixrep {

// Multi-threaded whole-table repair.
//
// New call sites should go through RepairSession (repair/session.h) —
// the functions here are its engine layer and stay public for drivers
// that need range-level control (block-wise spill repair).
//
// Fixing-rule repair is embarrassingly parallel: each tuple is chased
// independently (Section 6 repairs one tuple at a time), so row ranges
// are claimed dynamically from the persistent ThreadPool's atomic
// cursor. All workers share one immutable rule backend (a RuleRepository
// — the in-RAM CompiledRuleIndex or a mapped RuleDict); each owns a
// RuleSourceHandle plus a FastRepairer scratch (and, when memoization is
// on, a worker-local MemoCache). The result is bit-identical to the
// serial engine in every configuration.
//
// Content-routed sharding (repair/sharded.h) is the sibling engine:
// same contract, but rows are partitioned by value instead of claimed
// by position, concentrating duplicate tuples onto one worker's caches.
struct ParallelRepairOptions {
  // 0 picks the pool's full width (caller + all pool workers).
  size_t threads = 0;
  // Tuple-signature memoization (worker-local caches). Output is
  // bit-identical either way; duplicate-heavy tables repair much faster
  // with it on.
  bool use_memo = true;
  size_t memo_capacity = MemoCache::kDefaultCapacity;
  // Optional rule-attributed write capture (WAL journaling, provenance):
  // every committed cell write is appended as a CellRepair with an
  // absolute row index in `table`. Workers capture per slot; the merged
  // entries are appended after the join sorted by row with intra-row
  // chase order preserved — identical to what a serial run appends.
  std::vector<CellRepair>* write_log = nullptr;
};

// Repairs `table` against a pre-built shared rule backend. Returns the
// merged stats of all workers (published once into fixrep.lrepair.* so
// registry counts match a serial run).
RepairStats ParallelRepairTable(const RuleRepository& repo, Table* table,
                                const ParallelRepairOptions& options = {});

// Row-range variant: repairs rows [begin_row, end_row) only. The
// block-wise driver for spilling stores (repair/streaming.h): pin one
// RowStore block, repair exactly its rows, unpin. Identical per-row
// behavior to ParallelRepairTable; metrics are published per call, so a
// sequence of range calls covering a table sums to one whole-table call.
RepairStats ParallelRepairRows(const RuleRepository& repo, Table* table,
                               size_t begin_row, size_t end_row,
                               const ParallelRepairOptions& options = {});

// Convenience overload: compiles the index for `rules` (once per call),
// then repairs. Callers repairing many tables against one rule set should
// build the CompiledRuleIndex themselves and use the overload above.
RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads = 0);

// Failure-isolating whole-table repair: a tuple that fails (chase budget
// exhausted, injected worker fault) is restored to its original values
// and skipped or quarantined, and the rest of the batch completes.
struct LenientRepairOptions {
  // Worker count semantics of ParallelRepairOptions::threads. The memo
  // fields are ignored: the lenient path never memoizes (isolation over
  // memoization); output on clean tuples is bit-identical regardless.
  ParallelRepairOptions parallel;
  // kSkip or kQuarantine; kAbort is rejected (use ParallelRepairTable
  // for fail-fast semantics).
  OnErrorPolicy on_error = OnErrorPolicy::kQuarantine;
  // Receives one Diagnostic per failed tuple when on_error is
  // kQuarantine, in row order regardless of worker interleaving.
  // Diagnostic::line is the row index; raw_text renders the original
  // (preserved) values.
  QuarantineSink* quarantine = nullptr;
  // Per-tuple chase-step budget forwarded to FastRepairer (0 =
  // unlimited).
  size_t max_chase_steps = 0;
  // Write capture, semantics of ParallelRepairOptions::write_log; failed
  // (restored) tuples contribute no entries.
  std::vector<CellRepair>* write_log = nullptr;
};

struct LenientRepairResult {
  RepairStats stats;  // merged over workers; failed tuples record no fix
  size_t tuples_quarantined = 0;
};

// Workers collect failures per slot; diagnostics are merged, sorted by
// row, counted into fixrep.quarantine.tuples, and forwarded to the sink
// from the calling thread after the join — sinks need no locking, and
// serial and parallel runs of the same input produce identical tables,
// stats, and diagnostics.
LenientRepairResult ParallelRepairTableLenient(
    const RuleRepository& repo, Table* table,
    const LenientRepairOptions& options = {});

// Row-range variant of the lenient path (see ParallelRepairRows).
// Diagnostic::line values are absolute row indices in `table`, so range
// calls compose into the same diagnostic stream as a whole-table call.
LenientRepairResult ParallelRepairRowsLenient(
    const RuleRepository& repo, Table* table, size_t begin_row,
    size_t end_row, const LenientRepairOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_REPAIR_PARALLEL_H_
