#ifndef FIXREP_REPAIR_PARALLEL_H_
#define FIXREP_REPAIR_PARALLEL_H_

#include <cstddef>

#include "common/quarantine.h"
#include "common/status.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/repair_stats.h"
#include "repair/rule_index.h"
#include "rules/rule_set.h"

namespace fixrep {

// Multi-threaded whole-table repair.
//
// Fixing-rule repair is embarrassingly parallel: each tuple is chased
// independently (Section 6 repairs one tuple at a time), so row ranges
// are claimed dynamically from the persistent ThreadPool's atomic
// cursor. All workers share one immutable CompiledRuleIndex; each owns a
// FastRepairer scratch (and, when memoization is on, a worker-local
// MemoCache). The result is bit-identical to the serial engine in every
// configuration.
struct ParallelRepairOptions {
  // 0 picks the pool's full width (caller + all pool workers).
  size_t threads = 0;
  // Tuple-signature memoization (worker-local caches). Output is
  // bit-identical either way; duplicate-heavy tables repair much faster
  // with it on.
  bool use_memo = true;
  size_t memo_capacity = MemoCache::kDefaultCapacity;
};

// Repairs `table` against a pre-built shared index. Returns the merged
// stats of all workers (published once into fixrep.lrepair.* so registry
// counts match a serial run).
RepairStats ParallelRepairTable(const CompiledRuleIndex& index, Table* table,
                                const ParallelRepairOptions& options = {});

// Convenience overload: compiles the index for `rules` (once per call),
// then repairs. Callers repairing many tables against one rule set should
// build the CompiledRuleIndex themselves and use the overload above.
RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads = 0);

// Failure-isolating whole-table repair: a tuple that fails (chase budget
// exhausted, injected worker fault) is restored to its original values
// and skipped or quarantined, and the rest of the batch completes.
struct LenientRepairOptions {
  // Worker count semantics of ParallelRepairOptions::threads. The memo
  // fields are ignored: the lenient path never memoizes (isolation over
  // memoization); output on clean tuples is bit-identical regardless.
  ParallelRepairOptions parallel;
  // kSkip or kQuarantine; kAbort is rejected (use ParallelRepairTable
  // for fail-fast semantics).
  OnErrorPolicy on_error = OnErrorPolicy::kQuarantine;
  // Receives one Diagnostic per failed tuple when on_error is
  // kQuarantine, in row order regardless of worker interleaving.
  // Diagnostic::line is the row index; raw_text renders the original
  // (preserved) values.
  QuarantineSink* quarantine = nullptr;
  // Per-tuple chase-step budget forwarded to FastRepairer (0 =
  // unlimited).
  size_t max_chase_steps = 0;
};

struct LenientRepairResult {
  RepairStats stats;  // merged over workers; failed tuples record no fix
  size_t tuples_quarantined = 0;
};

// Workers collect failures per slot; diagnostics are merged, sorted by
// row, counted into fixrep.quarantine.tuples, and forwarded to the sink
// from the calling thread after the join — sinks need no locking, and
// serial and parallel runs of the same input produce identical tables,
// stats, and diagnostics.
LenientRepairResult ParallelRepairTableLenient(
    const CompiledRuleIndex& index, Table* table,
    const LenientRepairOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_REPAIR_PARALLEL_H_
