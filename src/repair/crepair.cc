#include "repair/crepair.h"

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace fixrep {

ChaseRepairer::ChaseRepairer(const RuleSet* rules)
    : owned_index_(std::make_unique<CompiledRuleIndex>(rules)),
      source_(owned_index_->MakeSource()) {
  stats_.Reset(source_.num_rules());
  published_.Reset(source_.num_rules());
}

ChaseRepairer::ChaseRepairer(const RuleSource& source) : source_(source) {
  stats_.Reset(source_.num_rules());
  published_.Reset(source_.num_rules());
}

size_t ChaseRepairer::RepairTuple(TupleSpan t) {
  FIXREP_CHECK_EQ(t.size(), source_.arity());
  size_t cells_changed = 0;
  const Status status = ChaseWithBudget(t, /*max_steps=*/0, &cells_changed);
  FIXREP_CHECK(status.ok()) << status.message();
  return cells_changed;
}

Status ChaseRepairer::TryRepairTuple(TupleSpan t, size_t* cells_changed) {
  *cells_changed = 0;
  if (t.size() != source_.arity()) {
    ++stats_.tuples_examined;  // every attempt counts, even a failed one
    return Status::MalformedInput(
        "tuple arity " + std::to_string(t.size()) +
        " does not match schema arity " + std::to_string(source_.arity()));
  }
  if (FIXREP_FAULT("repair.tuple")) {
    ++stats_.tuples_examined;
    return Status::Internal("injected repair-worker fault");
  }
  return ChaseWithBudget(t, max_chase_steps_, cells_changed);
}

Status ChaseRepairer::ChaseWithBudget(TupleSpan t, size_t max_steps,
                                      size_t* cells_changed_out) {
  ++stats_.tuples_examined;
  const size_t num_rules = source_.num_rules();
  AttrSet assured;
  // Γ: rules not yet applied. Applied rules leave the set (Fig. 6 line 7);
  // non-matching rules are re-examined on the next outer iteration.
  std::vector<bool> applied(num_rules, false);
  // Budgeted chases keep an undo log so a kBudgetExhausted tuple leaves
  // both the tuple and the outcome stats untouched.
  Tuple original;
  std::vector<uint32_t> applied_order;
  if (max_steps > 0) original = t.ToTuple();
  size_t steps = 0;
  size_t cells_changed = 0;
  bool updated = true;
  while (updated) {
    updated = false;
    ++stats_.chase_iterations;
    for (uint32_t i = 0; i < num_rules; ++i) {
      if (applied[i]) continue;
      if (max_steps > 0 && ++steps > max_steps) {
        t.CopyFrom(original);
        for (const uint32_t rule_index : applied_order) {
          --stats_.rule_applications;
          --stats_.per_rule_applications[rule_index];
        }
        return Status::BudgetExhausted(
            "chase exceeded its budget of " + std::to_string(max_steps) +
            " rule examinations");
      }
      if (assured.Contains(source_.target(i)) || !source_.MatchesFlat(i, t)) {
        continue;
      }
      t[source_.target(i)] = source_.fact(i);
      assured.UnionWith(source_.assured(i));
      applied[i] = true;
      updated = true;
      ++cells_changed;
      ++stats_.rule_applications;
      ++stats_.per_rule_applications[i];
      if (max_steps > 0) applied_order.push_back(i);
    }
  }
  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  *cells_changed_out = cells_changed;
  return Status::Ok();
}

void ChaseRepairer::RepairTable(Table* table) {
  FIXREP_TRACE_SPAN("crepair.chase");
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RepairTuple(table->WriteRow(r));
  }
  FlushMetrics();
}

void ChaseRepairer::FlushMetrics() {
  stats_.PublishDelta(published_, "crepair");
  published_ = stats_;
}

}  // namespace fixrep
