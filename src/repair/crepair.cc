#include "repair/crepair.h"

#include <vector>

#include "common/logging.h"
#include "common/trace.h"

namespace fixrep {

ChaseRepairer::ChaseRepairer(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  stats_.Reset(rules_->size());
  published_.Reset(rules_->size());
}

size_t ChaseRepairer::RepairTuple(Tuple* t) {
  FIXREP_CHECK_EQ(t->size(), rules_->schema().arity());
  ++stats_.tuples_examined;
  AttrSet assured;
  // Γ: rules not yet applied. Applied rules leave the set (Fig. 6 line 7);
  // non-matching rules are re-examined on the next outer iteration.
  std::vector<bool> applied(rules_->size(), false);
  size_t cells_changed = 0;
  bool updated = true;
  while (updated) {
    updated = false;
    ++stats_.chase_iterations;
    for (size_t i = 0; i < rules_->size(); ++i) {
      if (applied[i]) continue;
      const FixingRule& rule = rules_->rule(i);
      if (assured.Contains(rule.target) || !rule.Matches(*t)) continue;
      rule.Apply(t);
      assured.UnionWith(rule.AssuredSet());
      applied[i] = true;
      updated = true;
      ++cells_changed;
      ++stats_.rule_applications;
      ++stats_.per_rule_applications[i];
    }
  }
  stats_.cells_changed += cells_changed;
  if (cells_changed > 0) ++stats_.tuples_changed;
  return cells_changed;
}

void ChaseRepairer::RepairTable(Table* table) {
  FIXREP_TRACE_SPAN("crepair.chase");
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RepairTuple(&table->mutable_row(r));
  }
  FlushMetrics();
}

void ChaseRepairer::FlushMetrics() {
  stats_.PublishDelta(published_, "crepair");
  published_ = stats_;
}

}  // namespace fixrep
