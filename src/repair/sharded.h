#ifndef FIXREP_REPAIR_SHARDED_H_
#define FIXREP_REPAIR_SHARDED_H_

#include <cstddef>
#include <vector>

#include "common/quarantine.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/provenance.h"
#include "repair/repair_stats.h"
#include "rules/rule_source.h"

namespace fixrep {

// Sharded repair: hash-partition the rows, then chase each shard on its
// own worker with its own RuleSource handle.
//
// The pooled engine (repair/parallel.h) splits rows by position: any
// worker sees any tuple, so worker-local memo caches and — on the
// dictionary backend — translator memos and posting caches each relearn
// the whole table's value population. Sharding routes instead by
// *content*: a tuple's shard is the hash of its projection onto the
// rules' mentioned attributes (the deps-layer ValueVectorHash
// partitioner), so duplicate and near-duplicate tuples land on the same
// worker. Memo hits concentrate, and a dictionary worker's scratch only
// ever learns its shard's slice of the value space.
//
// Output is bit-identical to the serial and pooled engines in every
// configuration: the chase is a pure per-tuple function, so partitioning
// cannot change any cell; stats merge once (registry counts match a
// serial run); write-log capture and quarantine diagnostics are merged
// back into row order after the join.
//
// Works against any RuleRepository backend — handles are created
// serially before the workers run, one per shard.
struct ShardedRepairOptions {
  // Number of shards. 0 picks the pool's full width (workers + caller).
  size_t shards = 0;
  // Worker-local memoization (abort mode only, like the pooled engine).
  bool use_memo = true;
  size_t memo_capacity = MemoCache::kDefaultCapacity;
  // kAbort fails fast (a failing tuple CHECKs — abort-mode chases cannot
  // fail without a step budget); kSkip/kQuarantine isolate per tuple.
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // One Diagnostic per failed tuple when on_error is kQuarantine, in row
  // order. Diagnostic::line is the absolute row index in the table.
  QuarantineSink* quarantine = nullptr;
  // Per-tuple chase budget in lenient mode (0 = unlimited).
  size_t max_chase_steps = 0;
  // Rule-attributed write capture, ParallelRepairOptions::write_log
  // semantics: merged entries are row-ascending with intra-row chase
  // order preserved, identical to a serial run's capture.
  std::vector<CellRepair>* write_log = nullptr;
};

struct ShardedRepairResult {
  RepairStats stats;  // merged over shards, published once as lrepair
  size_t tuples_quarantined = 0;
  size_t shards_used = 0;
};

// Repairs rows [begin_row, end_row) of `table` in place. Metrics are
// published per call from the calling thread.
ShardedRepairResult ShardedRepairRows(const RuleRepository& repo,
                                      Table* table, size_t begin_row,
                                      size_t end_row,
                                      const ShardedRepairOptions& options = {});

ShardedRepairResult ShardedRepairTable(
    const RuleRepository& repo, Table* table,
    const ShardedRepairOptions& options = {});

}  // namespace fixrep

#endif  // FIXREP_REPAIR_SHARDED_H_
