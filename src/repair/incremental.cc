#include "repair/incremental.h"

#include <utility>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

namespace {

Counter* IncrementalCounter(const char* name) {
  return CurrentMetrics().GetCounter(
      std::string("fixrep.incremental.") + name);
}

}  // namespace

IncrementalRepairer::IncrementalRepairer(const RuleSet* rules, Table table)
    : table_(std::move(table)), repairer_(rules) {
  repairer_.RepairTable(&table_);
}

IncrementalRepairer::IncrementalRepairer(const RuleRepository* repo,
                                         Table table)
    : table_(std::move(table)),
      handle_(repo->MakeHandle()),
      repairer_(handle_->source()) {
  repairer_.RepairTable(&table_);
}

size_t IncrementalRepairer::Insert(Tuple row) {
  FIXREP_CHECK_EQ(row.size(), table_.schema().arity());
  repairer_.RepairTuple(row);
  table_.AppendRow(row);
  IncrementalCounter("inserts")->Add(1);
  repairer_.FlushMetrics();
  return table_.num_rows() - 1;
}

size_t IncrementalRepairer::InsertBatch(std::vector<Tuple> rows) {
  const size_t first = table_.num_rows();
  for (Tuple& row : rows) {
    FIXREP_CHECK_EQ(row.size(), table_.schema().arity());
    table_.AppendRow(row);
  }
  repairer_.RepairRows(&table_, first, table_.num_rows());
  IncrementalCounter("inserts")->Add(rows.size());
  repairer_.FlushMetrics();
  return first;
}

size_t IncrementalRepairer::UpdateCell(size_t row, AttrId attr,
                                       ValueId value) {
  FIXREP_CHECK_LT(row, table_.num_rows());
  table_.WriteCell(row, attr, value);
  const size_t changed = repairer_.RepairTuple(table_.WriteRow(row));
  IncrementalCounter("cell_updates")->Add(1);
  repairer_.FlushMetrics();
  return changed;
}

}  // namespace fixrep
