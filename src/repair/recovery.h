#ifndef FIXREP_REPAIR_RECOVERY_H_
#define FIXREP_REPAIR_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/status.h"
#include "common/wal.h"
#include "relation/schema.h"
#include "relation/value_pool.h"
#include "repair/provenance.h"
#include "rules/fingerprint.h"
#include "rules/rule_set.h"

// Durable streaming repair (docs/durability.md): the record layer over
// common/wal.h that makes a StreamingRepairSession crash-recoverable,
// auditable, and rule-by-rule reversible.
//
// Record protocol — one header, then per committed chunk:
//
//   header | chunk_begin cell_delta* csv_quarantine* quarantine*
//            chunk_commit | ...
//
// ChunkJournal appends the records; each Commit group-fsyncs, so the
// durable prefix of the file always ends at a chunk_commit. The
// streaming session commits each chunk BEFORE emitting its rows, and
// the output file is atomically renamed into place only at the end
// (common/atomic_file.h) — a crash anywhere loses no committed chunk
// and never exposes a partial output.
//
// ScanWal replays a log front to back: committed chunks are returned
// with their deltas and tuple diagnostics; an uncommitted tail (torn
// frame, chunk_begin without its chunk_commit) is reported and its byte
// offset excluded from durable_bytes, which ChunkJournal::Resume
// truncates away before appending.
//
// Values travel as strings, not ValueIds — a WAL written by one process
// replays in another, and the header carries the schema's attribute
// names so `fixrep_cli audit` needs nothing but the log.
//
// Crash-injection sites (docs/robustness.md): "wal.crash_after_append"
// (die after the chunk's deltas are written, before its commit record),
// "wal.crash_before_commit" (die mid-write of the commit record — a
// torn final frame), "wal.crash_after_commit" (die with the chunk
// durable but its rows never emitted). All three raise SIGKILL after
// flushing, leaving exactly the file bytes a real kill would.

namespace fixrep {

// Version 2 added kCsvQuarantine: CSV-level diagnostics are journaled
// per chunk, so resume validates re-rendered input diagnostics against
// the log instead of silently trusting the input file. Version-1 logs
// are still scanned and resumed (they carry no CSV records, so resume
// falls back to re-rendering from the input, as version 1 always did).
inline constexpr uint32_t kWalFormatVersion = 2;
// The oldest version this build still reads.
inline constexpr uint32_t kMinWalFormatVersion = 1;
// The version that introduced CSV-level quarantine journaling.
inline constexpr uint32_t kCsvQuarantineWalVersion = 2;

// Record types inside the frame layer of common/wal.h.
enum class WalRec : uint8_t {
  kHeader = 1,
  kChunkBegin = 2,
  kCellDelta = 3,
  kQuarantine = 4,
  kChunkCommit = 5,
  kCsvQuarantine = 6,
};

// The run configuration a WAL was written under. Resume refuses a
// header that does not match the live run (ValidateWalHeader): byte
// identity is only guaranteed for an identical configuration.
struct WalRunHeader {
  uint32_t version = kWalFormatVersion;
  // FNV-1a over the serialized rule set (RuleSetFingerprint).
  uint64_t rule_fingerprint = 0;
  std::vector<std::string> attribute_names;
  uint64_t chunk_rows = 0;
  uint8_t on_error = 0;  // OnErrorPolicy, numeric

  size_t arity() const { return attribute_names.size(); }
};

// One journaled cell write, process-independent.
struct WalCellDelta {
  uint64_t row = 0;  // chunk-local row index
  uint32_t attr = 0;
  bool old_is_null = false;
  std::string old_value;
  std::string new_value;
  uint64_t rule_index = 0;

  bool operator==(const WalCellDelta&) const = default;
};

// One committed chunk recovered from a WAL.
struct WalChunk {
  uint64_t chunk_index = 0;  // 1-based, like StreamingRepairResult::chunks
  uint64_t base_row = 0;     // global output-row index of chunk row 0
  uint64_t rows = 0;
  uint64_t cells_changed = 0;
  uint64_t tuples_quarantined = 0;
  std::vector<WalCellDelta> deltas;
  // Tuple-level diagnostics at global rows.
  std::vector<Diagnostic> quarantined;
  // CSV-level diagnostics the reader produced while this chunk's records
  // were consumed (version >= 2; global record ordinals). Resume
  // forwards these instead of the re-rendered ones and refuses when the
  // two disagree — the loud alternative to assuming the input file is
  // still present and unchanged.
  std::vector<Diagnostic> csv_quarantined;
};

// RuleSetFingerprint — the rule-set identity WAL headers carry — lives
// in rules/fingerprint.h (included above): the same identity stamps
// compiled rule dictionaries, so it belongs to the rules layer.

// Appends the chunk protocol to a WAL file. Create/Resume sync the
// header position immediately, so even a run killed inside its first
// chunk leaves a scannable log.
class ChunkJournal {
 public:
  static StatusOr<ChunkJournal> Create(const std::string& path,
                                       const WalRunHeader& header);
  // Reopens an existing WAL for appending after ScanWal: truncates the
  // uncommitted tail at `durable_bytes` and continues the protocol.
  static StatusOr<ChunkJournal> Resume(const std::string& path,
                                       uint64_t durable_bytes);

  Status BeginChunk(uint64_t chunk_index, uint64_t base_row, uint64_t rows);
  Status AddDelta(const WalCellDelta& delta);
  Status AddQuarantine(const Diagnostic& diagnostic);
  // CSV-level (reader) diagnostic. Do not append to a log resumed from
  // a version-1 header: old scanners refuse the record type.
  Status AddCsvQuarantine(const Diagnostic& diagnostic);
  // Appends the commit record and group-fsyncs everything since the
  // last Commit. The chunk is durable iff this returns ok.
  Status Commit(uint64_t chunk_index, uint64_t rows, uint64_t cells_changed,
                uint64_t tuples_quarantined);

  uint64_t fsync_count() const { return writer_.fsync_count(); }
  uint64_t appended_bytes() const { return writer_.appended_bytes(); }
  Status Close() { return writer_.Close(); }

 private:
  explicit ChunkJournal(WalWriter writer) : writer_(std::move(writer)) {}

  WalWriter writer_;
};

// Everything a scan recovers from a WAL file.
struct RecoveredRun {
  WalRunHeader header;
  std::vector<WalChunk> chunks;  // committed chunks only, in log order
  // Byte offset just past the last chunk_commit (or the header when no
  // chunk committed) — the prefix ChunkJournal::Resume keeps.
  uint64_t durable_bytes = 0;
  // True when the log carried anything past that point: a torn frame
  // from a mid-write crash, or records of a chunk that never committed.
  bool tail_discarded = false;

  uint64_t rows_durable() const {
    uint64_t n = 0;
    for (const WalChunk& chunk : chunks) n += chunk.rows;
    return n;
  }
};

// Replays `path` front to back. kMalformedInput for a file that is not
// a WAL or whose durable prefix violates the record protocol; a torn or
// uncommitted *tail* is not an error (that is what crashes leave).
StatusOr<RecoveredRun> ScanWal(const std::string& path);

// Refuses a header that does not describe the live run. `chunk_rows`
// and `on_error` mismatches break replay determinism; a fingerprint or
// schema mismatch means the WAL belongs to different rules or data.
Status ValidateWalHeader(const WalRunHeader& header,
                         uint64_t rule_fingerprint,
                         const std::vector<std::string>& attribute_names,
                         uint64_t chunk_rows, OnErrorPolicy on_error);

// Fingerprint-only gate for attribution (audit --rules, rollback):
// refuses when `rules` is not the rule set the WAL was written under.
Status ValidateWalFingerprint(const WalRunHeader& header,
                              const RuleSet& rules);

// A WAL rendered back into provenance form: a RepairLog at global
// output rows plus the schema/pool needed to Describe it. Standalone —
// built entirely from the log, no rules or input required.
struct WalAudit {
  std::shared_ptr<const Schema> schema;
  std::shared_ptr<ValuePool> pool;
  RepairLog log;
};

StatusOr<WalAudit> BuildAudit(const RecoveredRun& run);

struct RollbackReport {
  size_t cells_restored = 0;
  size_t rows_touched = 0;
};

// Undoes every write rule `rule_index` made, against the repaired CSV
// at `repaired_csv`, writing the result to `out_csv` (atomically).
// Sound because the chase writes each (row, attr) cell at most once (a
// written target enters the assured set and is never rewritten): each
// delta independently verifies the cell still holds its new value —
// kMalformedInput if the file was edited since — and restores the old.
// Refuses on a fingerprint mismatch with `rules` or an out-of-range
// rule index. Re-repairing the output with the same rules restores the
// repaired bytes.
StatusOr<RollbackReport> RollbackRule(const RecoveredRun& run,
                                      const RuleSet& rules,
                                      size_t rule_index,
                                      const std::string& repaired_csv,
                                      const std::string& out_csv);

}  // namespace fixrep

#endif  // FIXREP_REPAIR_RECOVERY_H_
