#include "repair/session.h"

#include <string>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "repair/crepair.h"
#include "repair/lrepair.h"
#include "repair/parallel.h"
#include "repair/recovery.h"
#include "repair/sharded.h"
#include "repair/streaming.h"

namespace fixrep {

RepairSession::RepairSession(const RuleSet* rules, const RepairConfig& config)
    : rules_(rules), config_(config) {
  FIXREP_CHECK(rules_ != nullptr || !config_.rules_dict.empty());
  if (config_.scoped_metrics) scope_ = std::make_unique<MetricScope>();
  if (config_.engine == RepairEngine::kLRepair && config_.rules_dict.empty()) {
    // Scoped so the one-time index-build cost is attributed to this
    // session, like everything else it publishes.
    std::unique_ptr<MetricScope::Activation> active;
    if (scope_ != nullptr) {
      active = std::make_unique<MetricScope::Activation>(scope_.get());
    }
    index_ = std::make_unique<const CompiledRuleIndex>(rules_);
  }
}

RepairSession::RepairSession(const RepairConfig& config)
    : RepairSession(static_cast<const RuleSet*>(nullptr), config) {}

RepairSession::RepairSession(const RuleRepository* repository,
                             const RepairConfig& config)
    : rules_(nullptr), config_(config), external_repo_(repository) {
  FIXREP_CHECK(external_repo_ != nullptr);
  FIXREP_CHECK(config_.rules_dict.empty())
      << "a shared-repository session already has its backend";
  if (config_.scoped_metrics) scope_ = std::make_unique<MetricScope>();
}

StatusOr<const RuleRepository*> RepairSession::Backend(
    const Schema& schema, const std::shared_ptr<ValuePool>& pool) {
  if (external_repo_ != nullptr) return external_repo_;
  if (config_.rules_dict.empty()) return index_.get();
  if (dict_ == nullptr) {
    StatusOr<std::unique_ptr<RuleDict>> opened =
        RuleDict::Open(config_.rules_dict);
    if (!opened.ok()) return opened.status();
    dict_ = std::move(opened.value());
  }
  FIXREP_RETURN_IF_ERROR(dict_->Bind(schema, pool));
  return dict_.get();
}

const MetricsRegistry& RepairSession::metrics() const {
  return scope_ != nullptr ? scope_->registry() : MetricsRegistry::Global();
}

void RepairSession::FlushMetrics() {
  if (scope_ != nullptr) scope_->Flush();
}

Status RepairSession::ValidateForTable() const {
  if (config_.engine == RepairEngine::kCRepair &&
      (config_.threads != 1 || config_.shards != 0)) {
    return Status::MalformedInput(
        "cRepair is serial-only; set threads=1 and shards=0 or use kLRepair");
  }
  return Status::Ok();
}

StatusOr<RepairReport> RepairSession::Repair(Table* table) {
  FIXREP_CHECK(table != nullptr);
  const Status valid = ValidateForTable();
  if (!valid.ok()) return valid;

  // Route every publication below (engines publish from this thread
  // only; pool workers never touch the registry) into the session scope.
  std::unique_ptr<MetricScope::Activation> active;
  if (scope_ != nullptr) {
    active = std::make_unique<MetricScope::Activation>(scope_.get());
  }

  RepairReport report;
  report.rows = table->num_rows();

  StatusOr<const RuleRepository*> backend =
      Backend(table->schema(), table->pool_ptr());
  if (!backend.ok()) return backend.status();
  const RuleRepository* repo = backend.value();

  if (config_.engine == RepairEngine::kCRepair) {
    // Dictionary- and shared-repository-backed reference chases run over
    // the handle's source view; the rules-backed one compiles its
    // private index as before.
    std::unique_ptr<RuleSourceHandle> handle;
    if (repo != nullptr &&
        (external_repo_ != nullptr || !config_.rules_dict.empty())) {
      handle = repo->MakeHandle();
    }
    ChaseRepairer repairer =
        handle != nullptr ? ChaseRepairer(handle->source())
                          : ChaseRepairer(rules_);
    repairer.set_max_chase_steps(config_.max_chase_steps);
    if (config_.on_error == OnErrorPolicy::kAbort) {
      repairer.RepairTable(table);
      report.cells_changed = repairer.stats().cells_changed;
      return report;
    }
    // Serial lenient chase: isolate each tuple, mirroring the lRepair
    // lenient path's diagnostics and counters.
    const bool quarantining = config_.on_error == OnErrorPolicy::kQuarantine &&
                              config_.quarantine != nullptr;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      size_t changed = 0;
      const Status status = repairer.TryRepairTuple(table->WriteRow(r),
                                                    &changed);
      if (status.ok()) {
        report.cells_changed += changed;
        continue;
      }
      ++report.tuples_quarantined;
      if (quarantining) {
        config_.quarantine->Add(Diagnostic{r, status.code(), status.message(),
                                           table->FormatRow(r)});
      }
    }
    if (report.tuples_quarantined > 0) {
      CurrentMetrics()
          .GetCounter("fixrep.quarantine.tuples")
          ->Add(report.tuples_quarantined);
    }
    repairer.FlushMetrics();
    return report;
  }

  if (config_.shards > 0) {
    // Content-routed engine; handles abort and lenient modes itself.
    ShardedRepairOptions options;
    options.shards = config_.shards;
    options.use_memo = config_.use_memo;
    options.memo_capacity = config_.memo_capacity;
    options.on_error = config_.on_error;
    options.quarantine = config_.quarantine;
    options.max_chase_steps = config_.max_chase_steps;
    const ShardedRepairResult result = ShardedRepairTable(*repo, table,
                                                          options);
    report.cells_changed = result.stats.cells_changed;
    report.tuples_quarantined = result.tuples_quarantined;
    return report;
  }

  if (config_.on_error == OnErrorPolicy::kAbort) {
    // Serial widths short-circuit inside ParallelRepairRows to the
    // carried FastRepairer path, so one call covers both.
    ParallelRepairOptions options;
    options.threads = config_.threads;
    options.use_memo = config_.use_memo;
    options.memo_capacity = config_.memo_capacity;
    report.cells_changed =
        ParallelRepairTable(*repo, table, options).cells_changed;
    return report;
  }

  LenientRepairOptions options;
  options.parallel.threads = config_.threads;
  options.on_error = config_.on_error;
  options.quarantine = config_.quarantine;
  options.max_chase_steps = config_.max_chase_steps;
  const LenientRepairResult result =
      ParallelRepairTableLenient(*repo, table, options);
  report.cells_changed = result.stats.cells_changed;
  report.tuples_quarantined = result.tuples_quarantined;
  return report;
}

StatusOr<RepairReport> RepairSession::RepairStream(CsvChunkReader* reader,
                                                   std::ostream& out) {
  FIXREP_CHECK(reader != nullptr);
  if (config_.engine != RepairEngine::kLRepair) {
    return Status::MalformedInput(
        "streaming repair requires the lRepair engine");
  }
  std::unique_ptr<MetricScope::Activation> active;
  if (scope_ != nullptr) {
    active = std::make_unique<MetricScope::Activation>(scope_.get());
  }
  StatusOr<const RuleRepository*> backend =
      Backend(*reader->schema(), reader->pool());
  if (!backend.ok()) return backend.status();
  const RuleRepository* repo = backend.value();

  StreamingRepairOptions options;
  options.chunk_rows = config_.chunk_rows;
  options.repair.parallel.threads = config_.threads;
  options.repair.parallel.use_memo = config_.use_memo;
  options.repair.parallel.memo_capacity = config_.memo_capacity;
  options.repair.on_error = config_.on_error;
  options.repair.quarantine = config_.quarantine;
  options.repair.max_chase_steps = config_.max_chase_steps;
  options.shards = config_.shards;
  options.memory_budget_bytes = config_.memory_budget_bytes;
  options.prune_columns = config_.prune_columns;

  // Durable run: open (or resume) the WAL before any row is repaired.
  // The journal pointer is borrowed by the streaming session; keeping
  // it here ties its lifetime to this call.
  std::unique_ptr<ChunkJournal> journal;
  RecoveredRun recovered;
  if (!config_.wal_path.empty()) {
    // Both backends journal the same identity: a dictionary header
    // carries RuleSetFingerprint of the set it compiled.
    const uint64_t fingerprint = repo->fingerprint();
    if (config_.resume) {
      StatusOr<RecoveredRun> scanned = ScanWal(config_.wal_path);
      if (!scanned.ok()) return scanned.status();
      recovered = std::move(scanned.value());
      FIXREP_RETURN_IF_ERROR(ValidateWalHeader(
          recovered.header, fingerprint, reader->schema()->attribute_names(),
          config_.chunk_rows, config_.on_error));
      StatusOr<ChunkJournal> resumed =
          ChunkJournal::Resume(config_.wal_path, recovered.durable_bytes);
      if (!resumed.ok()) return resumed.status();
      journal = std::make_unique<ChunkJournal>(std::move(resumed.value()));
      options.resume = &recovered;
    } else {
      WalRunHeader header;
      header.rule_fingerprint = fingerprint;
      header.attribute_names = reader->schema()->attribute_names();
      header.chunk_rows = config_.chunk_rows;
      header.on_error = static_cast<uint8_t>(config_.on_error);
      StatusOr<ChunkJournal> created =
          ChunkJournal::Create(config_.wal_path, header);
      if (!created.ok()) return created.status();
      journal = std::make_unique<ChunkJournal>(std::move(created.value()));
    }
    options.journal = journal.get();
  }

  StreamingRepairSession session(repo, options);
  StatusOr<StreamingRepairResult> result = session.Run(reader, out);
  if (!result.ok()) return result.status();
  if (journal != nullptr) FIXREP_RETURN_IF_ERROR(journal->Close());

  RepairReport report;
  report.rows = result.value().rows_emitted;
  report.cells_changed = result.value().cells_changed;
  report.tuples_quarantined = result.value().tuples_quarantined;
  report.chunks = result.value().chunks;
  report.peak_resident_bytes = result.value().peak_resident_bytes;
  report.columns_pruned = result.value().columns_pruned;
  return report;
}

}  // namespace fixrep
