#ifndef FIXREP_REPAIR_REPAIR_STATS_H_
#define FIXREP_REPAIR_REPAIR_STATS_H_

#include <cstddef>
#include <vector>

namespace fixrep {

// Accumulated effect of a repair run; shared by both repair engines.
// per_rule_applications powers Fig. 12(a) (errors corrected per rule).
struct RepairStats {
  size_t tuples_examined = 0;
  size_t tuples_changed = 0;
  size_t cells_changed = 0;
  // per_rule_applications[i] = number of tuples rule i was applied to.
  std::vector<size_t> per_rule_applications;

  void Reset(size_t num_rules) {
    tuples_examined = 0;
    tuples_changed = 0;
    cells_changed = 0;
    per_rule_applications.assign(num_rules, 0);
  }
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_REPAIR_STATS_H_
