#ifndef FIXREP_REPAIR_REPAIR_STATS_H_
#define FIXREP_REPAIR_REPAIR_STATS_H_

#include <cstddef>
#include <vector>

namespace fixrep {

// Accumulated effect of a repair run; shared by both repair engines.
// per_rule_applications powers Fig. 12(a) (errors corrected per rule).
//
// The struct itself is single-writer (each repairer — and each parallel
// worker — owns one); thread-safe aggregation happens when a repairer
// publishes into the global MetricsRegistry via PublishDelta.
struct RepairStats {
  size_t tuples_examined = 0;
  size_t tuples_changed = 0;
  size_t cells_changed = 0;
  // Total rule firings; always the sum of per_rule_applications.
  size_t rule_applications = 0;
  // lRepair internals: inverted-list probes that found candidate rules,
  // hash-counter bumps, rules that entered Ω, and Ω pops rejected by
  // re-verification (stale counters / already-assured targets).
  size_t index_hits = 0;
  size_t counter_bumps = 0;
  size_t candidates_enqueued = 0;
  size_t candidates_rejected = 0;
  // Vectorized-probe internals: LookupBatch calls issued and packed keys
  // hashed through them. Both stay 0 when the scalar kernel is active;
  // every chase-semantic counter above is kernel-independent.
  size_t batch_probes = 0;
  size_t batch_keys = 0;
  // cRepair internals: outer chase passes over the rule list.
  size_t chase_iterations = 0;
  // per_rule_applications[i] = number of tuples rule i was applied to.
  std::vector<size_t> per_rule_applications;

  void Reset(size_t num_rules) {
    tuples_examined = 0;
    tuples_changed = 0;
    cells_changed = 0;
    rule_applications = 0;
    index_hits = 0;
    counter_bumps = 0;
    candidates_enqueued = 0;
    candidates_rejected = 0;
    batch_probes = 0;
    batch_keys = 0;
    chase_iterations = 0;
    per_rule_applications.assign(num_rules, 0);
  }

  // Accumulates another run's stats (parallel-worker merge).
  void MergeFrom(const RepairStats& other);

  // Publishes (*this - prev) into the global MetricsRegistry under
  // fixrep.<engine>.* — counters for every scalar field plus the
  // fixrep.<engine>.per_rule_applications counter vector. Repairers call this
  // at table granularity with their last-published snapshot, so the
  // per-tuple hot path touches only this plain struct and the shared
  // atomics see one update per table. Requires *this to have advanced
  // monotonically from prev (same rule set).
  void PublishDelta(const RepairStats& prev, const char* engine) const;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_REPAIR_STATS_H_
