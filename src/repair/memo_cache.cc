#include "repair/memo_cache.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"

namespace fixrep {

MemoCache::MemoCache(size_t capacity) {
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  slots_.resize(rounded);
  mask_ = rounded - 1;
}

uint64_t MemoCache::HashTuple(TupleRef t) {
  // FNV-1a over the cells, then a SplitMix64 finalizer so the low bits
  // used for slot selection see every cell.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const ValueId v : t) {
    h ^= static_cast<uint32_t>(v);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

const std::vector<MemoCache::Write>* MemoCache::Find(uint64_t hash,
                                                     TupleRef t) {
  Entry& entry = slots_[hash & mask_];
  if (entry.used && entry.hash == hash && entry.key == t) {
    ++stats_.hits;
    return &entry.writes;
  }
  ++stats_.misses;
  return nullptr;
}

void MemoCache::Insert(uint64_t hash, Tuple key, std::vector<Write> writes) {
  Entry& entry = slots_[hash & mask_];
  if (entry.used && !(entry.hash == hash && entry.key == key)) {
    ++stats_.evictions;
  }
  entry.used = true;
  entry.hash = hash;
  entry.key = std::move(key);
  entry.writes = std::move(writes);
  ++stats_.insertions;
}

void MemoCache::FlushMetrics() {
  if (!kMetricsEnabled) return;
  auto& registry = CurrentMetrics();
  const auto publish = [&](const char* name, uint64_t cur, uint64_t old) {
    FIXREP_DCHECK(cur >= old);
    if (cur > old) {
      registry.GetCounter(std::string("fixrep.memo.") + name)
          ->Add(cur - old);
    }
  };
  publish("hits", stats_.hits, published_.hits);
  publish("misses", stats_.misses, published_.misses);
  publish("insertions", stats_.insertions, published_.insertions);
  publish("evictions", stats_.evictions, published_.evictions);
  registry.GetGauge("fixrep.memo.capacity")
      ->Set(static_cast<int64_t>(slots_.size()));
  published_ = stats_;
}

}  // namespace fixrep
