#ifndef FIXREP_REPAIR_MEMO_CACHE_H_
#define FIXREP_REPAIR_MEMO_CACHE_H_

#include <cstdint>
#include <vector>

#include "relation/table.h"

namespace fixrep {

// Tuple-signature repair memoization.
//
// Real cleaning workloads are dominated by repeated value patterns:
// byte-identical dirty tuples recur (duplicated registrations, repeated
// form entries, hosp's provider rows). Chasing is a pure function of the
// tuple's cells — the rule index is immutable and the chase never looks
// outside the tuple — so two identical tuples always receive the identical
// write set, and replaying a cached (attr, value, rule) list is
// bit-identical to re-chasing (asserted by memo_cache_test against both
// engines).
//
// The cache is direct-mapped: capacity is a power of two, a tuple hashes
// to exactly one slot, and an insert simply overwrites whatever lived
// there (eviction is one slot assignment — no LRU lists, no heap churn on
// the hot path beyond the stored tuple/write vectors). Hits require a
// full tuple compare, so hash collisions can cost a miss but never a
// wrong replay.
//
// Single-owner: not thread-safe. Parallel repair gives each worker its
// own MemoCache (worker-local like the chase scratch); determinism holds
// because replay and re-chase agree.
class MemoCache {
 public:
  // One cached cell write: rule `rule` set t[attr] := value.
  struct Write {
    AttrId attr;
    ValueId value;
    uint32_t rule;
  };

  // Plain tallies; published into fixrep.memo.* by FlushMetrics.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  // 64Ki entries ≈ a few MB at hosp arity; covers the distinct-row count
  // of duplicate-heavy tables while staying far below table size.
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  explicit MemoCache(size_t capacity = kDefaultCapacity);

  // 64-bit signature of the full tuple (every cell participates).
  static uint64_t HashTuple(TupleRef t);

  // The cached write set for `t`, or nullptr on miss. `hash` must be
  // HashTuple(t). Counts a hit or a miss.
  const std::vector<Write>* Find(uint64_t hash, TupleRef t);

  // Caches `writes` for the pre-repair tuple `key` (hash must match).
  // Overwrites the slot's previous occupant, counting an eviction.
  void Insert(uint64_t hash, Tuple key, std::vector<Write> writes);

  size_t capacity() const { return slots_.size(); }
  const Stats& stats() const { return stats_; }

  // Publishes the delta since the last flush into the global
  // MetricsRegistry (fixrep.memo.{hits,misses,insertions,evictions}).
  void FlushMetrics();

 private:
  struct Entry {
    bool used = false;
    uint64_t hash = 0;
    Tuple key;
    std::vector<Write> writes;
  };

  std::vector<Entry> slots_;
  size_t mask_;
  Stats stats_;
  Stats published_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_MEMO_CACHE_H_
