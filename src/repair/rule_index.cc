#include "repair/rule_index.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

CompiledRuleIndex::CompiledRuleIndex(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  FIXREP_TRACE_SPAN("lrepair.index_build");
  arity_ = rules_->schema().arity();
  const size_t n = rules_->size();
  // The batched chase packs the rule id and a prescreen flag into one
  // uint32 queue entry; bit 31 is the flag.
  FIXREP_CHECK_LT(n, size_t{1} << 31);

  evidence_count_.resize(n);
  target_.resize(n);
  fact_.resize(n);
  assured_bits_.resize(n);
  ev_offsets_.reserve(n + 1);
  neg_offsets_.reserve(n + 1);

  // Gather postings per key, then pack. The scratch map only lives during
  // the build; lookups afterwards touch the flat structures exclusively.
  std::unordered_map<uint64_t, std::vector<uint32_t>> gathered;
  size_t total_postings = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const FixingRule& rule = rules_->rule(i);
    evidence_count_[i] = static_cast<uint32_t>(rule.evidence_attrs.size());
    target_[i] = rule.target;
    fact_[i] = rule.fact;
    assured_bits_[i] = rule.AssuredSet().bits();
    mentioned_attrs_.UnionWith(rule.AssuredSet());
    // CSR-pack the full patterns for MatchesFlat. negative_patterns is
    // sorted/deduped by Validate(), so the packed slice binary-searches.
    ev_offsets_.push_back(static_cast<uint32_t>(ev_attrs_.size()));
    ev_attrs_.insert(ev_attrs_.end(), rule.evidence_attrs.begin(),
                     rule.evidence_attrs.end());
    ev_values_.insert(ev_values_.end(), rule.evidence_values.begin(),
                      rule.evidence_values.end());
    neg_offsets_.push_back(static_cast<uint32_t>(neg_values_.size()));
    neg_values_.insert(neg_values_.end(), rule.negative_patterns.begin(),
                       rule.negative_patterns.end());
    if (rule.evidence_attrs.empty()) {
      empty_evidence_rules_.push_back(i);
      continue;
    }
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      gathered[PackKey(rule.evidence_attrs[e], rule.evidence_values[e])]
          .push_back(i);
      ++total_postings;
    }
  }
  ev_offsets_.push_back(static_cast<uint32_t>(ev_attrs_.size()));
  neg_offsets_.push_back(static_cast<uint32_t>(neg_values_.size()));

  uint64_t ev_attr_mask = 0;
  for (const AttrId a : ev_attrs_) ev_attr_mask |= uint64_t{1} << a;
  for (AttrId a = 0; a < static_cast<AttrId>(arity_); ++a) {
    if (ev_attr_mask & (uint64_t{1} << a)) evidence_attr_list_.push_back(a);
  }

  num_keys_ = gathered.size();
  size_t capacity = 16;
  while (capacity < num_keys_ * 2) capacity <<= 1;
  mask_ = capacity - 1;
  slots_.assign(capacity, Slot{});
  postings_.reserve(total_postings);
  for (auto& [key, rule_ids] : gathered) {
    size_t slot = Hash(key) & mask_;
    while (slots_[slot].key != kEmptyKey) slot = (slot + 1) & mask_;
    slots_[slot].key = key;
    slots_[slot].begin = static_cast<uint32_t>(postings_.size());
    postings_.insert(postings_.end(), rule_ids.begin(), rule_ids.end());
    slots_[slot].end = static_cast<uint32_t>(postings_.size());
  }

  auto& registry = CurrentMetrics();
  // fixrep.lrepair.index_builds must tick once per rule set — sharing one
  // CompiledRuleIndex across engines/workers is the whole point;
  // parallel_test asserts it stays at 1 for a multi-worker repair.
  registry.GetCounter("fixrep.lrepair.index_builds")->Add(1);
  registry.GetGauge("fixrep.lrepair.index_keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetCounter("fixrep.index.builds")->Add(1);
  registry.GetGauge("fixrep.index.keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetGauge("fixrep.index.postings")
      ->Set(static_cast<int64_t>(postings_.size()));
  registry.GetGauge("fixrep.index.bytes")->Set(static_cast<int64_t>(bytes()));
}

void CompiledRuleIndex::LookupBatch(SimdKernel kernel, const uint64_t* keys,
                                    size_t n, PostingRange* out) const {
  // Sub-batch of 16: big enough to fill the load buffers with independent
  // slot fetches, small enough that the hash scratch stays in registers /
  // L1 and the prefetched lines are still resident when resolved.
  constexpr size_t kSubBatch = 16;
  uint64_t hashes[kSubBatch];
  for (size_t base = 0; base < n; base += kSubBatch) {
    const size_t m = std::min(kSubBatch, n - base);
    HashBatch(kernel, keys + base, m, hashes);
    // Issue all home-slot prefetches before any probe resolves: the
    // independent cache misses overlap instead of serializing.
    for (size_t i = 0; i < m; ++i) {
      PrefetchRead(&slots_[hashes[i] & mask_]);
    }
    for (size_t i = 0; i < m; ++i) {
      const PostingRange r = Resolve(keys[base + i], hashes[i]);
      out[base + i] = r;
      // A hit's postings are consumed by the caller's bump loop right
      // after this returns — start those lines now.
      if (r.begin != r.end) PrefetchRead(r.begin);
    }
  }
}

size_t CompiledRuleIndex::bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         postings_.capacity() * sizeof(uint32_t) +
         evidence_count_.capacity() * sizeof(uint32_t) +
         target_.capacity() * sizeof(AttrId) +
         fact_.capacity() * sizeof(ValueId) +
         assured_bits_.capacity() * sizeof(uint64_t) +
         empty_evidence_rules_.capacity() * sizeof(uint32_t) +
         ev_offsets_.capacity() * sizeof(uint32_t) +
         ev_attrs_.capacity() * sizeof(AttrId) +
         ev_values_.capacity() * sizeof(ValueId) +
         neg_offsets_.capacity() * sizeof(uint32_t) +
         neg_values_.capacity() * sizeof(ValueId) +
         evidence_attr_list_.capacity() * sizeof(AttrId);
}

}  // namespace fixrep
