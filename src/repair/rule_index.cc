#include "repair/rule_index.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace fixrep {

CompiledRuleIndex::CompiledRuleIndex(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  FIXREP_TRACE_SPAN("lrepair.index_build");
  arity_ = rules_->schema().arity();
  const size_t n = rules_->size();

  evidence_count_.resize(n);
  target_.resize(n);
  fact_.resize(n);
  assured_bits_.resize(n);

  // Gather postings per key, then pack. The scratch map only lives during
  // the build; lookups afterwards touch the flat structures exclusively.
  std::unordered_map<uint64_t, std::vector<uint32_t>> gathered;
  size_t total_postings = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const FixingRule& rule = rules_->rule(i);
    evidence_count_[i] = static_cast<uint32_t>(rule.evidence_attrs.size());
    target_[i] = rule.target;
    fact_[i] = rule.fact;
    assured_bits_[i] = rule.AssuredSet().bits();
    mentioned_attrs_.UnionWith(rule.AssuredSet());
    if (rule.evidence_attrs.empty()) {
      empty_evidence_rules_.push_back(i);
      continue;
    }
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      gathered[Key(rule.evidence_attrs[e], rule.evidence_values[e])]
          .push_back(i);
      ++total_postings;
    }
  }

  num_keys_ = gathered.size();
  size_t capacity = 16;
  while (capacity < num_keys_ * 2) capacity <<= 1;
  mask_ = capacity - 1;
  slots_.assign(capacity, Slot{});
  postings_.reserve(total_postings);
  for (auto& [key, rule_ids] : gathered) {
    size_t slot = Hash(key) & mask_;
    while (slots_[slot].key != kEmptyKey) slot = (slot + 1) & mask_;
    slots_[slot].key = key;
    slots_[slot].begin = static_cast<uint32_t>(postings_.size());
    postings_.insert(postings_.end(), rule_ids.begin(), rule_ids.end());
    slots_[slot].end = static_cast<uint32_t>(postings_.size());
  }

  auto& registry = CurrentMetrics();
  // fixrep.lrepair.index_builds must tick once per rule set — sharing one
  // CompiledRuleIndex across engines/workers is the whole point;
  // parallel_test asserts it stays at 1 for a multi-worker repair.
  registry.GetCounter("fixrep.lrepair.index_builds")->Add(1);
  registry.GetGauge("fixrep.lrepair.index_keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetCounter("fixrep.index.builds")->Add(1);
  registry.GetGauge("fixrep.index.keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetGauge("fixrep.index.postings")
      ->Set(static_cast<int64_t>(postings_.size()));
  registry.GetGauge("fixrep.index.bytes")->Set(static_cast<int64_t>(bytes()));
}

size_t CompiledRuleIndex::bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         postings_.capacity() * sizeof(uint32_t) +
         evidence_count_.capacity() * sizeof(uint32_t) +
         target_.capacity() * sizeof(AttrId) +
         fact_.capacity() * sizeof(ValueId) +
         assured_bits_.capacity() * sizeof(uint64_t) +
         empty_evidence_rules_.capacity() * sizeof(uint32_t);
}

}  // namespace fixrep
