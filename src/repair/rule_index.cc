#include "repair/rule_index.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "rules/fingerprint.h"

namespace fixrep {

CompiledRuleIndex::CompiledRuleIndex(const RuleSet* rules) : rules_(rules) {
  FIXREP_CHECK(rules_ != nullptr);
  FIXREP_TRACE_SPAN("lrepair.index_build");
  arity_ = rules_->schema().arity();
  const size_t n = rules_->size();
  // The batched chase packs the rule id and a prescreen flag into one
  // uint32 queue entry; bit 31 is the flag.
  FIXREP_CHECK_LT(n, size_t{1} << 31);

  evidence_count_.resize(n);
  target_.resize(n);
  fact_.resize(n);
  assured_bits_.resize(n);
  ev_offsets_.reserve(n + 1);
  neg_offsets_.reserve(n + 1);

  // Gather postings per key, then pack. The scratch map only lives during
  // the build; lookups afterwards touch the flat structures exclusively.
  std::unordered_map<uint64_t, std::vector<uint32_t>> gathered;
  size_t total_postings = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const FixingRule& rule = rules_->rule(i);
    evidence_count_[i] = static_cast<uint32_t>(rule.evidence_attrs.size());
    target_[i] = rule.target;
    fact_[i] = rule.fact;
    assured_bits_[i] = rule.AssuredSet().bits();
    mentioned_attrs_.UnionWith(rule.AssuredSet());
    // CSR-pack the full patterns for MatchesFlat. negative_patterns is
    // sorted/deduped by Validate(), so the packed slice binary-searches.
    ev_offsets_.push_back(static_cast<uint32_t>(ev_attrs_.size()));
    ev_attrs_.insert(ev_attrs_.end(), rule.evidence_attrs.begin(),
                     rule.evidence_attrs.end());
    ev_values_.insert(ev_values_.end(), rule.evidence_values.begin(),
                      rule.evidence_values.end());
    neg_offsets_.push_back(static_cast<uint32_t>(neg_values_.size()));
    neg_values_.insert(neg_values_.end(), rule.negative_patterns.begin(),
                       rule.negative_patterns.end());
    if (rule.evidence_attrs.empty()) {
      empty_evidence_rules_.push_back(i);
      continue;
    }
    for (size_t e = 0; e < rule.evidence_attrs.size(); ++e) {
      gathered[PackKey(rule.evidence_attrs[e], rule.evidence_values[e])]
          .push_back(i);
      ++total_postings;
    }
  }
  ev_offsets_.push_back(static_cast<uint32_t>(ev_attrs_.size()));
  neg_offsets_.push_back(static_cast<uint32_t>(neg_values_.size()));

  uint64_t ev_attr_mask = 0;
  for (const AttrId a : ev_attrs_) ev_attr_mask |= uint64_t{1} << a;
  for (AttrId a = 0; a < static_cast<AttrId>(arity_); ++a) {
    if (ev_attr_mask & (uint64_t{1} << a)) evidence_attr_list_.push_back(a);
  }

  num_keys_ = gathered.size();
  size_t capacity = 16;
  while (capacity < num_keys_ * 2) capacity <<= 1;
  mask_ = capacity - 1;
  slots_.assign(capacity, RuleSlot{});
  postings_.reserve(total_postings);
  for (auto& [key, rule_ids] : gathered) {
    size_t slot = SplitMix64(key) & mask_;
    while (slots_[slot].key != kEmptyRuleKey) slot = (slot + 1) & mask_;
    slots_[slot].key = key;
    slots_[slot].begin = static_cast<uint32_t>(postings_.size());
    postings_.insert(postings_.end(), rule_ids.begin(), rule_ids.end());
    slots_[slot].end = static_cast<uint32_t>(postings_.size());
  }

  RuleSource::Init init;
  init.slots = slots_.data();
  init.slot_mask = mask_;
  init.postings = postings_.data();
  init.evidence_count = evidence_count_.data();
  init.target = target_.data();
  init.fact = fact_.data();
  init.assured_bits = assured_bits_.data();
  init.ev_offsets = ev_offsets_.data();
  init.ev_attrs = ev_attrs_.data();
  init.ev_values = ev_values_.data();
  init.neg_offsets = neg_offsets_.data();
  init.neg_values = neg_values_.data();
  init.empty_evidence_rules = empty_evidence_rules_.data();
  init.num_empty_evidence_rules = empty_evidence_rules_.size();
  init.evidence_attr_list = evidence_attr_list_.data();
  init.num_evidence_attrs = evidence_attr_list_.size();
  init.mentioned_attrs = mentioned_attrs_;
  init.num_rules = n;
  init.arity = arity_;
  view_ = RuleSource(init);

  auto& registry = CurrentMetrics();
  // fixrep.lrepair.index_builds must tick once per rule set — sharing one
  // CompiledRuleIndex across engines/workers is the whole point;
  // parallel_test asserts it stays at 1 for a multi-worker repair.
  registry.GetCounter("fixrep.lrepair.index_builds")->Add(1);
  registry.GetGauge("fixrep.lrepair.index_keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetCounter("fixrep.index.builds")->Add(1);
  registry.GetGauge("fixrep.index.keys")
      ->Set(static_cast<int64_t>(num_keys_));
  registry.GetGauge("fixrep.index.postings")
      ->Set(static_cast<int64_t>(postings_.size()));
  registry.GetGauge("fixrep.index.bytes")->Set(static_cast<int64_t>(bytes()));
}

uint64_t CompiledRuleIndex::fingerprint() const {
  // Lazy: rendering the canonical text is O(corpus), and most indexes
  // never need their identity (only WAL and dictionary flows do).
  std::call_once(fingerprint_once_,
                 [this] { fingerprint_ = RuleSetFingerprint(*rules_); });
  return fingerprint_;
}

size_t CompiledRuleIndex::bytes() const {
  return slots_.capacity() * sizeof(RuleSlot) +
         postings_.capacity() * sizeof(uint32_t) +
         evidence_count_.capacity() * sizeof(uint32_t) +
         target_.capacity() * sizeof(AttrId) +
         fact_.capacity() * sizeof(ValueId) +
         assured_bits_.capacity() * sizeof(uint64_t) +
         empty_evidence_rules_.capacity() * sizeof(uint32_t) +
         ev_offsets_.capacity() * sizeof(uint32_t) +
         ev_attrs_.capacity() * sizeof(AttrId) +
         ev_values_.capacity() * sizeof(ValueId) +
         neg_offsets_.capacity() * sizeof(uint32_t) +
         neg_values_.capacity() * sizeof(ValueId) +
         evidence_attr_list_.capacity() * sizeof(AttrId);
}

}  // namespace fixrep
