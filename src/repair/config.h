#ifndef FIXREP_REPAIR_CONFIG_H_
#define FIXREP_REPAIR_CONFIG_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "repair/session.h"

// One audited key/value parser for RepairConfig, shared by the CLI
// `repair` verb and the daemon's wire-request config headers, so a knob
// behaves identically no matter which surface set it (docs/api.md).
// Keys mirror the CLI flag names (engine, threads, shards, rules-dict,
// memo, no-memo, memo-capacity, on-error, max-chase-steps, chunk-rows,
// memory-budget, prune, wal, resume, scoped-metrics).

namespace fixrep {

// Parses "64MB" / "512K" / "1G" / plain bytes into a byte count.
// Returns false on garbage.
bool ParseByteSize(const std::string& text, size_t* bytes);

// Applies one key=value setting to `config`. Boolean keys accept an
// empty value (flag style) or true/false/1/0/on/off/yes/no. Unknown
// keys and unparseable values return kMalformedInput — the repo's
// invalid-argument code — and leave `config` unchanged. The
// `quarantine` sink is a runtime object and has no key.
Status ParseRepairConfig(const std::string& key, const std::string& value,
                         RepairConfig* config);

// Serializes every knob of `config` that differs from the default as
// (key, value) pairs such that replaying them through ParseRepairConfig
// over a default config reproduces `config` exactly (round-trip
// property; quarantine excluded). This is what `fixrep_cli submit`
// sends as request config headers.
std::vector<std::pair<std::string, std::string>> FormatRepairConfig(
    const RepairConfig& config);

// True for keys that only make sense for a local/streaming session and
// are rejected by the daemon (the tenant defines the rule backend and
// the server owns durability and memory policy): rules-dict, chunk-rows,
// memory-budget, prune, wal, resume, scoped-metrics.
bool RepairConfigKeyIsSessionLocal(const std::string& key);

}  // namespace fixrep

#endif  // FIXREP_REPAIR_CONFIG_H_
