#include "repair/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "repair/lrepair.h"

namespace fixrep {

RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads) {
  FIXREP_CHECK(table != nullptr);
  if (threads == 0) {
    threads = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  }
  const size_t rows = table->num_rows();
  threads = std::min(threads, std::max<size_t>(rows, 1));

  if (threads <= 1 || rows == 0) {
    FastRepairer repairer(&rules);
    repairer.RepairTable(table);
    return repairer.stats();
  }

  std::vector<RepairStats> per_worker(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (rows + threads - 1) / threads;
  for (size_t w = 0; w < threads; ++w) {
    const size_t begin = w * shard;
    const size_t end = std::min(begin + shard, rows);
    if (begin >= end) break;
    workers.emplace_back([&rules, table, begin, end,
                          stats = &per_worker[w]]() {
      // Each worker owns a repairer: the rule set is shared read-only,
      // the counters/queue inside FastRepairer are worker-local.
      FastRepairer repairer(&rules);
      for (size_t r = begin; r < end; ++r) {
        repairer.RepairTuple(&table->mutable_row(r));
      }
      *stats = repairer.stats();
    });
  }
  for (auto& worker : workers) worker.join();

  RepairStats merged;
  merged.Reset(rules.size());
  for (const auto& stats : per_worker) {
    merged.tuples_examined += stats.tuples_examined;
    merged.tuples_changed += stats.tuples_changed;
    merged.cells_changed += stats.cells_changed;
    for (size_t i = 0; i < stats.per_rule_applications.size(); ++i) {
      merged.per_rule_applications[i] += stats.per_rule_applications[i];
    }
  }
  return merged;
}

}  // namespace fixrep
