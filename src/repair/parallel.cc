#include "repair/parallel.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/logging.h"
#include "common/metric_scope.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "repair/lrepair.h"

namespace fixrep {

namespace {

// Appends the per-slot capture vectors to `out` in row order. Each slot's
// vector is already row-sorted (workers claim ranges off a monotone
// cursor and log rows in claim order), and a row is chased by exactly one
// slot, so a stable sort on row reproduces the serial capture: rows
// ascending, intra-row entries in chase order.
void MergeWriteLogs(std::vector<std::vector<CellRepair>>* slot_logs,
                    std::vector<CellRepair>* out) {
  if (out == nullptr) return;
  const size_t mark = out->size();
  for (auto& slot_log : *slot_logs) {
    out->insert(out->end(), std::make_move_iterator(slot_log.begin()),
                std::make_move_iterator(slot_log.end()));
  }
  std::stable_sort(out->begin() + mark, out->end(),
                   [](const CellRepair& a, const CellRepair& b) {
                     return a.row < b.row;
                   });
}

}  // namespace

RepairStats ParallelRepairRows(const RuleRepository& repo, Table* table,
                               size_t begin_row, size_t end_row,
                               const ParallelRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  FIXREP_CHECK(begin_row <= end_row && end_row <= table->num_rows());
  ThreadPool& pool = ThreadPool::Global();
  size_t threads = options.threads;
  if (threads == 0) threads = pool.num_workers() + 1;
  const size_t rows = end_row - begin_row;
  threads = std::min(threads, std::max<size_t>(rows, 1));

  if (threads <= 1 || rows == 0) {
    const std::unique_ptr<RuleSourceHandle> handle = repo.MakeHandle();
    FastRepairer repairer(handle->source());
    MemoCache memo(options.memo_capacity);
    if (options.use_memo) repairer.set_memo(&memo);
    repairer.set_write_log(options.write_log);
    if (begin_row == 0 && end_row == table->num_rows()) {
      repairer.RepairTable(table);  // flushes fixrep.lrepair.* itself
    } else {
      FIXREP_TRACE_SPAN("lrepair.chase");
      repairer.RepairRows(table, begin_row, end_row);
      repairer.FlushMetrics();
    }
    return repairer.stats();
  }

  FIXREP_TRACE_SPAN("parallel.repair_table");
  auto& registry = CurrentMetrics();
  registry.GetCounter("fixrep.parallel.tables_repaired")->Add(1);
  registry.GetGauge("fixrep.parallel.workers")
      ->Set(static_cast<int64_t>(threads));
  FIXREP_LOG(Debug) << "parallel repair" << Kv("rows", rows)
                    << Kv("rules", repo.num_rules())
                    << Kv("workers", threads)
                    << Kv("memo", options.use_memo ? 1 : 0);

  // Per-slot scratch, created up front and serially (MakeHandle is
  // serial-only): repairers are cheap now that the backend is shared
  // (four O(|Σ|) vectors), and pre-creation keeps the claimed-chunk
  // lambda allocation-free.
  std::vector<std::unique_ptr<RuleSourceHandle>> handles;
  std::vector<std::unique_ptr<FastRepairer>> repairers;
  std::vector<std::unique_ptr<MemoCache>> memos;
  std::vector<std::vector<CellRepair>> slot_logs(
      options.write_log != nullptr ? threads : 0);
  handles.reserve(threads);
  repairers.reserve(threads);
  memos.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    handles.push_back(repo.MakeHandle());
    repairers.push_back(
        std::make_unique<FastRepairer>(handles[w]->source()));
    if (options.use_memo) {
      memos.push_back(std::make_unique<MemoCache>(options.memo_capacity));
      repairers.back()->set_memo(memos.back().get());
    }
    if (options.write_log != nullptr) {
      repairers.back()->set_write_log(&slot_logs[w]);
    }
  }

  // Chunks small enough that fast workers absorb stragglers' leftovers,
  // large enough that the atomic cursor is off the per-tuple path.
  const size_t grain =
      std::clamp<size_t>(rows / (threads * 8), size_t{16}, size_t{2048});
  pool.ParallelFor(rows, grain, threads,
                   [&](size_t begin, size_t end, size_t slot) {
                     // Each claimed chunk runs through the row-group
                     // driver, so pooled workers get the same batched
                     // probes as a serial repair.
                     repairers[slot]->RepairRows(table, begin_row + begin,
                                                 begin_row + end);
                   });

  // Workers never flush — the merged stats are published once so registry
  // counts match the single-threaded run exactly.
  RepairStats merged;
  merged.Reset(repo.num_rules());
  for (const auto& repairer : repairers) merged.MergeFrom(repairer->stats());
  RepairStats empty;
  empty.Reset(repo.num_rules());
  merged.PublishDelta(empty, "lrepair");
  for (const auto& memo : memos) memo->FlushMetrics();
  MergeWriteLogs(&slot_logs, options.write_log);
  return merged;
}

RepairStats ParallelRepairTable(const RuleRepository& repo, Table* table,
                                const ParallelRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  return ParallelRepairRows(repo, table, 0, table->num_rows(), options);
}

RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads) {
  const CompiledRuleIndex index(&rules);
  ParallelRepairOptions options;
  options.threads = threads;
  return ParallelRepairTable(index, table, options);
}

LenientRepairResult ParallelRepairRowsLenient(
    const RuleRepository& repo, Table* table, size_t begin_row,
    size_t end_row, const LenientRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  FIXREP_CHECK(begin_row <= end_row && end_row <= table->num_rows());
  FIXREP_CHECK(options.on_error != OnErrorPolicy::kAbort)
      << "lenient repair supports skip|quarantine; use ParallelRepairTable "
         "for fail-fast semantics";
  ThreadPool& pool = ThreadPool::Global();
  size_t threads = options.parallel.threads;
  if (threads == 0) threads = pool.num_workers() + 1;
  const size_t rows = end_row - begin_row;
  threads = std::min(threads, std::max<size_t>(rows, 1));

  FIXREP_TRACE_SPAN("parallel.repair_table_lenient");
  auto& registry = CurrentMetrics();
  if (threads > 1) {
    registry.GetCounter("fixrep.parallel.tables_repaired")->Add(1);
    registry.GetGauge("fixrep.parallel.workers")
        ->Set(static_cast<int64_t>(threads));
  }
  FIXREP_LOG(Debug) << "lenient repair" << Kv("rows", rows)
                    << Kv("rules", repo.num_rules())
                    << Kv("workers", threads)
                    << Kv("budget", options.max_chase_steps);

  std::vector<std::unique_ptr<RuleSourceHandle>> handles;
  std::vector<std::unique_ptr<FastRepairer>> repairers;
  std::vector<std::vector<Diagnostic>> failures(threads);
  std::vector<std::vector<CellRepair>> slot_logs(
      options.write_log != nullptr ? threads : 0);
  handles.reserve(threads);
  repairers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    handles.push_back(repo.MakeHandle());
    repairers.push_back(
        std::make_unique<FastRepairer>(handles[w]->source()));
    repairers.back()->set_max_chase_steps(options.max_chase_steps);
    if (options.write_log != nullptr) {
      repairers.back()->set_write_log(&slot_logs[w]);
    }
  }

  const size_t grain =
      std::clamp<size_t>(rows / (threads * 8), size_t{16}, size_t{2048});
  pool.ParallelFor(rows, grain, threads,
                   [&](size_t begin, size_t end, size_t slot) {
                     FastRepairer& repairer = *repairers[slot];
                     for (size_t i = begin; i < end; ++i) {
                       const size_t r = begin_row + i;
                       size_t cells_changed = 0;
                       repairer.set_write_log_row(r);
                       const Status status = repairer.TryRepairTuple(
                           table->WriteRow(r), &cells_changed);
                       if (status.ok()) continue;
                       // TryRepairTuple restored the row, so FormatRow
                       // renders the preserved original values.
                       failures[slot].push_back(
                           Diagnostic{r, status.code(), status.message(),
                                      table->FormatRow(r)});
                     }
                   });

  // Merge worker failure lists into row order so sink output (and any
  // downstream file) is identical to a serial run's.
  std::vector<Diagnostic> merged_failures;
  for (auto& slot_failures : failures) {
    merged_failures.insert(merged_failures.end(),
                           std::make_move_iterator(slot_failures.begin()),
                           std::make_move_iterator(slot_failures.end()));
  }
  std::sort(merged_failures.begin(), merged_failures.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.line < b.line;
            });
  if (!merged_failures.empty()) {
    registry.GetCounter("fixrep.quarantine.tuples")
        ->Add(merged_failures.size());
  }
  if (options.on_error == OnErrorPolicy::kQuarantine &&
      options.quarantine != nullptr) {
    for (const Diagnostic& diagnostic : merged_failures) {
      options.quarantine->Add(diagnostic);
    }
  }

  LenientRepairResult result;
  result.stats.Reset(repo.num_rules());
  for (const auto& repairer : repairers) {
    result.stats.MergeFrom(repairer->stats());
  }
  RepairStats empty;
  empty.Reset(repo.num_rules());
  result.stats.PublishDelta(empty, "lrepair");
  result.tuples_quarantined = merged_failures.size();
  MergeWriteLogs(&slot_logs, options.write_log);
  return result;
}

LenientRepairResult ParallelRepairTableLenient(
    const RuleRepository& repo, Table* table,
    const LenientRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  return ParallelRepairRowsLenient(repo, table, 0, table->num_rows(),
                                   options);
}

}  // namespace fixrep
