#include "repair/parallel.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "repair/lrepair.h"

namespace fixrep {

RepairStats ParallelRepairTable(const CompiledRuleIndex& index, Table* table,
                                const ParallelRepairOptions& options) {
  FIXREP_CHECK(table != nullptr);
  ThreadPool& pool = ThreadPool::Global();
  size_t threads = options.threads;
  if (threads == 0) threads = pool.num_workers() + 1;
  const size_t rows = table->num_rows();
  threads = std::min(threads, std::max<size_t>(rows, 1));

  if (threads <= 1 || rows == 0) {
    FastRepairer repairer(&index);
    MemoCache memo(options.memo_capacity);
    if (options.use_memo) repairer.set_memo(&memo);
    repairer.RepairTable(table);  // flushes fixrep.lrepair.* itself
    return repairer.stats();
  }

  FIXREP_TRACE_SPAN("parallel.repair_table");
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("fixrep.parallel.tables_repaired")->Add(1);
  registry.GetGauge("fixrep.parallel.workers")
      ->Set(static_cast<int64_t>(threads));
  FIXREP_LOG(Debug) << "parallel repair" << Kv("rows", rows)
                    << Kv("rules", index.num_rules())
                    << Kv("workers", threads)
                    << Kv("memo", options.use_memo ? 1 : 0);

  // Per-slot scratch, created up front: repairers are cheap now that the
  // index is shared (four O(|Σ|) vectors), and pre-creation keeps the
  // claimed-chunk lambda allocation-free.
  std::vector<std::unique_ptr<FastRepairer>> repairers;
  std::vector<std::unique_ptr<MemoCache>> memos;
  repairers.reserve(threads);
  memos.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    repairers.push_back(std::make_unique<FastRepairer>(&index));
    if (options.use_memo) {
      memos.push_back(std::make_unique<MemoCache>(options.memo_capacity));
      repairers.back()->set_memo(memos.back().get());
    }
  }

  // Chunks small enough that fast workers absorb stragglers' leftovers,
  // large enough that the atomic cursor is off the per-tuple path.
  const size_t grain =
      std::clamp<size_t>(rows / (threads * 8), size_t{16}, size_t{2048});
  pool.ParallelFor(rows, grain, threads,
                   [&](size_t begin, size_t end, size_t slot) {
                     FastRepairer& repairer = *repairers[slot];
                     for (size_t r = begin; r < end; ++r) {
                       repairer.RepairTuple(&table->mutable_row(r));
                     }
                   });

  // Workers never flush — the merged stats are published once so registry
  // counts match the single-threaded run exactly.
  RepairStats merged;
  merged.Reset(index.num_rules());
  for (const auto& repairer : repairers) merged.MergeFrom(repairer->stats());
  RepairStats empty;
  empty.Reset(index.num_rules());
  merged.PublishDelta(empty, "lrepair");
  for (const auto& memo : memos) memo->FlushMetrics();
  return merged;
}

RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads) {
  const CompiledRuleIndex index(&rules);
  ParallelRepairOptions options;
  options.threads = threads;
  return ParallelRepairTable(index, table, options);
}

}  // namespace fixrep
