#include "repair/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "repair/lrepair.h"

namespace fixrep {

RepairStats ParallelRepairTable(const RuleSet& rules, Table* table,
                                size_t threads) {
  FIXREP_CHECK(table != nullptr);
  if (threads == 0) {
    threads = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  }
  const size_t rows = table->num_rows();
  threads = std::min(threads, std::max<size_t>(rows, 1));

  if (threads <= 1 || rows == 0) {
    FastRepairer repairer(&rules);
    repairer.RepairTable(table);  // flushes fixrep.lrepair.* itself
    return repairer.stats();
  }

  FIXREP_TRACE_SPAN("parallel.repair_table");
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("fixrep.parallel.tables_repaired")->Add(1);
  registry.GetGauge("fixrep.parallel.workers")
      ->Set(static_cast<int64_t>(threads));
  FIXREP_LOG(Debug) << "parallel repair" << Kv("rows", rows)
                    << Kv("rules", rules.size()) << Kv("workers", threads);

  std::vector<RepairStats> per_worker(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (rows + threads - 1) / threads;
  for (size_t w = 0; w < threads; ++w) {
    const size_t begin = w * shard;
    const size_t end = std::min(begin + shard, rows);
    if (begin >= end) break;
    workers.emplace_back([&rules, table, begin, end,
                          stats = &per_worker[w]]() {
      // Each worker owns a repairer: the rule set is shared read-only,
      // the counters/queue inside FastRepairer are worker-local. Workers
      // drive RepairTuple directly and never flush — the merged stats are
      // published once below, after the join, so registry counts match
      // the single-threaded run exactly.
      FastRepairer repairer(&rules);
      for (size_t r = begin; r < end; ++r) {
        repairer.RepairTuple(&table->mutable_row(r));
      }
      *stats = repairer.stats();
    });
  }
  for (auto& worker : workers) worker.join();

  RepairStats merged;
  merged.Reset(rules.size());
  for (const auto& stats : per_worker) merged.MergeFrom(stats);
  RepairStats empty;
  empty.Reset(rules.size());
  merged.PublishDelta(empty, "lrepair");
  return merged;
}

}  // namespace fixrep
