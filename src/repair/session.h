#ifndef FIXREP_REPAIR_SESSION_H_
#define FIXREP_REPAIR_SESSION_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/metric_scope.h"
#include "common/quarantine.h"
#include "common/status.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "repair/memo_cache.h"
#include "repair/rule_index.h"
#include "rules/rule_dict.h"
#include "rules/rule_set.h"

namespace fixrep {

// The unified repair entry point (docs/api.md).
//
// Historically each capability grew its own signature — serial chase
// (ChaseRepairer::RepairTable), serial/parallel lRepair
// (FastRepairer::RepairTable, ParallelRepairTable), failure isolation
// (ParallelRepairTableLenient), and out-of-core streaming
// (StreamingRepairSession) — five entry points whose knobs overlap but
// don't compose. RepairSession collapses them behind one RepairConfig:
// pick an engine, a width, an error policy, and (for streams) the
// memory knobs, and the session routes to the same engines underneath.
// Behavior per configuration is bit-identical to calling the engine
// layer directly; the engine entry points remain public for callers
// that need one engine's extras (provenance, incremental sessions,
// custom flush granularity).

// Which repair algorithm drives the chase.
enum class RepairEngine {
  // lRepair (Fig. 7): O(size(Σ)) per tuple over a CompiledRuleIndex.
  // Supports every RepairConfig knob. The default.
  kLRepair,
  // cRepair (Fig. 6): the reference chase, O(size(Σ)·|R|) per tuple.
  // Serial whole-table only (abort or lenient) — kept for
  // cross-validation; threads != 1 and streaming are rejected.
  kCRepair,
};

struct RepairConfig {
  RepairEngine engine = RepairEngine::kLRepair;
  // 1 = serial (the default); 0 = the pool's full width; >1 = that many
  // workers (ParallelRepairOptions::threads semantics).
  size_t threads = 1;
  // > 0: route table repair (and each streamed chunk) through the
  // content-routed sharded engine (repair/sharded.h) with this many
  // shards instead of the position-claiming pooled engine; `threads` is
  // then ignored. kLRepair only. Output is bit-identical either way.
  size_t shards = 0;
  // Non-empty: repair against the compiled on-disk rule dictionary
  // (rules/rule_dict.h) at this path instead of an index built from the
  // borrowed RuleSet. The dictionary is opened on the first
  // Repair/RepairStream call and bound to that call's schema and value
  // pool; open/bind failures (bad magic, truncation, CRC or schema
  // mismatch) surface as that call's Status. Output is byte-identical
  // to an in-RAM run over the same rules.
  std::string rules_dict;
  // Tuple-signature memoization (abort mode only; lenient repair never
  // memoizes). Output is bit-identical either way.
  bool use_memo = true;
  size_t memo_capacity = MemoCache::kDefaultCapacity;
  // kAbort fails fast; kSkip/kQuarantine restore failing tuples to
  // their original values and keep going.
  OnErrorPolicy on_error = OnErrorPolicy::kAbort;
  // Receives one Diagnostic per failed tuple when on_error is
  // kQuarantine. Diagnostic::line is the row index (global output-row
  // index for streams).
  QuarantineSink* quarantine = nullptr;
  // Per-tuple chase-step budget in lenient mode (0 = unlimited).
  size_t max_chase_steps = 0;

  // --- streaming-only knobs (RepairStream) ---
  // Rows per chunk. kWholeFile reads the entire input as one chunk
  // (useful with a memory budget: spilling, not chunking, bounds RAM).
  static constexpr size_t kWholeFile = ~size_t{0};
  size_t chunk_rows = size_t{64} * 1024;
  // > 0: chunk cell blocks past this many resident bytes spill to a
  // temp-backed mmap file (relation/row_store.h).
  size_t memory_budget_bytes = 0;
  // Intern only rule-mentioned columns; pass the rest through as raw
  // CSV text (byte-identical output either way).
  bool prune_columns = false;

  // --- durability (docs/durability.md) ---
  // Non-empty: journal every committed chunk of RepairStream to this
  // write-ahead log, fsynced before the chunk's rows are emitted. The
  // log carries the run configuration plus every cell delta and tuple
  // diagnostic, so it also feeds `fixrep_cli audit` and `rollback`.
  std::string wal_path;
  // With wal_path set: scan the existing log, validate its header
  // against this config and the reader's schema, truncate any
  // uncommitted tail, fast-forward past the durable chunks (re-emitting
  // their recorded output byte-identically), and resume repairing at
  // the first non-durable chunk.
  bool resume = false;

  // Accumulate this session's metrics in a private MetricScope instead
  // of the process-wide registry, so concurrent sessions stay
  // attributable (inspect via RepairSession::metrics()); everything
  // rolls up into the global registry when the session is destroyed (or
  // on FlushMetrics). Repair output is identical either way.
  bool scoped_metrics = false;
};

struct RepairReport {
  size_t rows = 0;  // rows repaired (streams: rows emitted)
  size_t cells_changed = 0;
  size_t tuples_quarantined = 0;
  // Streaming only:
  size_t chunks = 0;
  size_t peak_resident_bytes = 0;  // spill mode high-water mark
  size_t columns_pruned = 0;
};

class RepairSession {
 public:
  // Borrows `rules`, which must outlive the session and must not be
  // mutated afterwards. For kLRepair the compiled index is built here,
  // once, and shared by every Repair/RepairStream call — unless
  // config.rules_dict is set, in which case the dictionary is the
  // backend and `rules` goes unused.
  explicit RepairSession(const RuleSet* rules, const RepairConfig& config = {});

  // Dictionary-only session: config.rules_dict must be non-empty.
  explicit RepairSession(const RepairConfig& config);

  // Shared-repository session: chases through `repository` (a
  // CompiledRuleIndex or bound RuleDict compiled once elsewhere and
  // borrowed here) without building any per-session index — the
  // daemon's per-request path, where N concurrent sessions share one
  // immutable backend. config.rules_dict must be empty; the caller
  // keeps `repository` alive and bound for the session's lifetime.
  RepairSession(const RuleRepository* repository, const RepairConfig& config);

  RepairSession(const RepairSession&) = delete;
  RepairSession& operator=(const RepairSession&) = delete;

  const RepairConfig& config() const { return config_; }
  // Non-null iff the engine is kLRepair and the backend is in-RAM.
  const CompiledRuleIndex* index() const { return index_.get(); }
  // Non-null once a rules_dict-backed call has opened the dictionary.
  const RuleDict* dict() const { return dict_.get(); }

  // The session's private registry when scoped_metrics is set (counts
  // accumulated since the last flush), the global registry otherwise.
  const MetricsRegistry& metrics() const;
  // Rolls scoped counts up into the global registry now (no-op without
  // scoped_metrics; also runs automatically at destruction).
  void FlushMetrics();

  // Repairs `table` in place per the config. Returns kMalformedInput
  // for knob combinations the engine cannot honor (see RepairEngine).
  StatusOr<RepairReport> Repair(Table* table);

  // Streams `reader` through chunked repair into `out` (CSV header +
  // repaired rows). kLRepair only.
  StatusOr<RepairReport> RepairStream(CsvChunkReader* reader,
                                      std::ostream& out);

 private:
  Status ValidateForTable() const;
  // The rule backend for one call: the session's compiled index, or —
  // with config_.rules_dict set — the dictionary, opened once and bound
  // to the call's schema and pool.
  StatusOr<const RuleRepository*> Backend(
      const Schema& schema, const std::shared_ptr<ValuePool>& pool);

  const RuleSet* rules_;
  RepairConfig config_;
  std::unique_ptr<const CompiledRuleIndex> index_;
  std::unique_ptr<RuleDict> dict_;
  // Borrowed prebuilt backend (shared-repository constructor); wins over
  // index_/dict_ in Backend().
  const RuleRepository* external_repo_ = nullptr;
  // Present iff config_.scoped_metrics; activated on the calling thread
  // for the duration of each Repair/RepairStream call.
  std::unique_ptr<MetricScope> scope_;
};

}  // namespace fixrep

#endif  // FIXREP_REPAIR_SESSION_H_
